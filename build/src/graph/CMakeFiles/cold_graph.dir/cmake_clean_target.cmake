file(REMOVE_RECURSE
  "libcold_graph.a"
)
