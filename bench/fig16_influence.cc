// Figure 16 / §6.6: influential-community identification for viral
// marketing. Every community is seeded alone on the topic's zeta diffusion
// graph; Independent Cascade estimates its influence degree. The pentagon
// membership-plot coordinates and the top influential users are printed as
// data.
#include "apps/influence.h"
#include "common.h"
#include "util/math_util.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 16: influential communities on a topic");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  core::ColdEstimates estimates = bench::TrainCold(
      bench::BenchColdConfig(), dataset.posts, &dataset.interactions);

  // Use the topic with the highest total community interest ("Sports" in
  // the paper's example).
  int topic = 0;
  double best_mass = -1.0;
  for (int k = 0; k < estimates.K; ++k) {
    double mass = 0.0;
    for (int c = 0; c < estimates.C; ++c) mass += estimates.Theta(c, k);
    if (mass > best_mass) {
      best_mass = mass;
      topic = k;
    }
  }

  auto ranked =
      apps::RankCommunitiesByInfluence(estimates, topic, /*trials=*/3000, 87);
  std::printf("topic %d, communities ranked by IC influence degree:\n", topic);
  std::printf("%-12s %-18s %-14s\n", "community", "influence degree",
              "topic interest");
  for (const auto& ci : ranked) {
    std::printf("%-12d %-18.3f %-14.4f\n", ci.community, ci.influence_degree,
                ci.topic_interest);
  }

  auto user_influence = apps::UserInfluenceDegrees(estimates, ranked);
  auto coords = apps::PentagonCoordinates(estimates, ranked, 5);
  auto top_users = TopKIndices(user_influence, 5);
  std::printf("\ntop influential users (pentagon coords):\n");
  std::printf("%-8s %-12s %-8s %-8s\n", "user", "influence", "x", "y");
  for (int u : top_users) {
    std::printf("%-8d %-12.4f %-8.3f %-8.3f\n", u,
                user_influence[static_cast<size_t>(u)],
                coords[static_cast<size_t>(u)].first,
                coords[static_cast<size_t>(u)].second);
  }
  std::printf(
      "\n(paper: influential users cluster at the corners of the top-2\n"
      " influential communities)\n");
  return 0;
}
