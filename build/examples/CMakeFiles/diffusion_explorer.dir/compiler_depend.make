# Empty compiler generated dependencies file for diffusion_explorer.
# This may be replaced when dependencies are built.
