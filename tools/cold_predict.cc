// cold_predict — loads a trained model and answers prediction queries:
//
//   cold_predict <model> topics                       top words per topic
//   cold_predict <model> communities                  interest pies
//   cold_predict <model> diffusion <i> <i2> w1,w2,..  P(i2 retweets i's post)
//   cold_predict <model> rank <i> w1,w2,.. <n>        top-n likely retweeters
//   cold_predict <model> timestamp <i> w1,w2,..       predicted time slice
//
// Word arguments are comma-separated word ids (the vocab.tsv line numbers of
// the training dataset).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/cold.h"
#include "core/model_io.h"
#include "util/math_util.h"

namespace {

std::vector<cold::text::WordId> ParseWords(const char* arg, int vocab) {
  std::vector<cold::text::WordId> words;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    int w = std::atoi(item.c_str());
    if (w >= 0 && w < vocab) {
      words.push_back(static_cast<cold::text::WordId>(w));
    }
  }
  return words;
}

int Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <model> topics\n"
      "       %s <model> communities\n"
      "       %s <model> diffusion <publisher> <candidate> <w1,w2,...>\n"
      "       %s <model> rank <publisher> <w1,w2,...> [n=10]\n"
      "       %s <model> timestamp <author> <w1,w2,...>\n",
      prog, prog, prog, prog, prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  if (argc < 3) return Usage(argv[0]);

  auto loaded = core::LoadEstimates(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  core::ColdEstimates estimates = std::move(loaded).ValueOrDie();
  core::ColdPredictor predictor(estimates, 5);
  const std::string command = argv[2];

  if (command == "topics") {
    for (int k = 0; k < estimates.K; ++k) {
      std::printf("topic %d:", k);
      for (int w : estimates.TopWords(k, 10)) {
        std::printf(" %d(%.3f)", w, estimates.Phi(k, w));
      }
      std::printf("\n");
    }
    return 0;
  }
  if (command == "communities") {
    for (int c = 0; c < estimates.C; ++c) {
      std::printf("community %d:", c);
      std::vector<double> interests(static_cast<size_t>(estimates.K));
      for (int k = 0; k < estimates.K; ++k) {
        interests[static_cast<size_t>(k)] = estimates.Theta(c, k);
      }
      for (int k : TopKIndices(interests, 5)) {
        std::printf(" k%d:%.3f", k, estimates.Theta(c, k));
      }
      std::printf("\n");
    }
    return 0;
  }
  if (command == "diffusion") {
    if (argc < 6) return Usage(argv[0]);
    int i = std::atoi(argv[3]);
    int i2 = std::atoi(argv[4]);
    if (i < 0 || i >= estimates.U || i2 < 0 || i2 >= estimates.U) {
      std::fprintf(stderr, "user ids must be in [0, %d)\n", estimates.U);
      return 1;
    }
    auto words = ParseWords(argv[5], estimates.V);
    std::printf("P(%d retweets %d's post) = %.6f\n", i2, i,
                predictor.DiffusionProbability(i, i2, words));
    return 0;
  }
  if (command == "rank") {
    if (argc < 5) return Usage(argv[0]);
    int i = std::atoi(argv[3]);
    if (i < 0 || i >= estimates.U) {
      std::fprintf(stderr, "publisher id must be in [0, %d)\n", estimates.U);
      return 1;
    }
    auto words = ParseWords(argv[4], estimates.V);
    int n = argc > 5 ? std::atoi(argv[5]) : 10;
    std::vector<double> scores(static_cast<size_t>(estimates.U), 0.0);
    for (int u = 0; u < estimates.U; ++u) {
      if (u == i) continue;
      scores[static_cast<size_t>(u)] =
          predictor.DiffusionProbability(i, u, words);
    }
    for (int u : TopKIndices(scores, n)) {
      std::printf("user %-6d %.6f\n", u, scores[static_cast<size_t>(u)]);
    }
    return 0;
  }
  if (command == "timestamp") {
    if (argc < 5) return Usage(argv[0]);
    int i = std::atoi(argv[3]);
    if (i < 0 || i >= estimates.U) {
      std::fprintf(stderr, "author id must be in [0, %d)\n", estimates.U);
      return 1;
    }
    auto words = ParseWords(argv[4], estimates.V);
    auto scores = predictor.TimestampScores(words, i);
    int best = predictor.PredictTimestamp(words, i);
    std::printf("predicted slice %d of %d; distribution:", best, estimates.T);
    for (double s : scores) std::printf(" %.3f", s);
    std::printf("\n");
    return 0;
  }
  return Usage(argv[0]);
}
