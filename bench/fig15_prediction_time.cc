// Figure 15: online diffusion-prediction latency per (publisher, candidate,
// message) triple, measured with google-benchmark. Paper shape: COLD's
// compact community representation is the cheapest; TI pays for the
// neighborhood walk, WTM for per-message TF-IDF feature construction.
#include <benchmark/benchmark.h>

#include "baselines/ti.h"
#include "baselines/wtm.h"
#include "common.h"
#include "core/predictor.h"

namespace {

using namespace cold;

struct PredictionBenchState {
  data::SocialDataset dataset;
  data::RetweetSplit split;
  std::unique_ptr<core::ColdPredictor> cold_predictor;
  std::unique_ptr<baselines::TiModel> ti;
  std::unique_ptr<baselines::WtmModel> wtm;
  // Pre-drawn query triples.
  std::vector<std::tuple<text::UserId, text::UserId, text::PostId>> queries;
};

PredictionBenchState* State() {
  static PredictionBenchState* state = [] {
    bench::QuietLogs();
    auto* s = new PredictionBenchState();
    data::SyntheticConfig dc = bench::BenchDataConfig();
    dc.num_users = std::max(200, dc.num_users / 2);  // trim setup time
    s->dataset = bench::GenerateBenchData(dc);
    s->split = data::SplitRetweets(s->dataset, 0.2, 83, 0);

    core::ColdEstimates est =
        bench::TrainCold(bench::BenchColdConfig(8, 12, 40), s->dataset.posts,
                         &s->split.train_interactions);
    s->cold_predictor = std::make_unique<core::ColdPredictor>(est, 5);

    baselines::TiConfig tc;
    tc.lda.num_topics = 12;
    tc.lda.alpha = 0.5;
    tc.lda.iterations = 40;
    s->ti = std::make_unique<baselines::TiModel>(tc, s->dataset.posts,
                                                 s->split.train);
    if (!s->ti->Train().ok()) std::exit(1);

    s->wtm = std::make_unique<baselines::WtmModel>(
        baselines::WtmConfig{}, s->dataset.posts, s->split.train_interactions,
        s->split.train);
    if (!s->wtm->Train().ok()) std::exit(1);

    for (const data::RetweetTuple& tuple : s->split.test) {
      for (text::UserId u : tuple.retweeters) {
        s->queries.emplace_back(tuple.author, u, tuple.post);
      }
      for (text::UserId u : tuple.ignorers) {
        s->queries.emplace_back(tuple.author, u, tuple.post);
      }
      if (s->queries.size() >= 4096) break;
    }
    if (s->queries.empty()) std::exit(1);
    return s;
  }();
  return state;
}

void BM_ColdPrediction(benchmark::State& bm) {
  PredictionBenchState* s = State();
  size_t q = 0;
  for (auto _ : bm) {
    const auto& [a, b, d] = s->queries[q++ % s->queries.size()];
    benchmark::DoNotOptimize(s->cold_predictor->DiffusionProbability(
        a, b, s->dataset.posts.words(d)));
  }
}
BENCHMARK(BM_ColdPrediction);

void BM_TiPrediction(benchmark::State& bm) {
  PredictionBenchState* s = State();
  size_t q = 0;
  for (auto _ : bm) {
    const auto& [a, b, d] = s->queries[q++ % s->queries.size()];
    benchmark::DoNotOptimize(
        s->ti->Score(a, b, s->dataset.posts.words(d)));
  }
}
BENCHMARK(BM_TiPrediction);

void BM_WtmPrediction(benchmark::State& bm) {
  PredictionBenchState* s = State();
  size_t q = 0;
  for (auto _ : bm) {
    const auto& [a, b, d] = s->queries[q++ % s->queries.size()];
    benchmark::DoNotOptimize(
        s->wtm->Score(a, b, s->dataset.posts.words(d)));
  }
}
BENCHMARK(BM_WtmPrediction);

}  // namespace

BENCHMARK_MAIN();
