// Scenario: training at scale on the GAS engine (§4.3). Shows the Fig-4
// graph abstraction in action: supersteps, engine statistics, the simulated
// cluster projection, and the async execution mode — plus a quality check
// that the parallel estimates match a serial run.
#include <cstdio>

#include "core/cold.h"
#include "data/synthetic.h"
#include "util/logging.h"
#include "util/stopwatch.h"

int main() {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  data::SyntheticConfig data_config;
  data_config.num_users = 800;
  data_config.num_communities = 8;
  data_config.num_topics = 12;
  auto dataset = std::move(
      data::SyntheticSocialGenerator(data_config).Generate()).ValueOrDie();
  std::printf("dataset: %d users, %d posts, %lld links\n",
              dataset.num_users(), dataset.posts.num_posts(),
              static_cast<long long>(dataset.interactions.num_edges()));

  core::ColdConfig config;
  config.num_communities = 8;
  config.num_topics = 12;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.kappa = 10.0;
  config.iterations = 60;
  config.burn_in = 0;

  // Serial reference.
  double serial_perplexity = 0.0;
  {
    Stopwatch watch;
    core::ColdGibbsSampler sampler(config, dataset.posts,
                                   &dataset.interactions);
    if (!sampler.Init().ok() || !sampler.Train().ok()) return 1;
    core::ColdPredictor predictor(sampler.AveragedEstimates());
    serial_perplexity = predictor.Perplexity(dataset.posts);
    std::printf("\nserial sampler: %.2fs, perplexity %.1f\n",
                watch.ElapsedSeconds(), serial_perplexity);
  }

  // Parallel GAS runs across simulated cluster sizes.
  std::printf("\n%-8s %-10s %-12s %-14s %-12s\n", "nodes", "mode",
              "measured(s)", "cluster-proj(s)", "perplexity");
  for (int nodes : {1, 4, 8}) {
    for (auto mode :
         {engine::ExecutionMode::kSync, engine::ExecutionMode::kAsync}) {
      engine::EngineOptions options;
      options.num_nodes = nodes;
      options.execution = mode;
      core::ParallelColdTrainer trainer(config, dataset.posts,
                                        &dataset.interactions, options);
      if (!trainer.Init().ok() || !trainer.Train().ok()) return 1;
      core::ColdPredictor predictor(trainer.Estimates());
      std::printf("%-8d %-10s %-12.2f %-14.2f %-12.1f\n", nodes,
                  mode == engine::ExecutionMode::kSync ? "sync" : "async",
                  trainer.engine_stats().total_seconds(),
                  trainer.SimulatedWallSeconds(),
                  predictor.Perplexity(dataset.posts));
    }
  }
  std::printf(
      "\n(parallel estimates should match the serial perplexity within a\n"
      " few percent — the approximate-parallel Gibbs semantics of §4.3)\n");
  return 0;
}
