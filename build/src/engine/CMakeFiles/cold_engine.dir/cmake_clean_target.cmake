file(REMOVE_RECURSE
  "libcold_engine.a"
)
