#include "data/split.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.h"

namespace cold::data {

namespace {

// Deterministic fold assignment: shuffle indices once with `seed`, then the
// f-th fold is the f-th contiguous 1/test_fraction block, as in k-fold CV.
std::vector<int> ShuffledIndices(int n, uint64_t seed) {
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  cold::RandomSampler sampler(seed, /*stream=*/11);
  sampler.Shuffle(&idx);
  return idx;
}

// The half-open index range of fold `fold` of size ~n*test_fraction.
std::pair<int, int> FoldRange(int n, double test_fraction, int fold) {
  int folds = std::max(1, static_cast<int>(std::lround(1.0 / test_fraction)));
  fold = fold % folds;
  int base = n / folds;
  int begin = fold * base;
  int end = (fold == folds - 1) ? n : begin + base;
  return {begin, end};
}

uint64_t PairKey(UserId a, UserId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

PostSplit SplitPosts(const text::PostStore& posts, double test_fraction,
                     uint64_t seed, int fold) {
  PostSplit split;
  int n = posts.num_posts();
  std::vector<int> idx = ShuffledIndices(n, seed);
  auto [begin, end] = FoldRange(n, test_fraction, fold);
  std::vector<bool> is_test(static_cast<size_t>(n), false);
  for (int i = begin; i < end; ++i) {
    is_test[static_cast<size_t>(idx[static_cast<size_t>(i)])] = true;
  }
  for (PostId d = 0; d < n; ++d) {
    if (is_test[static_cast<size_t>(d)]) {
      split.test.Add(posts.author(d), posts.time(d), posts.words(d));
      split.test_original_ids.push_back(d);
    } else {
      split.train.Add(posts.author(d), posts.time(d), posts.words(d));
    }
  }
  split.train.Finalize(posts.num_users(), posts.num_time_slices());
  split.test.Finalize(posts.num_users(), posts.num_time_slices());
  return split;
}

LinkSplit SplitLinks(const graph::Digraph& interactions, double test_fraction,
                     double negative_per_positive, uint64_t seed, int fold) {
  LinkSplit split;
  int64_t m = interactions.num_edges();
  std::vector<int> idx = ShuffledIndices(static_cast<int>(m), seed);
  auto [begin, end] = FoldRange(static_cast<int>(m), test_fraction, fold);
  std::vector<bool> is_test(static_cast<size_t>(m), false);
  for (int i = begin; i < end; ++i) {
    is_test[static_cast<size_t>(idx[static_cast<size_t>(i)])] = true;
  }

  graph::Digraph::Builder builder;
  std::unordered_set<uint64_t> all_links;
  for (graph::EdgeId e = 0; e < m; ++e) {
    const graph::Edge& edge = interactions.edge(e);
    all_links.insert(PairKey(edge.src, edge.dst));
    if (is_test[static_cast<size_t>(e)]) {
      split.test_positive.emplace_back(edge.src, edge.dst);
    } else {
      (void)builder.AddEdge(edge.src, edge.dst);
    }
  }
  split.train = std::move(builder).Build(interactions.num_nodes());

  // Sample absent directed pairs uniformly; rejection is cheap since real
  // social graphs (and ours) are sparse.
  cold::RandomSampler sampler(seed + 1, /*stream=*/13);
  int64_t want = static_cast<int64_t>(
      negative_per_positive * static_cast<double>(split.test_positive.size()));
  int u = interactions.num_nodes();
  std::unordered_set<uint64_t> chosen;
  int64_t attempts = 0;
  while (static_cast<int64_t>(split.test_negative.size()) < want &&
         attempts < want * 50 + 1000) {
    ++attempts;
    UserId a = static_cast<UserId>(sampler.UniformInt(static_cast<uint32_t>(u)));
    UserId b = static_cast<UserId>(sampler.UniformInt(static_cast<uint32_t>(u)));
    if (a == b) continue;
    uint64_t key = PairKey(a, b);
    if (all_links.count(key) > 0 || !chosen.insert(key).second) continue;
    split.test_negative.emplace_back(a, b);
  }
  return split;
}

RetweetSplit SplitRetweets(const SocialDataset& dataset, double test_fraction,
                           uint64_t seed, int fold) {
  RetweetSplit split;
  // Only tuples with both outcome classes are eligible test tuples (§6.3).
  std::vector<int> eligible;
  for (size_t i = 0; i < dataset.retweets.size(); ++i) {
    const RetweetTuple& t = dataset.retweets[i];
    if (!t.retweeters.empty() && !t.ignorers.empty()) {
      eligible.push_back(static_cast<int>(i));
    }
  }
  std::vector<int> idx = ShuffledIndices(static_cast<int>(eligible.size()), seed);
  auto [begin, end] =
      FoldRange(static_cast<int>(eligible.size()), test_fraction, fold);
  std::vector<bool> is_test(dataset.retweets.size(), false);
  for (int i = begin; i < end; ++i) {
    is_test[static_cast<size_t>(
        eligible[static_cast<size_t>(idx[static_cast<size_t>(i)])])] = true;
  }
  for (size_t i = 0; i < dataset.retweets.size(); ++i) {
    if (is_test[i]) {
      split.test.push_back(dataset.retweets[i]);
    } else {
      split.train.push_back(dataset.retweets[i]);
    }
  }

  graph::Digraph::Builder builder;
  for (const RetweetTuple& tuple : split.train) {
    for (UserId f : tuple.retweeters) {
      (void)builder.AddEdge(static_cast<graph::NodeId>(tuple.author),
                            static_cast<graph::NodeId>(f));
    }
  }
  split.train_interactions =
      std::move(builder).Build(dataset.num_users(), /*dedupe=*/true);
  return split;
}

}  // namespace cold::data
