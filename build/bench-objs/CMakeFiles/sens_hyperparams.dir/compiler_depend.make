# Empty compiler generated dependencies file for sens_hyperparams.
# This may be replaced when dependencies are built.
