// Wall-clock timing helper for the training/prediction time experiments.
#pragma once

#include <chrono>

namespace cold {

/// \brief Simple monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Adds the enclosing scope's wall time into an accumulator on
/// destruction — the phase-accounting pattern used by the GAS engine:
///
///   double gather_seconds = 0.0;
///   { ScopedTimer timer(gather_seconds); ... }  // += elapsed at }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& total) : total_(total) {}
  ~ScopedTimer() { total_ += watch_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& total_;
  Stopwatch watch_;
};

}  // namespace cold
