// Figure 5: community-level diffusion of one bursty topic — the topic's
// word cloud, the most engaged communities with their interest pies and
// per-community popularity timelines (psi), and the strongest zeta arcs.
#include <cmath>

#include "apps/diffusion_graph.h"
#include "common.h"
#include "util/math_util.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 5: community-level diffusion of a bursty topic");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  core::ColdEstimates estimates = bench::TrainCold(
      bench::BenchColdConfig(), dataset.posts, &dataset.interactions);

  // Pick the topic whose community-level popularity is the spikiest
  // (highest mean psi variance): the "Journey West"-style burst.
  int best_topic = 0;
  double best_spike = -1.0;
  for (int k = 0; k < estimates.K; ++k) {
    double spike = 0.0;
    for (int c = 0; c < estimates.C; ++c) {
      std::vector<double> series = estimates.PsiSeries(k, c);
      spike += Variance(series);
    }
    if (spike > best_spike) {
      best_spike = spike;
      best_topic = k;
    }
  }

  apps::TopicDiffusionSummary summary = apps::SummarizeTopicDiffusion(
      estimates, best_topic, /*num_communities=*/6, /*num_arcs=*/8,
      /*num_words=*/12);
  std::printf("%s",
              apps::RenderTopicDiffusion(summary, &dataset.vocabulary).c_str());
  std::printf(
      "\n(paper: the community most interested in the topic carries the\n"
      " strongest outgoing influence arcs; timelines spike around the same\n"
      " event inside interested communities)\n");
  return 0;
}
