file(REMOVE_RECURSE
  "CMakeFiles/cold_util.dir/logging.cc.o"
  "CMakeFiles/cold_util.dir/logging.cc.o.d"
  "CMakeFiles/cold_util.dir/math_util.cc.o"
  "CMakeFiles/cold_util.dir/math_util.cc.o.d"
  "CMakeFiles/cold_util.dir/rng.cc.o"
  "CMakeFiles/cold_util.dir/rng.cc.o.d"
  "CMakeFiles/cold_util.dir/status.cc.o"
  "CMakeFiles/cold_util.dir/status.cc.o.d"
  "CMakeFiles/cold_util.dir/thread_pool.cc.o"
  "CMakeFiles/cold_util.dir/thread_pool.cc.o.d"
  "libcold_util.a"
  "libcold_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
