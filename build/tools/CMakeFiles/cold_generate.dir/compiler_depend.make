# Empty compiler generated dependencies file for cold_generate.
# This may be replaced when dependencies are built.
