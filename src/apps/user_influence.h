// User-level influence maximization on COLD-estimated diffusion
// probabilities (§6.6: "COLD is complementary, and can be directly applied,
// to these works by providing accurate influence strength estimation").
//
// The diffusion graph is sparse: one weighted edge per follower link, with
// the activation probability given by the COLD predictor's Eq.-7 score for
// a topic-representative message. Independent Cascade then runs at user
// granularity, and seed sets can be chosen greedily (Kempe et al. 2003) or
// by structural baselines (degree, PageRank) for comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "core/predictor.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace cold::apps {

/// \brief Sparse user-level diffusion graph: per node, its out-edges with
/// activation probabilities.
struct UserDiffusionGraph {
  struct Arc {
    int target = 0;
    double probability = 0.0;
  };
  std::vector<std::vector<Arc>> adjacency;

  int num_users() const { return static_cast<int>(adjacency.size()); }
};

/// \brief Builds the user-level diffusion graph for a message: each
/// follower edge (i -> f) gets probability
/// min(1, gain * P(i, f, message)) from the COLD predictor.
///
/// `gain` calibrates the raw Eq.-7 scores to usable cascade probabilities
/// (they are per-exposure rates; a campaign message is seen repeatedly).
UserDiffusionGraph BuildUserDiffusionGraph(
    const core::ColdPredictor& predictor, const graph::Digraph& followers,
    std::span<const text::WordId> message, double gain = 5.0);

/// \brief One Independent Cascade simulation from `seeds`; returns the
/// number of activated users.
int SimulateUserCascadeOnce(const UserDiffusionGraph& graph,
                            const std::vector<int>& seeds,
                            cold::RandomSampler* sampler);

/// \brief Monte-Carlo expected spread.
double ExpectedUserSpread(const UserDiffusionGraph& graph,
                          const std::vector<int>& seeds, int trials,
                          cold::RandomSampler* sampler);

/// \brief Greedy seed selection with lazy-forward style candidate pruning:
/// only the `candidate_pool` highest-degree users are considered per round
/// (exact greedy over all users is quadratic in U).
std::vector<int> GreedyUserSeeds(const UserDiffusionGraph& graph, int budget,
                                 int trials, int candidate_pool,
                                 uint64_t seed);

/// \brief Top-k out-degree seed baseline.
std::vector<int> DegreeSeeds(const UserDiffusionGraph& graph, int budget);

}  // namespace cold::apps
