file(REMOVE_RECURSE
  "../bench/fig05_diffusion_graph"
  "../bench/fig05_diffusion_graph.pdb"
  "CMakeFiles/fig05_diffusion_graph.dir/fig05_diffusion_graph.cc.o"
  "CMakeFiles/fig05_diffusion_graph.dir/fig05_diffusion_graph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_diffusion_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
