# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/gibbs_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/exact_posterior_test[1]_include.cmake")
include("/root/repo/build/tests/user_influence_test[1]_include.cmake")
include("/root/repo/build/tests/alignment_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_property_test[1]_include.cmake")
