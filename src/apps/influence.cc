#include "apps/influence.h"

#include <algorithm>
#include <cmath>

namespace cold::apps {

DiffusionGraph BuildTopicDiffusionGraph(const core::EstimatesView& estimates,
                                        int topic, double max_edge_prob) {
  const int C = estimates.C;
  DiffusionGraph graph(static_cast<size_t>(C),
                       std::vector<double>(static_cast<size_t>(C), 0.0));
  double max_zeta = 0.0;
  for (int c = 0; c < C; ++c) {
    for (int c2 = 0; c2 < C; ++c2) {
      if (c == c2) continue;
      double z = estimates.Zeta(topic, c, c2);
      graph[static_cast<size_t>(c)][static_cast<size_t>(c2)] = z;
      max_zeta = std::max(max_zeta, z);
    }
  }
  if (max_edge_prob > 0.0 && max_zeta > 0.0) {
    double scale = max_edge_prob / max_zeta;
    for (auto& row : graph) {
      for (double& v : row) v = std::min(1.0, v * scale);
    }
  }
  return graph;
}

std::vector<CommunityInfluence> RankCommunitiesByInfluence(
    const core::EstimatesView& estimates, int topic, int trials,
    uint64_t seed) {
  DiffusionGraph graph =
      BuildTopicDiffusionGraph(estimates, topic, /*max_edge_prob=*/0.5);
  std::vector<double> degrees = SingleSeedInfluence(graph, trials, seed);
  std::vector<CommunityInfluence> ranked;
  ranked.reserve(degrees.size());
  for (size_t c = 0; c < degrees.size(); ++c) {
    ranked.push_back({static_cast<int>(c), degrees[c],
                      estimates.Theta(static_cast<int>(c), topic)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const CommunityInfluence& a, const CommunityInfluence& b) {
              return a.influence_degree > b.influence_degree;
            });
  return ranked;
}

std::vector<double> UserInfluenceDegrees(
    const core::ColdEstimates& estimates,
    const std::vector<CommunityInfluence>& community_influence) {
  std::vector<double> by_community(static_cast<size_t>(estimates.C), 0.0);
  for (const CommunityInfluence& ci : community_influence) {
    by_community[static_cast<size_t>(ci.community)] = ci.influence_degree;
  }
  std::vector<double> user_influence(static_cast<size_t>(estimates.U), 0.0);
  for (int i = 0; i < estimates.U; ++i) {
    double total = 0.0;
    for (int c = 0; c < estimates.C; ++c) {
      total += estimates.Pi(i, c) * by_community[static_cast<size_t>(c)];
    }
    user_influence[static_cast<size_t>(i)] = total;
  }
  return user_influence;
}

std::vector<std::pair<double, double>> PentagonCoordinates(
    const core::ColdEstimates& estimates,
    const std::vector<CommunityInfluence>& ranked, int num_anchors) {
  const int C = estimates.C;
  num_anchors = std::max(2, num_anchors);
  int named = std::min(num_anchors - 1, static_cast<int>(ranked.size()));

  // Anchor polygon: unit circle, one vertex per top community, the last for
  // "other communities".
  std::vector<std::pair<double, double>> anchors;
  for (int a = 0; a < num_anchors; ++a) {
    double angle = 2.0 * M_PI * a / num_anchors + M_PI / 2.0;
    anchors.emplace_back(std::cos(angle), std::sin(angle));
  }
  // Community -> anchor index (top communities get their own vertex, the
  // rest share the final anchor).
  std::vector<int> anchor_of(static_cast<size_t>(C), num_anchors - 1);
  for (int a = 0; a < named; ++a) {
    anchor_of[static_cast<size_t>(ranked[static_cast<size_t>(a)].community)] =
        a;
  }

  std::vector<std::pair<double, double>> coords(
      static_cast<size_t>(estimates.U));
  for (int i = 0; i < estimates.U; ++i) {
    double x = 0.0, y = 0.0;
    for (int c = 0; c < C; ++c) {
      const auto& anchor =
          anchors[static_cast<size_t>(anchor_of[static_cast<size_t>(c)])];
      x += estimates.Pi(i, c) * anchor.first;
      y += estimates.Pi(i, c) * anchor.second;
    }
    coords[static_cast<size_t>(i)] = {x, y};
  }
  return coords;
}

}  // namespace cold::apps
