#include "util/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace cold {

namespace {

/// Byte-at-a-time table for the reflected IEEE polynomial 0xEDB88320,
/// built once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

cold::Status ErrnoStatus(const std::string& op, const std::string& path) {
  return cold::Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

/// write(2) until done, retrying on EINTR.
cold::Status WriteAllFd(int fd, const char* data, size_t size,
                        const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

cold::Status FsyncPath(const std::string& path, int open_flags) {
  int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return ErrnoStatus("open for fsync", path);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  cold::Status st =
      rc == 0 ? cold::Status::OK() : ErrnoStatus("fsync", path);
  ::close(fd);
  return st;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  const auto& table = Crc32Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

cold::Status AtomicWriteFile(const std::string& path,
                             std::string_view contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  cold::Status st = WriteAllFd(fd, contents.data(), contents.size(), tmp);
  if (st.ok()) {
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) st = ErrnoStatus("fsync", tmp);
  }
  if (::close(fd) != 0 && st.ok()) st = ErrnoStatus("close", tmp);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = ErrnoStatus("rename", tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return st;
  }

  // Make the rename durable: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                          : slash == 0               ? std::string("/")
                                       : path.substr(0, slash);
  return FsyncPath(dir, O_RDONLY | O_DIRECTORY);
}

cold::Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      cold::Status st = ErrnoStatus("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace cold
