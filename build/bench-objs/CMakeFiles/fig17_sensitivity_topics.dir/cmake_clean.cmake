file(REMOVE_RECURSE
  "../bench/fig17_sensitivity_topics"
  "../bench/fig17_sensitivity_topics.pdb"
  "CMakeFiles/fig17_sensitivity_topics.dir/fig17_sensitivity_topics.cc.o"
  "CMakeFiles/fig17_sensitivity_topics.dir/fig17_sensitivity_topics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_sensitivity_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
