#include "core/cold_state.h"

#include <sstream>

namespace cold::core {

ColdState::ColdState(int num_users, int num_communities, int num_topics,
                     int num_time_slices, int vocab_size, int num_posts,
                     int64_t num_links)
    : num_users_(num_users),
      num_communities_(num_communities),
      num_topics_(num_topics),
      num_time_slices_(num_time_slices),
      vocab_size_(vocab_size) {
  post_community.assign(static_cast<size_t>(num_posts), -1);
  post_topic.assign(static_cast<size_t>(num_posts), -1);
  link_src_community.assign(static_cast<size_t>(num_links), -1);
  link_dst_community.assign(static_cast<size_t>(num_links), -1);

  n_ic_.assign(static_cast<size_t>(num_users) * num_communities_, 0);
  n_i_.assign(static_cast<size_t>(num_users), 0);
  n_ck_.assign(static_cast<size_t>(num_communities_) * num_topics_, 0);
  n_c_.assign(static_cast<size_t>(num_communities_), 0);
  n_ckt_.assign(static_cast<size_t>(num_communities_) * num_topics_ *
                    num_time_slices_,
                0);
  n_kv_.assign(static_cast<size_t>(num_topics_) * vocab_size_, 0);
  n_k_.assign(static_cast<size_t>(num_topics_), 0);
  n_cc_.assign(static_cast<size_t>(num_communities_) * num_communities_, 0);
}

cold::Status ColdState::CheckInvariants(const text::PostStore& posts,
                                        const graph::Digraph* links,
                                        bool use_network) const {
  ColdState fresh(num_users_, num_communities_, num_topics_, num_time_slices_,
                  vocab_size_, posts.num_posts(),
                  links != nullptr ? links->num_edges() : 0);
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    int c = post_community[static_cast<size_t>(d)];
    int k = post_topic[static_cast<size_t>(d)];
    if (c < 0 || c >= num_communities_ || k < 0 || k >= num_topics_) {
      return cold::Status::Internal("post assignment out of range");
    }
    fresh.n_ic(posts.author(d), c)++;
    fresh.n_i(posts.author(d))++;
    fresh.n_ck(c, k)++;
    fresh.n_c(c)++;
    fresh.n_ckt(c, k, posts.time(d))++;
    for (text::WordId w : posts.words(d)) fresh.n_kv(k, w)++;
    fresh.n_k(k) += posts.length(d);
  }
  if (use_network && links != nullptr) {
    for (graph::EdgeId e = 0; e < links->num_edges(); ++e) {
      int s = link_src_community[static_cast<size_t>(e)];
      int s2 = link_dst_community[static_cast<size_t>(e)];
      if (s < 0 || s >= num_communities_ || s2 < 0 || s2 >= num_communities_) {
        return cold::Status::Internal("link assignment out of range");
      }
      fresh.n_ic(links->edge(e).src, s)++;
      fresh.n_i(links->edge(e).src)++;
      fresh.n_ic(links->edge(e).dst, s2)++;
      fresh.n_i(links->edge(e).dst)++;
      fresh.n_cc(s, s2)++;
    }
  }

  auto compare = [](const std::vector<int32_t>& a,
                    const std::vector<int32_t>& b,
                    const char* name) -> cold::Status {
    if (a.size() != b.size()) {
      return cold::Status::Internal(std::string(name) + ": size mismatch");
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) {
        std::ostringstream oss;
        oss << name << "[" << i << "]: " << a[i] << " != " << b[i];
        return cold::Status::Internal(oss.str());
      }
    }
    return cold::Status::OK();
  };
  COLD_RETURN_NOT_OK(compare(n_ic_, fresh.n_ic_, "n_ic"));
  COLD_RETURN_NOT_OK(compare(n_i_, fresh.n_i_, "n_i"));
  COLD_RETURN_NOT_OK(compare(n_ck_, fresh.n_ck_, "n_ck"));
  COLD_RETURN_NOT_OK(compare(n_c_, fresh.n_c_, "n_c"));
  COLD_RETURN_NOT_OK(compare(n_ckt_, fresh.n_ckt_, "n_ckt"));
  COLD_RETURN_NOT_OK(compare(n_kv_, fresh.n_kv_, "n_kv"));
  COLD_RETURN_NOT_OK(compare(n_k_, fresh.n_k_, "n_k"));
  COLD_RETURN_NOT_OK(compare(n_cc_, fresh.n_cc_, "n_cc"));
  return cold::Status::OK();
}

}  // namespace cold::core
