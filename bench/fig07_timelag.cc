// Figure 7: time lag between highly- and medium-interested communities.
// For each topic, peak-aligned median popularity curves are computed for
// the top-interest communities and the medium-interest ones (§5.3
// thresholds). Paper shape: the highly-interested curve rises earlier and
// stays high longer.
//
// Two views are reported:
//   (a) the analysis run on the planted ground-truth model — this is the
//       figure's phenomenon, measured by the same §5.3 machinery;
//   (b) the same analysis on the COLD estimates extracted at bench scale.
// View (b) needs dense psi estimates: a medium-interest community must
// still hold O(100+) posts per topic. The paper's crawl has 11M posts;
// at laptop scale the per-(topic, community) counts thin out and the
// extracted lag degrades toward noise (raise COLD_BENCH_SCALE to close the
// gap). EXPERIMENTS.md discusses this limitation.
#include <limits>

#include "apps/patterns.h"
#include "common.h"
#include "util/math_util.h"

namespace {

using namespace cold;

struct LagSummary {
  double mean_peak_lag = 0.0;
  double mean_mass_lag = 0.0;
  int example_topic = 0;
  apps::TimeLagResult example;
};

LagSummary Analyze(const core::ColdEstimates& estimates, int num_high,
                   double min_interest) {
  LagSummary summary;
  int example_lag = std::numeric_limits<int>::min();
  for (int k = 0; k < estimates.K; ++k) {
    apps::TimeLagResult lag =
        apps::MeasureTimeLag(estimates, k, num_high, min_interest);
    summary.mean_peak_lag += lag.lag;
    summary.mean_mass_lag += lag.mass_lag;
    // Showcase the largest believable lag (extreme values come from
    // degenerate flat medium curves, not diffusion).
    bool candidate_ok = lag.lag >= 1 && lag.lag <= estimates.T / 3;
    bool current_ok = example_lag >= 1 && example_lag <= estimates.T / 3;
    if ((candidate_ok && (!current_ok || lag.lag > example_lag)) ||
        (!current_ok && lag.lag > example_lag)) {
      example_lag = lag.lag;
      summary.example_topic = k;
    }
  }
  summary.mean_peak_lag /= estimates.K;
  summary.mean_mass_lag /= estimates.K;
  summary.example = apps::MeasureTimeLag(estimates, summary.example_topic,
                                         num_high, min_interest);
  return summary;
}

void Report(const char* label, const LagSummary& summary, int num_topics) {
  std::printf("--- %s ---\n", label);
  std::printf("example topic %d (peak-aligned median curves):\n",
              summary.example_topic);
  bench::PrintSeries("high-interest", summary.example.high_curve, "%.3f");
  bench::PrintSeries("medium-interest", summary.example.medium_curve, "%.3f");
  std::printf("example peak times: high=%d medium=%d (lag=%d slices)\n",
              summary.example.high_peak_time, summary.example.medium_peak_time,
              summary.example.lag);
  std::printf("post-peak half-life: high=%d medium=%d slices\n",
              summary.example.high_half_life, summary.example.medium_half_life);
  std::printf("mean peak lag over %d topics: %+.2f slices\n", num_topics,
              summary.mean_peak_lag);
  std::printf("mean center-of-mass lag:      %+.2f slices\n\n",
              summary.mean_mass_lag);
}

core::ColdEstimates TruthAsEstimates(const data::SocialDataset& dataset,
                                     const data::SyntheticConfig& config) {
  core::ColdEstimates est;
  est.U = 1;
  est.C = config.num_communities;
  est.K = config.num_topics;
  est.T = config.num_time_slices;
  est.V = 1;
  est.pi = {1.0};
  est.phi.assign(static_cast<size_t>(est.K), 1.0);
  est.eta.assign(static_cast<size_t>(est.C) * est.C, 0.1);
  est.theta.resize(static_cast<size_t>(est.C) * est.K);
  for (int c = 0; c < est.C; ++c) {
    for (int k = 0; k < est.K; ++k) {
      est.theta[static_cast<size_t>(c) * est.K + k] =
          dataset.truth.theta[static_cast<size_t>(c)][static_cast<size_t>(k)];
    }
  }
  est.psi.resize(static_cast<size_t>(est.K) * est.C * est.T);
  for (int k = 0; k < est.K; ++k) {
    for (int c = 0; c < est.C; ++c) {
      for (int t = 0; t < est.T; ++t) {
        est.psi[(static_cast<size_t>(k) * est.C + c) * est.T + t] =
            dataset.truth
                .psi[static_cast<size_t>(k)][static_cast<size_t>(c)]
                    [static_cast<size_t>(t)];
      }
    }
  }
  return est;
}

}  // namespace

int main() {
  bench::QuietLogs();
  bench::PrintHeader("Fig 7: popularity time lag between community classes");

  // Moderate K x T so per-(topic, community) post counts stay dense.
  data::SyntheticConfig data_config = bench::BenchDataConfig();
  data_config.num_users *= 3;
  data_config.num_topics = 8;
  data_config.num_time_slices = 16;
  data_config.lag_slices = 4.0;
  data::SocialDataset dataset = bench::GenerateBenchData(data_config);

  const int num_high = 2;
  const double min_interest = 8e-3;

  LagSummary truth_summary = Analyze(TruthAsEstimates(dataset, data_config),
                                     num_high, min_interest);
  Report("planted model (the phenomenon, via the §5.3 machinery)",
         truth_summary, data_config.num_topics);

  core::ColdEstimates estimates =
      bench::TrainCold(bench::BenchColdConfig(8, 8, 120), dataset.posts,
                       &dataset.interactions);
  LagSummary extracted_summary = Analyze(estimates, num_high, min_interest);
  Report("COLD estimates at bench scale (see header caveat)",
         extracted_summary, data_config.num_topics);

  std::printf(
      "(paper shape: positive lag — topics reach highly-interested\n"
      " communities first and persist there longer)\n");
  return 0;
}
