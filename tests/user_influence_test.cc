#include <gtest/gtest.h>

#include <numeric>

#include "apps/user_influence.h"
#include "graph/pagerank.h"

namespace cold {
namespace {

// ---------------------------------------------------------------- PageRank --

graph::Digraph StarGraph() {
  // Everyone points at node 0.
  graph::Digraph::Builder builder;
  for (int i = 1; i < 6; ++i) {
    EXPECT_TRUE(builder.AddEdge(i, 0).ok());
  }
  return std::move(builder).Build(6);
}

TEST(PageRankTest, SumsToOne) {
  auto rank = graph::PageRank(StarGraph());
  EXPECT_NEAR(std::accumulate(rank.begin(), rank.end(), 0.0), 1.0, 1e-9);
}

TEST(PageRankTest, HubDominatesStar) {
  auto rank = graph::PageRank(StarGraph());
  for (size_t i = 1; i < rank.size(); ++i) {
    EXPECT_GT(rank[0], rank[i]);
  }
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  graph::Digraph::Builder builder;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(builder.AddEdge(i, (i + 1) % 5).ok());
  }
  auto rank = graph::PageRank(std::move(builder).Build());
  for (double r : rank) EXPECT_NEAR(r, 0.2, 1e-9);
}

TEST(PageRankTest, EmptyGraphGivesEmptyOrUniform) {
  graph::Digraph::Builder builder;
  graph::Digraph isolated = std::move(builder).Build(3);
  auto rank = graph::PageRank(isolated);
  ASSERT_EQ(rank.size(), 3u);
  for (double r : rank) EXPECT_NEAR(r, 1.0 / 3.0, 1e-9);
}

TEST(PageRankTest, DanglingMassRedistributed) {
  // 0 -> 1, node 1 dangling: mass must not leak.
  graph::Digraph::Builder builder;
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto rank = graph::PageRank(std::move(builder).Build());
  EXPECT_NEAR(rank[0] + rank[1], 1.0, 1e-9);
  EXPECT_GT(rank[1], rank[0]);
}

// --------------------------------------------------- User diffusion graph --

apps::UserDiffusionGraph LineUserGraph(double p) {
  apps::UserDiffusionGraph graph;
  graph.adjacency.resize(4);
  graph.adjacency[0].push_back({1, p});
  graph.adjacency[1].push_back({2, p});
  graph.adjacency[2].push_back({3, p});
  return graph;
}

TEST(UserCascadeTest, DeterministicLine) {
  RandomSampler sampler(1);
  EXPECT_EQ(apps::SimulateUserCascadeOnce(LineUserGraph(1.0), {0}, &sampler),
            4);
  EXPECT_EQ(apps::SimulateUserCascadeOnce(LineUserGraph(0.0), {0}, &sampler),
            1);
}

TEST(UserCascadeTest, ExpectedSpreadMatchesAnalytic) {
  RandomSampler sampler(2);
  // 1 + p + p^2 + p^3 at p = 0.5 => 1.875.
  double spread =
      apps::ExpectedUserSpread(LineUserGraph(0.5), {0}, 20000, &sampler);
  EXPECT_NEAR(spread, 1.875, 0.05);
}

TEST(UserCascadeTest, DegreeSeedsPickHighestOutDegree) {
  apps::UserDiffusionGraph graph;
  graph.adjacency.resize(4);
  graph.adjacency[2] = {{0, 0.1}, {1, 0.1}, {3, 0.1}};
  graph.adjacency[1] = {{0, 0.1}};
  auto seeds = apps::DegreeSeeds(graph, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 2);
  EXPECT_EQ(seeds[1], 1);
}

TEST(UserCascadeTest, GreedyBeatsRandomOnTwoComponents) {
  // Two disjoint strong chains; greedy with budget 2 should seed both heads.
  apps::UserDiffusionGraph graph;
  graph.adjacency.resize(6);
  graph.adjacency[0] = {{1, 1.0}};
  graph.adjacency[1] = {{2, 1.0}};
  graph.adjacency[3] = {{4, 1.0}};
  graph.adjacency[4] = {{5, 1.0}};
  auto seeds = apps::GreedyUserSeeds(graph, 2, /*trials=*/100,
                                     /*candidate_pool=*/6, 7);
  ASSERT_EQ(seeds.size(), 2u);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds[0], 0);
  EXPECT_EQ(seeds[1], 3);
}

TEST(UserCascadeTest, SeedsNotDoubleCounted) {
  RandomSampler sampler(5);
  EXPECT_EQ(apps::SimulateUserCascadeOnce(LineUserGraph(0.0), {0, 0, 1},
                                          &sampler),
            2);
}

}  // namespace
}  // namespace cold
