file(REMOVE_RECURSE
  "CMakeFiles/diffusion_explorer.dir/diffusion_explorer.cpp.o"
  "CMakeFiles/diffusion_explorer.dir/diffusion_explorer.cpp.o.d"
  "diffusion_explorer"
  "diffusion_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
