// Small numerical helpers shared by the samplers and evaluators.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace cold {

/// \brief log(sum_i exp(x_i)), numerically stable. Returns -inf for empty
/// input.
double LogSumExp(std::span<const double> x);

/// \brief Normalizes `x` in place to sum to 1. Degenerate input — an
/// all-zero, negative-sum or non-finite (NaN/inf entries) vector, as can
/// arise from denormal weights for a post by an unseen-community author —
/// falls back to the uniform distribution instead of leaving garbage.
/// Returns the pre-normalization sum.
double NormalizeInPlace(std::span<double> x);

/// \brief Mean of `x`; 0 for empty input.
double Mean(std::span<const double> x);

/// \brief Population variance of `x`; 0 for fewer than 2 elements.
double Variance(std::span<const double> x);

/// \brief Median of `x` (copies and partially sorts); 0 for empty input.
double Median(std::span<const double> x);

/// \brief Shannon entropy (nats) of a probability vector. Zero entries are
/// skipped.
double Entropy(std::span<const double> p);

/// \brief KL divergence KL(p || q) in nats. Entries where p == 0 contribute
/// zero; q entries are floored at `eps` to keep the result finite.
double KlDivergence(std::span<const double> p, std::span<const double> q,
                    double eps = 1e-12);

/// \brief L1 distance between two equal-length vectors.
double L1Distance(std::span<const double> a, std::span<const double> b);

/// \brief Cosine similarity of two equal-length vectors; 0 if either has
/// zero norm.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

/// \brief Indices of the `k` largest values of `x` (ties broken by lower
/// index), in descending value order. k is clamped to x.size().
std::vector<int> TopKIndices(std::span<const double> x, int k);

/// \brief Thread-safe log-gamma. std::lgamma's C-library implementation
/// writes the global `signgam`, a data race under concurrent callers (the
/// parallel sampler's workers); this wrapper uses the reentrant variant
/// where available.
double LGamma(double x);

/// \brief log of the Beta function, log B(a, b).
inline double LogBeta(double a, double b) {
  return LGamma(a) + LGamma(b) - LGamma(a + b);
}

/// Counts at or above this threshold take the lgamma-pair path in
/// LogAscendingFactorial; below it a plain log loop is cheaper (lgamma
/// costs a few std::log calls), so short posts never touch lgamma.
inline constexpr int kLogAscFactorialSmallCount = 8;

/// \brief Log ascending factorial: sum_{q=0}^{cnt-1} log(base + q)
///        = lgamma(base + cnt) - lgamma(base).
///
/// The identity collapses the per-token loops of the collapsed Gibbs
/// topic kernel (Eq. 3's Dirichlet-multinomial terms) into two lgamma
/// calls. Small counts (< kLogAscFactorialSmallCount) keep the exact
/// loop form. Returns 0 for cnt <= 0. Requires base > 0.
inline double LogAscendingFactorial(double base, int cnt) {
  if (cnt <= 0) return 0.0;
  if (cnt < kLogAscFactorialSmallCount) {
    double acc = 0.0;
    for (int q = 0; q < cnt; ++q) acc += std::log(base + q);
    return acc;
  }
  return LGamma(base + cnt) - LGamma(base);
}

/// \brief LogAscendingFactorial with the caller supplying a precomputed
/// lgamma(base), so hot loops that cache lgamma values per counter pay
/// only one live lgamma per evaluation on the large-count path.
inline double LogAscendingFactorial(double base, int cnt,
                                    double lgamma_base) {
  if (cnt <= 0) return 0.0;
  if (cnt < kLogAscFactorialSmallCount) {
    double acc = 0.0;
    for (int q = 0; q < cnt; ++q) acc += std::log(base + q);
    return acc;
  }
  return LGamma(base + cnt) - lgamma_base;
}

/// \brief Digamma function (Euler's psi), via asymptotic expansion with
/// recurrence shift; accurate to ~1e-12 for x > 0.
double Digamma(double x);

}  // namespace cold
