file(REMOVE_RECURSE
  "../bench/fig07_timelag"
  "../bench/fig07_timelag.pdb"
  "CMakeFiles/fig07_timelag.dir/fig07_timelag.cc.o"
  "CMakeFiles/fig07_timelag.dir/fig07_timelag.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_timelag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
