// Hostile-socket tests for util/net_io.h over AF_UNIX socketpairs: tiny
// send buffers forcing partial transfers, EINTR storms landing
// mid-syscall, peers closing mid-frame, and the poll(2)-bounded deadline
// variants expiring (or not) on schedule. These are the primitives both
// the serving layer and the distributed trainer stand on; every loop here
// must be byte-exact under abuse.
#include "util/net_io.h"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace cold {
namespace {

/// RAII socketpair; closing one end mid-test is part of the job.
struct Pair {
  int a = -1;
  int b = -1;

  Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~Pair() {
    CloseA();
    CloseB();
  }

  void CloseA() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseB() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  int A() const { return fds_[0]; }
  int B() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

std::string PatternedBytes(size_t size) {
  std::string data(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<char>((i * 131 + 17) & 0xFF);
  }
  return data;
}

/// Shrinks the kernel buffers so a multi-hundred-KB transfer MUST go
/// through many partial sends.
void ShrinkBuffers(int fd) {
  int tiny = 1;  // the kernel clamps this up to its minimum
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
}

TEST(NetIoTest, RoundTripExactBytes) {
  Pair pair;
  const std::string sent = PatternedBytes(4096);
  std::thread writer(
      [&] { EXPECT_TRUE(WriteFull(pair.A(), sent.data(), sent.size()).ok()); });
  std::string got(sent.size(), '\0');
  EXPECT_TRUE(ReadFull(pair.B(), got.data(), got.size()).ok());
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(NetIoTest, PartialWritesWithTinySendBuffer) {
  Pair pair;
  ShrinkBuffers(pair.A());
  ShrinkBuffers(pair.B());
  const std::string sent = PatternedBytes(512 * 1024);
  std::string got(sent.size(), '\0');
  std::thread reader([&] {
    // Drain in small sips so the writer keeps hitting a full buffer.
    size_t off = 0;
    while (off < got.size()) {
      size_t chunk = std::min<size_t>(1024, got.size() - off);
      ASSERT_TRUE(ReadFull(pair.B(), got.data() + off, chunk).ok());
      off += chunk;
    }
  });
  EXPECT_TRUE(WriteFull(pair.A(), sent.data(), sent.size()).ok());
  reader.join();
  EXPECT_EQ(got, sent);
}

// An empty handler: delivery alone interrupts blocking syscalls (the
// handler is installed WITHOUT SA_RESTART so EINTR actually surfaces).
void SigusrHandler(int) {}

TEST(NetIoTest, SurvivesEintrStorm) {
  struct sigaction sa {};
  sa.sa_handler = SigusrHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: we WANT EINTR
  struct sigaction old {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  Pair pair;
  ShrinkBuffers(pair.A());
  ShrinkBuffers(pair.B());
  const std::string sent = PatternedBytes(256 * 1024);
  std::string got(sent.size(), '\0');

  std::atomic<bool> storm{true};
  pthread_t writer_thread{};
  std::atomic<bool> writer_ready{false};
  std::thread writer([&] {
    writer_thread = pthread_self();
    writer_ready.store(true);
    EXPECT_TRUE(WriteFull(pair.A(), sent.data(), sent.size()).ok());
  });
  while (!writer_ready.load()) std::this_thread::yield();
  std::thread stormer([&] {
    while (storm.load()) {
      pthread_kill(writer_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  EXPECT_TRUE(ReadFull(pair.B(), got.data(), got.size()).ok());
  writer.join();
  storm.store(false);
  stormer.join();
  sigaction(SIGUSR1, &old, nullptr);
  EXPECT_EQ(got, sent);
}

TEST(NetIoTest, PeerCloseAtByteZeroIsConnectionClosed) {
  Pair pair;
  pair.CloseA();
  char buf[16];
  cold::Status st = ReadFull(pair.B(), buf, sizeof(buf));
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("connection closed"), std::string::npos);
  EXPECT_EQ(st.message().find("mid-transfer"), std::string::npos);
}

TEST(NetIoTest, PeerCloseMidReadReportsPartialTransfer) {
  Pair pair;
  const std::string partial = PatternedBytes(100);
  ASSERT_TRUE(WriteFull(pair.A(), partial.data(), partial.size()).ok());
  pair.CloseA();
  std::string buf(256, '\0');
  cold::Status st = ReadFull(pair.B(), buf.data(), buf.size());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("mid-transfer"), std::string::npos);
  EXPECT_NE(st.message().find("100 of 256"), std::string::npos);
}

TEST(NetIoTest, WriteToClosedPeerIsIOErrorNotSigpipe) {
  Pair pair;
  pair.CloseB();
  const std::string data = PatternedBytes(1024);
  // Without MSG_NOSIGNAL this would kill the process with SIGPIPE.
  cold::Status st = WriteFull(pair.A(), data.data(), data.size());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(NetIoTest, RecvTimeoutSurfacesAsDeadlineExceeded) {
  Pair pair;
  timeval tv{};
  tv.tv_usec = 50 * 1000;  // 50ms SO_RCVTIMEO
  ASSERT_EQ(::setsockopt(pair.B(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)),
            0);
  char buf[16];
  cold::Status st = ReadFull(pair.B(), buf, sizeof(buf));
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(NetIoTest, ReadDeadlineExpiresOnSilence) {
  Pair pair;
  char buf[16];
  const auto start = std::chrono::steady_clock::now();
  cold::Status st = ReadFullDeadline(pair.B(), buf, sizeof(buf), 100);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, 90);
  EXPECT_LT(elapsed, 5000);
}

TEST(NetIoTest, ReadDeadlineExpiresMidTransfer) {
  Pair pair;
  const std::string partial = PatternedBytes(64);
  ASSERT_TRUE(WriteFull(pair.A(), partial.data(), partial.size()).ok());
  std::string buf(256, '\0');
  // 64 bytes arrive instantly, then silence: the WHOLE-transfer budget
  // must still expire.
  cold::Status st = ReadFullDeadline(pair.B(), buf.data(), buf.size(), 100);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("64 of 256"), std::string::npos);
}

TEST(NetIoTest, ReadDeadlineDeliversDataArrivingInTime) {
  Pair pair;
  const std::string sent = PatternedBytes(1024);
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(WriteFull(pair.A(), sent.data(), sent.size()).ok());
  });
  std::string got(sent.size(), '\0');
  EXPECT_TRUE(ReadFullDeadline(pair.B(), got.data(), got.size(), 5000).ok());
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(NetIoTest, WriteDeadlineExpiresAgainstStalledReader) {
  Pair pair;
  ShrinkBuffers(pair.A());
  ShrinkBuffers(pair.B());
  // Nobody reads B: the write must wedge on a full buffer, then expire.
  const std::string data = PatternedBytes(4 * 1024 * 1024);
  cold::Status st =
      WriteFullDeadline(pair.A(), data.data(), data.size(), 100);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(NetIoTest, WriteDeadlineCompletesWhenReaderDrains) {
  Pair pair;
  ShrinkBuffers(pair.A());
  ShrinkBuffers(pair.B());
  const std::string sent = PatternedBytes(256 * 1024);
  std::string got(sent.size(), '\0');
  std::thread reader(
      [&] { EXPECT_TRUE(ReadFull(pair.B(), got.data(), got.size()).ok()); });
  EXPECT_TRUE(
      WriteFullDeadline(pair.A(), sent.data(), sent.size(), 30000).ok());
  reader.join();
  EXPECT_EQ(got, sent);
}

TEST(NetIoTest, NegativeTimeoutMeansBlockForever) {
  Pair pair;
  const std::string sent = PatternedBytes(2048);
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(
        WriteFullDeadline(pair.A(), sent.data(), sent.size(), -1).ok());
  });
  std::string got(sent.size(), '\0');
  EXPECT_TRUE(ReadFullDeadline(pair.B(), got.data(), got.size(), -1).ok());
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(NetIoTest, DeadlineVariantsSeePeerClose) {
  Pair pair;
  const std::string partial = PatternedBytes(32);
  ASSERT_TRUE(WriteFull(pair.A(), partial.data(), partial.size()).ok());
  pair.CloseA();
  std::string buf(64, '\0');
  cold::Status st = ReadFullDeadline(pair.B(), buf.data(), buf.size(), 1000);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("mid-transfer"), std::string::npos);
}

}  // namespace
}  // namespace cold
