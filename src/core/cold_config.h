// Hyper-parameters of the COLD model (§3, §6.5).
#pragma once

#include <cstdint>

#include "util/status.h"

namespace cold::core {

/// \brief How the link community indicators (s, s') are drawn in Eq. (2).
enum class LinkSampling {
  /// Joint C x C table when C <= 48, else alternating conditionals.
  kAuto,
  /// Exact joint draw from the C x C table (O(C^2) per link).
  kJoint,
  /// Gibbs-within-Gibbs: s | s' then s' | s (O(C) each); same stationary
  /// distribution, cheaper for large C.
  kAlternating,
};

/// \brief How the per-post topic indicator z is drawn in Eq. (3).
enum class TopicSampling {
  /// Dense below 32 topics, sparse at or above (where the O(K) scan starts
  /// to dominate and the alias+MH machinery pays for itself).
  kAuto,
  /// Exact O(K * length) scan over every topic (the PR-4 lgamma-collapsed
  /// kernel).
  kDense,
  /// Alias-table proposal from the prior mass plus Metropolis-Hastings
  /// correction — amortized O(length) per draw, same stationary
  /// distribution (sparse_topic_kernel.h).
  kSparse,
};

/// \brief Full configuration for COLD training.
///
/// Defaults follow §6.5: rho = 50/C, alpha = 50/K, beta = epsilon = 0.01,
/// lambda_1 = 0.1 and lambda_0 = kappa * ln(n_neg / C^2).
struct ColdConfig {
  /// C: number of communities.
  int num_communities = 20;
  /// K: number of topics.
  int num_topics = 20;

  /// Dirichlet prior on user community memberships pi; <= 0 means 50/C.
  double rho = -1.0;
  /// Dirichlet prior on community topic mixtures theta; <= 0 means 50/K.
  double alpha = -1.0;
  /// Dirichlet prior on topic word distributions phi.
  double beta = 0.01;
  /// Dirichlet prior on temporal distributions psi.
  double epsilon = 0.01;
  /// Beta prior parts for eta; lambda_0 is derived from the negative-link
  /// count (§3.3): lambda_0 = kappa * ln(n_neg / C^2).
  double lambda1 = 0.1;
  double kappa = 1.0;

  /// Gibbs schedule: total sweeps, burn-in sweeps before estimates are
  /// accumulated, and the lag between accumulated samples.
  int iterations = 100;
  int burn_in = 50;
  int sample_lag = 5;

  uint64_t seed = 42;

  /// When false this is the COLD-NoLink ablation (§6.1 baseline 4): the
  /// network component is removed and memberships are learned from posts
  /// alone.
  bool use_network = true;

  /// |TopComm(i)| for the diffusion predictor (§5.2; the paper uses 5).
  int top_communities = 5;

  /// V: vocabulary size. 0 (the default) derives it as max-word-id + 1
  /// over the training posts — which silently under-sizes n_kv / phi when
  /// a held-out split contains higher word ids than the train split, so
  /// callers holding the dataset-wide Vocabulary should pass its size()
  /// here. Training fails with InvalidArgument if a post contains a word
  /// id >= an explicit vocab_size.
  int vocab_size = 0;

  LinkSampling link_sampling = LinkSampling::kAuto;

  TopicSampling topic_sampling = TopicSampling::kAuto;

  /// Metropolis-Hastings proposals per topic draw on the sparse path.
  /// Exactness holds for any value >= 1; more steps mix faster per sweep
  /// at proportionally higher cost.
  int sparse_mh_steps = 2;

  /// Count changes a community absorbs before its alias rows are marked
  /// stale and lazily rebuilt; <= 0 derives max(64, 4K). Affects proposal
  /// quality only, never correctness (the MH step is exact under any
  /// staleness).
  int sparse_rebuild_budget = 0;

  /// Fully rebuild the incrementally-refreshed derived log caches every N
  /// sweeps as drift insurance (each entry is also recomputed exactly on
  /// every touch, so the rebuild is bit-neutral when no drift exists);
  /// <= 0 means every 256 sweeps, and the debug build additionally
  /// asserts the caches match an exact recompute each rebuild.
  int derived_rebuild_every = 0;

  /// Resolved sparse-path switch: explicit setting, or the kAuto K
  /// threshold.
  bool UseSparseTopicSampling() const {
    switch (topic_sampling) {
      case TopicSampling::kDense:
        return false;
      case TopicSampling::kSparse:
        return true;
      case TopicSampling::kAuto:
        return num_topics >= 32;
    }
    return false;
  }
  int ResolvedSparseRebuildBudget() const {
    if (sparse_rebuild_budget > 0) return sparse_rebuild_budget;
    return num_topics * 4 > 64 ? num_topics * 4 : 64;
  }
  int ResolvedDerivedRebuildEvery() const {
    return derived_rebuild_every > 0 ? derived_rebuild_every : 256;
  }

  /// When true (default), the eta point estimate divides the block's link
  /// count by its expected pair exposure S_c * S_c' (S_c = sum_i pi_ic)
  /// instead of by the count itself, so community size does not confound
  /// link density. Appendix A's literal formula
  /// (n_cc' + l1) / (n_cc' + l0 + l1) is restored by setting this false.
  /// Sampling (Eq. 2) is unaffected either way.
  bool exposure_normalized_eta = true;

  /// Compute the training log-likelihood every N iterations (0 = never);
  /// used to monitor convergence as in §4.3.
  int log_likelihood_every = 0;

  double ResolvedRho() const { return rho > 0 ? rho : 50.0 / num_communities; }
  double ResolvedAlpha() const { return alpha > 0 ? alpha : 50.0 / num_topics; }

  /// Validates ranges; returns kInvalidArgument describing the first
  /// offending field.
  cold::Status Validate() const;
};

}  // namespace cold::core
