// Engine-mode ablation: GraphLab offers synchronous (barriered GAS
// supersteps) and asynchronous (barrier-free, dynamically scheduled)
// execution. COLD's sampler tolerates both (atomic counters, approximate
// Gibbs). This bench compares per-sweep cost, simulated communication, and
// fit quality between the modes.
#include "common.h"
#include "core/parallel_sampler.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Ablation: sync supersteps vs async sweeps");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  const int sweeps = 40;

  std::printf("%-8s %14s %18s %14s\n", "mode", "seconds", "comm (MB total)",
              "perplexity");
  for (auto mode :
       {engine::ExecutionMode::kSync, engine::ExecutionMode::kAsync}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, sweeps);
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = 4;
    options.execution = mode;
    core::ParallelColdTrainer trainer(config, dataset.posts,
                                      &dataset.interactions, options);
    if (!trainer.Init().ok() || !trainer.Train().ok()) return 1;
    core::ColdPredictor predictor(trainer.Estimates());
    std::printf("%-8s %14.3f %18.2f %14.1f\n",
                mode == engine::ExecutionMode::kSync ? "sync" : "async",
                trainer.engine_stats().total_seconds(),
                static_cast<double>(trainer.engine_stats().comm_bytes) / 1e6,
                predictor.Perplexity(dataset.posts));
  }
  std::printf(
      "\n(expected: equivalent fit; async skips the gather/apply pass and\n"
      " the per-superstep aggregator broadcast, trading bulk sync for\n"
      " fine-grained updates)\n");
  return 0;
}
