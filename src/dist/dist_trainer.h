// Multi-process distributed COLD training (DESIGN.md §12).
//
// Execution model: every node replicates the full model state and runs the
// gather/apply phases in full (exact recompute from replicated
// assignments); scatter is sharded by chunk ownership derived from the
// greedy vertex partition. Each superstep every node exports its sparse
// count deltas + assignment rewrites; the rank-0 coordinator collects them
// in rank order, merges (per-cell int32 sums commute, so the merged table
// equals the single-process superstep-boundary merge exactly), and
// broadcasts the global update, which every node — including rank 0 —
// applies identically. The replicas therefore stay in lockstep, a fixed
// seed is bit-identical across node counts, and any node's checkpoint IS
// the global model state.
//
// Failure model: fail-stop with active liveness detection (DESIGN.md
// §12). Every node runs a heartbeat thread that beats each peer every
// heartbeat_interval_ms; every receive is bounded by two deadlines — a
// liveness deadline (no frame at all, heartbeats included, for
// heartbeat_timeout_ms means the peer is dead or hung) and a progress
// deadline (no DATA frame for progress_timeout_ms means the stream lost a
// frame even though the peer is alive). A detected failure aborts this
// node, which broadcasts kAbort so survivors exit promptly with their
// checkpoints intact; the supervisor (tools/cold_train --nodes) then
// restarts the job from the newest checkpoint sweep common to all nodes,
// negotiated by the handshake, so the rerun continues bit-identically.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/cold_config.h"
#include "core/cold_estimates.h"
#include "core/parallel_sampler.h"
#include "dist/delta_codec.h"
#include "dist/transport.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/status.h"

namespace cold::dist {

struct DistConfig {
  /// Cluster size (1 degenerates to a plain local run, no peers needed).
  int num_nodes = 1;
  /// This process's rank; rank 0 coordinates.
  int node_rank = 0;
  core::ColdConfig cold;
  /// Per-node engine options. `num_nodes` is forced to 1 internally (each
  /// process is one real node; the simulated-cluster model does not apply)
  /// and `legacy_shared_counters` is rejected (sharded scatter needs the
  /// delta tables). Checkpoint byte-identity across cluster sizes holds
  /// when `threads_per_node` matches (per-worker RNG streams are part of
  /// the parallel checkpoint payload).
  engine::EngineOptions engine;
  /// Per-node checkpoint rotation (give every rank its own directory).
  core::CheckpointOptions checkpoint;
  /// Negotiate and load the newest checkpoint sweep common to all nodes.
  bool resume = false;
  /// Heartbeat cadence: every node beats every peer this often so silence
  /// is always meaningful.
  int heartbeat_interval_ms = 1000;
  /// Liveness deadline: a peer that delivers NO frame (heartbeats
  /// included) for this long is declared dead/hung and the job aborts.
  /// <= 0 disables the liveness layer entirely: no heartbeat thread and
  /// unbounded blocking receives (single-node runs need neither).
  int heartbeat_timeout_ms = 10000;
  /// Progress deadline: a DATA frame must arrive within this budget even
  /// while heartbeats keep flowing — a dropped delta on a live connection
  /// must not deadlock the superstep forever. <= 0 disables.
  int progress_timeout_ms = 120000;
};

struct DistStats {
  int supersteps_run = 0;
  /// Sweep the cluster resumed from (-1 = fresh start).
  int resumed_sweep = -1;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  /// Wall time blocked on peers (the recv side of every exchange).
  double barrier_wait_seconds = 0.0;
  /// Wall time across all supersteps (compute + exchange + apply).
  double superstep_seconds = 0.0;
  int64_t owned_chunks = 0;
  int64_t total_chunks = 0;
};

/// \brief One node of the distributed trainer. Construct with this node's
/// rank and transports to its peers, then Run() to completion.
class DistTrainer {
 public:
  DistTrainer(DistConfig config, const text::PostStore& posts,
              const graph::Digraph* links);
  ~DistTrainer();

  /// \brief Runs training to completion. For rank 0, `peers` holds one
  /// transport per worker (any order; the handshake sorts them by rank);
  /// for workers, exactly one transport to the coordinator; for
  /// num_nodes == 1, empty.
  cold::Status Run(std::vector<std::unique_ptr<Transport>> peers);

  /// Observer invoked after every applied superstep (1-based sweep).
  void SetSuperstepCallback(std::function<void(int)> callback) {
    superstep_callback_ = std::move(callback);
  }

  core::ColdEstimates Estimates() const;
  core::ColdState StateSnapshot() const;
  cold::Status SerializeState(std::string* out) const;

  const DistStats& stats() const { return stats_; }

  /// \brief Test/bench helper: runs `nodes` (ranks 0..N-1 over the same
  /// dataset) as one in-process cluster over loopback transports, one
  /// thread per node. Returns the first non-OK status. Must be called
  /// while no thread pools are live in the process.
  static cold::Status RunLocalCluster(const std::vector<DistTrainer*>& nodes);

 private:
  cold::Status Validate(size_t num_peers) const;

  /// Lists the sweeps of every locally readable, fully verified checkpoint
  /// matching this run's flavor and data fingerprint.
  std::vector<int32_t> ValidatedSweeps() const;

  cold::Status Handshake(std::vector<std::unique_ptr<Transport>>* peers,
                         int32_t* resume_sweep);
  cold::Status LoadResumeSweep(int32_t resume_sweep);
  cold::Status ExchangeUpdates(
      const std::vector<std::unique_ptr<Transport>>& peers, uint64_t sweep,
      const core::SuperstepUpdate& local, core::SuperstepUpdate* global);
  cold::Status MaybeCheckpoint(int sweep) const;
  cold::Status TrainLoop(
      const std::vector<std::unique_ptr<Transport>>& peers);

  /// Effective per-send deadline for data/handshake frames (-1 when the
  /// liveness layer is disabled).
  int FrameTimeoutMs() const;

  /// \brief Receives the next DATA frame, silently consuming heartbeats.
  /// kDeadlineExceeded when the peer goes silent past the liveness
  /// deadline or delivers no data frame within the progress deadline
  /// (each expiry also bumps cold/dist/frame_timeouts_total).
  cold::Result<Frame> ReadFrameLive(Transport* transport);

  /// Starts/stops the heartbeat thread beating every transport in
  /// `peers`. Idempotent no-ops when the liveness layer is disabled or
  /// there are no peers.
  void StartHeartbeats(const std::vector<std::unique_ptr<Transport>>& peers);
  void StopHeartbeats();

  DistConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph* links_;
  uint64_t fingerprint_ = 0;
  std::unique_ptr<core::ParallelColdTrainer> trainer_;
  std::unique_ptr<core::CheckpointManager> checkpoints_;
  DistStats stats_;
  std::function<void(int)> superstep_callback_;

  // Coordinator-side dense merge accumulator (delta-table sized), reused
  // across supersteps.
  std::vector<int32_t> merge_acc_;
  std::vector<uint32_t> merge_touched_;

  // Heartbeat sender (liveness beacons to every peer).
  std::thread heartbeat_thread_;
  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool stop_heartbeats_ = false;
};

}  // namespace cold::dist
