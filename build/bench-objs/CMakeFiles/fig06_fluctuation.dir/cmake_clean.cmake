file(REMOVE_RECURSE
  "../bench/fig06_fluctuation"
  "../bench/fig06_fluctuation.pdb"
  "CMakeFiles/fig06_fluctuation.dir/fig06_fluctuation.cc.o"
  "CMakeFiles/fig06_fluctuation.dir/fig06_fluctuation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
