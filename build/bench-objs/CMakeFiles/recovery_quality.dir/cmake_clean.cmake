file(REMOVE_RECURSE
  "../bench/recovery_quality"
  "../bench/recovery_quality.pdb"
  "CMakeFiles/recovery_quality.dir/recovery_quality.cc.o"
  "CMakeFiles/recovery_quality.dir/recovery_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
