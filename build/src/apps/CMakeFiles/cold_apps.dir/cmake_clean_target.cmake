file(REMOVE_RECURSE
  "libcold_apps.a"
)
