// Table 2: feature and task coverage of the implemented methods. Printed
// from a registry so the table always reflects what the repository actually
// ships.
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct MethodRow {
  const char* name;
  // Features: text, social (network), time.
  bool text, social, time;
  // Tasks: topic extraction, community detection, temporal modeling,
  // diffusion prediction.
  bool topic_ext, comm_detect, temp_model, diff_pred;
  const char* source;
};

constexpr MethodRow kMethods[] = {
    {"PMTLM", true, true, false, true, true, false, false,
     "src/baselines/pmtlm.h"},
    {"MMSB", false, true, false, false, true, false, false,
     "src/baselines/mmsb.h"},
    {"EUTB", true, true, true, true, false, true, false,
     "src/baselines/eutb.h"},
    {"Pipeline", true, true, true, true, true, true, false,
     "src/baselines/pipeline.h"},
    {"WTM", true, true, false, false, false, false, true,
     "src/baselines/wtm.h"},
    {"TI", true, true, false, true, false, false, true,
     "src/baselines/ti.h"},
    {"COLD", true, true, true, true, true, true, true, "src/core/cold.h"},
};

const char* Mark(bool v) { return v ? "*" : " "; }

}  // namespace

int main() {
  std::printf("== Table 2: feature and task comparison ==\n");
  std::printf("%-10s | %4s %6s %4s | %5s %5s %5s %5s | %s\n", "method",
              "text", "social", "time", "topic", "comm", "temp", "diff",
              "implementation");
  std::printf("-----------+------------------+-------------------------+---\n");
  for (const MethodRow& m : kMethods) {
    std::printf("%-10s | %4s %6s %4s | %5s %5s %5s %5s | %s\n", m.name,
                Mark(m.text), Mark(m.social), Mark(m.time), Mark(m.topic_ext),
                Mark(m.comm_detect), Mark(m.temp_model), Mark(m.diff_pred),
                m.source);
  }
  std::printf("\n(matches Table 2 of the paper; every row is implemented in\n"
              " this repository)\n");
  return 0;
}
