#include "apps/independent_cascade.h"

#include <algorithm>
#include <deque>

namespace cold::apps {

int SimulateCascadeOnce(const DiffusionGraph& graph,
                        const std::vector<int>& seeds,
                        cold::RandomSampler* sampler) {
  const int n = static_cast<int>(graph.size());
  std::vector<char> active(static_cast<size_t>(n), 0);
  std::deque<int> frontier;
  int activated = 0;
  for (int s : seeds) {
    if (s >= 0 && s < n && !active[static_cast<size_t>(s)]) {
      active[static_cast<size_t>(s)] = 1;
      frontier.push_back(s);
      ++activated;
    }
  }
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop_front();
    const auto& row = graph[static_cast<size_t>(u)];
    for (int v = 0; v < n; ++v) {
      if (v == u || active[static_cast<size_t>(v)]) continue;
      if (sampler->Bernoulli(row[static_cast<size_t>(v)])) {
        active[static_cast<size_t>(v)] = 1;
        frontier.push_back(v);
        ++activated;
      }
    }
  }
  return activated;
}

double ExpectedSpread(const DiffusionGraph& graph,
                      const std::vector<int>& seeds, int trials,
                      cold::RandomSampler* sampler) {
  if (trials <= 0) return 0.0;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += SimulateCascadeOnce(graph, seeds, sampler);
  }
  return total / trials;
}

std::vector<double> SingleSeedInfluence(const DiffusionGraph& graph,
                                        int trials, uint64_t seed) {
  cold::RandomSampler sampler(seed, /*stream=*/17);
  std::vector<double> influence(graph.size(), 0.0);
  for (size_t u = 0; u < graph.size(); ++u) {
    influence[u] =
        ExpectedSpread(graph, {static_cast<int>(u)}, trials, &sampler);
  }
  return influence;
}

std::vector<int> GreedySeedSelection(const DiffusionGraph& graph, int budget,
                                     int trials, uint64_t seed) {
  cold::RandomSampler sampler(seed, /*stream=*/19);
  const int n = static_cast<int>(graph.size());
  std::vector<int> seeds;
  std::vector<char> chosen(static_cast<size_t>(n), 0);
  budget = std::min(budget, n);
  double current_spread = 0.0;
  for (int round = 0; round < budget; ++round) {
    int best = -1;
    double best_spread = current_spread;
    for (int u = 0; u < n; ++u) {
      if (chosen[static_cast<size_t>(u)]) continue;
      std::vector<int> candidate = seeds;
      candidate.push_back(u);
      double spread = ExpectedSpread(graph, candidate, trials, &sampler);
      if (spread > best_spread) {
        best_spread = spread;
        best = u;
      }
    }
    if (best < 0) break;
    seeds.push_back(best);
    chosen[static_cast<size_t>(best)] = 1;
    current_spread = best_spread;
  }
  return seeds;
}

}  // namespace cold::apps
