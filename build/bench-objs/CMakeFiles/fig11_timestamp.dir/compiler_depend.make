# Empty compiler generated dependencies file for fig11_timestamp.
# This may be replaced when dependencies are built.
