// Diffusion-pattern analytics of §5.3: the fluctuation-vs-interest
// correlation (Fig 6) and the popularity time lag between highly- and
// medium-interested communities (Fig 7).
#pragma once

#include <vector>

#include "core/cold_estimates.h"

namespace cold::apps {

/// \brief One (topic, community) point of the Fig-6 scatter.
struct FluctuationPoint {
  int topic = -1;
  int community = -1;
  /// theta_ck — the community's interest in the topic (x-axis, log scale).
  double interest = 0.0;
  /// Variance of the psi_kc values over time slices — the fluctuation
  /// intensity of the topic's popularity inside the community (y-axis).
  double fluctuation = 0.0;
};

/// \brief All (k, c) points for the fluctuation scatter.
std::vector<FluctuationPoint> FluctuationScatter(
    const core::ColdEstimates& estimates);

/// \brief Mean fluctuation binned by interest decade (for summarizing the
/// Fig-6 shape: fluctuation peaks at moderate interest). `bin_edges` are
/// ascending interest thresholds; returns one mean per bin
/// [edge_i, edge_{i+1}).
std::vector<double> MeanFluctuationByInterestBin(
    const std::vector<FluctuationPoint>& points,
    const std::vector<double>& bin_edges);

/// \brief Empirical CDF of the interest values at the given thresholds.
std::vector<double> InterestCdf(const std::vector<FluctuationPoint>& points,
                                const std::vector<double>& thresholds);

/// \brief Community categories for the Fig-7 lag analysis (§5.3): the
/// top-`num_high` communities by theta_ck are "highly interested"; the rest
/// above `min_interest` are "medium"; communities below are dropped.
struct InterestCategories {
  std::vector<int> high;
  std::vector<int> medium;
  double high_mean_interest = 0.0;
  double medium_mean_interest = 0.0;
};

InterestCategories CategorizeCommunities(const core::ColdEstimates& estimates,
                                         int topic, int num_high = 10,
                                         double min_interest = 1e-4);

/// \brief Peak-aligned median popularity curve (the "median topic dynamic
/// curve" of [16] as used in §5.3): every community's psi_kc series is
/// scaled so its peak equals 1, then the median across communities is taken
/// at each time stamp.
std::vector<double> PeakAlignedMedianCurve(
    const core::ColdEstimates& estimates, int topic,
    const std::vector<int>& communities);

/// \brief Result of the Fig-7 time-lag measurement.
struct TimeLagResult {
  std::vector<double> high_curve;
  std::vector<double> medium_curve;
  /// Peak positions of the two median curves.
  int high_peak_time = 0;
  int medium_peak_time = 0;
  /// medium_peak_time - high_peak_time: positive means the topic reaches
  /// medium-interest communities later.
  int lag = 0;
  /// Center-of-mass lag (expected time of the medium curve minus that of
  /// the high curve) — robust to peak-location noise in sparse psi
  /// estimates.
  double mass_lag = 0.0;
  /// Post-peak persistence: number of slices each curve stays above half
  /// its peak (durability, "popularity lasts longer").
  int high_half_life = 0;
  int medium_half_life = 0;
};

/// \brief Full Fig-7 analysis for one topic.
TimeLagResult MeasureTimeLag(const core::ColdEstimates& estimates, int topic,
                             int num_high = 10, double min_interest = 1e-4);

}  // namespace cold::apps
