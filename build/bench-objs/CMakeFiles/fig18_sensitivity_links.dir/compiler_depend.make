# Empty compiler generated dependencies file for fig18_sensitivity_links.
# This may be replaced when dependencies are built.
