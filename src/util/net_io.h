// Robust full-transfer socket I/O shared by the serving layer and the
// distributed trainer: a partial read/write or a signal landing mid-syscall
// (EINTR) must never be mistaken for completion, progress, or EOF. Both
// loops retry interrupted syscalls and continue until the requested byte
// count has moved or a real error (or EOF) occurs.
//
// Two families:
//  - ReadFull/WriteFull: plain blocking transfers. They honor any
//    SO_RCVTIMEO/SO_SNDTIMEO already set on the socket; an expired socket
//    timeout surfaces as StatusCode::kDeadlineExceeded so callers can
//    distinguish a stalled peer from a torn connection.
//  - ReadFullDeadline/WriteFullDeadline: poll(2)-bounded transfers with an
//    explicit wall-clock budget for the WHOLE transfer (not per syscall).
//    The fd's blocking mode is untouched: readiness is awaited with poll
//    and the data is moved with MSG_DONTWAIT, so these work on fds shared
//    with plain blocking callers. A deadline of a negative value means
//    "no deadline" and degenerates to the plain behavior.
#pragma once

#include <cstddef>

#include "util/status.h"

namespace cold {

/// \brief Writes exactly `size` bytes of `data` to `fd`, retrying partial
/// writes and EINTR. Uses send(MSG_NOSIGNAL) on sockets so a closed peer
/// surfaces as an IOError (EPIPE) instead of killing the process with
/// SIGPIPE; falls back to write() for non-socket descriptors. An SO_SNDTIMEO
/// expiry surfaces as kDeadlineExceeded.
cold::Status WriteFull(int fd, const void* data, size_t size);

/// \brief Reads exactly `size` bytes from `fd` into `data`, retrying
/// partial reads and EINTR. EOF before `size` bytes is an IOError (a
/// length-prefixed frame or fixed-size header can never legitimately end
/// early); a cleanly closed connection at byte 0 reports "connection
/// closed" so callers can distinguish peer shutdown from a torn transfer.
/// An SO_RCVTIMEO expiry surfaces as kDeadlineExceeded.
cold::Status ReadFull(int fd, void* data, size_t size);

/// \brief WriteFull bounded by `timeout_ms` of wall time for the entire
/// transfer. Returns kDeadlineExceeded when the budget expires with bytes
/// still unsent (the stream position is then torn — callers must treat the
/// connection as dead). timeout_ms < 0 waits forever.
cold::Status WriteFullDeadline(int fd, const void* data, size_t size,
                               int timeout_ms);

/// \brief ReadFull bounded by `timeout_ms` of wall time for the entire
/// transfer; same deadline semantics as WriteFullDeadline.
cold::Status ReadFullDeadline(int fd, void* data, size_t size,
                              int timeout_ms);

}  // namespace cold
