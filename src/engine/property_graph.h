// Typed property graph for the GAS engine: vertices and edges carry
// user-defined data blobs, mirroring distributed GraphLab's graph storage
// (Low et al., PVLDB 2012).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace cold::engine {

using VertexId = int32_t;
using EdgeId = int64_t;

/// \brief Directed multigraph whose vertices and edges each own a VData /
/// EData payload.
///
/// Mutation (AddVertex/AddEdge) must finish before Finalize(); afterwards the
/// structure is immutable but payloads stay mutable — exactly what a Gibbs
/// sweep needs (fixed topology, evolving latent state).
template <typename VData, typename EData>
class PropertyGraph {
 public:
  /// Adds a vertex with payload `data`; returns its id.
  VertexId AddVertex(VData data) {
    assert(!finalized_);
    vertex_data_.push_back(std::move(data));
    return static_cast<VertexId>(vertex_data_.size() - 1);
  }

  /// Adds a directed edge src->dst with payload `data`; returns its id.
  /// Both endpoints must already exist.
  EdgeId AddEdge(VertexId src, VertexId dst, EData data) {
    assert(!finalized_);
    assert(src >= 0 && src < num_vertices());
    assert(dst >= 0 && dst < num_vertices());
    src_.push_back(src);
    dst_.push_back(dst);
    edge_data_.push_back(std::move(data));
    return static_cast<EdgeId>(src_.size() - 1);
  }

  /// \brief Freezes topology and builds incidence indexes.
  void Finalize() {
    assert(!finalized_);
    size_t n = vertex_data_.size();
    out_offsets_.assign(n + 1, 0);
    in_offsets_.assign(n + 1, 0);
    for (size_t e = 0; e < src_.size(); ++e) {
      out_offsets_[static_cast<size_t>(src_[e]) + 1]++;
      in_offsets_[static_cast<size_t>(dst_[e]) + 1]++;
    }
    for (size_t i = 1; i <= n; ++i) {
      out_offsets_[i] += out_offsets_[i - 1];
      in_offsets_[i] += in_offsets_[i - 1];
    }
    out_edges_.resize(src_.size());
    in_edges_.resize(src_.size());
    std::vector<int64_t> oc(out_offsets_.begin(), out_offsets_.end() - 1);
    std::vector<int64_t> ic(in_offsets_.begin(), in_offsets_.end() - 1);
    for (size_t e = 0; e < src_.size(); ++e) {
      out_edges_[static_cast<size_t>(oc[static_cast<size_t>(src_[e])]++)] =
          static_cast<EdgeId>(e);
      in_edges_[static_cast<size_t>(ic[static_cast<size_t>(dst_[e])]++)] =
          static_cast<EdgeId>(e);
    }
    finalized_ = true;
  }

  bool finalized() const { return finalized_; }
  int32_t num_vertices() const {
    return static_cast<int32_t>(vertex_data_.size());
  }
  int64_t num_edges() const { return static_cast<int64_t>(src_.size()); }

  VertexId src(EdgeId e) const { return src_[static_cast<size_t>(e)]; }
  VertexId dst(EdgeId e) const { return dst_[static_cast<size_t>(e)]; }

  VData& vertex_data(VertexId v) { return vertex_data_[static_cast<size_t>(v)]; }
  const VData& vertex_data(VertexId v) const {
    return vertex_data_[static_cast<size_t>(v)];
  }
  EData& edge_data(EdgeId e) { return edge_data_[static_cast<size_t>(e)]; }
  const EData& edge_data(EdgeId e) const {
    return edge_data_[static_cast<size_t>(e)];
  }

  /// Edge ids leaving `v` (requires Finalize()).
  std::span<const EdgeId> out_edges(VertexId v) const {
    assert(finalized_);
    size_t b = static_cast<size_t>(out_offsets_[static_cast<size_t>(v)]);
    size_t e = static_cast<size_t>(out_offsets_[static_cast<size_t>(v) + 1]);
    return {out_edges_.data() + b, e - b};
  }

  /// Edge ids entering `v` (requires Finalize()).
  std::span<const EdgeId> in_edges(VertexId v) const {
    assert(finalized_);
    size_t b = static_cast<size_t>(in_offsets_[static_cast<size_t>(v)]);
    size_t e = static_cast<size_t>(in_offsets_[static_cast<size_t>(v) + 1]);
    return {in_edges_.data() + b, e - b};
  }

 private:
  std::vector<VData> vertex_data_;
  std::vector<EData> edge_data_;
  std::vector<VertexId> src_;
  std::vector<VertexId> dst_;
  std::vector<int64_t> out_offsets_;
  std::vector<int64_t> in_offsets_;
  std::vector<EdgeId> out_edges_;
  std::vector<EdgeId> in_edges_;
  bool finalized_ = false;
};

}  // namespace cold::engine
