// Evaluation metrics used across §6: ROC-AUC, the averaged retweet-tuple
// AUC of §6.3, and time-stamp accuracy within a tolerance window.
#pragma once

#include <span>
#include <vector>

namespace cold::eval {

/// \brief Area under the ROC curve given scores of positive and negative
/// examples: P(score(pos) > score(neg)) with ties counted 1/2.
///
/// Computed by rank-summing in O(n log n). Returns 0.5 when either side is
/// empty.
double RocAuc(std::span<const double> positive_scores,
              std::span<const double> negative_scores);

/// \brief One retweet tuple's scored outcome for AveragedTupleAuc.
struct ScoredTuple {
  std::vector<double> positive_scores;
  std::vector<double> negative_scores;
};

/// \brief Mean per-tuple AUC (§6.3): AUC is computed inside each tuple
/// RT_id = (i, d, U_id, \bar U_id) and averaged over tuples. Tuples with an
/// empty side are skipped.
double AveragedTupleAuc(std::span<const ScoredTuple> tuples);

/// \brief Fraction of |predicted - actual| <= tolerance (§6.3's time-stamp
/// prediction accuracy as a function of tolerance range).
double AccuracyWithinTolerance(std::span<const int> predicted,
                               std::span<const int> actual, int tolerance);

/// \brief Full accuracy-vs-tolerance curve for tolerances 0..max_tolerance.
std::vector<double> ToleranceCurve(std::span<const int> predicted,
                                   std::span<const int> actual,
                                   int max_tolerance);

}  // namespace cold::eval
