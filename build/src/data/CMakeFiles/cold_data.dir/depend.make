# Empty dependencies file for cold_data.
# This may be replaced when dependencies are built.
