file(REMOVE_RECURSE
  "CMakeFiles/cold_eval.dir/alignment.cc.o"
  "CMakeFiles/cold_eval.dir/alignment.cc.o.d"
  "CMakeFiles/cold_eval.dir/metrics.cc.o"
  "CMakeFiles/cold_eval.dir/metrics.cc.o.d"
  "libcold_eval.a"
  "libcold_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
