file(REMOVE_RECURSE
  "../bench/fig09_perplexity"
  "../bench/fig09_perplexity.pdb"
  "CMakeFiles/fig09_perplexity.dir/fig09_perplexity.cc.o"
  "CMakeFiles/fig09_perplexity.dir/fig09_perplexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
