// Serving-layer tests: JSON parse/serialize, the LRU cache, and the HTTP
// server driven over a loopback socket — endpoint correctness against
// direct ColdPredictor calls, concurrent load, hot-reload under load, and
// malformed input handling.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cold.h"
#include "core/model_io.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/lru_cache.h"
#include "serve/model_service.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cold::serve {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Json

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->as_bool(), true);
  EXPECT_EQ(Json::Parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::Parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParsesNested) {
  auto parsed = Json::Parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].Find("b")->as_string(), "c");
  EXPECT_TRUE(parsed->Find("d")->Find("e")->is_null());
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Json value(std::string("line\n\"quoted\"\tback\\slash\x01"));
  auto reparsed = Json::Parse(value.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->as_string(), value.as_string());
}

TEST(JsonTest, UnicodeEscapes) {
  auto parsed = Json::Parse(R"("é中😀")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->as_string(), "\xC3\xA9\xE4\xB8\xAD\xF0\x9F\x98\x80");
  EXPECT_FALSE(Json::Parse(R"("\ud83d")").ok());  // unpaired surrogate
}

TEST(JsonTest, RejectsMalformed) {
  const char* bad[] = {"",       "{",        "[1,",    "{\"a\":}",
                       "tru",    "01",       "1.",     "\"unterminated",
                       "[1] []", "{\"a\" 1}", "nan",    "[1,]"};
  for (const char* text : bad) {
    EXPECT_FALSE(Json::Parse(text).ok()) << text;
  }
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DumpRoundTripsStructure) {
  Json obj = Json::MakeObject();
  obj.Set("id", 42);
  obj.Set("score", 0.125);
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append("two");
  obj.Set("items", std::move(arr));
  auto reparsed = Json::Parse(obj.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_DOUBLE_EQ(reparsed->Find("id")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(reparsed->Find("score")->as_number(), 0.125);
  EXPECT_EQ(reparsed->Find("items")->as_array()[1].as_string(), "two");
}

TEST(JsonTest, GetIntValidates) {
  Json obj = *Json::Parse(R"({"a": 5, "b": 1.5, "c": "x"})");
  EXPECT_EQ(*obj.GetInt("a", 0, 10), 5);
  EXPECT_FALSE(obj.GetInt("a", 0, 4).ok());   // out of range
  EXPECT_FALSE(obj.GetInt("b", 0, 10).ok());  // not integral
  EXPECT_FALSE(obj.GetInt("c", 0, 10).ok());  // not a number
  EXPECT_FALSE(obj.GetInt("missing", 0, 10).ok());
}

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Put("a", std::make_shared<const int>(1));
  cache.Put("b", std::make_shared<const int>(2));
  ASSERT_NE(cache.Get("a"), nullptr);        // refresh "a"
  cache.Put("c", std::make_shared<const int>(3));
  EXPECT_EQ(cache.Get("b"), nullptr);        // "b" was LRU
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_EQ(*cache.Get("c"), 3);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache<int> cache(0);
  cache.Put("a", std::make_shared<const int>(1));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmpties) {
  LruCache<int> cache(4);
  cache.Put("a", std::make_shared<const int>(1));
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
}

// ---------------------------------------------------------------------------
// Server fixture: a small synthetic model served over loopback.

/// Deterministic random (normalized-where-it-matters) estimates — no Gibbs
/// training needed for endpoint equivalence checks.
core::ColdEstimates RandomEstimates(uint64_t seed, int U = 12, int C = 3,
                                    int K = 4, int T = 5, int V = 20) {
  RandomSampler rng(seed);
  core::ColdEstimates est;
  est.U = U;
  est.C = C;
  est.K = K;
  est.T = T;
  est.V = V;
  auto fill_rows = [&rng](std::vector<double>* out, int rows, int cols) {
    out->resize(static_cast<size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (int c = 0; c < cols; ++c) {
        double v = 0.05 + rng.Uniform();
        (*out)[static_cast<size_t>(r) * cols + c] = v;
        sum += v;
      }
      for (int c = 0; c < cols; ++c) {
        (*out)[static_cast<size_t>(r) * cols + c] /= sum;
      }
    }
  };
  fill_rows(&est.pi, U, C);
  fill_rows(&est.theta, C, K);
  fill_rows(&est.eta, C, C);
  fill_rows(&est.phi, K, V);
  fill_rows(&est.psi, K * C, T);
  return est;
}

// Every endpoint/concurrency/reload/shutdown test runs against both
// serving cores: the epoll event loop and the legacy blocking pool. The
// two must be observably identical at the HTTP surface.
class ServeTest : public ::testing::TestWithParam<ServerMode> {
 protected:
  void StartServer(ModelServiceOptions service_options = {},
                   uint64_t seed = 7) {
    estimates_ = RandomEstimates(seed);
    service_ = std::make_unique<ModelService>(service_options);
    service_->SetPredictor(
        std::make_shared<const core::ColdPredictor>(estimates_, 3));
    HttpServerOptions server_options;
    server_options.mode = GetParam();
    server_options.num_workers = 8;
    server_ = std::make_unique<HttpServer>(
        server_options, [this](const HttpRequest& request) {
          return service_->Handle(request);
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect(server_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    service_.reset();
  }

  Json PostJson(const std::string& target, const std::string& body,
                int expect_status = 200) {
    auto response = client_.Post(target, body);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, expect_status) << response->body;
    auto parsed = Json::Parse(response->body);
    EXPECT_TRUE(parsed.ok()) << response->body;
    return parsed.ok() ? *parsed : Json();
  }

  core::ColdEstimates estimates_;
  std::unique_ptr<ModelService> service_;
  std::unique_ptr<HttpServer> server_;
  HttpClient client_;
};

INSTANTIATE_TEST_SUITE_P(
    Modes, ServeTest,
    ::testing::Values(ServerMode::kEpoll, ServerMode::kBlocking),
    [](const ::testing::TestParamInfo<ServerMode>& info) {
      return info.param == ServerMode::kEpoll ? "Epoll" : "Blocking";
    });

TEST_P(ServeTest, HealthzReportsModelDimensions) {
  StartServer();
  auto response = client_.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  Json body = *Json::Parse(response->body);
  EXPECT_EQ(body.Find("status")->as_string(), "ok");
  EXPECT_EQ(body.Find("model")->Find("users")->as_number(), estimates_.U);
  EXPECT_EQ(body.Find("model")->Find("vocabulary")->as_number(),
            estimates_.V);
}

TEST_P(ServeTest, DiffusionMatchesDirectPredictor) {
  StartServer();
  core::ColdPredictor direct(estimates_, 3);
  std::vector<text::WordId> words = {1, 5, 9};
  for (int i = 0; i < 4; ++i) {
    for (int j = 4; j < 8; ++j) {
      Json body = PostJson(
          "/v1/diffusion",
          "{\"publisher\": " + std::to_string(i) +
              ", \"candidate\": " + std::to_string(j) +
              ", \"words\": [1, 5, 9]}");
      ASSERT_NE(body.Find("probability"), nullptr);
      EXPECT_NEAR(body.Find("probability")->as_number(),
                  direct.DiffusionProbability(i, j, words), 1e-9);
    }
  }
}

TEST_P(ServeTest, DiffusionFanOutMatchesDirectPredictor) {
  StartServer();
  core::ColdPredictor direct(estimates_, 3);
  std::vector<text::WordId> words = {0, 3};
  Json body = PostJson(
      "/v1/diffusion",
      R"({"publisher": 2, "candidates": [4, 5, 6], "words": [0, 3]})");
  const Json* probs = body.Find("probabilities");
  ASSERT_NE(probs, nullptr);
  ASSERT_EQ(probs->as_array().size(), 3u);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(probs->as_array()[static_cast<size_t>(n)].as_number(),
                direct.DiffusionProbability(2, 4 + n, words), 1e-9);
  }
}

TEST_P(ServeTest, TopicPosteriorMatchesDirectPredictor) {
  StartServer();
  core::ColdPredictor direct(estimates_, 3);
  std::vector<text::WordId> words = {2, 7, 11};
  Json body = PostJson("/v1/topic_posterior",
                       R"({"author": 3, "words": [2, 7, 11]})");
  const Json* posterior = body.Find("posterior");
  ASSERT_NE(posterior, nullptr);
  std::vector<double> expected = direct.TopicPosterior(words, 3);
  ASSERT_EQ(posterior->as_array().size(), expected.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_NEAR(posterior->as_array()[k].as_number(), expected[k], 1e-9);
  }
}

TEST_P(ServeTest, LinkMatchesDirectPredictor) {
  StartServer();
  core::ColdPredictor direct(estimates_, 3);
  Json body = PostJson("/v1/link", R"({"source": 1, "target": 9})");
  EXPECT_NEAR(body.Find("probability")->as_number(),
              direct.LinkProbability(1, 9), 1e-9);
}

TEST_P(ServeTest, TimestampMatchesDirectPredictor) {
  StartServer();
  core::ColdPredictor direct(estimates_, 3);
  std::vector<text::WordId> words = {4, 8};
  Json body =
      PostJson("/v1/timestamp", R"({"author": 5, "words": [4, 8]})");
  std::vector<double> expected = direct.TimestampScores(words, 5);
  EXPECT_EQ(static_cast<int>(body.Find("predicted")->as_number()),
            direct.PredictTimestamp(words, 5));
  ASSERT_EQ(body.Find("scores")->as_array().size(), expected.size());
  for (size_t t = 0; t < expected.size(); ++t) {
    EXPECT_NEAR(body.Find("scores")->as_array()[t].as_number(), expected[t],
                1e-9);
  }
}

TEST_P(ServeTest, InfluentialCommunitiesRanksAll) {
  StartServer();
  auto response =
      client_.Get("/v1/influential_communities?topic=1&n=3&trials=16");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  Json body = *Json::Parse(response->body);
  ASSERT_EQ(body.Find("communities")->as_array().size(), 3u);
  // Descending influence order.
  const auto& list = body.Find("communities")->as_array();
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].Find("influence_degree")->as_number(),
              list[i].Find("influence_degree")->as_number());
  }
  auto bad = client_.Get("/v1/influential_communities?topic=99");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status_code, 422);
}

TEST_P(ServeTest, MalformedInputsReturn4xxNotCrash) {
  StartServer();
  // Malformed JSON body.
  auto r1 = client_.Post("/v1/diffusion", "{not json");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->status_code, 400);
  // Missing fields.
  auto r2 = client_.Post("/v1/diffusion", "{}");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->status_code, 400);
  // Out-of-range ids.
  auto r3 = client_.Post("/v1/diffusion",
                         R"({"publisher": 9999, "candidate": 1, "words": []})");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->status_code, 422);
  auto r4 = client_.Post("/v1/topic_posterior",
                         R"({"author": 0, "words": [99999]})");
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->status_code, 422);
  // Unknown endpoint and wrong method.
  auto r5 = client_.Get("/v1/nope");
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5->status_code, 404);
  auto r6 = client_.Get("/v1/diffusion");
  ASSERT_TRUE(r6.ok());
  EXPECT_EQ(r6->status_code, 405);
  // Raw garbage on the socket: server answers 400 and closes; the
  // connection used by client_ stays usable because garbage goes over a
  // fresh connection.
  HttpClient raw;
  ASSERT_TRUE(raw.Connect(server_->port()).ok());
  auto bad = raw.Request("NOT_A_METHOD_AT_ALL", "/");
  // Either a 400 response or a closed connection is acceptable; the
  // server must keep serving either way.
  (void)bad;
  auto still_ok = client_.Get("/healthz");
  ASSERT_TRUE(still_ok.ok());
  EXPECT_EQ(still_ok->status_code, 200);
}

TEST_P(ServeTest, MetricsEndpointExposesServeFamilies) {
  StartServer();
  (void)PostJson("/v1/diffusion",
                 R"({"publisher": 0, "candidate": 1, "words": [2]})");
  (void)PostJson("/v1/topic_posterior", R"({"author": 0, "words": [2]})");
  auto response = client_.Get("/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  EXPECT_NE(response->headers["content-type"].find("text/plain"),
            std::string::npos);
  const std::string& text = response->body;
  EXPECT_NE(text.find("cold_serve_requests"), std::string::npos);
  EXPECT_NE(text.find("cold_serve_request_seconds"), std::string::npos);
  EXPECT_NE(text.find("endpoint=\"diffusion\""), std::string::npos);
  EXPECT_NE(text.find("cold_serve_posterior_cache_misses"),
            std::string::npos);
}

TEST_P(ServeTest, DebugVarsExposesTelemetryWithQuantiles) {
  StartServer();
  // Prime the request-latency histograms so quantiles have mass.
  for (int i = 0; i < 20; ++i) {
    (void)PostJson("/v1/diffusion",
                   R"({"publisher": 0, "candidate": 1, "words": [2]})");
  }
  auto response = client_.Get("/debug/vars");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_NE(response->headers["content-type"].find("application/json"),
            std::string::npos);
  auto body = Json::Parse(response->body);
  ASSERT_TRUE(body.ok()) << response->body;
  EXPECT_NE(body->Find("generation"), nullptr);
  ASSERT_NE(body->Find("model_loaded"), nullptr);
  EXPECT_TRUE(body->Find("model_loaded")->as_bool());

  // The embedded telemetry dump carries the serve histograms with their
  // p50/p90/p99 summaries.
  const Json* telemetry = body->Find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  const Json* histograms = telemetry->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(histograms->is_array());
  bool found_request_seconds = false;
  for (const Json& hist : histograms->as_array()) {
    const Json* name = hist.Find("name");
    ASSERT_NE(name, nullptr);
    const Json* quantiles = hist.Find("quantiles");
    ASSERT_NE(quantiles, nullptr) << name->as_string();
    EXPECT_NE(quantiles->Find("p50"), nullptr);
    EXPECT_NE(quantiles->Find("p90"), nullptr);
    EXPECT_NE(quantiles->Find("p99"), nullptr);
    if (name->as_string() == "cold/serve/request_seconds") {
      found_request_seconds = true;
      // 20 requests just landed: the quantiles must be real numbers.
      EXPECT_TRUE(quantiles->Find("p99")->is_number());
      EXPECT_GT(quantiles->Find("p99")->as_number(), 0.0);
    }
  }
  EXPECT_TRUE(found_request_seconds);
}

TEST_P(ServeTest, SlowRequestLogRecordsMethodPathLatencyAndBatchSize) {
  ModelServiceOptions options;
  options.slow_request_ms = 1;  // lowest enabled threshold
  StartServer(options);

  // Capture warning lines; the sink runs serialized so a plain string
  // under a mutex-free append is safe here.
  static std::mutex log_mutex;
  static std::vector<std::string> warnings;
  {
    std::lock_guard<std::mutex> lock(log_mutex);
    warnings.clear();
  }
  Logger::SetSink([](LogLevel level, const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mutex);
    if (level == LogLevel::kWarning) warnings.push_back(line);
  });

  // A max-trials influence scan burns well past 1ms of CPU, and a batched
  // diffusion fan-out records its batch size; at least one of the two must
  // cross the threshold and the logged line must carry method, path,
  // latency and batch size.
  auto slow =
      client_.Get("/v1/influential_communities?topic=1&n=3&trials=100000");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->status_code, 200);
  (void)PostJson("/v1/diffusion",
                 R"({"publisher": 2, "candidates": [4, 5, 6], "words": [0]})");
  Logger::SetSink(nullptr);

  std::vector<std::string> captured;
  {
    std::lock_guard<std::mutex> lock(log_mutex);
    captured = warnings;
  }
  bool found_slow = false;
  for (const std::string& line : captured) {
    if (line.find("slow request") == std::string::npos) continue;
    found_slow = true;
    const bool has_method_and_path =
        line.find("GET /v1/influential_communities") != std::string::npos ||
        line.find("POST /v1/diffusion") != std::string::npos;
    EXPECT_TRUE(has_method_and_path) << line;
    EXPECT_NE(line.find("ms (status"), std::string::npos) << line;
    EXPECT_NE(line.find("batch_size"), std::string::npos) << line;
  }
  EXPECT_TRUE(found_slow) << "no slow-request warning captured";

  // The slow-request counter ticked at least once.
  EXPECT_GE(obs::Registry::Global()
                .GetCounter("cold/serve/slow_requests")
                ->Value(),
            1);
}

TEST_P(ServeTest, SlowRequestLogDisabledByDefault) {
  StartServer();  // slow_request_ms = 0: never logs
  static std::mutex log_mutex;
  static bool saw_slow = false;
  {
    std::lock_guard<std::mutex> lock(log_mutex);
    saw_slow = false;
  }
  Logger::SetSink([](LogLevel, const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mutex);
    if (line.find("slow request") != std::string::npos) saw_slow = true;
  });
  auto response = client_.Get("/v1/influential_communities?topic=1&trials=512");
  ASSERT_TRUE(response.ok());
  Logger::SetSink(nullptr);
  std::lock_guard<std::mutex> lock(log_mutex);
  EXPECT_FALSE(saw_slow);
}

TEST_P(ServeTest, PosteriorCacheHitsOnRepeatQueries) {
  ModelServiceOptions options;
  options.posterior_cache_capacity = 64;
  StartServer(options);
  auto& registry = obs::Registry::Global();
  auto* hits = registry.GetCounter("cold/serve/posterior_cache_hits");
  int64_t before = hits->Value();
  for (int i = 0; i < 5; ++i) {
    (void)PostJson("/v1/topic_posterior", R"({"author": 2, "words": [1, 2]})");
  }
  EXPECT_GE(hits->Value() - before, 4);
}

TEST_P(ServeTest, ConcurrentRequestsAllSucceedAndAgree) {
  StartServer();
  core::ColdPredictor direct(estimates_, 3);
  std::vector<text::WordId> words = {1, 2, 3};
  const double expected = direct.DiffusionProbability(1, 2, words);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, expected, &failures] {
      HttpClient client;
      if (!client.Connect(server_->port()).ok()) {
        failures.fetch_add(kPerThread);
        return;
      }
      for (int n = 0; n < kPerThread; ++n) {
        auto response = client.Post(
            "/v1/diffusion",
            R"({"publisher": 1, "candidate": 2, "words": [1, 2, 3]})");
        if (!response.ok() || response->status_code != 200) {
          failures.fetch_add(1);
          continue;
        }
        auto body = Json::Parse(response->body);
        if (!body.ok() ||
            std::fabs(body->Find("probability")->as_number() - expected) >
                1e-9) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ServeTest, HotReloadUnderLoadServesOneOfTwoModels) {
  StartServer();
  // Two distinct snapshots on disk.
  core::ColdEstimates model_a = RandomEstimates(7);   // == estimates_
  core::ColdEstimates model_b = RandomEstimates(99);
  std::string path_a =
      (fs::temp_directory_path() / "cold_serve_model_a.bin").string();
  std::string path_b =
      (fs::temp_directory_path() / "cold_serve_model_b.bin").string();
  ASSERT_TRUE(core::SaveEstimates(model_a, path_a).ok());
  ASSERT_TRUE(core::SaveEstimates(model_b, path_b).ok());
  core::ColdPredictor direct_a(model_a, 5);
  core::ColdPredictor direct_b(model_b, 5);
  std::vector<text::WordId> words = {1, 2, 3};
  const double expect_a = direct_a.DiffusionProbability(1, 2, words);
  const double expect_b = direct_b.DiffusionProbability(1, 2, words);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> served{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 4; ++t) {
    load.emplace_back([this, expect_a, expect_b, &stop, &failures, &served] {
      HttpClient client;
      if (!client.Connect(server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      while (!stop.load()) {
        auto response = client.Post(
            "/v1/diffusion",
            R"({"publisher": 1, "candidate": 2, "words": [1, 2, 3]})");
        if (!response.ok() || response->status_code != 200) {
          failures.fetch_add(1);
          return;
        }
        double p = Json::Parse(response->body)->Find("probability")
                       ->as_number();
        // Every answer must be exactly one of the two snapshots' answers —
        // never a torn mixture.
        if (std::fabs(p - expect_a) > 1e-9 && std::fabs(p - expect_b) > 1e-9) {
          failures.fetch_add(1);
          return;
        }
        served.fetch_add(1);
      }
    });
  }

  // Flip snapshots while the load runs. NOTE: the fixture's initial model
  // was built with top_communities=3; reloads use 5, matching direct_a/b.
  HttpClient admin;
  ASSERT_TRUE(admin.Connect(server_->port()).ok());
  for (int flip = 0; flip < 6; ++flip) {
    const std::string& path = (flip % 2 == 0) ? path_a : path_b;
    auto response =
        admin.Post("/admin/reload", "{\"path\": \"" + path + "\"}");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, 200) << response->body;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& thread : load) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(served.load(), 0);

  // Reload of a corrupt snapshot fails and keeps serving.
  {
    std::ofstream out(path_a, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto bad = admin.Post("/admin/reload", "{\"path\": \"" + path_a + "\"}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status_code, 500);
  auto health = admin.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status_code, 200);
  fs::remove(path_a);
  fs::remove(path_b);
}

TEST_P(ServeTest, BatchingDisabledStillCorrect) {
  ModelServiceOptions options;
  options.batching_enabled = false;
  StartServer(options);
  core::ColdPredictor direct(estimates_, 3);
  std::vector<text::WordId> words = {6};
  Json body = PostJson(
      "/v1/diffusion",
      R"({"publisher": 0, "candidate": 7, "words": [6]})");
  EXPECT_NEAR(body.Find("probability")->as_number(),
              direct.DiffusionProbability(0, 7, words), 1e-9);
}

class LoadSheddingTest : public ::testing::TestWithParam<ServerMode> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, LoadSheddingTest,
    ::testing::Values(ServerMode::kEpoll, ServerMode::kBlocking),
    [](const ::testing::TestParamInfo<ServerMode>& info) {
      return info.param == ServerMode::kEpoll ? "Epoll" : "Blocking";
    });

TEST_P(LoadSheddingTest, ExcessConnectionsGet503WithRetryAfter) {
  HttpServerOptions options;
  options.mode = GetParam();
  options.num_workers = 2;
  options.max_inflight_requests = 1;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse::Text(200, "{\"ok\": true}", "application/json");
  });
  ASSERT_TRUE(server.Start().ok());
  auto* shed = obs::Registry::Global().GetCounter("cold/serve/shed_total");
  const int64_t shed_before = shed->Value();

  // The first keep-alive connection occupies the single in-flight slot.
  HttpClient first;
  ASSERT_TRUE(first.Connect(server.port()).ok());
  auto ok = first.Get("/");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status_code, 200);
  for (int i = 0; i < 400 && server.active_connections() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.active_connections(), 1);

  // The next connection is shed straight from the accept thread: 503 with
  // a Retry-After hint, and the shed counter ticks.
  HttpClient second;
  ASSERT_TRUE(second.Connect(server.port()).ok());
  auto rejected = second.Get("/");
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status_code, 503);
  EXPECT_EQ(rejected->headers["retry-after"], "1");
  EXPECT_EQ(shed->Value() - shed_before, 1);

  // Releasing the slot restores service for new connections.
  second.Close();
  first.Close();
  for (int i = 0; i < 400 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.active_connections(), 0);
  HttpClient third;
  ASSERT_TRUE(third.Connect(server.port()).ok());
  auto recovered = third.Get("/");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->status_code, 200);
  server.Stop();
}

TEST_P(ServeTest, GracefulShutdownDrainsInFlight) {
  StartServer();
  std::atomic<int> completed{0};
  std::thread load([this, &completed] {
    HttpClient client;
    if (!client.Connect(server_->port()).ok()) return;
    for (int n = 0; n < 20; ++n) {
      auto response = client.Post(
          "/v1/diffusion",
          R"({"publisher": 0, "candidate": 1, "words": [1]})");
      if (!response.ok()) break;  // server stopped: connection closes.
      if (response->status_code == 200) completed.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->Stop();
  load.join();
  // Whatever was in flight finished cleanly; no hangs, no crashes.
  EXPECT_GE(completed.load(), 1);
  EXPECT_EQ(server_->active_connections(), 0);
}


// ---------------------------------------------------------------------------
// ShardedLruCache

TEST(ShardedLruCacheTest, KeyAlwaysMapsToSameShard) {
  ShardedLruCache<int> cache(64, 8);
  EXPECT_EQ(cache.num_shards(), 8u);
  for (int i = 0; i < 100; ++i) {
    std::string key = "key-" + std::to_string(i);
    size_t shard = cache.ShardOf(key);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(cache.ShardOf(key), shard);  // Stable across calls.
  }
}

TEST(ShardedLruCacheTest, GetPutRoundTripAcrossShards) {
  ShardedLruCache<int> cache(64, 4);
  for (int i = 0; i < 32; ++i) {
    cache.Put("k" + std::to_string(i), std::make_shared<int>(i));
  }
  EXPECT_EQ(cache.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    auto hit = cache.Get("k" + std::to_string(i));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, i);
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("k0"), nullptr);
}

TEST(ShardedLruCacheTest, EvictionIsPerShardAndReported) {
  // 8 total entries over 4 shards = 2 per shard: overfilling one shard
  // evicts there without touching the others.
  ShardedLruCache<int> cache(8, 4);
  std::vector<std::string> same_shard;
  size_t target = cache.ShardOf("probe");
  for (int i = 0; same_shard.size() < 3; ++i) {
    std::string key = "k" + std::to_string(i);
    if (cache.ShardOf(key) == target) same_shard.push_back(key);
  }
  EXPECT_FALSE(cache.Put(same_shard[0], std::make_shared<int>(0)));
  EXPECT_FALSE(cache.Put(same_shard[1], std::make_shared<int>(1)));
  EXPECT_TRUE(cache.Put(same_shard[2], std::make_shared<int>(2)));
  EXPECT_EQ(cache.Get(same_shard[0]), nullptr);  // LRU within the shard.
  EXPECT_NE(cache.Get(same_shard[2]), nullptr);
}

TEST(ShardedLruCacheTest, ZeroCapacityAndZeroShardsAreSafe) {
  ShardedLruCache<int> disabled(0, 4);
  EXPECT_FALSE(disabled.Put("a", std::make_shared<int>(1)));
  EXPECT_EQ(disabled.Get("a"), nullptr);
  ShardedLruCache<int> clamped(16, 0);  // Shards clamp to 1.
  EXPECT_EQ(clamped.num_shards(), 1u);
  clamped.Put("a", std::make_shared<int>(1));
  EXPECT_NE(clamped.Get("a"), nullptr);
}

// ---------------------------------------------------------------------------
// Arena snapshots in the service: mmap serving, corruption fallback.

class ArenaServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    estimates_ = RandomEstimates(21);
    arena_path_ = (fs::temp_directory_path() /
                   ("cold_serve_arena_" + std::to_string(::getpid()) + ".arena"))
                      .string();
    ASSERT_TRUE(core::SaveArenaSnapshot(estimates_, 3, arena_path_).ok());
  }

  void TearDown() override { fs::remove(arena_path_); }

  core::ColdEstimates estimates_;
  std::string arena_path_;
};

TEST_F(ArenaServeTest, ServesFromArenaIdenticallyToInMemory) {
  ModelServiceOptions options;
  ModelService arena_service(options);
  ASSERT_TRUE(arena_service.LoadFromFile(arena_path_).ok());
  ModelService memory_service(options);
  memory_service.SetPredictor(
      std::make_shared<const core::ColdPredictor>(estimates_, 3));

  for (int i = 0; i < 6; ++i) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/v1/diffusion";
    request.body = "{\"publisher\": " + std::to_string(i) +
                   ", \"candidate\": " + std::to_string(11 - i) +
                   ", \"words\": [1, 5, 9]}";
    HttpResponse from_arena = arena_service.Handle(request);
    HttpResponse from_memory = memory_service.Handle(request);
    ASSERT_EQ(from_arena.status_code, 200) << from_arena.body;
    EXPECT_EQ(from_arena.body, from_memory.body);
  }
}

TEST_F(ArenaServeTest, CrcCorruptionFailsReloadAndKeepsServing) {
  ModelService service{ModelServiceOptions{}};
  ASSERT_TRUE(service.LoadFromFile(arena_path_).ok());
  const int64_t generation = service.generation();

  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/diffusion";
  request.body = R"({"publisher": 1, "candidate": 2, "words": [1, 2]})";
  HttpResponse before = service.Handle(request);
  ASSERT_EQ(before.status_code, 200);

  // Flip one payload byte past the header: the payload CRC must catch it.
  // The corrupted file replaces the original via rename — a fresh inode,
  // like every real writer (SaveArenaSnapshot is tmp + fsync + rename).
  // Modifying the mapped inode in place would corrupt the live snapshot.
  {
    std::ifstream in(arena_path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[128] = static_cast<char>(bytes[128] ^ 0x5a);
    const std::string tmp = arena_path_ + ".corrupt";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    fs::rename(tmp, arena_path_);
  }
  EXPECT_FALSE(service.LoadFromFile(arena_path_).ok());
  EXPECT_EQ(service.generation(), generation);  // No new generation.
  HttpResponse after = service.Handle(request);
  EXPECT_EQ(after.status_code, 200);
  EXPECT_EQ(after.body, before.body);  // Previous snapshot still serving.
}

TEST_F(ArenaServeTest, TornWriteIsDetected) {
  // A torn write manifests as a file shorter than the header promises.
  const auto full_size = fs::file_size(arena_path_);
  fs::resize_file(arena_path_, full_size - 64);
  ModelService service{ModelServiceOptions{}};
  EXPECT_FALSE(service.LoadFromFile(arena_path_).ok());

  // And an arena is still recognized as one (magic intact), so the failure
  // came from validation, not from falling through to the legacy loader.
  EXPECT_TRUE(core::IsArenaFile(arena_path_));
}

// ---------------------------------------------------------------------------
// Replica routing

TEST_F(ArenaServeTest, EveryAuthorRoutesToExactlyOneReplica) {
  ModelServiceOptions options;
  options.num_replicas = 3;
  ModelService service(options);
  ASSERT_TRUE(service.LoadFromFile(arena_path_).ok());
  ASSERT_EQ(service.num_replicas(), 3);

  auto predictor = service.predictor();
  ASSERT_NE(predictor, nullptr);
  for (int u = 0; u < estimates_.U; ++u) {
    int replica = service.ReplicaForAuthor(u);
    ASSERT_GE(replica, 0);
    ASSERT_LT(replica, 3);
    // The route is the author's home community mod R — deterministic and
    // shared by every author with the same home.
    int home = predictor->TopComm(u).front();
    EXPECT_EQ(replica, home % 3);
    EXPECT_EQ(service.ReplicaForAuthor(u), replica);
  }
}

TEST_F(ArenaServeTest, ShardedReplicasAnswerByteIdenticalToSingleReplica) {
  ModelServiceOptions single_options;
  single_options.num_replicas = 1;
  ModelService single(single_options);
  ASSERT_TRUE(single.LoadFromFile(arena_path_).ok());

  ModelServiceOptions sharded_options;
  sharded_options.num_replicas = 3;
  sharded_options.cache_shards = 4;
  ModelService sharded(sharded_options);
  ASSERT_TRUE(sharded.LoadFromFile(arena_path_).ok());

  struct Case {
    const char* target;
    const char* body;
  };
  const Case cases[] = {
      {"/v1/diffusion",
       R"({"publisher": 0, "candidate": 5, "words": [1, 2, 3]})"},
      {"/v1/diffusion", R"({"publisher": 3, "candidate": 9, "words": [0]})"},
      {"/v1/diffusion",
       R"({"publisher": 7, "candidates": [1, 2, 3], "words": [4, 5]})"},
      {"/v1/topic_posterior", R"({"author": 4, "words": [1, 2]})"},
      {"/v1/link", R"({"source": 2, "target": 8})"},
  };
  for (const Case& c : cases) {
    HttpRequest request;
    request.method = "POST";
    request.path = c.target;
    request.body = c.body;
    HttpResponse lhs = single.Handle(request);
    HttpResponse rhs = sharded.Handle(request);
    ASSERT_EQ(lhs.status_code, 200) << c.target << ": " << lhs.body;
    EXPECT_EQ(lhs.body, rhs.body) << c.target;
  }
}

// ---------------------------------------------------------------------------
// Idle connection reaping (epoll event loop)

TEST(IdleTimeoutTest, EventLoopReapsIdleConnections) {
  HttpServerOptions options;
  options.mode = ServerMode::kEpoll;
  options.idle_timeout_seconds = 1;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse::Text(200, "{}", "application/json");
  });
  ASSERT_TRUE(server.Start().ok());
  auto* idle_closes =
      obs::Registry::Global().GetCounter("cold/serve/idle_closes");
  const int64_t before = idle_closes->Value();

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto first = client.Get("/");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);

  // Sit idle past the timeout: the sweep closes the connection and the
  // counter ticks.
  bool reaped = false;
  for (int i = 0; i < 600 && !reaped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    reaped = idle_closes->Value() > before && server.active_connections() == 0;
  }
  EXPECT_TRUE(reaped);
  EXPECT_GE(idle_closes->Value() - before, 1);

  // The next request on the reaped connection fails; a fresh connection
  // works.
  auto stale = client.Get("/");
  EXPECT_FALSE(stale.ok());
  HttpClient fresh;
  ASSERT_TRUE(fresh.Connect(server.port()).ok());
  auto recovered = fresh.Get("/");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->status_code, 200);
  server.Stop();
}

}  // namespace
}  // namespace cold::serve
