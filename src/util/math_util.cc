#include "util/math_util.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#if defined(__GLIBC__) || defined(__APPLE__)
// The reentrant lgamma is hidden behind feature macros under -std=c++20's
// strict-ANSI mode; declare it directly (it is always present in libm).
extern "C" double lgamma_r(double, int*);
#endif

namespace cold {

double LGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double LogSumExp(std::span<const double> x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double v : x) s += std::exp(v - m);
  return m + std::log(s);
}

double NormalizeInPlace(std::span<double> x) {
  double total = std::accumulate(x.begin(), x.end(), 0.0);
  if (total <= 0.0 || !std::isfinite(total)) {
    double u = x.empty() ? 0.0 : 1.0 / static_cast<double>(x.size());
    std::fill(x.begin(), x.end(), u);
    return total;
  }
  for (double& v : x) v /= total;
  return total;
}

double Mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double Variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  double m = Mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double Median(std::span<const double> x) {
  if (x.empty()) return 0.0;
  std::vector<double> copy(x.begin(), x.end());
  size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<long>(mid),
                   copy.end());
  double hi = copy[mid];
  if (copy.size() % 2 == 1) return hi;
  double lo =
      *std::max_element(copy.begin(), copy.begin() + static_cast<long>(mid));
  return 0.5 * (lo + hi);
}

double Entropy(std::span<const double> p) {
  double h = 0.0;
  for (double v : p) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

double KlDivergence(std::span<const double> p, std::span<const double> q,
                    double eps) {
  assert(p.size() == q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) kl += p[i] * (std::log(p[i]) - std::log(std::max(q[i], eps)));
  }
  return kl;
}

double L1Distance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

double CosineSimilarity(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<int> TopKIndices(std::span<const double> x, int k) {
  k = std::min<int>(k, static_cast<int>(x.size()));
  std::vector<int> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&x](int a, int b) {
                      if (x[static_cast<size_t>(a)] !=
                          x[static_cast<size_t>(b)]) {
                        return x[static_cast<size_t>(a)] >
                               x[static_cast<size_t>(b)];
                      }
                      return a < b;
                    });
  idx.resize(static_cast<size_t>(k));
  return idx;
}

double Digamma(double x) {
  assert(x > 0.0);
  double result = 0.0;
  // Shift x up until the asymptotic series is accurate.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  double inv = 1.0 / x;
  double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

}  // namespace cold
