#include "core/model_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string_view>
#include <vector>

#include "util/fileio.h"

namespace cold::core {

namespace {
constexpr char kMagic[8] = {'C', 'O', 'L', 'D', 'E', 'S', 'T', '1'};

cold::Status WriteArray(std::ofstream& out, const std::vector<double>& data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!out.good()) return cold::Status::IOError("short write");
  return cold::Status::OK();
}

cold::Status ReadArray(std::ifstream& in, size_t n,
                       std::vector<double>* data) {
  data->resize(n);
  in.read(reinterpret_cast<char*>(data->data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (in.gcount() != static_cast<std::streamsize>(n * sizeof(double))) {
    return cold::Status::IOError("truncated parameter array");
  }
  return cold::Status::OK();
}

/// A snapshot holding NaN/Inf would poison every downstream prediction
/// (and serve them to clients), so corruption is rejected at load time.
cold::Status CheckFinite(const std::vector<double>& data, const char* name) {
  for (size_t i = 0; i < data.size(); ++i) {
    if (!std::isfinite(data[i])) {
      return cold::Status::IOError("non-finite value in parameter array '" +
                                   std::string(name) + "' at index " +
                                   std::to_string(i));
    }
  }
  return cold::Status::OK();
}
}  // namespace

cold::Status SaveEstimates(const ColdEstimates& estimates,
                           const std::string& path) {
  if (estimates.U < 0 || estimates.C < 1 || estimates.K < 1 ||
      estimates.T < 1 || estimates.V < 1) {
    return cold::Status::InvalidArgument("estimates have invalid dimensions");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return cold::Status::IOError("cannot open for write: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  int32_t dims[5] = {estimates.U, estimates.C, estimates.K, estimates.T,
                     estimates.V};
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.pi));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.theta));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.eta));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.phi));
  COLD_RETURN_NOT_OK(WriteArray(out, estimates.psi));
  out.flush();
  if (!out.good()) return cold::Status::IOError("flush failed: " + path);
  return cold::Status::OK();
}

cold::Result<ColdEstimates> LoadEstimates(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return cold::Status::IOError("cannot open for read: " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return cold::Status::IOError("bad magic: not a COLD estimates file");
  }
  int32_t dims[5];
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  if (in.gcount() != sizeof(dims)) {
    return cold::Status::IOError("truncated header");
  }
  ColdEstimates est;
  est.U = dims[0];
  est.C = dims[1];
  est.K = dims[2];
  est.T = dims[3];
  est.V = dims[4];
  if (est.U < 0 || est.C < 1 || est.K < 1 || est.T < 1 || est.V < 1 ||
      est.U > (1 << 28) || est.C > (1 << 20) || est.K > (1 << 20) ||
      est.T > (1 << 20) || est.V > (1 << 28)) {
    return cold::Status::IOError("implausible dimensions in header");
  }
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.U) * est.C, &est.pi));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.C) * est.K, &est.theta));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.C) * est.C, &est.eta));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.K) * est.V, &est.phi));
  COLD_RETURN_NOT_OK(
      ReadArray(in, static_cast<size_t>(est.K) * est.C * est.T, &est.psi));
  // Must now be at EOF.
  char extra;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return cold::Status::IOError("trailing bytes after parameter arrays");
  }
  COLD_RETURN_NOT_OK(CheckFinite(est.pi, "pi"));
  COLD_RETURN_NOT_OK(CheckFinite(est.theta, "theta"));
  COLD_RETURN_NOT_OK(CheckFinite(est.eta, "eta"));
  COLD_RETURN_NOT_OK(CheckFinite(est.phi, "phi"));
  COLD_RETURN_NOT_OK(CheckFinite(est.psi, "psi"));
  return est;
}

namespace {

size_t AlignUp(size_t x) {
  return (x + kArenaAlignment - 1) & ~(kArenaAlignment - 1);
}

/// Fixed little-endian field offsets within the 64-byte arena header.
/// [0,8) magic, [8,12) version, [12,32) dims U C K T V, [32,36) top_m,
/// [36,40) payload CRC-32, [40,48) payload bytes, [48,52) header CRC-32
/// over [0,48), [52,64) zero padding.
constexpr uint32_t kArenaVersion = 1;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffDims = 12;
constexpr size_t kOffTopM = 32;
constexpr size_t kOffPayloadCrc = 36;
constexpr size_t kOffPayloadBytes = 40;
constexpr size_t kOffHeaderCrc = 48;

cold::Status CheckFiniteRaw(const double* data, size_t n, const char* name) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      return cold::Status::IOError("non-finite value in arena array '" +
                                   std::string(name) + "' at index " +
                                   std::to_string(i));
    }
  }
  return cold::Status::OK();
}

}  // namespace

ArenaLayout ComputeArenaLayout(int U, int C, int K, int T, int V,
                               int top_m) {
  ArenaLayout layout;
  size_t off = 0;
  layout.pi = off;
  off = AlignUp(off + static_cast<size_t>(U) * C * sizeof(double));
  layout.theta = off;
  off = AlignUp(off + static_cast<size_t>(C) * K * sizeof(double));
  layout.eta = off;
  off = AlignUp(off + static_cast<size_t>(C) * C * sizeof(double));
  layout.phi = off;
  off = AlignUp(off + static_cast<size_t>(K) * V * sizeof(double));
  layout.psi = off;
  off = AlignUp(off + static_cast<size_t>(K) * C * T * sizeof(double));
  layout.top_comm = off;
  off = AlignUp(off + static_cast<size_t>(U) * top_m * sizeof(int32_t));
  layout.payload_bytes = off;
  return layout;
}

cold::Status SaveArenaSnapshot(const ColdEstimates& estimates,
                               int top_communities,
                               const std::string& path) {
  if (estimates.U < 0 || estimates.C < 1 || estimates.K < 1 ||
      estimates.T < 1 || estimates.V < 1) {
    return cold::Status::InvalidArgument("estimates have invalid dimensions");
  }
  if (top_communities < 1) {
    return cold::Status::InvalidArgument("top_communities must be >= 1");
  }
  const int top_m = std::min(top_communities, estimates.C);
  const ArenaLayout layout =
      ComputeArenaLayout(estimates.U, estimates.C, estimates.K, estimates.T,
                         estimates.V, top_m);

  std::string blob(kArenaHeaderBytes + layout.payload_bytes, '\0');
  char* payload = blob.data() + kArenaHeaderBytes;
  auto copy_doubles = [&](size_t off, const std::vector<double>& src) {
    std::memcpy(payload + off, src.data(), src.size() * sizeof(double));
  };
  copy_doubles(layout.pi, estimates.pi);
  copy_doubles(layout.theta, estimates.theta);
  copy_doubles(layout.eta, estimates.eta);
  copy_doubles(layout.phi, estimates.phi);
  copy_doubles(layout.psi, estimates.psi);
  // The §5.2 offline step runs at save time, so opening the arena is O(1).
  auto* top_comm =
      reinterpret_cast<int32_t*>(payload + layout.top_comm);
  for (int i = 0; i < estimates.U; ++i) {
    std::vector<int> top = estimates.TopCommunitiesForUser(i, top_m);
    for (int j = 0; j < top_m; ++j) {
      top_comm[static_cast<size_t>(i) * top_m + j] =
          static_cast<int32_t>(top[static_cast<size_t>(j)]);
    }
  }

  char* header = blob.data();
  std::memcpy(header, kArenaMagic, sizeof(kArenaMagic));
  uint32_t version = kArenaVersion;
  std::memcpy(header + kOffVersion, &version, sizeof(version));
  int32_t dims[5] = {estimates.U, estimates.C, estimates.K, estimates.T,
                     estimates.V};
  std::memcpy(header + kOffDims, dims, sizeof(dims));
  int32_t top_m32 = top_m;
  std::memcpy(header + kOffTopM, &top_m32, sizeof(top_m32));
  uint32_t payload_crc =
      cold::Crc32(std::string_view(payload, layout.payload_bytes));
  std::memcpy(header + kOffPayloadCrc, &payload_crc, sizeof(payload_crc));
  uint64_t payload_bytes = layout.payload_bytes;
  std::memcpy(header + kOffPayloadBytes, &payload_bytes,
              sizeof(payload_bytes));
  uint32_t header_crc =
      cold::Crc32(std::string_view(header, kOffHeaderCrc));
  std::memcpy(header + kOffHeaderCrc, &header_crc, sizeof(header_crc));

  return cold::AtomicWriteFile(path, blob);
}

cold::Result<ArenaView> ValidateArena(const void* data, size_t size) {
  const char* bytes = static_cast<const char*>(data);
  if (size < kArenaHeaderBytes) {
    return cold::Status::IOError("arena shorter than its header");
  }
  if (std::memcmp(bytes, kArenaMagic, sizeof(kArenaMagic)) != 0) {
    return cold::Status::IOError("bad magic: not a COLD arena snapshot");
  }
  uint32_t header_crc = 0;
  std::memcpy(&header_crc, bytes + kOffHeaderCrc, sizeof(header_crc));
  if (header_crc != cold::Crc32(std::string_view(bytes, kOffHeaderCrc))) {
    return cold::Status::IOError("arena header CRC mismatch");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes + kOffVersion, sizeof(version));
  if (version != kArenaVersion) {
    return cold::Status::IOError("unsupported arena version " +
                                 std::to_string(version));
  }
  int32_t dims[5];
  std::memcpy(dims, bytes + kOffDims, sizeof(dims));
  int32_t top_m = 0;
  std::memcpy(&top_m, bytes + kOffTopM, sizeof(top_m));
  const int U = dims[0], C = dims[1], K = dims[2], T = dims[3], V = dims[4];
  if (U < 0 || C < 1 || K < 1 || T < 1 || V < 1 || U > (1 << 28) ||
      C > (1 << 20) || K > (1 << 20) || T > (1 << 20) || V > (1 << 28) ||
      top_m < 1 || top_m > C) {
    return cold::Status::IOError("implausible dimensions in arena header");
  }
  const ArenaLayout layout = ComputeArenaLayout(U, C, K, T, V, top_m);
  uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, bytes + kOffPayloadBytes,
              sizeof(payload_bytes));
  if (payload_bytes != layout.payload_bytes ||
      size != kArenaHeaderBytes + layout.payload_bytes) {
    return cold::Status::IOError("arena size mismatch (torn write?)");
  }
  const char* payload = bytes + kArenaHeaderBytes;
  uint32_t payload_crc = 0;
  std::memcpy(&payload_crc, bytes + kOffPayloadCrc, sizeof(payload_crc));
  if (payload_crc !=
      cold::Crc32(std::string_view(payload, layout.payload_bytes))) {
    return cold::Status::IOError("arena payload CRC mismatch");
  }

  ArenaView out;
  out.view.U = U;
  out.view.C = C;
  out.view.K = K;
  out.view.T = T;
  out.view.V = V;
  out.view.pi = reinterpret_cast<const double*>(payload + layout.pi);
  out.view.theta = reinterpret_cast<const double*>(payload + layout.theta);
  out.view.eta = reinterpret_cast<const double*>(payload + layout.eta);
  out.view.phi = reinterpret_cast<const double*>(payload + layout.phi);
  out.view.psi = reinterpret_cast<const double*>(payload + layout.psi);
  out.top_comm =
      reinterpret_cast<const int32_t*>(payload + layout.top_comm);
  out.top_m = top_m;

  COLD_RETURN_NOT_OK(
      CheckFiniteRaw(out.view.pi, static_cast<size_t>(U) * C, "pi"));
  COLD_RETURN_NOT_OK(
      CheckFiniteRaw(out.view.theta, static_cast<size_t>(C) * K, "theta"));
  COLD_RETURN_NOT_OK(
      CheckFiniteRaw(out.view.eta, static_cast<size_t>(C) * C, "eta"));
  COLD_RETURN_NOT_OK(
      CheckFiniteRaw(out.view.phi, static_cast<size_t>(K) * V, "phi"));
  COLD_RETURN_NOT_OK(CheckFiniteRaw(
      out.view.psi, static_cast<size_t>(K) * C * T, "psi"));
  for (size_t i = 0; i < static_cast<size_t>(U) * top_m; ++i) {
    if (out.top_comm[i] < 0 || out.top_comm[i] >= C) {
      return cold::Status::IOError("arena TopComm entry out of range");
    }
  }
  return out;
}

bool IsArenaFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[sizeof(kArenaMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kArenaMagic, sizeof(kArenaMagic)) == 0;
}

}  // namespace cold::core
