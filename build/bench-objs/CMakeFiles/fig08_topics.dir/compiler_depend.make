# Empty compiler generated dependencies file for fig08_topics.
# This may be replaced when dependencies are built.
