// Tokenization with stop-word filtering, matching the paper's preprocessing
// ("after removing stop words ...", §6.1).
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace cold::text {

/// \brief Options controlling tokenization.
struct TokenizerOptions {
  /// Lower-case ASCII letters before emitting tokens.
  bool lowercase = true;
  /// Drop tokens shorter than this many bytes.
  int min_token_length = 2;
  /// Drop pure-digit tokens.
  bool drop_numbers = true;
};

/// \brief Splits raw text into word tokens on non-alphanumeric boundaries and
/// filters stop words.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// \brief Adds `word` to the stop list (applied after lowercasing).
  void AddStopWord(std::string_view word);

  /// \brief Adds a default English stop list (articles, pronouns,
  /// prepositions, auxiliaries).
  void AddDefaultStopWords();

  /// \brief Tokenizes `content` into filtered tokens.
  std::vector<std::string> Tokenize(std::string_view content) const;

 private:
  bool IsStopWord(const std::string& token) const;

  TokenizerOptions options_;
  std::unordered_set<std::string> stop_words_;
};

}  // namespace cold::text
