// Synthetic Weibo-like data generator: the substitution for the paper's two
// Sina Weibo crawls (DESIGN.md §1). Draws a planted COLD model — mixed
// memberships, community topic mixtures, multimodal community-specific
// temporal profiles, inter-community influence — then emits posts, a
// follower graph, retweet cascades driven by the topic-sensitive influence
// zeta_kcc' = theta_ck * theta_c'k * eta_cc', and the retweet-derived
// interaction network.
#pragma once

#include <cstdint>

#include "data/social_dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::data {

/// \brief Knobs of the synthetic generative process. Defaults produce a
/// laptop-scale dataset (~1.2K users, ~25K posts) with clear community/topic
/// structure.
struct SyntheticConfig {
  int num_users = 1200;
  int num_communities = 10;
  int num_topics = 20;
  int num_time_slices = 48;

  /// Vocabulary: each topic owns `core_words_per_topic` salient words (named
  /// after the topic so extracted topics are human-checkable) plus a shared
  /// Zipf-distributed background pool.
  int core_words_per_topic = 40;
  int background_words = 600;
  /// Probability mass a topic puts on its own core words.
  double core_mass = 0.85;

  /// Mean posts per user (geometric-like spread, min 1).
  double posts_per_user = 20.0;
  /// Mean words per post (microblog-short; min 3).
  double words_per_post = 10.0;

  /// Dirichlet concentration of user memberships pi (small => users engage
  /// in few communities, matching [34] as cited in §5.2).
  double pi_concentration = 0.08;
  /// Dirichlet concentration of community topic mixtures theta.
  double theta_concentration = 0.25;

  /// Temporal profiles psi_kc: every topic has an "event" burst whose onset
  /// within a community depends on the community's interest rank — highly
  /// interested communities pick the topic up earlier and keep it alive
  /// longer (the Fig-7 lag phenomenon §5.3 measures); plus optional minor
  /// bursts for multimodality (the property COLD's multinomial psi captures
  /// and TOT's Beta cannot, §3.3), plus a uniform floor.
  double burst_floor = 0.15;
  /// Maximum onset delay (slices) between the most and least interested
  /// communities.
  double lag_slices = 5.0;
  /// Base burst width (slices); scaled up with interest (durability).
  double burst_width = 2.0;
  /// Probability of one extra minor burst per (topic, community).
  double minor_burst_prob = 0.5;

  /// Inter-community influence eta: within-community strength, plus a few
  /// strong cross-community "diffusion path" pairs, plus a weak base rate.
  double eta_within = 0.35;
  double eta_path = 0.20;
  double eta_base = 0.01;
  /// Number of strong cross-community pairs.
  int num_diffusion_paths = 12;

  /// Follower graph: expected followees sampled per user; targets are chosen
  /// through the community structure so links carry community signal.
  int follows_per_user = 12;

  /// Average retweet probability over exposed (follower, post) pairs; raw
  /// zeta-derived probabilities are rescaled to hit this rate.
  double target_retweet_rate = 0.08;

  /// Probability that a follower actually sees any given post (feed
  /// attention). Unseen (post, follower) pairs appear in neither the
  /// retweeter nor the ignorer set, which keeps per-pair interaction
  /// records sparse — the real-world regime §5.2 contrasts with stable
  /// community-level aggregates.
  double attention_prob = 0.45;

  /// Mixing weight of the pure community-block term in the cascade
  /// propensity: p(retweet) ~ pi pi eta (mix + (1-mix) K^2 theta theta).
  /// Users retweet partly out of tie strength alone (the community
  /// backbone) and partly out of topical interest; 0 makes diffusion purely
  /// topic-driven, 1 purely structural.
  double community_mix = 0.35;

  uint64_t seed = 42;
};

/// \brief Generates a complete SocialDataset from a planted COLD process.
class SyntheticSocialGenerator {
 public:
  explicit SyntheticSocialGenerator(SyntheticConfig config);

  /// \brief Runs the full generative pipeline. Returns an error if the
  /// config is inconsistent (non-positive sizes etc.).
  cold::Result<SocialDataset> Generate();

 private:
  cold::Status Validate() const;

  void DrawGroundTruth(SocialDataset* out);
  void GeneratePosts(SocialDataset* out);
  void GenerateFollowerGraph(SocialDataset* out);
  void GenerateRetweets(SocialDataset* out);
  void BuildInteractionNetwork(SocialDataset* out);

  /// User-to-user retweet probability for a post on topic k, before global
  /// rate calibration (Eq. 7 composed with ground truth).
  double RawDiffusionProbability(const GroundTruth& truth, UserId i,
                                 UserId follower, int k) const;

  SyntheticConfig config_;
  cold::RandomSampler sampler_;
  /// Per-community cumulative membership tables for weighted user sampling.
  std::vector<std::vector<double>> community_user_cdf_;
};

/// \brief Draws a sample from a geometric-ish count distribution with the
/// given mean and minimum (used for posts-per-user and words-per-post).
int SampleCount(cold::RandomSampler* sampler, double mean, int min_value);

}  // namespace cold::data
