// Core of the bench-regression gate (tools/bench_compare.cc, the
// bench_regression ctest): diffs a fresh BENCH_*.json against a committed
// baseline with a per-metric tolerance band.
//
// Throughput metrics are discovered structurally rather than by schema:
// any number (or array of numbers, compared by max) under a key containing
// "per_sec" — which matches tokens_per_sec, links_per_sec,
// serial_tokens_per_sec, tokens_per_second, ... — is compared at the same
// JSON path in both files. A metric is a regression when
//
//   current < baseline * (1 - tolerance)
//
// and missing when the baseline has it but the current file does not (so a
// bench silently dropping a series also fails the gate). Improvements and
// extra metrics in the current file never fail. Header-only so the
// bench_compare_test can drive an injected regression through the exact
// production comparison.
#pragma once

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "serve/json.h"

namespace cold::bench {

/// \brief One compared metric: its JSON path, both values, and the
/// relative delta ((current - baseline) / baseline).
struct MetricDelta {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  double delta = 0.0;
  bool regression = false;
  /// Present in the baseline, absent (or non-numeric) in the current file.
  bool missing = false;
};

struct CompareResult {
  std::vector<MetricDelta> metrics;
  int regressions = 0;
  int missing = 0;

  bool ok() const { return regressions == 0 && missing == 0; }
};

namespace internal {

inline bool IsThroughputKey(const std::string& key) {
  return key.find("per_sec") != std::string::npos;
}

/// A throughput value is a positive number or a non-empty array of
/// numbers (thread/sweep series), reduced to its max — the series'
/// noise-robust "best sustained rate" summary.
inline bool ThroughputValue(const serve::Json& node, double* out) {
  if (node.is_number()) {
    *out = node.as_number();
    return true;
  }
  if (node.is_array() && !node.as_array().empty()) {
    double best = 0.0;
    for (const serve::Json& item : node.as_array()) {
      if (!item.is_number()) return false;
      best = std::max(best, item.as_number());
    }
    *out = best;
    return true;
  }
  return false;
}

/// Returns the node at `path` ("a/b/3/c": object keys and array indices)
/// or nullptr.
inline const serve::Json* Lookup(const serve::Json& root,
                                 const std::string& path) {
  const serve::Json* node = &root;
  size_t pos = 0;
  while (pos < path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    std::string segment = path.substr(pos, next - pos);
    pos = next + 1;
    if (node->is_object()) {
      node = node->Find(segment);
    } else if (node->is_array()) {
      size_t index = 0;
      if (segment.empty()) return nullptr;
      for (char c : segment) {
        if (c < '0' || c > '9') return nullptr;
        index = index * 10 + static_cast<size_t>(c - '0');
      }
      const auto& arr = node->as_array();
      if (index >= arr.size()) return nullptr;
      node = &arr[index];
    } else {
      return nullptr;
    }
    if (node == nullptr) return nullptr;
  }
  return node;
}

/// Depth-first walk of the baseline collecting (path, value) for every
/// throughput metric. Baselines <= 0 are skipped (a zero rate carries no
/// tolerance band).
inline void CollectMetrics(const serve::Json& node, const std::string& path,
                           std::vector<std::pair<std::string, double>>* out) {
  if (node.is_object()) {
    for (const auto& [key, child] : node.as_object()) {
      std::string child_path = path.empty() ? key : path + "/" + key;
      double value = 0.0;
      if (IsThroughputKey(key) && ThroughputValue(child, &value)) {
        if (value > 0.0) out->emplace_back(child_path, value);
        continue;
      }
      CollectMetrics(child, child_path, out);
    }
  } else if (node.is_array()) {
    const auto& arr = node.as_array();
    for (size_t i = 0; i < arr.size(); ++i) {
      CollectMetrics(arr[i], path + "/" + std::to_string(i), out);
    }
  }
}

}  // namespace internal

/// \brief Compares every throughput metric of `baseline` against the same
/// path in `current`. `tolerance` is the allowed relative drop (0.10 =
/// 10%).
inline CompareResult CompareBenchJson(const serve::Json& baseline,
                                      const serve::Json& current,
                                      double tolerance) {
  CompareResult result;
  std::vector<std::pair<std::string, double>> expected;
  internal::CollectMetrics(baseline, "", &expected);
  for (const auto& [path, base_value] : expected) {
    MetricDelta delta;
    delta.path = path;
    delta.baseline = base_value;
    const serve::Json* node = internal::Lookup(current, path);
    double current_value = 0.0;
    if (node == nullptr ||
        !internal::ThroughputValue(*node, &current_value)) {
      delta.missing = true;
      result.missing++;
    } else {
      delta.current = current_value;
      delta.delta = (current_value - base_value) / base_value;
      delta.regression = current_value < base_value * (1.0 - tolerance);
      if (delta.regression) result.regressions++;
    }
    result.metrics.push_back(std::move(delta));
  }
  return result;
}

/// \brief Human-readable delta report, worst metrics flagged.
inline void PrintDeltaReport(const CompareResult& result, double tolerance,
                             std::ostream& os) {
  os << "bench_compare: " << result.metrics.size() << " metric(s), tolerance "
     << static_cast<int>(tolerance * 100.0 + 0.5) << "%\n";
  for (const MetricDelta& m : result.metrics) {
    char line[512];
    if (m.missing) {
      std::snprintf(line, sizeof(line),
                    "  MISSING    %-56s baseline %.0f, absent in current",
                    m.path.c_str(), m.baseline);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-10s %-56s %.0f -> %.0f (%+.1f%%)",
                    m.regression ? "REGRESSION" : "ok", m.path.c_str(),
                    m.baseline, m.current, m.delta * 100.0);
    }
    os << line << "\n";
  }
  if (!result.ok()) {
    os << "FAIL: " << result.regressions << " regression(s), "
       << result.missing << " missing metric(s)\n";
  } else {
    os << "PASS: no throughput regressions\n";
  }
}

}  // namespace cold::bench
