file(REMOVE_RECURSE
  "CMakeFiles/cold_generate.dir/cold_generate.cc.o"
  "CMakeFiles/cold_generate.dir/cold_generate.cc.o.d"
  "cold_generate"
  "cold_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
