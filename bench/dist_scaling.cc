// Multi-node distributed training scalability (DESIGN.md §12).
//
// Runs the real distributed trainer — N in-process nodes over loopback
// transports, the exact code path `cold_train --nodes N` forks — at node
// counts {1, 2, 4} and reports, per node count:
//   - tokens/sec over the sharded-superstep wall time;
//   - measured comm bytes on the wire (coordinator send + recv, so every
//     frame is counted exactly once) total and per superstep;
//   - mean superstep wall seconds and barrier wait seconds;
//   - the ClusterModel's *simulated* projection for the same node count
//     (explicitly labeled: a model estimate, not a measurement) so the
//     §10 cost model can be validated against the real thing.
//
// The run double-checks the tentpole determinism guarantee: every node
// count must finish with byte-identical serialized state to the 1-node
// run, and every rank's replica must match rank 0. Any mismatch exits 1.
//
// Results land as JSON in --out (default BENCH_dist.json). --smoke shrinks
// the dataset to seconds of runtime and validates the emitted JSON —
// wired up as the `bench_dist_smoke` ctest and the bench_regression gate's
// dist leg (baseline: bench/baselines/dist.json).
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "core/parallel_sampler.h"
#include "dist/dist_trainer.h"
#include "serve/json.h"
#include "util/stopwatch.h"

namespace {

using namespace cold;

struct BenchSetup {
  data::SocialDataset dataset;
  core::ColdConfig config;
  int64_t tokens = 0;
};

BenchSetup MakeSetup(bool smoke) {
  data::SyntheticConfig data_config = bench::BenchDataConfig();
  data_config.num_users = std::max(
      20, static_cast<int>(data_config.num_users * (smoke ? 0.05 : 0.5)));
  BenchSetup setup{bench::GenerateBenchData(data_config),
                   bench::BenchColdConfig(8, 12, smoke ? 4 : 12)};
  setup.config.burn_in = 0;
  setup.config.sample_lag = 1;
  for (text::PostId d = 0; d < setup.dataset.posts.num_posts(); ++d) {
    setup.tokens += setup.dataset.posts.length(d);
  }
  return setup;
}

struct NodeCountResult {
  dist::DistStats stats;
  double measured_seconds = 0.0;
  std::string state_bytes;
  bool replicas_match = true;
};

NodeCountResult RunNodes(const BenchSetup& setup, int num_nodes) {
  std::vector<std::unique_ptr<dist::DistTrainer>> owned;
  std::vector<dist::DistTrainer*> nodes;
  for (int rank = 0; rank < num_nodes; ++rank) {
    dist::DistConfig config;
    config.num_nodes = num_nodes;
    config.node_rank = rank;
    config.cold = setup.config;
    config.engine.threads_per_node = 1;
    owned.push_back(std::make_unique<dist::DistTrainer>(
        config, setup.dataset.posts, &setup.dataset.interactions));
    nodes.push_back(owned.back().get());
  }
  Stopwatch watch;
  auto st = dist::DistTrainer::RunLocalCluster(nodes);
  NodeCountResult result;
  result.measured_seconds = watch.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "distributed run (%d nodes) failed: %s\n", num_nodes,
                 st.ToString().c_str());
    std::exit(1);
  }
  result.stats = nodes[0]->stats();
  st = nodes[0]->SerializeState(&result.state_bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "serialize failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  for (int rank = 1; rank < num_nodes; ++rank) {
    std::string peer_bytes;
    if (!nodes[rank]->SerializeState(&peer_bytes).ok() ||
        peer_bytes != result.state_bytes) {
      result.replicas_match = false;
    }
  }
  return result;
}

/// The §10 simulated-cluster projection for the same config at
/// `num_nodes`: runs the single-process engine with N *simulated* nodes
/// and asks the ClusterModel for a wall-time estimate. Reported alongside
/// the measurement purely for model validation — it is not a measurement.
double SimulatedSeconds(const BenchSetup& setup, int num_nodes) {
  engine::ClusterModel cluster;        // 1 GB/s NIC
  cluster.sync_latency_sec = 5e-4;     // sub-ms MPI-style barrier
  engine::EngineOptions options;
  options.num_nodes = num_nodes;
  core::ParallelColdTrainer trainer(setup.config, setup.dataset.posts,
                                    &setup.dataset.interactions, options);
  auto st = trainer.Init();
  if (st.ok()) st = trainer.Train();
  if (!st.ok()) {
    std::fprintf(stderr, "simulated run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return trainer.SimulatedWallSeconds(cluster);
}

bool ValidateJson(const std::string& path) {
  auto parsed = bench::LoadJsonFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "smoke: invalid JSON: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  const serve::Json& root = parsed.ValueOrDie();
  const serve::Json* counts = root.Find("node_counts");
  if (counts == nullptr || !counts->is_array() ||
      counts->as_array().size() < 2) {
    std::fprintf(stderr, "smoke: need >= 2 node counts\n");
    return false;
  }
  for (const serve::Json& point : counts->as_array()) {
    const serve::Json* tps = point.Find("tokens_per_sec");
    if (tps == nullptr || !tps->is_number() || !(tps->as_number() > 0.0)) {
      std::fprintf(stderr, "smoke: tokens/sec not > 0\n");
      return false;
    }
    const serve::Json* det = point.Find("bit_identical_to_single_node");
    if (det == nullptr || !det->is_bool() || !det->as_bool()) {
      std::fprintf(stderr, "smoke: determinism flag not true\n");
      return false;
    }
    const serve::Json* nodes = point.Find("nodes");
    const serve::Json* comm = point.Find("comm_bytes_total");
    if (nodes == nullptr || comm == nullptr || !comm->is_number() ||
        (nodes->as_number() > 1.0 && !(comm->as_number() > 0.0))) {
      std::fprintf(stderr, "smoke: multi-node run reported no comm bytes\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  bench::QuietLogs();

  std::string out_path = "BENCH_dist.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 1;
    }
  }
  bench::PrintHeader("Distributed trainer: real multi-node scaling");

  const BenchSetup setup = MakeSetup(smoke);
  std::printf("posts=%d links=%lld tokens=%lld supersteps=%d\n",
              setup.dataset.posts.num_posts(),
              static_cast<long long>(setup.dataset.interactions.num_edges()),
              static_cast<long long>(setup.tokens), setup.config.iterations);

  serve::Json root = serve::Json::MakeObject();
  root.Set("bench", "dist_scaling");
  root.Set("num_posts", static_cast<double>(setup.dataset.posts.num_posts()));
  root.Set("tokens", static_cast<double>(setup.tokens));
  serve::Json counts = serve::Json::MakeArray();

  std::printf("%-7s %-13s %-13s %-14s %-13s %-13s\n", "nodes", "tokens/sec",
              "measured (s)", "simulated (s)", "comm bytes", "barrier (s)");
  std::string reference_state;
  bool all_deterministic = true;
  for (int num_nodes : {1, 2, 4}) {
    NodeCountResult run = RunNodes(setup, num_nodes);
    if (reference_state.empty()) reference_state = run.state_bytes;
    const bool identical =
        run.replicas_match && run.state_bytes == reference_state;
    all_deterministic = all_deterministic && identical;

    const dist::DistStats& stats = run.stats;
    double tps = stats.superstep_seconds > 0.0
                     ? static_cast<double>(setup.tokens) *
                           stats.supersteps_run / stats.superstep_seconds
                     : 0.0;
    // Star topology: every frame crosses the coordinator exactly once, so
    // rank 0's send + recv totals are the whole cluster's wire traffic.
    int64_t comm_bytes = stats.bytes_sent + stats.bytes_received;
    double simulated = SimulatedSeconds(setup, num_nodes);
    std::printf("%-7d %-13.0f %-13.3f %-14.3f %-13lld %-13.4f\n", num_nodes,
                tps, run.measured_seconds, simulated,
                static_cast<long long>(comm_bytes),
                stats.barrier_wait_seconds);

    serve::Json point = serve::Json::MakeObject();
    point.Set("nodes", static_cast<double>(num_nodes));
    point.Set("tokens_per_sec", tps);
    point.Set("measured_seconds", run.measured_seconds);
    // Model projection from the §10 simulated cluster — NOT a measurement.
    point.Set("simulated_seconds_model", simulated);
    point.Set("comm_bytes_total", static_cast<double>(comm_bytes));
    point.Set("comm_bytes_per_superstep",
              stats.supersteps_run > 0
                  ? static_cast<double>(comm_bytes) / stats.supersteps_run
                  : 0.0);
    point.Set("superstep_seconds_mean",
              stats.supersteps_run > 0
                  ? stats.superstep_seconds / stats.supersteps_run
                  : 0.0);
    point.Set("barrier_wait_seconds", stats.barrier_wait_seconds);
    point.Set("owned_chunks_rank0", static_cast<double>(stats.owned_chunks));
    point.Set("total_chunks", static_cast<double>(stats.total_chunks));
    point.Set("bit_identical_to_single_node", identical);
    counts.Append(point);
  }
  root.Set("node_counts", counts);

  if (!all_deterministic) {
    std::fprintf(stderr,
                 "FAIL: distributed runs are not bit-identical across node "
                 "counts\n");
    return 1;
  }
  std::printf("all node counts bit-identical to the single-node run\n");

  if (!bench::WriteJsonFile(root, out_path)) return 1;
  std::printf("results written to %s\n", out_path.c_str());

  if (smoke && !ValidateJson(out_path)) return 1;
  bench::DumpTelemetryIfRequested();
  return 0;
}
