// Serialization of fitted ColdEstimates, so a model trained once can be
// shipped to prediction services (the offline/online split of §5.2).
//
// Two formats:
//
//  - "COLDEST1" (legacy): magic, five int32 dims (U, C, K, T, V), then the
//    five parameter arrays as little-endian doubles in declaration order
//    (pi, theta, eta, phi, psi). Loaded by copy into std::vectors.
//
//  - "COLDARN1" (snapshot arena): a flat, pointer-free, CRC-checked layout
//    designed to be mapped read-only and served zero-copy. A 64-byte
//    header (magic, version, dims, top_m, payload CRC-32, payload size,
//    header CRC-32) is followed by the five parameter arrays plus the
//    precomputed per-user TopComm table (§5.2's offline artifact) as flat
//    int32 rows, every section 64-byte aligned. Because TopComm ships in
//    the file, opening an arena requires no per-user work — a serving
//    hot-reload is validate + mmap + pointer swap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/cold_estimates.h"
#include "util/status.h"

namespace cold::core {

/// \brief Writes `estimates` to `path` (overwrites).
cold::Status SaveEstimates(const ColdEstimates& estimates,
                           const std::string& path);

/// \brief Reads estimates previously written by SaveEstimates. Validates
/// magic, dimensions and payload size.
cold::Result<ColdEstimates> LoadEstimates(const std::string& path);

/// Arena sections are aligned to this boundary (cache line; also keeps
/// every double array 8-byte aligned within a page-aligned mapping).
inline constexpr size_t kArenaAlignment = 64;
/// Fixed arena header size; the payload starts at this file offset.
inline constexpr size_t kArenaHeaderBytes = 64;
inline constexpr char kArenaMagic[8] = {'C', 'O', 'L', 'D',
                                        'A', 'R', 'N', '1'};

/// \brief Byte offsets of each arena section relative to the payload start
/// (file offset kArenaHeaderBytes). Purely a function of the dimensions —
/// the file stores no offsets, so there is nothing to corrupt.
struct ArenaLayout {
  size_t pi = 0, theta = 0, eta = 0, phi = 0, psi = 0, top_comm = 0;
  size_t payload_bytes = 0;
};
ArenaLayout ComputeArenaLayout(int U, int C, int K, int T, int V, int top_m);

/// \brief Writes a COLDARN1 snapshot of `estimates` to `path`, atomically
/// (tmp + fsync + rename), with TopComm rows of min(top_communities, C)
/// entries baked in.
cold::Status SaveArenaSnapshot(const ColdEstimates& estimates,
                               int top_communities, const std::string& path);

/// \brief Validated pointers into an arena byte range.
struct ArenaView {
  EstimatesView view;
  const int32_t* top_comm = nullptr;
  int top_m = 0;
};

/// \brief Validates `size` bytes at `data` as a COLDARN1 arena: magic,
/// version, header CRC, plausible dimensions, exact size, payload CRC,
/// finite parameters, in-range TopComm entries. The returned pointers
/// alias `data`, which must stay mapped while they are in use.
cold::Result<ArenaView> ValidateArena(const void* data, size_t size);

/// \brief True when `path` begins with the COLDARN1 magic (format
/// sniffing; false on read errors or short files).
bool IsArenaFile(const std::string& path);

}  // namespace cold::core
