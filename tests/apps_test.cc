#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/diffusion_graph.h"
#include "apps/independent_cascade.h"
#include "apps/influence.h"
#include "apps/patterns.h"
#include "core/cold.h"
#include "data/synthetic.h"

namespace cold::apps {
namespace {

// --------------------------------------------------- Independent Cascade --

DiffusionGraph LineGraph(double p) {
  // 0 -> 1 -> 2 -> 3 with probability p each.
  DiffusionGraph g(4, std::vector<double>(4, 0.0));
  g[0][1] = g[1][2] = g[2][3] = p;
  return g;
}

TEST(IndependentCascadeTest, DeterministicEdges) {
  cold::RandomSampler sampler(1);
  DiffusionGraph certain = LineGraph(1.0);
  EXPECT_EQ(SimulateCascadeOnce(certain, {0}, &sampler), 4);
  DiffusionGraph never = LineGraph(0.0);
  EXPECT_EQ(SimulateCascadeOnce(never, {0}, &sampler), 1);
  EXPECT_EQ(SimulateCascadeOnce(never, {3}, &sampler), 1);
}

TEST(IndependentCascadeTest, SeedsCountedOnce) {
  cold::RandomSampler sampler(2);
  DiffusionGraph never = LineGraph(0.0);
  EXPECT_EQ(SimulateCascadeOnce(never, {0, 0, 1}, &sampler), 2);
}

TEST(IndependentCascadeTest, ExpectedSpreadMatchesAnalytic) {
  cold::RandomSampler sampler(3);
  DiffusionGraph g = LineGraph(0.5);
  // E[spread from 0] = 1 + 0.5 + 0.25 + 0.125 = 1.875.
  double spread = ExpectedSpread(g, {0}, 20000, &sampler);
  EXPECT_NEAR(spread, 1.875, 0.05);
}

TEST(IndependentCascadeTest, SingleSeedInfluenceOrdersLineGraph) {
  auto influence = SingleSeedInfluence(LineGraph(0.8), 3000, 7);
  ASSERT_EQ(influence.size(), 4u);
  // Earlier nodes on the line reach more.
  EXPECT_GT(influence[0], influence[1]);
  EXPECT_GT(influence[1], influence[2]);
  EXPECT_GT(influence[2], influence[3]);
  EXPECT_NEAR(influence[3], 1.0, 1e-9);
}

TEST(IndependentCascadeTest, GreedySelectionPicksSpreaders) {
  // Two disconnected strong lines: greedy with budget 2 should take one
  // head from each.
  DiffusionGraph g(6, std::vector<double>(6, 0.0));
  g[0][1] = g[1][2] = 1.0;
  g[3][4] = g[4][5] = 1.0;
  auto seeds = GreedySeedSelection(g, 2, 200, 11);
  ASSERT_EQ(seeds.size(), 2u);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds[0], 0);
  EXPECT_EQ(seeds[1], 3);
}

TEST(IndependentCascadeTest, ZeroTrialsGiveZero) {
  cold::RandomSampler sampler(4);
  EXPECT_DOUBLE_EQ(ExpectedSpread(LineGraph(1.0), {0}, 0, &sampler), 0.0);
}

// ------------------------------------------------------ Influence ranking --

core::ColdEstimates ToyEstimates() {
  core::ColdEstimates est;
  est.U = 6;
  est.C = 3;
  est.K = 2;
  est.T = 4;
  est.V = 4;
  // Community 0 loves topic 0 and influences community 1 strongly.
  est.theta = {0.9, 0.1,   // c0
               0.6, 0.4,   // c1
               0.1, 0.9};  // c2
  est.eta = {0.05, 0.60, 0.01,   // c0 -> *
             0.01, 0.05, 0.30,   // c1 -> *
             0.01, 0.01, 0.05};  // c2 -> *
  // Users: two per community, sharply assigned.
  est.pi = {0.8, 0.1, 0.1, 0.8, 0.1, 0.1,
            0.1, 0.8, 0.1, 0.1, 0.8, 0.1,
            0.1, 0.1, 0.8, 0.1, 0.1, 0.8};
  est.phi = {0.7, 0.1, 0.1, 0.1,
             0.1, 0.1, 0.1, 0.7};
  est.psi.assign(static_cast<size_t>(est.K * est.C * est.T), 1.0 / est.T);
  return est;
}

TEST(InfluenceTest, TopicGraphUsesZeta) {
  core::ColdEstimates est = ToyEstimates();
  DiffusionGraph g = BuildTopicDiffusionGraph(est, 0, /*max_edge_prob=*/0.0);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0][1], est.Zeta(0, 0, 1));
  EXPECT_DOUBLE_EQ(g[0][0], 0.0);  // diagonal cleared
  // Rescaled version caps the max edge.
  DiffusionGraph scaled = BuildTopicDiffusionGraph(est, 0, 0.5);
  double max_edge = 0.0;
  for (const auto& row : scaled) {
    for (double v : row) max_edge = std::max(max_edge, v);
  }
  EXPECT_NEAR(max_edge, 0.5, 1e-9);
}

TEST(InfluenceTest, RanksSourceCommunityFirstOnItsTopic) {
  core::ColdEstimates est = ToyEstimates();
  auto ranked = RankCommunitiesByInfluence(est, /*topic=*/0, 2000, 13);
  ASSERT_EQ(ranked.size(), 3u);
  // Community 0: highest theta on topic 0 and a strong outgoing edge.
  EXPECT_EQ(ranked[0].community, 0);
  EXPECT_GE(ranked[0].influence_degree, ranked[1].influence_degree);
  EXPECT_NEAR(ranked[0].topic_interest, 0.9, 1e-9);
}

TEST(InfluenceTest, UserInfluenceFollowsMembership) {
  core::ColdEstimates est = ToyEstimates();
  auto ranked = RankCommunitiesByInfluence(est, 0, 2000, 13);
  auto users = UserInfluenceDegrees(est, ranked);
  ASSERT_EQ(users.size(), 6u);
  // Users 0 and 3 belong to the most influential community.
  EXPECT_GT(users[0], users[4]);
  EXPECT_GT(users[3], users[5]);
}

TEST(InfluenceTest, PentagonCoordinatesInsideUnitDisk) {
  core::ColdEstimates est = ToyEstimates();
  auto ranked = RankCommunitiesByInfluence(est, 0, 500, 13);
  auto coords = PentagonCoordinates(est, ranked, 5);
  ASSERT_EQ(coords.size(), 6u);
  for (const auto& [x, y] : coords) {
    EXPECT_LE(std::sqrt(x * x + y * y), 1.0 + 1e-9);
  }
}

// ---------------------------------------------------------------- Patterns --

core::ColdEstimates PatternEstimates() {
  core::ColdEstimates est;
  est.U = 1;
  est.C = 12;
  est.K = 1;
  est.T = 10;
  est.V = 1;
  est.pi.assign(static_cast<size_t>(est.C), 1.0 / est.C);
  est.phi = {1.0};
  est.eta.assign(static_cast<size_t>(est.C) * est.C, 0.1);
  est.theta.resize(static_cast<size_t>(est.C));
  est.psi.resize(static_cast<size_t>(est.C) * est.T);
  // Descending interest; the three highest-interest communities peak early
  // (slice 2), the rest peak late (slice 5) — the planted Fig-7 lag.
  for (int c = 0; c < est.C; ++c) {
    est.theta[static_cast<size_t>(c)] = std::pow(0.5, c) * 0.5 + 1e-6;
    int peak = (c < 3) ? 2 : 5;
    for (int t = 0; t < est.T; ++t) {
      est.psi[static_cast<size_t>(c) * est.T + t] =
          (t == peak) ? 0.8 : 0.2 / (est.T - 1);
    }
  }
  return est;
}

TEST(PatternsTest, FluctuationScatterCoversAllPairs) {
  auto est = PatternEstimates();
  auto points = FluctuationScatter(est);
  EXPECT_EQ(points.size(), static_cast<size_t>(est.K * est.C));
  for (const auto& p : points) {
    EXPECT_GE(p.fluctuation, 0.0);
    EXPECT_GT(p.interest, 0.0);
  }
}

TEST(PatternsTest, FlatSeriesHasZeroFluctuation) {
  core::ColdEstimates est = PatternEstimates();
  // Make community 11 flat.
  for (int t = 0; t < est.T; ++t) {
    est.psi[static_cast<size_t>(11) * est.T + t] = 1.0 / est.T;
  }
  auto points = FluctuationScatter(est);
  EXPECT_NEAR(points[11].fluctuation, 0.0, 1e-15);
  EXPECT_GT(points[0].fluctuation, 0.0);
}

TEST(PatternsTest, InterestCdfMonotone) {
  auto est = PatternEstimates();
  auto points = FluctuationScatter(est);
  auto cdf = InterestCdf(points, {1e-6, 1e-3, 1e-1, 1.0});
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(PatternsTest, MeanFluctuationBins) {
  auto est = PatternEstimates();
  auto points = FluctuationScatter(est);
  auto means = MeanFluctuationByInterestBin(points, {0.0, 0.01, 0.5});
  EXPECT_EQ(means.size(), 3u);
  for (double m : means) EXPECT_GE(m, 0.0);
}

TEST(PatternsTest, CategorizeSplitsHighAndMedium) {
  auto est = PatternEstimates();
  auto cats = CategorizeCommunities(est, 0, /*num_high=*/3,
                                    /*min_interest=*/1e-5);
  EXPECT_EQ(cats.high.size(), 3u);
  EXPECT_EQ(cats.high[0], 0);  // highest interest first
  EXPECT_FALSE(cats.medium.empty());
  EXPECT_GT(cats.high_mean_interest, cats.medium_mean_interest);
  // No overlap.
  for (int c : cats.medium) {
    EXPECT_TRUE(std::find(cats.high.begin(), cats.high.end(), c) ==
                cats.high.end());
  }
}

TEST(PatternsTest, PeakAlignedCurvePeaksAtOne) {
  auto est = PatternEstimates();
  auto curve = PeakAlignedMedianCurve(est, 0, {0, 1, 2});
  ASSERT_EQ(curve.size(), static_cast<size_t>(est.T));
  double peak = *std::max_element(curve.begin(), curve.end());
  EXPECT_LE(peak, 1.0 + 1e-9);
  EXPECT_GT(peak, 0.0);
}

TEST(PatternsTest, MeasuresPlantedTimeLag) {
  auto est = PatternEstimates();
  // High = communities 0..2 (peaks at 0..2); medium = later peaks.
  TimeLagResult lag = MeasureTimeLag(est, 0, /*num_high=*/3, 1e-7);
  EXPECT_GE(lag.lag, 1) << "medium-interest communities must peak later";
  EXPECT_EQ(lag.high_curve.size(), static_cast<size_t>(est.T));
}

// --------------------------------------------------------- DiffusionGraph --

TEST(DiffusionSummaryTest, ExtractsNodesAndArcs) {
  core::ColdEstimates est = ToyEstimates();
  TopicDiffusionSummary summary =
      SummarizeTopicDiffusion(est, /*topic=*/0, /*num_communities=*/3,
                              /*num_arcs=*/4, /*num_words=*/3);
  EXPECT_EQ(summary.topic, 0);
  EXPECT_EQ(summary.top_words.size(), 3u);
  EXPECT_EQ(summary.top_words[0], 0);  // word 0 has phi 0.7 in topic 0
  ASSERT_EQ(summary.nodes.size(), 3u);
  EXPECT_EQ(summary.nodes[0].community, 0);  // most interested
  EXPECT_EQ(summary.nodes[0].popularity.size(),
            static_cast<size_t>(est.T));
  ASSERT_FALSE(summary.arcs.empty());
  // Arcs sorted by strength.
  for (size_t i = 1; i < summary.arcs.size(); ++i) {
    EXPECT_GE(summary.arcs[i - 1].strength, summary.arcs[i].strength);
  }
  // Strongest arc: c0 -> c1 (eta 0.6, both interested).
  EXPECT_EQ(summary.arcs[0].from_community, 0);
  EXPECT_EQ(summary.arcs[0].to_community, 1);
}

TEST(DiffusionSummaryTest, RenderProducesReadableText) {
  core::ColdEstimates est = ToyEstimates();
  TopicDiffusionSummary summary = SummarizeTopicDiffusion(est, 0, 2, 2, 2);
  std::string text = RenderTopicDiffusion(summary, nullptr);
  EXPECT_NE(text.find("Topic 0"), std::string::npos);
  EXPECT_NE(text.find("community"), std::string::npos);
  EXPECT_NE(text.find("arc"), std::string::npos);
  EXPECT_NE(text.find("w0"), std::string::npos);
}

}  // namespace
}  // namespace cold::apps
