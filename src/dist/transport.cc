#include "dist/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "util/net_io.h"

namespace cold::dist {

namespace {

using Clock = std::chrono::steady_clock;

cold::Status Errno(const std::string& what) {
  return cold::Status::IOError(what + ": " + std::strerror(errno));
}

/// Milliseconds left until `deadline`, clamped at 0.
int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

cold::Status FdTransport::Send(const void* data, size_t size) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  COLD_RETURN_NOT_OK(cold::WriteFull(fd_, data, size));
  bytes_sent_.fetch_add(static_cast<int64_t>(size),
                        std::memory_order_relaxed);
  return cold::Status::OK();
}

cold::Status FdTransport::Recv(void* data, size_t size) {
  COLD_RETURN_NOT_OK(cold::ReadFull(fd_, data, size));
  bytes_received_.fetch_add(static_cast<int64_t>(size),
                            std::memory_order_relaxed);
  return cold::Status::OK();
}

cold::Status FdTransport::SendDeadline(const void* data, size_t size,
                                       int timeout_ms) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  COLD_RETURN_NOT_OK(cold::WriteFullDeadline(fd_, data, size, timeout_ms));
  bytes_sent_.fetch_add(static_cast<int64_t>(size),
                        std::memory_order_relaxed);
  return cold::Status::OK();
}

cold::Status FdTransport::RecvDeadline(void* data, size_t size,
                                       int timeout_ms) {
  COLD_RETURN_NOT_OK(cold::ReadFullDeadline(fd_, data, size, timeout_ms));
  bytes_received_.fetch_add(static_cast<int64_t>(size),
                            std::memory_order_relaxed);
  return cold::Status::OK();
}

cold::Status LoopbackPair(std::unique_ptr<Transport>* a,
                          std::unique_ptr<Transport>* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Errno("socketpair");
  }
  *a = std::make_unique<FdTransport>(fds[0]);
  *b = std::make_unique<FdTransport>(fds[1]);
  return cold::Status::OK();
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

cold::Status TcpListener::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    cold::Status s = Errno("bind 127.0.0.1:" + std::to_string(port));
    Close();
    return s;
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    cold::Status s = Errno("listen");
    Close();
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    cold::Status s = Errno("getsockname");
    Close();
    return s;
  }
  port_ = ntohs(addr.sin_port);
  return cold::Status::OK();
}

cold::Result<std::unique_ptr<Transport>> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return cold::Status::FailedPrecondition("listener not open");
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                              : timeout_ms);
  for (;;) {
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, RemainingMs(deadline));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (ready == 0) {
        return cold::Status::DeadlineExceeded(
            "accept deadline of " + std::to_string(timeout_ms) +
            "ms expired");
      }
    }
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Transport>(
          std::make_unique<FdTransport>(client));
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

cold::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    uint16_t port,
                                                    int deadline_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return cold::Status::InvalidArgument("cannot parse IPv4 address '" +
                                         host + "'");
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms < 0 ? 0
                                                               : deadline_ms);
  // Jitter decorrelates the retry storms of N workers racing one
  // coordinator; the seed mixes in the pid so self-forked siblings spread
  // out even when they start within the same tick.
  std::minstd_rand rng(static_cast<uint32_t>(::getpid()) * 2654435761u ^
                       static_cast<uint32_t>(
                           Clock::now().time_since_epoch().count()));
  int backoff_ms = 10;
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Transport>(std::make_unique<FdTransport>(fd));
    }
    int err = errno;
    ::close(fd);
    if (err == EINTR) continue;
    // Transient: the coordinator may still be binding (ECONNREFUSED), or
    // the network is momentarily unhappy. Anything else is permanent.
    const bool transient = err == ECONNREFUSED || err == ETIMEDOUT ||
                           err == EHOSTUNREACH || err == ENETUNREACH;
    if (!transient || deadline_ms < 0 || Clock::now() >= deadline) {
      if (transient) {
        return cold::Status::DeadlineExceeded(
            "connect " + host + ":" + std::to_string(port) +
            " gave up after " + std::to_string(deadline_ms) + "ms: " +
            std::strerror(err));
      }
      errno = err;
      return Errno("connect " + host + ":" + std::to_string(port));
    }
    // Full jitter: sleep U(1, backoff), capped by both the exponential
    // ceiling and the time left before the overall deadline.
    int cap = std::min(backoff_ms, RemainingMs(deadline));
    int sleep_ms =
        cap <= 1 ? 1 : 1 + static_cast<int>(rng() % static_cast<uint32_t>(cap));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(backoff_ms * 2, 1000);
  }
}

}  // namespace cold::dist
