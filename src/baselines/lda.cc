#include "baselines/lda.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace cold::baselines {

LdaModel::LdaModel(LdaConfig config, const text::PostStore& posts)
    : config_(config), posts_(posts) {
  num_documents_ = config_.document_unit == LdaDocumentUnit::kPost
                       ? posts_.num_posts()
                       : posts_.num_users();
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) vocab_ = std::max(vocab_, w + 1);
  }
}

int LdaModel::DocumentOf(text::PostId d) const {
  return config_.document_unit == LdaDocumentUnit::kPost
             ? d
             : posts_.author(d);
}

cold::Status LdaModel::Train() {
  if (!posts_.finalized()) {
    return cold::Status::FailedPrecondition("post store not finalized");
  }
  if (posts_.num_posts() == 0) {
    return cold::Status::InvalidArgument("no posts");
  }
  if (config_.num_topics < 1 || config_.iterations < 1) {
    return cold::Status::InvalidArgument("bad LDA config");
  }
  cold::RandomSampler sampler(config_.seed, /*stream=*/23);
  if (config_.assignment == LdaAssignment::kPerWord) {
    TrainPerWord(&sampler);
  } else {
    TrainPerPost(&sampler);
  }
  return cold::Status::OK();
}

void LdaModel::TrainPerWord(cold::RandomSampler* sampler) {
  const int K = config_.num_topics;
  const double alpha = config_.ResolvedAlpha();
  const double beta = config_.beta;

  std::vector<int32_t> n_dk(static_cast<size_t>(num_documents_) * K, 0);
  std::vector<int32_t> n_d(static_cast<size_t>(num_documents_), 0);
  std::vector<int32_t> n_kv(static_cast<size_t>(K) * vocab_, 0);
  std::vector<int32_t> n_k(static_cast<size_t>(K), 0);
  std::vector<int32_t> assignment(static_cast<size_t>(posts_.num_tokens()));

  // Random init.
  size_t token = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    int doc = DocumentOf(d);
    for (text::WordId w : posts_.words(d)) {
      int k = static_cast<int>(sampler->UniformInt(static_cast<uint32_t>(K)));
      assignment[token++] = k;
      n_dk[static_cast<size_t>(doc) * K + k]++;
      n_d[static_cast<size_t>(doc)]++;
      n_kv[static_cast<size_t>(k) * vocab_ + w]++;
      n_k[static_cast<size_t>(k)]++;
    }
  }

  std::vector<double> weights(static_cast<size_t>(K));
  for (int it = 0; it < config_.iterations; ++it) {
    token = 0;
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      int doc = DocumentOf(d);
      for (text::WordId w : posts_.words(d)) {
        int old_k = assignment[token];
        n_dk[static_cast<size_t>(doc) * K + old_k]--;
        n_kv[static_cast<size_t>(old_k) * vocab_ + w]--;
        n_k[static_cast<size_t>(old_k)]--;
        for (int k = 0; k < K; ++k) {
          weights[static_cast<size_t>(k)] =
              (n_dk[static_cast<size_t>(doc) * K + k] + alpha) *
              (n_kv[static_cast<size_t>(k) * vocab_ + w] + beta) /
              (n_k[static_cast<size_t>(k)] + vocab_ * beta);
        }
        int new_k = sampler->Categorical(weights);
        assignment[token] = static_cast<int32_t>(new_k);
        n_dk[static_cast<size_t>(doc) * K + new_k]++;
        n_kv[static_cast<size_t>(new_k) * vocab_ + w]++;
        n_k[static_cast<size_t>(new_k)]++;
        ++token;
      }
    }
  }
  ExtractEstimates(n_dk, n_d, n_kv, n_k);

  // Per-post labels: majority topic of the post's tokens.
  post_topic_.assign(static_cast<size_t>(posts_.num_posts()), 0);
  token = 0;
  std::vector<int> counts(static_cast<size_t>(K));
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    std::fill(counts.begin(), counts.end(), 0);
    for (int l = 0; l < posts_.length(d); ++l) {
      counts[static_cast<size_t>(assignment[token++])]++;
    }
    post_topic_[static_cast<size_t>(d)] = static_cast<int32_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  }
}

void LdaModel::TrainPerPost(cold::RandomSampler* sampler) {
  const int K = config_.num_topics;
  const double alpha = config_.ResolvedAlpha();
  const double beta = config_.beta;

  std::vector<int32_t> n_dk(static_cast<size_t>(num_documents_) * K, 0);
  std::vector<int32_t> n_d(static_cast<size_t>(num_documents_), 0);
  std::vector<int32_t> n_kv(static_cast<size_t>(K) * vocab_, 0);
  std::vector<int32_t> n_k(static_cast<size_t>(K), 0);
  post_topic_.assign(static_cast<size_t>(posts_.num_posts()), 0);

  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    int doc = DocumentOf(d);
    int k = static_cast<int>(sampler->UniformInt(static_cast<uint32_t>(K)));
    post_topic_[static_cast<size_t>(d)] = static_cast<int32_t>(k);
    n_dk[static_cast<size_t>(doc) * K + k]++;
    n_d[static_cast<size_t>(doc)]++;
    for (text::WordId w : posts_.words(d)) {
      n_kv[static_cast<size_t>(k) * vocab_ + w]++;
    }
    n_k[static_cast<size_t>(k)] += posts_.length(d);
  }

  std::vector<double> log_weights(static_cast<size_t>(K));
  for (int it = 0; it < config_.iterations; ++it) {
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      int doc = DocumentOf(d);
      int old_k = post_topic_[static_cast<size_t>(d)];
      int len = posts_.length(d);
      n_dk[static_cast<size_t>(doc) * K + old_k]--;
      for (text::WordId w : posts_.words(d)) {
        n_kv[static_cast<size_t>(old_k) * vocab_ + w]--;
      }
      n_k[static_cast<size_t>(old_k)] -= len;

      auto word_counts = posts_.WordCounts(d);
      for (int k = 0; k < K; ++k) {
        double lw = std::log(n_dk[static_cast<size_t>(doc) * K + k] + alpha);
        for (const auto& [w, cnt] : word_counts) {
          double base = n_kv[static_cast<size_t>(k) * vocab_ + w] + beta;
          for (int q = 0; q < cnt; ++q) lw += std::log(base + q);
        }
        double denom = n_k[static_cast<size_t>(k)] + vocab_ * beta;
        for (int q = 0; q < len; ++q) lw -= std::log(denom + q);
        log_weights[static_cast<size_t>(k)] = lw;
      }
      int new_k = sampler->LogCategorical(log_weights);
      post_topic_[static_cast<size_t>(d)] = static_cast<int32_t>(new_k);
      n_dk[static_cast<size_t>(doc) * K + new_k]++;
      for (text::WordId w : posts_.words(d)) {
        n_kv[static_cast<size_t>(new_k) * vocab_ + w]++;
      }
      n_k[static_cast<size_t>(new_k)] += len;
    }
  }
  ExtractEstimates(n_dk, n_d, n_kv, n_k);
}

void LdaModel::ExtractEstimates(const std::vector<int32_t>& n_dk,
                                const std::vector<int32_t>& n_d,
                                const std::vector<int32_t>& n_kv,
                                const std::vector<int32_t>& n_k) {
  const int K = config_.num_topics;
  const double alpha = config_.ResolvedAlpha();
  const double beta = config_.beta;
  estimates_.num_documents = num_documents_;
  estimates_.K = K;
  estimates_.V = vocab_;
  estimates_.theta.resize(static_cast<size_t>(num_documents_) * K);
  for (int d = 0; d < num_documents_; ++d) {
    double denom = n_d[static_cast<size_t>(d)] + K * alpha;
    for (int k = 0; k < K; ++k) {
      estimates_.theta[static_cast<size_t>(d) * K + k] =
          (n_dk[static_cast<size_t>(d) * K + k] + alpha) / denom;
    }
  }
  estimates_.phi.resize(static_cast<size_t>(K) * vocab_);
  for (int k = 0; k < K; ++k) {
    double denom = n_k[static_cast<size_t>(k)] + vocab_ * beta;
    for (int v = 0; v < vocab_; ++v) {
      estimates_.phi[static_cast<size_t>(k) * vocab_ + v] =
          (n_kv[static_cast<size_t>(k) * vocab_ + v] + beta) / denom;
    }
  }
}

std::vector<double> LdaModel::TopicPosterior(
    std::span<const text::WordId> words) const {
  const int K = estimates_.K;
  std::vector<double> log_w(static_cast<size_t>(K), 0.0);
  for (int k = 0; k < K; ++k) {
    for (text::WordId w : words) {
      log_w[static_cast<size_t>(k)] +=
          std::log(std::max(estimates_.Phi(k, std::min(w, vocab_ - 1)), 1e-300));
    }
  }
  double lse = cold::LogSumExp(log_w);
  for (double& v : log_w) v = std::exp(v - lse);
  return log_w;
}

std::vector<double> LdaModel::TopicPosteriorForAuthor(
    std::span<const text::WordId> words, text::UserId author) const {
  const int K = estimates_.K;
  std::vector<double> scores(static_cast<size_t>(K), 0.0);
  int doc = config_.document_unit == LdaDocumentUnit::kUserDocument
                ? author
                : -1;
  for (int k = 0; k < K; ++k) {
    double lw = 0.0;
    for (text::WordId w : words) {
      lw += std::log(std::max(estimates_.Phi(k, std::min(w, vocab_ - 1)),
                              1e-300));
    }
    double prior = doc >= 0 ? estimates_.Theta(doc, k) : 1.0 / K;
    scores[static_cast<size_t>(k)] = lw + std::log(std::max(prior, 1e-300));
  }
  double lse = cold::LogSumExp(scores);
  for (double& v : scores) v = std::exp(v - lse);
  return scores;
}

double LdaModel::LogPostProbability(std::span<const text::WordId> words,
                                    text::UserId author) const {
  const int K = estimates_.K;
  // Per-word mixture under the author's (or uniform) topic mixture.
  int doc = config_.document_unit == LdaDocumentUnit::kUserDocument
                ? author
                : -1;
  double ll = 0.0;
  for (text::WordId w : words) {
    double p = 0.0;
    for (int k = 0; k < K; ++k) {
      double prior = doc >= 0 ? estimates_.Theta(doc, k) : 1.0 / K;
      p += prior * estimates_.Phi(k, std::min(w, vocab_ - 1));
    }
    ll += std::log(std::max(p, 1e-300));
  }
  return ll;
}

double LdaModel::Perplexity(const text::PostStore& test_posts) const {
  double total_ll = 0.0;
  int64_t tokens = 0;
  for (text::PostId d = 0; d < test_posts.num_posts(); ++d) {
    if (test_posts.length(d) == 0) continue;
    total_ll += LogPostProbability(test_posts.words(d), test_posts.author(d));
    tokens += test_posts.length(d);
  }
  if (tokens == 0) return 0.0;
  return std::exp(-total_ll / static_cast<double>(tokens));
}

}  // namespace cold::baselines
