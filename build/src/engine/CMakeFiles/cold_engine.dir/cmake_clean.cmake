file(REMOVE_RECURSE
  "CMakeFiles/cold_engine.dir/partitioner.cc.o"
  "CMakeFiles/cold_engine.dir/partitioner.cc.o.d"
  "libcold_engine.a"
  "libcold_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
