file(REMOVE_RECURSE
  "CMakeFiles/user_influence_test.dir/user_influence_test.cc.o"
  "CMakeFiles/user_influence_test.dir/user_influence_test.cc.o.d"
  "user_influence_test"
  "user_influence_test.pdb"
  "user_influence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_influence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
