// In-process sampling profiler: a timer_create/SIGPROF-driven backtrace
// sampler that attributes process CPU time to symbols without external
// tooling.
//
//   obs::ProfileScope profile({.out_path = "prof.folded", .print_top = 15});
//   TrainModel();  // sampled at ~1kHz of process CPU time
//   // scope exit: folded stacks written, top-N table printed
//
// Design (see DESIGN.md §11):
//   - A POSIX interval timer on CLOCK_PROCESS_CPUTIME_ID delivers SIGPROF
//     while the process burns CPU; the kernel routes the signal to a
//     running thread, so samples land on whichever thread is doing work.
//   - The handler is async-signal-safe: one relaxed fetch_add reserves a
//     slot in a preallocated sample buffer, backtrace(3) (pre-warmed at
//     Start so its lazy libgcc load never happens in the handler) captures
//     raw program counters, and gettid tags the sample's thread. No
//     locks, no allocation, no formatting.
//   - Symbolization (dladdr + __cxa_demangle) runs at Stop(), off the
//     signal path. Executables are linked with -rdynamic
//     (CMAKE_ENABLE_EXPORTS) so the binary's own symbols resolve.
//
// Output: folded-stack ("flamegraph collapsed") lines `a;b;c <count>` plus
// a top-N self/total symbol table and per-thread sample counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace cold::obs {

struct ProfilerOptions {
  /// Samples per second of process CPU time. Prime by default so the
  /// sampling clock cannot phase-lock with periodic work.
  int sample_hz = 997;
  /// Capacity of the preallocated sample buffer; samples past it are
  /// counted as dropped, never block.
  size_t max_samples = size_t{1} << 16;
  /// Stack frames kept per sample.
  int max_frames = 32;
};

/// \brief Flat per-symbol attribution: `self` counts samples whose leaf
/// frame is this symbol, `total` counts samples with the symbol anywhere
/// on the stack.
struct ProfileSymbolStat {
  std::string name;
  int64_t self = 0;
  int64_t total = 0;
};

/// \brief Aggregated result of one profiling session.
struct ProfileReport {
  /// Samples captured into the buffer (excludes dropped).
  int64_t samples = 0;
  /// Samples lost to a full buffer.
  int64_t dropped = 0;
  /// Folded stacks, root-to-leaf joined with ';', mapped to sample count
  /// (the flamegraph.pl / speedscope "collapsed" input format). Frames
  /// that cannot be symbolized (hidden-visibility library internals,
  /// outlined code) are elided so their time attributes to the nearest
  /// named ancestor; a fully unresolvable stack folds to "[unknown]".
  std::map<std::string, int64_t> folded;
  /// Per-thread sample counts, keyed by kernel tid.
  std::map<int, int64_t> samples_by_thread;
  /// Sorted by self (then total) descending.
  std::vector<ProfileSymbolStat> symbols;

  /// Fraction of samples attributed to a named symbol, i.e. with at least
  /// one resolvable frame (0.0 for an empty profile).
  double AttributedFraction() const;

  /// Writes one `stack count` line per folded stack.
  void WriteFolded(std::ostream& os) const;

  /// Human-readable top-`n` table (self/total counts and percentages).
  void PrintTop(std::ostream& os, int n) const;
};

/// \brief Process-wide sampler. One session at a time: Start() while
/// running fails with FailedPrecondition.
class Profiler {
 public:
  static cold::Status Start(const ProfilerOptions& options = {});

  /// Disarms the timer, restores the previous SIGPROF disposition and
  /// symbolizes the captured samples. Safe to call when not running
  /// (returns an empty report).
  static ProfileReport Stop();

  static bool running();
};

/// \brief Options for ProfileScope: the profiler knobs plus what to do
/// with the report at scope exit.
struct ProfileScopeOptions {
  ProfilerOptions profiler;
  /// Folded-stack output file; empty skips the write.
  std::string out_path;
  /// Rows of the top-symbol table printed to stdout; 0 prints nothing.
  int print_top = 0;
};

/// \brief RAII profiling session: Start() at construction, Stop() +
/// report emission at destruction. If Start() fails (e.g. a session is
/// already running) the scope is inert and logs a warning.
class ProfileScope {
 public:
  explicit ProfileScope(ProfileScopeOptions options);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  bool active() const { return active_; }

 private:
  ProfileScopeOptions options_;
  bool active_ = false;
};

/// \brief The COLD_PROFILE env switch: when COLD_PROFILE=<path> is set,
/// starts a process-lifetime profiling session whose folded stacks are
/// written to <path> at exit (COLD_PROFILE_HZ overrides the sample rate).
/// Benches call this so any run can self-profile without new flags.
/// Idempotent; a no-op when the variable is unset.
void StartProfilerFromEnv();

}  // namespace cold::obs
