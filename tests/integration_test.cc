// End-to-end integration: generate → split → train (serial and parallel) →
// predict → apply. Mirrors what the examples and benches do, with quality
// assertions, so a regression anywhere in the stack surfaces here even if
// the per-module tests still pass.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "apps/influence.h"
#include "apps/patterns.h"
#include "core/cold.h"
#include "core/model_io.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace cold {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig config;
    config.num_users = 300;
    config.num_communities = 5;
    config.num_topics = 8;
    config.num_time_slices = 16;
    config.core_words_per_topic = 15;
    config.background_words = 100;
    config.posts_per_user = 12.0;
    config.words_per_post = 8.0;
    config.follows_per_user = 12;
    config.seed = 101;
    dataset_ = new data::SocialDataset(
        std::move(data::SyntheticSocialGenerator(config).Generate())
            .ValueOrDie());

    core::ColdConfig model;
    model.num_communities = 5;
    model.num_topics = 8;
    model.rho = 0.5;
    model.alpha = 0.5;
    model.kappa = 10.0;
    model.iterations = 80;
    model.burn_in = 60;
    model.seed = 103;
    auto* sampler = new core::ColdGibbsSampler(model, dataset_->posts,
                                               &dataset_->interactions);
    ASSERT_TRUE(sampler->Init().ok());
    ASSERT_TRUE(sampler->Train().ok());
    estimates_ = new core::ColdEstimates(sampler->AveragedEstimates());
    delete sampler;
  }
  static void TearDownTestSuite() {
    delete estimates_;
    delete dataset_;
    estimates_ = nullptr;
    dataset_ = nullptr;
  }

  static data::SocialDataset* dataset_;
  static core::ColdEstimates* estimates_;
};

data::SocialDataset* EndToEnd::dataset_ = nullptr;
core::ColdEstimates* EndToEnd::estimates_ = nullptr;

TEST_F(EndToEnd, TopicsAreThemePure) {
  // Each extracted topic's top words should come overwhelmingly from one
  // planted theme (the vocabulary names encode it).
  int pure = 0;
  for (int k = 0; k < estimates_->K; ++k) {
    auto top = estimates_->TopWords(k, 8);
    // The planted theme of a core word id w is w / core_words_per_topic.
    std::vector<int> votes(9, 0);
    for (int w : top) {
      int theme = w / 15;
      if (theme < 8) votes[static_cast<size_t>(theme)]++;
      else votes[8]++;  // background
    }
    int best = *std::max_element(votes.begin(), votes.begin() + 8);
    if (best >= 6) ++pure;
  }
  EXPECT_GE(pure, 6) << "at least 6 of 8 topics should be theme-pure";
}

TEST_F(EndToEnd, DiffusionPredictionBeatsRandomOnHeldOut) {
  data::RetweetSplit split = data::SplitRetweets(*dataset_, 0.2, 107, 0);
  // Retrain on the split's network to avoid leakage.
  core::ColdConfig model;
  model.num_communities = 5;
  model.num_topics = 8;
  model.rho = 0.5;
  model.alpha = 0.5;
  model.kappa = 10.0;
  model.iterations = 80;
  model.burn_in = 60;
  core::ColdGibbsSampler sampler(model, dataset_->posts,
                                 &split.train_interactions);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.Train().ok());
  core::ColdPredictor predictor(sampler.AveragedEstimates(), 5);

  std::vector<eval::ScoredTuple> scored;
  for (const data::RetweetTuple& tuple : split.test) {
    eval::ScoredTuple st;
    auto words = dataset_->posts.words(tuple.post);
    for (text::UserId u : tuple.retweeters) {
      st.positive_scores.push_back(
          predictor.DiffusionProbability(tuple.author, u, words));
    }
    for (text::UserId u : tuple.ignorers) {
      st.negative_scores.push_back(
          predictor.DiffusionProbability(tuple.author, u, words));
    }
    scored.push_back(std::move(st));
  }
  EXPECT_GT(eval::AveragedTupleAuc(scored), 0.58);
}

TEST_F(EndToEnd, SerialAndParallelAgreeOnTopicQuality) {
  core::ColdConfig model;
  model.num_communities = 5;
  model.num_topics = 8;
  model.rho = 0.5;
  model.alpha = 0.5;
  model.iterations = 60;
  model.burn_in = 0;
  model.seed = 103;
  core::ParallelColdTrainer trainer(model, dataset_->posts,
                                    &dataset_->interactions);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  core::ColdEstimates parallel_est = trainer.Estimates();
  core::ColdPredictor serial(*estimates_);
  core::ColdPredictor parallel(parallel_est);

  data::PostSplit split = data::SplitPosts(dataset_->posts, 0.2, 113, 0);
  double serial_perp = serial.Perplexity(split.test);
  double parallel_perp = parallel.Perplexity(split.test);
  // Both far below a uniform model (V ~ 220) and within 20% of each other.
  EXPECT_LT(serial_perp, 120.0);
  EXPECT_LT(parallel_perp, 120.0);
  EXPECT_NEAR(parallel_perp, serial_perp, serial_perp * 0.2);
}

TEST_F(EndToEnd, ModelShipsThroughSerialization) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cold_e2e_model.bin").string();
  ASSERT_TRUE(core::SaveEstimates(*estimates_, path).ok());
  auto loaded = core::LoadEstimates(path);
  ASSERT_TRUE(loaded.ok());
  core::ColdPredictor predictor(std::move(loaded).ValueOrDie(), 5);
  std::vector<text::WordId> message = {0, 1, 2};
  EXPECT_GT(predictor.DiffusionProbability(0, 1, message), 0.0);
  std::filesystem::remove(path);
}

TEST_F(EndToEnd, InfluenceApplicationRunsOnExtractedModel) {
  auto ranked = apps::RankCommunitiesByInfluence(*estimates_, /*topic=*/0,
                                                 /*trials=*/500, 127);
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_GE(ranked.front().influence_degree, ranked.back().influence_degree);
  // Every community's single-seed spread includes at least itself.
  for (const auto& ci : ranked) {
    EXPECT_GE(ci.influence_degree, 1.0);
    EXPECT_LE(ci.influence_degree, 5.0);
  }
  auto user_influence = apps::UserInfluenceDegrees(*estimates_, ranked);
  EXPECT_EQ(user_influence.size(), 300u);
}

TEST_F(EndToEnd, PatternAnalyticsProduceFiniteResults) {
  auto points = apps::FluctuationScatter(*estimates_);
  EXPECT_EQ(points.size(), 40u);  // K * C
  for (const auto& p : points) {
    EXPECT_TRUE(std::isfinite(p.fluctuation));
    EXPECT_TRUE(std::isfinite(p.interest));
  }
  auto lag = apps::MeasureTimeLag(*estimates_, 0, 2, 1e-3);
  EXPECT_EQ(lag.high_curve.size(), 16u);
  EXPECT_TRUE(std::isfinite(lag.mass_lag));
}

}  // namespace
}  // namespace cold
