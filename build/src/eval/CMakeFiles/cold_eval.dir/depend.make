# Empty dependencies file for cold_eval.
# This may be replaced when dependencies are built.
