# Empty compiler generated dependencies file for table2_methods.
# This may be replaced when dependencies are built.
