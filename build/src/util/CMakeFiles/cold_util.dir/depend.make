# Empty dependencies file for cold_util.
# This may be replaced when dependencies are built.
