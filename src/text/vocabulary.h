// Word interning: stable word-id assignment with frequency tracking, the
// substrate for every topic model in this repo.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cold::text {

/// Integer word identifier; dense in [0, size()).
using WordId = int32_t;

/// \brief Bidirectional string <-> id mapping with document frequencies.
///
/// Ids are assigned in first-seen order, so a vocabulary built from the same
/// stream is deterministic.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// \brief Interns `word`, returning its id (existing or fresh) and
  /// incrementing its occurrence count.
  WordId Add(std::string_view word);

  /// \brief Looks up `word`; returns -1 if unknown. Does not intern.
  WordId Lookup(std::string_view word) const;

  /// \brief The word string for `id`; `id` must be in range.
  const std::string& word(WordId id) const {
    return words_[static_cast<size_t>(id)];
  }

  /// \brief Total occurrences recorded for `id` via Add.
  int64_t count(WordId id) const { return counts_[static_cast<size_t>(id)]; }

  /// Number of distinct words.
  int size() const { return static_cast<int>(words_.size()); }

  /// \brief Returns a copy of this vocabulary with words occurring fewer
  /// than `min_count` times removed; `remap` (optional out) maps old id ->
  /// new id or -1 for dropped words.
  Vocabulary Prune(int64_t min_count, std::vector<WordId>* remap) const;

 private:
  std::unordered_map<std::string, WordId> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
};

}  // namespace cold::text
