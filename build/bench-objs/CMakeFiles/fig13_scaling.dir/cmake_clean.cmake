file(REMOVE_RECURSE
  "../bench/fig13_scaling"
  "../bench/fig13_scaling.pdb"
  "CMakeFiles/fig13_scaling.dir/fig13_scaling.cc.o"
  "CMakeFiles/fig13_scaling.dir/fig13_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
