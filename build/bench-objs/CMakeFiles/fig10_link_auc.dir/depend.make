# Empty dependencies file for fig10_link_auc.
# This may be replaced when dependencies are built.
