
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/diffusion_graph.cc" "src/apps/CMakeFiles/cold_apps.dir/diffusion_graph.cc.o" "gcc" "src/apps/CMakeFiles/cold_apps.dir/diffusion_graph.cc.o.d"
  "/root/repo/src/apps/independent_cascade.cc" "src/apps/CMakeFiles/cold_apps.dir/independent_cascade.cc.o" "gcc" "src/apps/CMakeFiles/cold_apps.dir/independent_cascade.cc.o.d"
  "/root/repo/src/apps/influence.cc" "src/apps/CMakeFiles/cold_apps.dir/influence.cc.o" "gcc" "src/apps/CMakeFiles/cold_apps.dir/influence.cc.o.d"
  "/root/repo/src/apps/patterns.cc" "src/apps/CMakeFiles/cold_apps.dir/patterns.cc.o" "gcc" "src/apps/CMakeFiles/cold_apps.dir/patterns.cc.o.d"
  "/root/repo/src/apps/user_influence.cc" "src/apps/CMakeFiles/cold_apps.dir/user_influence.cc.o" "gcc" "src/apps/CMakeFiles/cold_apps.dir/user_influence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cold_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cold_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cold_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cold_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cold_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
