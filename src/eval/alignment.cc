#include "eval/alignment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "util/math_util.h"

namespace cold::eval {

double NormalizedMutualInformation(std::span<const int> a,
                                   std::span<const int> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  const double n = static_cast<double>(a.size());

  std::map<int, double> pa, pb;
  std::map<std::pair<int, int>, double> pab;
  for (size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0 / n;
    pb[b[i]] += 1.0 / n;
    pab[{a[i], b[i]}] += 1.0 / n;
  }
  double ha = 0.0, hb = 0.0, mi = 0.0;
  for (const auto& [label, p] : pa) {
    (void)label;
    ha -= p * std::log(p);
  }
  for (const auto& [label, p] : pb) {
    (void)label;
    hb -= p * std::log(p);
  }
  for (const auto& [pair, p] : pab) {
    mi += p * std::log(p / (pa[pair.first] * pb[pair.second]));
  }
  if (ha <= 0.0 || hb <= 0.0) return 0.0;
  return mi / std::sqrt(ha * hb);
}

std::vector<int> GreedyMatching(
    const std::vector<std::vector<double>>& truth,
    const std::vector<std::vector<double>>& learned) {
  std::vector<int> match(truth.size(), -1);
  std::vector<char> truth_used(truth.size(), 0);
  std::vector<char> learned_used(learned.size(), 0);
  size_t pairs = std::min(truth.size(), learned.size());
  for (size_t round = 0; round < pairs; ++round) {
    double best = -1.0;
    int best_t = -1, best_l = -1;
    for (size_t t = 0; t < truth.size(); ++t) {
      if (truth_used[t]) continue;
      for (size_t l = 0; l < learned.size(); ++l) {
        if (learned_used[l]) continue;
        double sim = cold::CosineSimilarity(truth[t], learned[l]);
        if (sim > best) {
          best = sim;
          best_t = static_cast<int>(t);
          best_l = static_cast<int>(l);
        }
      }
    }
    if (best_t < 0) break;
    match[static_cast<size_t>(best_t)] = best_l;
    truth_used[static_cast<size_t>(best_t)] = 1;
    learned_used[static_cast<size_t>(best_l)] = 1;
  }
  return match;
}

double GreedyMatchedCosine(const std::vector<std::vector<double>>& truth,
                           const std::vector<std::vector<double>>& learned) {
  std::vector<int> match = GreedyMatching(truth, learned);
  double total = 0.0;
  int counted = 0;
  for (size_t t = 0; t < truth.size(); ++t) {
    if (match[t] < 0) continue;
    total += cold::CosineSimilarity(truth[t],
                                    learned[static_cast<size_t>(match[t])]);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

}  // namespace cold::eval
