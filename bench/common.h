// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench regenerates one table/figure of the paper's evaluation (§5-§6)
// on the synthetic Weibo substitute (DESIGN.md §1). Sizes default to a
// single-core-friendly scale; set COLD_BENCH_SCALE=N to multiply the user
// count (and proportionally the posts/links), and COLD_BENCH_FOLDS to raise
// the cross-validation fold count (default 1 fold for speed; the paper uses
// 5).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "core/cold.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/json.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cold::bench {

inline double ScaleFactor() {
  const char* env = std::getenv("COLD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline int NumFolds() {
  const char* env = std::getenv("COLD_BENCH_FOLDS");
  if (env == nullptr) return 1;
  int folds = std::atoi(env);
  return folds >= 1 ? std::min(folds, 5) : 1;
}

/// The default benchmark dataset: ~800 users, ~10K posts at scale 1.
inline data::SyntheticConfig BenchDataConfig(uint64_t seed = 42) {
  data::SyntheticConfig config;
  double s = ScaleFactor();
  config.num_users = static_cast<int>(800 * s);
  config.num_communities = 8;
  config.num_topics = 12;
  config.num_time_slices = 24;
  config.core_words_per_topic = 25;
  config.background_words = 400;
  // Realistic microblog noise (~40% background tokens) and a Weibo-like
  // network density relative to posting volume.
  config.core_mass = 0.6;
  config.posts_per_user = 12.0;
  config.words_per_post = 9.0;
  config.follows_per_user = 18;
  // Sharp community structure, as in the paper's Weibo communities (each
  // community has a distinct interest profile; Fig 5): concentrated topic
  // mixtures and strong block contrast in eta.
  config.pi_concentration = 0.06;
  config.theta_concentration = 0.3;
  config.eta_within = 0.5;
  config.eta_base = 0.004;
  config.seed = seed;
  return config;
}

inline data::SocialDataset GenerateBenchData(
    const data::SyntheticConfig& config) {
  data::SyntheticSocialGenerator gen(config);
  auto result = gen.Generate();
  if (!result.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

/// Default COLD config matched to the bench data scale (rho is set for
/// ~12 posts/user rather than the paper's Weibo-scale 50/C; see DESIGN.md).
inline core::ColdConfig BenchColdConfig(int num_communities = 8,
                                        int num_topics = 12,
                                        int iterations = 150) {
  core::ColdConfig config;
  config.num_communities = num_communities;
  config.num_topics = num_topics;
  config.rho = 0.5;
  config.alpha = 0.5;
  // kappa scales lambda_0 so the Beta prior's negative-link mass stays
  // comparable to typical block counts at this data scale (§3.3 calls it a
  // tunable weight).
  config.kappa = 10.0;
  config.iterations = iterations;
  config.burn_in = iterations * 3 / 4;
  config.sample_lag = 5;
  config.seed = 91;
  return config;
}

/// Trains serial COLD and returns averaged estimates; exits on error.
inline core::ColdEstimates TrainCold(const core::ColdConfig& config,
                                     const text::PostStore& posts,
                                     const graph::Digraph* links,
                                     double* train_seconds = nullptr) {
  core::ColdGibbsSampler sampler(config, posts, links);
  Stopwatch watch;
  auto st = sampler.Init();
  if (st.ok()) st = sampler.Train();
  if (!st.ok()) {
    std::fprintf(stderr, "COLD training failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  if (train_seconds != nullptr) *train_seconds = watch.ElapsedSeconds();
  return sampler.AveragedEstimates();
}

/// Scores held-out links with `score(i, i2)`; returns ROC-AUC.
template <typename ScoreFn>
double LinkAuc(const data::LinkSplit& split, const ScoreFn& score) {
  std::vector<double> pos, neg;
  pos.reserve(split.test_positive.size());
  neg.reserve(split.test_negative.size());
  for (const auto& [a, b] : split.test_positive) pos.push_back(score(a, b));
  for (const auto& [a, b] : split.test_negative) neg.push_back(score(a, b));
  return eval::RocAuc(pos, neg);
}

/// Scores held-out retweet tuples with `score(author, candidate, words)`;
/// returns the averaged per-tuple AUC of §6.3.
template <typename ScoreFn>
double DiffusionAuc(const std::vector<data::RetweetTuple>& tuples,
                    const text::PostStore& posts, const ScoreFn& score,
                    size_t max_tuples = 400) {
  std::vector<eval::ScoredTuple> scored;
  for (const data::RetweetTuple& tuple : tuples) {
    if (scored.size() >= max_tuples) break;
    eval::ScoredTuple st;
    auto words = posts.words(tuple.post);
    for (text::UserId u : tuple.retweeters) {
      st.positive_scores.push_back(score(tuple.author, u, words));
    }
    for (text::UserId u : tuple.ignorers) {
      st.negative_scores.push_back(score(tuple.author, u, words));
    }
    scored.push_back(std::move(st));
  }
  return eval::AveragedTupleAuc(scored);
}

/// Predicts time stamps for test posts with `predict(words, author)`;
/// returns the accuracy-vs-tolerance curve up to `max_tolerance`.
template <typename PredictFn>
std::vector<double> TimestampCurve(const text::PostStore& test_posts,
                                   const PredictFn& predict,
                                   int max_tolerance) {
  std::vector<int> predicted, actual;
  for (text::PostId d = 0; d < test_posts.num_posts(); ++d) {
    if (test_posts.length(d) == 0) continue;
    predicted.push_back(predict(test_posts.words(d), test_posts.author(d)));
    actual.push_back(test_posts.time(d));
  }
  return eval::ToleranceCurve(predicted, actual, max_tolerance);
}

// --- BENCH_*.json emission --------------------------------------------------
//
// Shared by the persistent-result benches (sampler_hotpath,
// parallel_scaling). These reuse the serving layer's JSON value type, so
// callers must link cold_serve; benches that never emit JSON never
// instantiate them and link as before.

inline serve::Json ToJsonArray(const std::vector<double>& values) {
  serve::Json arr = serve::Json::MakeArray();
  for (double v : values) arr.Append(v);
  return arr;
}

/// Writes `root` to `path` (trailing newline included); logs and returns
/// false on I/O failure.
inline bool WriteJsonFile(const serve::Json& root, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << root.Dump() << "\n";
  return true;
}

/// Reparses an emitted result file — the first step of every --smoke
/// validation pass.
inline cold::Result<serve::Json> LoadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return cold::Status::IOError("cannot reopen " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return serve::Json::Parse(buffer.str());
}

/// Prints "name: v1 v2 v3 ..." rows for series output.
inline void PrintSeries(const std::string& name,
                        const std::vector<double>& values,
                        const char* fmt = "%.4f") {
  std::printf("%-16s", name.c_str());
  for (double v : values) {
    std::printf(" ");
    std::printf(fmt, v);
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& title) {
  std::printf("== %s ==\n", title.c_str());
}

/// Silences training INFO chatter for clean bench output. Every bench
/// calls this first, so it doubles as the hook point for the COLD_PROFILE
/// env switch: any bench run can self-profile into folded stacks without
/// new flags (see src/obs/profiler.h).
inline void QuietLogs() {
  Logger::SetLevel(LogLevel::kWarning);
  obs::StartProfilerFromEnv();
}

/// \brief Telemetry hook for bench harnesses: when COLD_BENCH_METRICS=FILE
/// is set, writes a final registry snapshot (JSON) there so bench runs can
/// be compared offline (phase seconds, comm bytes, tokens resampled, span
/// histograms — see DESIGN.md §Observability). Call at the end of main().
inline void DumpTelemetryIfRequested() {
  const char* path = std::getenv("COLD_BENCH_METRICS");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write COLD_BENCH_METRICS file %s\n", path);
    return;
  }
  obs::Registry::Global().DumpJson(out);
  out << "\n";
  std::printf("telemetry snapshot written to %s\n", path);
}

}  // namespace cold::bench
