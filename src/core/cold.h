// Umbrella header for the COLD core library.
//
// Typical usage:
//
//   cold::core::ColdConfig config;
//   config.num_communities = 20;
//   config.num_topics = 30;
//   cold::core::ColdGibbsSampler sampler(config, dataset.posts,
//                                        &dataset.interactions);
//   COLD_RETURN_NOT_OK(sampler.Init());
//   COLD_RETURN_NOT_OK(sampler.Train());
//   cold::core::ColdPredictor predictor(sampler.AveragedEstimates(),
//                                       config.top_communities);
//   double p = predictor.DiffusionProbability(i, j, words);
#pragma once

#include "core/cold_config.h"     // IWYU pragma: export
#include "core/cold_estimates.h"  // IWYU pragma: export
#include "core/cold_state.h"      // IWYU pragma: export
#include "core/gibbs_sampler.h"   // IWYU pragma: export
#include "core/parallel_sampler.h"  // IWYU pragma: export
#include "core/predictor.h"       // IWYU pragma: export
