#include "graph/digraph.h"

#include <algorithm>
#include <cassert>

namespace cold::graph {

cold::Status Digraph::Builder::AddEdge(NodeId src, NodeId dst) {
  if (src < 0 || dst < 0) {
    return cold::Status::InvalidArgument("negative node id");
  }
  if (src == dst) {
    return cold::Status::InvalidArgument("self-loop rejected");
  }
  edges_.push_back({src, dst});
  max_node_ = std::max(max_node_, std::max(src, dst));
  return cold::Status::OK();
}

Digraph Digraph::Builder::Build(int num_nodes, bool dedupe) && {
  Digraph g;
  g.num_nodes_ = std::max(num_nodes, max_node_ + 1);
  if (dedupe) {
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const Edge& a, const Edge& b) {
                               return a.src == b.src && a.dst == b.dst;
                             }),
                 edges_.end());
  }
  g.edges_ = std::move(edges_);

  size_t n = static_cast<size_t>(g.num_nodes_);
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) {
    g.out_offsets_[static_cast<size_t>(e.src) + 1]++;
    g.in_offsets_[static_cast<size_t>(e.dst) + 1]++;
  }
  for (size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_edge_ids_.resize(g.edges_.size());
  g.in_edge_ids_.resize(g.edges_.size());
  std::vector<int64_t> out_cursor(g.out_offsets_.begin(),
                                  g.out_offsets_.end() - 1);
  std::vector<int64_t> in_cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edges_[static_cast<size_t>(e)];
    g.out_edge_ids_[static_cast<size_t>(
        out_cursor[static_cast<size_t>(edge.src)]++)] = e;
    g.in_edge_ids_[static_cast<size_t>(
        in_cursor[static_cast<size_t>(edge.dst)]++)] = e;
  }
  return g;
}

std::vector<NodeId> Digraph::OutNeighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (EdgeId e : out_edges(n)) out.push_back(edge(e).dst);
  return out;
}

std::vector<NodeId> Digraph::InNeighbors(NodeId n) const {
  std::vector<NodeId> in;
  for (EdgeId e : in_edges(n)) in.push_back(edge(e).src);
  return in;
}

bool Digraph::HasEdge(NodeId src, NodeId dst) const {
  for (EdgeId e : out_edges(src)) {
    if (edge(e).dst == dst) return true;
  }
  return false;
}

int64_t Digraph::NumNegativePairs() const {
  int64_t u = num_nodes_;
  return u * (u - 1) - num_edges();
}

}  // namespace cold::graph
