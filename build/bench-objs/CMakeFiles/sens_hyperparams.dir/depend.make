# Empty dependencies file for sens_hyperparams.
# This may be replaced when dependencies are built.
