#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace cold::eval {
namespace {

TEST(RocAucTest, PerfectSeparation) {
  std::vector<double> pos = {0.9, 0.8, 0.7};
  std::vector<double> neg = {0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc(neg, pos), 0.0);
}

TEST(RocAucTest, RandomScoresGiveHalf) {
  std::vector<double> pos, neg;
  for (int i = 0; i < 1000; ++i) {
    pos.push_back((i * 37) % 101);
    neg.push_back((i * 53) % 101);
  }
  EXPECT_NEAR(RocAuc(pos, neg), 0.5, 0.03);
}

TEST(RocAucTest, TiesCountHalf) {
  std::vector<double> pos = {0.5};
  std::vector<double> neg = {0.5};
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 0.5);
  std::vector<double> pos2 = {0.5, 0.5};
  std::vector<double> neg2 = {0.5, 0.4};
  // Pairs: (0.5 vs 0.5) x2 ties = 1.0, (0.5 vs 0.4) x2 wins = 2.0; 3/4.
  EXPECT_DOUBLE_EQ(RocAuc(pos2, neg2), 0.75);
}

TEST(RocAucTest, EmptySidesReturnHalf) {
  std::vector<double> scores = {1.0};
  EXPECT_DOUBLE_EQ(RocAuc({}, scores), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc(scores, {}), 0.5);
}

TEST(RocAucTest, KnownMixedCase) {
  std::vector<double> pos = {0.8, 0.4};
  std::vector<double> neg = {0.6, 0.2};
  // Wins: (0.8>0.6), (0.8>0.2), (0.4>0.2) = 3 of 4.
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 0.75);
}

TEST(AveragedTupleAucTest, AveragesAcrossTuples) {
  ScoredTuple perfect{{0.9}, {0.1}};
  ScoredTuple inverted{{0.1}, {0.9}};
  std::vector<ScoredTuple> tuples = {perfect, inverted};
  EXPECT_DOUBLE_EQ(AveragedTupleAuc(tuples), 0.5);
}

TEST(AveragedTupleAucTest, SkipsDegenerateTuples) {
  ScoredTuple perfect{{0.9}, {0.1}};
  ScoredTuple empty_neg{{0.9}, {}};
  std::vector<ScoredTuple> tuples = {perfect, empty_neg};
  EXPECT_DOUBLE_EQ(AveragedTupleAuc(tuples), 1.0);
  EXPECT_DOUBLE_EQ(AveragedTupleAuc(std::vector<ScoredTuple>{empty_neg}),
                   0.5);
}

TEST(ToleranceTest, AccuracyWithinTolerance) {
  std::vector<int> predicted = {3, 5, 10};
  std::vector<int> actual = {3, 7, 4};
  EXPECT_NEAR(AccuracyWithinTolerance(predicted, actual, 0), 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(AccuracyWithinTolerance(predicted, actual, 2), 2.0 / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(AccuracyWithinTolerance(predicted, actual, 6), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyWithinTolerance({}, {}, 1), 0.0);
}

TEST(ToleranceTest, CurveIsMonotone) {
  std::vector<int> predicted = {0, 4, 9, 2, 6};
  std::vector<int> actual = {1, 4, 5, 9, 6};
  auto curve = ToleranceCurve(predicted, actual, 10);
  ASSERT_EQ(curve.size(), 11u);
  for (size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
}

}  // namespace
}  // namespace cold::eval
