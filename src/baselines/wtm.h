// Whom-To-Mention (Wang et al., WWW 2013) — a feature-based retweeter
// ranking baseline (§6.1, baseline 6). Scores a candidate retweeter by a
// weighted blend of
//   interest match      — TF-IDF cosine between the candidate's posting
//                         history and the message;
//   user relationship   — past interaction intensity between publisher and
//                         candidate (content-dependent tie strength);
//   user influence      — the candidate's own spreading power (retweeter
//                         count), so the diffusion continues.
// No topic model is involved, which is why its online feature computation
// is costly (Fig 15).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/social_dataset.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/status.h"

namespace cold::baselines {

struct WtmConfig {
  double weight_interest = 0.5;
  double weight_relationship = 0.3;
  double weight_influence = 0.2;
};

class WtmModel {
 public:
  WtmModel(WtmConfig config, const text::PostStore& posts,
           const graph::Digraph& interactions,
           std::span<const data::RetweetTuple> train_tuples);

  /// \brief Builds IDF table, per-user TF-IDF profiles, relationship counts
  /// and influence scores from the training data.
  cold::Status Train();

  /// \brief Retweet propensity score of candidate `i2` for publisher `i`'s
  /// message `words` (higher = more likely to retweet).
  double Score(text::UserId i, text::UserId i2,
               std::span<const text::WordId> words) const;

  /// Individual features (exposed for tests/analysis).
  double InterestMatch(text::UserId candidate,
                       std::span<const text::WordId> words) const;
  double Relationship(text::UserId i, text::UserId i2) const;
  double Influence(text::UserId candidate) const;

 private:
  using Profile = std::unordered_map<text::WordId, double>;

  WtmConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph& interactions_;
  std::span<const data::RetweetTuple> train_tuples_;

  std::vector<double> idf_;
  std::vector<Profile> user_profiles_;
  std::vector<double> user_profile_norms_;
  std::unordered_map<uint64_t, int32_t> relationship_counts_;
  double max_log_relationship_ = 1.0;
  std::vector<double> influence_;
};

}  // namespace cold::baselines
