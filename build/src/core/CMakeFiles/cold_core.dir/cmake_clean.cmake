file(REMOVE_RECURSE
  "CMakeFiles/cold_core.dir/cold_config.cc.o"
  "CMakeFiles/cold_core.dir/cold_config.cc.o.d"
  "CMakeFiles/cold_core.dir/cold_estimates.cc.o"
  "CMakeFiles/cold_core.dir/cold_estimates.cc.o.d"
  "CMakeFiles/cold_core.dir/cold_state.cc.o"
  "CMakeFiles/cold_core.dir/cold_state.cc.o.d"
  "CMakeFiles/cold_core.dir/gibbs_sampler.cc.o"
  "CMakeFiles/cold_core.dir/gibbs_sampler.cc.o.d"
  "CMakeFiles/cold_core.dir/model_io.cc.o"
  "CMakeFiles/cold_core.dir/model_io.cc.o.d"
  "CMakeFiles/cold_core.dir/parallel_sampler.cc.o"
  "CMakeFiles/cold_core.dir/parallel_sampler.cc.o.d"
  "CMakeFiles/cold_core.dir/parallel_state.cc.o"
  "CMakeFiles/cold_core.dir/parallel_state.cc.o.d"
  "CMakeFiles/cold_core.dir/predictor.cc.o"
  "CMakeFiles/cold_core.dir/predictor.cc.o.d"
  "libcold_core.a"
  "libcold_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
