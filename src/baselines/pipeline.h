// Pipelined community-then-temporal baseline (§6.1, baseline 5): MMSB
// assigns every user to her two most probable communities, then an
// independent TOT model is fit on each community's member posts. Network
// and content are used *separately*, which is exactly the interdependence
// loss the COLD paper demonstrates (Fig 11).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "baselines/mmsb.h"
#include "baselines/tot.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/status.h"

namespace cold::baselines {

struct PipelineConfig {
  MmsbConfig mmsb;
  TotConfig tot;
  /// Communities each user is assigned to (the paper uses 2).
  int communities_per_user = 2;
};

class PipelineModel {
 public:
  PipelineModel(PipelineConfig config, const text::PostStore& posts,
                const graph::Digraph& links);

  cold::Status Train();

  /// \brief Time-stamp prediction: average of the user's communities' TOT
  /// predictions.
  std::vector<double> TimestampScores(std::span<const text::WordId> words,
                                      text::UserId author) const;

  int PredictTimestamp(std::span<const text::WordId> words,
                       text::UserId author) const;

  const MmsbModel& mmsb() const { return *mmsb_; }
  /// The TOT model of community c (nullptr if the community had no posts).
  const TotModel* community_tot(int c) const {
    return tots_[static_cast<size_t>(c)].get();
  }

 private:
  PipelineConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph& links_;
  std::unique_ptr<MmsbModel> mmsb_;
  std::vector<std::unique_ptr<TotModel>> tots_;
  /// Per-user community assignments (top-2 by MMSB membership).
  std::vector<std::vector<int>> user_communities_;
};

}  // namespace cold::baselines
