// Fixed-size thread pool with a ParallelFor primitive, used by the GAS
// engine to run gather/scatter phases over vertex and edge ranges.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cold {

/// \brief A fixed pool of worker threads executing submitted closures.
///
/// Construction spawns the workers; destruction joins them after draining the
/// queue. `ParallelFor` block-partitions an index range across workers and
/// blocks until all blocks complete — the pattern every engine phase uses.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1; 0 means
  /// hardware_concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// Blocks until all submitted work has completed.
  void Wait();

  /// \brief Runs `fn(begin, end, worker_index)` over contiguous blocks of
  /// [0, n), one block per worker, and blocks until done.
  ///
  /// `worker_index` is in [0, num_threads()) and is stable within one call,
  /// so callers can keep per-worker scratch state (e.g. RNG streams).
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace cold
