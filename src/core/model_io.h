// Serialization of fitted ColdEstimates, so a model trained once can be
// shipped to prediction services (the offline/online split of §5.2).
//
// Binary format: magic "COLDEST1", five int32 dims (U, C, K, T, V), then
// the five parameter arrays as little-endian doubles in declaration order
// (pi, theta, eta, phi, psi).
#pragma once

#include <string>

#include "core/cold_estimates.h"
#include "util/status.h"

namespace cold::core {

/// \brief Writes `estimates` to `path` (overwrites).
cold::Status SaveEstimates(const ColdEstimates& estimates,
                           const std::string& path);

/// \brief Reads estimates previously written by SaveEstimates. Validates
/// magic, dimensions and payload size.
cold::Result<ColdEstimates> LoadEstimates(const std::string& path);

}  // namespace cold::core
