#include "text/tokenizer.h"

#include <cctype>

namespace cold::text {

namespace {
constexpr const char* kDefaultStopWords[] = {
    "a",    "an",    "the",  "and",  "or",    "but",  "of",   "to",   "in",
    "on",   "at",    "for",  "with", "by",    "from", "as",   "is",   "are",
    "was",  "were",  "be",   "been", "being", "it",   "its",  "this", "that",
    "these", "those", "i",   "you",  "he",    "she",  "we",   "they", "them",
    "his",  "her",   "my",   "your", "our",   "their", "me",  "him",  "us",
    "do",   "does",  "did",  "have", "has",   "had",  "will", "would", "can",
    "could", "should", "may", "might", "must", "not",  "no",  "so",   "if",
    "then", "than",  "too",  "very", "just",  "about", "into", "over", "after",
    "before", "up",  "down", "out",  "off",   "again", "more", "most", "some",
    "such", "only",  "own",  "same", "there", "here", "when", "where", "why",
    "how",  "what",  "who",  "whom", "which", "while", "during", "both",
    "each", "few",   "other", "all", "any",   "nor",  "am",   "rt"};
}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

void Tokenizer::AddStopWord(std::string_view word) {
  std::string w(word);
  if (options_.lowercase) {
    for (char& ch : w) ch = static_cast<char>(std::tolower(ch));
  }
  stop_words_.insert(std::move(w));
}

void Tokenizer::AddDefaultStopWords() {
  for (const char* w : kDefaultStopWords) AddStopWord(w);
}

bool Tokenizer::IsStopWord(const std::string& token) const {
  return stop_words_.count(token) > 0;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view content) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (static_cast<int>(current.size()) >= options_.min_token_length &&
        !IsStopWord(current)) {
      if (!options_.drop_numbers ||
          current.find_first_not_of("0123456789") != std::string::npos) {
        tokens.push_back(current);
      }
    }
    current.clear();
  };
  for (char raw : content) {
    unsigned char ch = static_cast<unsigned char>(raw);
    if (std::isalnum(ch) || ch == '_' || ch >= 0x80) {
      current.push_back(options_.lowercase && std::isupper(ch)
                            ? static_cast<char>(std::tolower(ch))
                            : raw);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace cold::text
