file(REMOVE_RECURSE
  "libcold_eval.a"
)
