# Empty dependencies file for fig19_sensitivity_diffusion.
# This may be replaced when dependencies are built.
