// Durable file I/O primitives for the checkpoint/recovery path: CRC-32
// integrity checksums and an atomic write protocol (tmp file + fsync +
// rename + directory fsync) so a crash at any instant leaves either the
// old file or the complete new file — never a torn write.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cold {

/// \brief CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `data`,
/// continuing from `crc` so large buffers can be checksummed in chunks.
/// Pass 0 to start a fresh checksum.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

/// \brief Atomically replaces `path` with `contents`.
///
/// Protocol: write to `<path>.tmp.<pid>` in the same directory, fsync the
/// file, rename over `path`, then fsync the directory so the rename itself
/// is durable. A reader (or a post-crash restart) therefore sees either the
/// previous file or the complete new one. The temp file is unlinked on any
/// failure.
cold::Status AtomicWriteFile(const std::string& path,
                             std::string_view contents);

/// \brief Reads the whole file into a string.
cold::Result<std::string> ReadFileToString(const std::string& path);

}  // namespace cold
