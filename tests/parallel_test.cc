#include <gtest/gtest.h>

#include <cmath>

#include "core/cold.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "util/math_util.h"

namespace cold::core {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 150;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 12;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 10.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 8;
  config.seed = 11;
  return config;
}

const data::SocialDataset& TestData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticSocialGenerator gen(TestDataConfig());
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

ColdConfig TestModelConfig() {
  ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.iterations = 40;
  config.burn_in = 30;
  config.seed = 17;
  // The paper's rho = 50/C targets Weibo-scale user activity; at this test
  // scale (~10 posts/user) it would swamp the membership signal.
  config.rho = 0.5;
  return config;
}

TEST(ParallelStateTest, SnapshotRoundTrip) {
  ParallelColdState state(3, 2, 2, 4, 5, 6, 2);
  state.post_community = {0, 1, 0, 1, 0, 1};
  state.post_topic = {1, 1, 0, 0, 1, 0};
  state.n_ic(1, 0).store(3);
  state.n_ckt(1, 0, 2).store(4);
  state.n_kv(1, 4).store(5);
  state.n_cc(0, 1).store(6);
  ColdState snapshot = state.ToColdState();
  EXPECT_EQ(snapshot.post_community, state.post_community);
  EXPECT_EQ(snapshot.n_ic(1, 0), 3);
  EXPECT_EQ(snapshot.n_ckt(1, 0, 2), 4);
  EXPECT_EQ(snapshot.n_kv(1, 4), 5);
  EXPECT_EQ(snapshot.n_cc(0, 1), 6);
  EXPECT_EQ(snapshot.n_ic(0, 0), 0);
}

TEST(ParallelTrainerTest, InitBuildsConsistentCounters) {
  const auto& ds = TestData();
  ParallelColdTrainer trainer(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(trainer.Init().ok());
  ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ParallelTrainerTest, CountersConsistentAfterSupersteps) {
  const auto& ds = TestData();
  ParallelColdTrainer trainer(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(trainer.Init().ok());
  for (int s = 0; s < 3; ++s) trainer.RunSuperstep();
  ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ParallelTrainerTest, TrainRequiresInit) {
  const auto& ds = TestData();
  ParallelColdTrainer trainer(TestModelConfig(), ds.posts, &ds.interactions);
  EXPECT_EQ(trainer.Train().code(), cold::StatusCode::kFailedPrecondition);
}

TEST(ParallelTrainerTest, EstimatesNormalized) {
  const auto& ds = TestData();
  ParallelColdTrainer trainer(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  ColdEstimates est = trainer.Estimates();
  for (int c = 0; c < est.C; ++c) {
    double total = 0.0;
    for (int k = 0; k < est.K; ++k) total += est.Theta(c, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int k = 0; k < est.K; ++k) {
    double total = 0.0;
    for (int v = 0; v < est.V; ++v) total += est.Phi(k, v);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ParallelTrainerTest, ConvergesLikeSerialSampler) {
  // The parallel sampler is an approximation of the serial chain; after the
  // same number of sweeps both should reach a comparable training
  // log-likelihood (within a few percent), far above the random-init value.
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();

  ColdGibbsSampler serial(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(serial.Init().ok());
  double ll_init = serial.TrainingLogLikelihood();
  ASSERT_TRUE(serial.Train().ok());
  double ll_serial = serial.TrainingLogLikelihood();

  ParallelColdTrainer parallel(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(parallel.Init().ok());
  ASSERT_TRUE(parallel.Train().ok());
  // Evaluate the parallel chain's fit through the same likelihood function:
  // transplant its state into a serial sampler via estimates comparison.
  ColdEstimates est = parallel.Estimates();
  // Compute the same joint likelihood directly.
  double ll_parallel = 0.0;
  {
    std::vector<double> joint(static_cast<size_t>(est.C) * est.K);
    std::vector<double> log_word(static_cast<size_t>(est.K));
    for (text::PostId d = 0; d < ds.posts.num_posts(); ++d) {
      text::UserId i = ds.posts.author(d);
      int t = ds.posts.time(d);
      for (int k = 0; k < est.K; ++k) {
        double lw = 0.0;
        for (text::WordId w : ds.posts.words(d)) {
          lw += std::log(est.Phi(k, w));
        }
        log_word[static_cast<size_t>(k)] = lw;
      }
      for (int c = 0; c < est.C; ++c) {
        for (int k = 0; k < est.K; ++k) {
          joint[static_cast<size_t>(c) * est.K + k] =
              std::log(est.Pi(i, c)) + std::log(est.Theta(c, k)) +
              log_word[static_cast<size_t>(k)] + std::log(est.Psi(k, c, t));
        }
      }
      ll_parallel += LogSumExp(joint);
    }
    for (graph::EdgeId e = 0; e < ds.interactions.num_edges(); ++e) {
      const graph::Edge& edge = ds.interactions.edge(e);
      double p = 0.0;
      for (int c = 0; c < est.C; ++c) {
        for (int c2 = 0; c2 < est.C; ++c2) {
          p += est.Pi(edge.src, c) * est.Pi(edge.dst, c2) * est.Eta(c, c2);
        }
      }
      ll_parallel += std::log(std::max(p, 1e-300));
    }
  }
  // Both runs must improve massively over random init...
  EXPECT_GT(ll_serial, ll_init + 0.5 * std::abs(ll_init) * 0.01);
  EXPECT_GT(ll_parallel, ll_init);
  // ...and land within 5% of each other.
  EXPECT_NEAR(ll_parallel, ll_serial, std::abs(ll_serial) * 0.05);
}

TEST(ParallelTrainerTest, EngineStatsPopulated) {
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.iterations = 3;
  config.burn_in = 0;
  engine::EngineOptions options;
  options.num_nodes = 4;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  const engine::EngineStats& stats = trainer.engine_stats();
  EXPECT_EQ(stats.supersteps, 3);
  EXPECT_GT(stats.scatter_seconds, 0.0);
  EXPECT_GT(stats.comm_bytes, 0);
  EXPECT_EQ(stats.node_work_units.size(), 4u);
}

TEST(ParallelTrainerTest, RegistryMetricsMatchEngineStats) {
  // The engine adds the exact same deltas, in the same order, to both its
  // EngineStats accumulators and the telemetry registry — so after a train
  // the two views must agree bit-for-bit.
  obs::Registry::Enable();
  auto& registry = obs::Registry::Global();
  registry.Reset();
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.iterations = 3;
  config.burn_in = 0;
  engine::EngineOptions options;
  options.num_nodes = 4;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
  ASSERT_TRUE(trainer.Init().ok());
  int supersteps_seen = 0;
  trainer.SetSuperstepCallback([&](int s) { supersteps_seen = s; });
  ASSERT_TRUE(trainer.Train().ok());
  EXPECT_EQ(supersteps_seen, 3);

  const engine::EngineStats& stats = trainer.engine_stats();
  EXPECT_DOUBLE_EQ(registry.GetGauge("cold/engine/gather_seconds")->Value(),
                   stats.gather_seconds);
  EXPECT_DOUBLE_EQ(registry.GetGauge("cold/engine/apply_seconds")->Value(),
                   stats.apply_seconds);
  EXPECT_DOUBLE_EQ(registry.GetGauge("cold/engine/scatter_seconds")->Value(),
                   stats.scatter_seconds);
  EXPECT_EQ(registry.GetCounter("cold/engine/comm_bytes")->Value(),
            stats.comm_bytes);
  EXPECT_EQ(registry.GetCounter("cold/engine/supersteps")->Value(),
            stats.supersteps);
  EXPECT_EQ(static_cast<int64_t>(
                registry.GetGauge("cold/engine/cut_edges")->Value()),
            stats.cut_edges);
  EXPECT_GE(registry.GetGauge("cold/engine/work_skew")->Value(), 1.0);
  // Each superstep ran under a trace span.
  EXPECT_EQ(registry.GetHistogram("cold/trace/engine/superstep")->count(),
            stats.supersteps);
}

TEST(ParallelTrainerTest, SimulatedWallShrinksWithMoreNodes) {
  const auto& ds = TestData();
  auto run = [&](int nodes) {
    ColdConfig config = TestModelConfig();
    config.iterations = 3;
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = nodes;
    ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
    EXPECT_TRUE(trainer.Init().ok());
    EXPECT_TRUE(trainer.Train().ok());
    engine::ClusterModel model;
    model.bandwidth_bytes_per_sec = 1e12;
    model.sync_latency_sec = 1e-6;
    return trainer.SimulatedWallSeconds(model);
  };
  double t1 = run(1);
  double t8 = run(8);
  EXPECT_LT(t8, t1);
}

TEST(ParallelTrainerTest, NoLinkMode) {
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.use_network = false;
  config.iterations = 3;
  config.burn_in = 0;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  ColdState snapshot = trainer.StateSnapshot();
  EXPECT_TRUE(snapshot.CheckInvariants(ds.posts, nullptr, false).ok());
}

}  // namespace
}  // namespace cold::core

namespace cold::core {
namespace {

TEST(ParallelTrainerTest, AsyncModeKeepsCountersConsistent) {
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.iterations = 4;
  config.burn_in = 0;
  engine::EngineOptions options;
  options.execution = engine::ExecutionMode::kAsync;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ParallelTrainerTest, AsyncAndSyncReachSimilarFit) {
  const auto& ds = TestData();
  auto fit = [&](engine::ExecutionMode mode) {
    ColdConfig config = TestModelConfig();
    config.iterations = 30;
    config.burn_in = 0;
    engine::EngineOptions options;
    options.execution = mode;
    ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
    EXPECT_TRUE(trainer.Init().ok());
    EXPECT_TRUE(trainer.Train().ok());
    ColdEstimates est = trainer.Estimates();
    // Use per-post predictive perplexity as the fit proxy.
    ColdPredictor predictor(est);
    return predictor.Perplexity(ds.posts);
  };
  double sync_perp = fit(engine::ExecutionMode::kSync);
  double async_perp = fit(engine::ExecutionMode::kAsync);
  EXPECT_NEAR(async_perp, sync_perp, sync_perp * 0.15);
}

// --- delta-table determinism and observability ----------------------------

TEST(ParallelTrainerTest, MultiWorkerFixedSeedRunsAreBitIdentical) {
  // Delta mode freezes the canonical counters during scatter and keys every
  // RNG draw by (superstep, chunk), so repeated runs with the same seed and
  // worker count -- and runs with DIFFERENT worker counts -- must land on
  // byte-identical state.
  const auto& ds = TestData();
  auto run = [&](int threads) {
    ColdConfig config = TestModelConfig();
    config.iterations = 5;
    config.burn_in = 0;
    engine::EngineOptions options;
    options.threads_per_node = threads;
    options.oversubscribe = true;
    ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
    EXPECT_TRUE(trainer.Init().ok());
    EXPECT_TRUE(trainer.Train().ok());
    return trainer.StateSnapshot();
  };
  ColdState a = run(4);
  ColdState b = run(4);
  EXPECT_EQ(a.post_community, b.post_community);
  EXPECT_EQ(a.post_topic, b.post_topic);
  EXPECT_EQ(a.link_src_community, b.link_src_community);
  EXPECT_EQ(a.link_dst_community, b.link_dst_community);
  // Worker count must not matter either: chunk boundaries depend only on
  // the edge count, and the per-cell merge order is fixed.
  ColdState c = run(1);
  EXPECT_EQ(a.post_community, c.post_community);
  EXPECT_EQ(a.post_topic, c.post_topic);
  EXPECT_EQ(a.link_src_community, c.link_src_community);
  EXPECT_EQ(a.link_dst_community, c.link_dst_community);
}

TEST(ParallelTrainerTest, StaleClampStaysZeroUnderDeltaMode) {
  // The delta tables read frozen counts with exact own-contribution
  // exclusion, so the negative-count clamp in the kernels must never fire.
  obs::Registry::Enable();
  auto& registry = obs::Registry::Global();
  registry.Reset();
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.iterations = 5;
  config.burn_in = 0;
  engine::EngineOptions options;
  options.threads_per_node = 4;
  options.oversubscribe = true;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  EXPECT_EQ(registry.GetCounter("cold/parallel/stale_clamp_total")->Value(),
            0);
}

TEST(ParallelTrainerTest, LegacyCountersModeStaysConsistent) {
  // The pre-delta shared-atomic path stays selectable for A/B runs and must
  // still produce invariant-clean counters.
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.iterations = 4;
  config.burn_in = 0;
  engine::EngineOptions options;
  options.legacy_shared_counters = true;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ParallelTrainerTest, GreedyPartitionerReducesCommBytes) {
  // On the community-clustered synthetic follower graph the degree-aware
  // greedy placement must cut fewer edges -- and therefore account fewer
  // communication bytes -- than locality-blind modulo placement.
  const auto& ds = TestData();
  auto stats_for = [&](engine::PartitionerKind kind) {
    ColdConfig config = TestModelConfig();
    config.iterations = 2;
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = 4;
    options.partitioner = kind;
    ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
    EXPECT_TRUE(trainer.Init().ok());
    EXPECT_TRUE(trainer.Train().ok());
    return trainer.engine_stats();
  };
  engine::EngineStats modulo = stats_for(engine::PartitionerKind::kModulo);
  engine::EngineStats greedy = stats_for(engine::PartitionerKind::kGreedy);
  EXPECT_LT(greedy.cut_edges, modulo.cut_edges);
  EXPECT_LT(greedy.comm_bytes, modulo.comm_bytes);
}

}  // namespace
}  // namespace cold::core
