// PageRank over the interaction network — a classical structural influence
// score used as a baseline for §6.6-style influential-user identification.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace cold::graph {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// L1 change threshold for early convergence.
  double tolerance = 1e-10;
};

/// \brief Power-iteration PageRank. Dangling mass is redistributed
/// uniformly. Returns a probability vector over nodes.
std::vector<double> PageRank(const Digraph& graph,
                             PageRankOptions options = {});

}  // namespace cold::graph
