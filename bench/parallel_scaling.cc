// Strong-scaling benchmark for the parallel trainer (tentpole of the
// parallel-scalability PR; DESIGN.md §10).
//
// Measures, at two data scales:
//   - a strong-scaling thread series (1 .. hardware threads): per-superstep
//     tokens/sec and links/sec plus speedup over the 1-thread run;
//   - the delta-table scatter vs the legacy shared-atomic mode at the
//     maximum thread count (the contention + per-token-log A/B);
//   - the PR 4 serial sampler on the same data, so the parallel numbers are
//     anchored to the single-core baseline;
//   - partitioner communication accounting at num_nodes = 4: comm bytes and
//     cut edges under modulo vs degree-aware greedy placement.
//
// Results land as JSON in --out (default BENCH_parallel.json) so runs can
// be diffed across commits. --smoke shrinks everything to seconds of
// runtime, re-parses the emitted JSON and fails (exit 1) unless it is
// well-formed with positive throughput and the greedy partitioner beats
// modulo on comm bytes — wired up as the `bench_parallel_smoke` ctest.
#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/parallel_sampler.h"
#include "serve/json.h"
#include "util/stopwatch.h"

namespace {

using namespace cold;

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Top of the strong-scaling thread series: hardware threads by default,
/// or the COLD_BENCH_THREADS override. On constrained machines (CI boxes
/// report 1 core, making speedup_vs_1 vacuous) the override lets the
/// series exercise multi-worker code paths by oversubscribing — the run is
/// then a code-path benchmark, not a throughput claim, which is why the
/// emitted JSON records requested-vs-available and flags each
/// oversubscribed point.
int BenchThreads() {
  const char* env = std::getenv("COLD_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return HardwareThreads();
  int threads = std::atoi(env);
  if (threads < 1 || threads > 256) {
    std::fprintf(stderr, "ignoring invalid COLD_BENCH_THREADS '%s'\n", env);
    return HardwareThreads();
  }
  return threads;
}

/// One benchmark scale: dataset size multiplier + superstep counts.
struct Scale {
  const char* name;
  double data_scale;  // multiplies BenchDataConfig user count
  int supersteps;
  int partition_supersteps;
};

struct TrainResult {
  /// Fastest single superstep — the noise-robust throughput basis on a
  /// shared machine (slow outliers are scheduler preemption, not sampler
  /// cost).
  double min_superstep_seconds = 0.0;
  engine::EngineStats stats;
};

TrainResult RunParallel(const core::ColdConfig& config,
                        const data::SocialDataset& ds,
                        engine::EngineOptions options) {
  core::ParallelColdTrainer trainer(config, ds.posts, &ds.interactions,
                                    options);
  auto st = trainer.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "parallel init failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  TrainResult result;
  for (int step = 0; step < config.iterations; ++step) {
    Stopwatch watch;
    trainer.RunSuperstep();
    double seconds = watch.ElapsedSeconds();
    if (step == 0 || seconds < result.min_superstep_seconds) {
      result.min_superstep_seconds = seconds;
    }
  }
  result.stats = trainer.engine_stats();
  return result;
}

serve::Json RunScale(const Scale& scale) {
  data::SyntheticConfig data_config = bench::BenchDataConfig();
  data_config.num_users =
      std::max(20, static_cast<int>(data_config.num_users * scale.data_scale));
  const data::SocialDataset ds = bench::GenerateBenchData(data_config);

  int64_t tokens = 0;
  for (text::PostId d = 0; d < ds.posts.num_posts(); ++d) {
    tokens += ds.posts.length(d);
  }
  const int64_t links = ds.interactions.num_edges();

  core::ColdConfig config = bench::BenchColdConfig(8, 12, scale.supersteps);
  config.burn_in = 0;
  config.sample_lag = 1;

  bench::PrintHeader(std::string("parallel_scaling: ") + scale.name);
  std::printf("posts=%d links=%lld tokens=%lld supersteps=%d\n",
              ds.posts.num_posts(), static_cast<long long>(links),
              static_cast<long long>(tokens), scale.supersteps);

  serve::Json out = serve::Json::MakeObject();
  out.Set("name", scale.name);
  out.Set("num_posts", static_cast<double>(ds.posts.num_posts()));
  out.Set("num_links", static_cast<double>(links));
  out.Set("tokens", static_cast<double>(tokens));

  auto rate = [](double step_seconds, int64_t units) {
    return step_seconds > 0.0 ? static_cast<double>(units) / step_seconds
                              : 0.0;
  };

  // --- strong-scaling thread series (delta-table mode) ---
  const int hw_threads = HardwareThreads();
  const int max_threads = BenchThreads();
  serve::Json thread_series = serve::Json::MakeArray();
  std::vector<double> tokens_per_sec_series;
  double delta_max_threads_tps = 0.0;
  for (int threads = 1; threads <= max_threads; ++threads) {
    engine::EngineOptions options;
    options.threads_per_node = threads;
    options.oversubscribe = threads > hw_threads;
    TrainResult run = RunParallel(config, ds, options);
    double tps = rate(run.min_superstep_seconds, tokens);
    double lps = rate(run.min_superstep_seconds, links);
    tokens_per_sec_series.push_back(tps);
    delta_max_threads_tps = tps;
    serve::Json point = serve::Json::MakeObject();
    point.Set("threads", static_cast<double>(threads));
    point.Set("tokens_per_sec", tps);
    point.Set("links_per_sec", lps);
    point.Set("speedup_vs_1",
              tokens_per_sec_series[0] > 0.0 ? tps / tokens_per_sec_series[0]
                                             : 0.0);
    // Oversubscribed points share cores: their speedup_vs_1 measures code
    // paths, not scaling.
    point.Set("oversubscribed", threads > hw_threads);
    thread_series.Append(point);
  }
  out.Set("threads", thread_series);
  bench::PrintSeries("tokens/sec", tokens_per_sec_series, "%.0f");

  // --- delta vs legacy shared-atomic A/B at max threads ---
  // The two trainers alternate superstep-by-superstep so host-wide speed
  // shifts (shared machine) hit both modes equally; min-of-steps then
  // filters preemption outliers from each.
  {
    engine::EngineOptions delta_options;
    delta_options.threads_per_node = max_threads;
    delta_options.oversubscribe = max_threads > hw_threads;
    engine::EngineOptions legacy_options = delta_options;
    legacy_options.legacy_shared_counters = true;
    core::ParallelColdTrainer delta_trainer(config, ds.posts,
                                            &ds.interactions, delta_options);
    core::ParallelColdTrainer legacy_trainer(config, ds.posts,
                                             &ds.interactions,
                                             legacy_options);
    auto st = delta_trainer.Init();
    if (st.ok()) st = legacy_trainer.Init();
    if (!st.ok()) {
      std::fprintf(stderr, "A/B init failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    double delta_min = 0.0;
    double legacy_min = 0.0;
    const int reps = std::max(scale.supersteps, 8);
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch delta_watch;
      delta_trainer.RunSuperstep();
      double delta_step = delta_watch.ElapsedSeconds();
      Stopwatch legacy_watch;
      legacy_trainer.RunSuperstep();
      double legacy_step = legacy_watch.ElapsedSeconds();
      if (rep == 0 || delta_step < delta_min) delta_min = delta_step;
      if (rep == 0 || legacy_step < legacy_min) legacy_min = legacy_step;
    }
    double delta_tps = rate(delta_min, tokens);
    double legacy_tps = rate(legacy_min, tokens);
    out.Set("delta_tokens_per_sec", delta_tps);
    out.Set("legacy_tokens_per_sec", legacy_tps);
    double speedup_vs_legacy = legacy_tps > 0.0 ? delta_tps / legacy_tps : 0.0;
    out.Set("speedup_vs_legacy", speedup_vs_legacy);
    std::printf("delta %.0f vs legacy %.0f tokens/sec (%.2fx)\n", delta_tps,
                legacy_tps, speedup_vs_legacy);
  }

  // --- PR 4 serial sampler anchor ---
  {
    core::ColdGibbsSampler serial(config, ds.posts, &ds.interactions);
    auto st = serial.Init();
    if (!st.ok()) {
      std::fprintf(stderr, "serial init failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    double min_sweep = 0.0;
    for (int sweep = 0; sweep < scale.supersteps; ++sweep) {
      Stopwatch watch;
      serial.RunIteration();
      double seconds = watch.ElapsedSeconds();
      if (sweep == 0 || seconds < min_sweep) min_sweep = seconds;
    }
    double serial_tps = rate(min_sweep, tokens);
    out.Set("serial_tokens_per_sec", serial_tps);
    out.Set("speedup_vs_serial",
            serial_tps > 0.0 ? delta_max_threads_tps / serial_tps : 0.0);
    std::printf("serial sampler %.0f tokens/sec\n", serial_tps);
  }

  // --- partitioner communication accounting at 4 simulated nodes ---
  {
    core::ColdConfig pconfig = config;
    pconfig.iterations = scale.partition_supersteps;
    auto stats_for = [&](engine::PartitionerKind kind) {
      engine::EngineOptions options;
      options.num_nodes = 4;
      options.partitioner = kind;
      return RunParallel(pconfig, ds, options).stats;
    };
    engine::EngineStats modulo = stats_for(engine::PartitionerKind::kModulo);
    engine::EngineStats greedy = stats_for(engine::PartitionerKind::kGreedy);
    serve::Json part = serve::Json::MakeObject();
    part.Set("modulo_comm_bytes", static_cast<double>(modulo.comm_bytes));
    part.Set("greedy_comm_bytes", static_cast<double>(greedy.comm_bytes));
    part.Set("modulo_cut_edges", static_cast<double>(modulo.cut_edges));
    part.Set("greedy_cut_edges", static_cast<double>(greedy.cut_edges));
    out.Set("partitioner", part);
    std::printf("partitioner comm bytes: modulo %lld, greedy %lld\n",
                static_cast<long long>(modulo.comm_bytes),
                static_cast<long long>(greedy.comm_bytes));
  }
  return out;
}

/// Smoke validation: the emitted file must parse as JSON with the expected
/// shape, strictly positive throughput everywhere, and the greedy
/// partitioner strictly below modulo on comm bytes.
bool ValidateJson(const std::string& path) {
  auto parsed = bench::LoadJsonFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "smoke: invalid JSON: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  const serve::Json& root = parsed.ValueOrDie();
  const serve::Json* scales = root.Find("scales");
  if (scales == nullptr || !scales->is_array() || scales->as_array().empty()) {
    std::fprintf(stderr, "smoke: missing scales array\n");
    return false;
  }
  for (const serve::Json& scale : scales->as_array()) {
    const serve::Json* threads = scale.Find("threads");
    if (threads == nullptr || !threads->is_array() ||
        threads->as_array().empty()) {
      std::fprintf(stderr, "smoke: missing threads series\n");
      return false;
    }
    for (const serve::Json& point : threads->as_array()) {
      const serve::Json* tps = point.Find("tokens_per_sec");
      if (tps == nullptr || !tps->is_number() || !(tps->as_number() > 0.0)) {
        std::fprintf(stderr, "smoke: tokens/sec not > 0\n");
        return false;
      }
    }
    for (const char* key :
         {"delta_tokens_per_sec", "legacy_tokens_per_sec",
          "serial_tokens_per_sec", "speedup_vs_legacy"}) {
      const serve::Json* value = scale.Find(key);
      if (value == nullptr || !value->is_number() ||
          !(value->as_number() > 0.0)) {
        std::fprintf(stderr, "smoke: %s not > 0\n", key);
        return false;
      }
    }
    const serve::Json* part = scale.Find("partitioner");
    if (part == nullptr) {
      std::fprintf(stderr, "smoke: missing partitioner section\n");
      return false;
    }
    const serve::Json* modulo = part->Find("modulo_comm_bytes");
    const serve::Json* greedy = part->Find("greedy_comm_bytes");
    if (modulo == nullptr || greedy == nullptr || !modulo->is_number() ||
        !greedy->is_number() ||
        !(greedy->as_number() < modulo->as_number())) {
      std::fprintf(stderr,
                   "smoke: greedy comm bytes not below modulo comm bytes\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  bench::QuietLogs();

  std::string out_path = "BENCH_parallel.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 1;
    }
  }
  bench::PrintHeader("Parallel trainer: strong scaling and partitioning");

  std::vector<Scale> scales;
  if (smoke) {
    scales.push_back({"smoke", 0.05, 3, 2});
  } else {
    scales.push_back({"small", 0.25, 10, 4});
    scales.push_back({"medium", 1.0, 5, 2});
  }

  serve::Json root = serve::Json::MakeObject();
  root.Set("bench", "parallel_scaling");
  root.Set("hardware_threads", static_cast<double>(HardwareThreads()));
  // Requested-vs-available: bench_threads is the top of the thread series
  // (COLD_BENCH_THREADS override, else hardware_threads). When overridden
  // past the hardware, points are explicitly flagged "oversubscribed".
  root.Set("bench_threads", static_cast<double>(BenchThreads()));
  root.Set("threads_overridden", std::getenv("COLD_BENCH_THREADS") != nullptr);
  serve::Json scale_array = serve::Json::MakeArray();
  for (const Scale& scale : scales) scale_array.Append(RunScale(scale));
  root.Set("scales", scale_array);

  if (!bench::WriteJsonFile(root, out_path)) return 1;
  std::printf("results written to %s\n", out_path.c_str());

  if (smoke && !ValidateJson(out_path)) return 1;
  bench::DumpTelemetryIfRequested();
  return 0;
}
