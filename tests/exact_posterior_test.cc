// Gold-standard correctness check for the collapsed Gibbs sampler: on a
// tiny instance, enumerate every latent configuration, compute the exact
// collapsed joint P(c, z, s, s' | data) from the model's closed-form
// marginals, and compare against the sampler's empirical visit frequencies
// over a long chain. This validates Eqs. (1)-(3) jointly, including the
// Dirichlet-multinomial word term and the link Beta term.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "core/cold.h"
#include "util/math_util.h"

namespace cold::core {
namespace {

// Tiny world: 2 users, C=2, K=2, T=2, V=3; two posts and one link.
struct TinyWorld {
  text::PostStore posts;
  graph::Digraph links;
  ColdConfig config;

  TinyWorld() {
    posts.Add(/*author=*/0, /*time=*/0, std::vector<text::WordId>{0, 1});
    posts.Add(/*author=*/1, /*time=*/1, std::vector<text::WordId>{2});
    posts.Finalize(2, 2);
    graph::Digraph::Builder builder;
    EXPECT_TRUE(builder.AddEdge(0, 1).ok());
    links = std::move(builder).Build(2);

    config.num_communities = 2;
    config.num_topics = 2;
    config.rho = 0.7;
    config.alpha = 0.4;
    config.beta = 0.3;
    config.epsilon = 0.6;
    config.lambda1 = 0.5;
    config.kappa = 1.0;
    config.iterations = 1;
    config.burn_in = 0;
    config.link_sampling = LinkSampling::kJoint;
  }
};

// log Gamma-ratio product for a Dirichlet-multinomial block:
// sum_j lgamma(counts_j + prior) - lgamma(sum_j counts_j + J * prior),
// constants dropped consistently across configurations.
double DirMultLogScore(const std::vector<int>& counts, double prior) {
  double score = 0.0;
  int total = 0;
  for (int c : counts) {
    score += std::lgamma(c + prior);
    total += c;
  }
  score -= std::lgamma(total + prior * static_cast<double>(counts.size()));
  return score;
}

// Exact collapsed log-joint of one full latent configuration. Mirrors the
// factorization in Appendix A (Eq. 9): independent Dirichlet-multinomial
// blocks for pi (per user), theta (per community), phi (per topic),
// psi (per community-topic), and a Beta block per community pair.
double ExactLogJoint(const TinyWorld& world, int c0, int z0, int c1, int z1,
                     int s, int s2, double lambda0) {
  const ColdConfig& config = world.config;
  const int C = 2, K = 2, T = 2, V = 3;

  // --- pi blocks: user 0 owns post 0 and link src; user 1 owns post 1 and
  // link dst.
  double score = 0.0;
  {
    std::vector<int> u0(C, 0), u1(C, 0);
    u0[static_cast<size_t>(c0)]++;
    u0[static_cast<size_t>(s)]++;
    u1[static_cast<size_t>(c1)]++;
    u1[static_cast<size_t>(s2)]++;
    score += DirMultLogScore(u0, config.rho);
    score += DirMultLogScore(u1, config.rho);
  }
  // --- theta blocks: per community, topic counts of its posts.
  {
    for (int c = 0; c < C; ++c) {
      std::vector<int> counts(K, 0);
      if (c0 == c) counts[static_cast<size_t>(z0)]++;
      if (c1 == c) counts[static_cast<size_t>(z1)]++;
      score += DirMultLogScore(counts, config.alpha);
    }
  }
  // --- phi blocks: per topic, word counts. Post 0 = {0, 1}, post 1 = {2}.
  {
    for (int k = 0; k < K; ++k) {
      std::vector<int> counts(V, 0);
      if (z0 == k) {
        counts[0]++;
        counts[1]++;
      }
      if (z1 == k) counts[2]++;
      score += DirMultLogScore(counts, config.beta);
    }
  }
  // --- psi blocks: per (community, topic), time counts. Post 0 at t=0,
  // post 1 at t=1.
  {
    for (int c = 0; c < C; ++c) {
      for (int k = 0; k < K; ++k) {
        std::vector<int> counts(T, 0);
        if (c0 == c && z0 == k) counts[0]++;
        if (c1 == c && z1 == k) counts[1]++;
        score += DirMultLogScore(counts, config.epsilon);
      }
    }
  }
  // --- eta blocks: Beta(lambda0, lambda1) per pair; one positive link at
  // (s, s2): contributes lgamma(n + l1) - lgamma(n + l0 + l1) relative
  // factor; with one link total, only the (s, s2) block deviates from the
  // empty-block constant, by log(l1 / (l0 + l1))... computed exactly:
  {
    const double l0 = lambda0, l1 = world.config.lambda1;
    // Block (s, s2) has one success: Beta-binomial marginal
    //   B(l1 + 1, l0) / B(l1, l0) = l1 / (l1 + l0).
    score += std::log(l1 / (l1 + l0));
  }
  return score;
}

TEST(ExactPosteriorTest, GibbsChainMatchesEnumeratedPosterior) {
  TinyWorld world;
  ColdGibbsSampler sampler(world.config, world.posts, &world.links);
  ASSERT_TRUE(sampler.Init().ok());
  const double lambda0 = sampler.lambda0();

  // Enumerate the exact posterior over (c0, z0, c1, z1, s, s2): 64 states.
  std::vector<double> log_joint;
  std::vector<std::array<int, 6>> states;
  for (int c0 = 0; c0 < 2; ++c0)
    for (int z0 = 0; z0 < 2; ++z0)
      for (int c1 = 0; c1 < 2; ++c1)
        for (int z1 = 0; z1 < 2; ++z1)
          for (int s = 0; s < 2; ++s)
            for (int s2 = 0; s2 < 2; ++s2) {
              states.push_back({c0, z0, c1, z1, s, s2});
              log_joint.push_back(
                  ExactLogJoint(world, c0, z0, c1, z1, s, s2, lambda0));
            }
  double lse = LogSumExp(log_joint);
  std::map<std::array<int, 6>, double> exact;
  for (size_t i = 0; i < states.size(); ++i) {
    exact[states[i]] = std::exp(log_joint[i] - lse);
  }

  // Long chain; count visited configurations after each sweep.
  const int burn = 200;
  const int samples = 60000;
  std::map<std::array<int, 6>, int> visits;
  for (int it = 0; it < burn; ++it) sampler.RunIteration();
  for (int it = 0; it < samples; ++it) {
    sampler.RunIteration();
    const ColdState& st = sampler.state();
    visits[{st.post_community[0], st.post_topic[0], st.post_community[1],
            st.post_topic[1], st.link_src_community[0],
            st.link_dst_community[0]}]++;
  }

  // Compare: every configuration with non-trivial exact mass must be
  // visited at close to its exact frequency.
  double total_variation = 0.0;
  for (const auto& [state, p_exact] : exact) {
    double p_emp = 0.0;
    auto it = visits.find(state);
    if (it != visits.end()) {
      p_emp = static_cast<double>(it->second) / samples;
    }
    total_variation += std::abs(p_exact - p_emp);
    if (p_exact > 0.02) {
      EXPECT_NEAR(p_emp, p_exact, 0.25 * p_exact + 0.005)
          << "state (" << state[0] << state[1] << state[2] << state[3]
          << state[4] << state[5] << ")";
    }
  }
  total_variation *= 0.5;
  EXPECT_LT(total_variation, 0.05)
      << "total variation between chain and exact posterior too large";
}

TEST(ExactPosteriorTest, AlternatingLinkSamplingSameDistribution) {
  // The alternating conditional update must target the same stationary
  // distribution as the joint draw.
  TinyWorld world;
  world.config.link_sampling = LinkSampling::kAlternating;
  ColdGibbsSampler sampler(world.config, world.posts, &world.links);
  ASSERT_TRUE(sampler.Init().ok());
  const double lambda0 = sampler.lambda0();

  std::vector<double> log_joint;
  std::vector<std::array<int, 6>> states;
  for (int c0 = 0; c0 < 2; ++c0)
    for (int z0 = 0; z0 < 2; ++z0)
      for (int c1 = 0; c1 < 2; ++c1)
        for (int z1 = 0; z1 < 2; ++z1)
          for (int s = 0; s < 2; ++s)
            for (int s2 = 0; s2 < 2; ++s2) {
              states.push_back({c0, z0, c1, z1, s, s2});
              log_joint.push_back(
                  ExactLogJoint(world, c0, z0, c1, z1, s, s2, lambda0));
            }
  double lse = LogSumExp(log_joint);

  const int burn = 200;
  const int samples = 60000;
  std::map<std::array<int, 6>, int> visits;
  for (int it = 0; it < burn; ++it) sampler.RunIteration();
  for (int it = 0; it < samples; ++it) {
    sampler.RunIteration();
    const ColdState& st = sampler.state();
    visits[{st.post_community[0], st.post_topic[0], st.post_community[1],
            st.post_topic[1], st.link_src_community[0],
            st.link_dst_community[0]}]++;
  }
  double total_variation = 0.0;
  for (size_t i = 0; i < states.size(); ++i) {
    double p_exact = std::exp(log_joint[i] - lse);
    double p_emp = 0.0;
    auto it = visits.find(states[i]);
    if (it != visits.end()) {
      p_emp = static_cast<double>(it->second) / samples;
    }
    total_variation += std::abs(p_exact - p_emp);
  }
  total_variation *= 0.5;
  EXPECT_LT(total_variation, 0.05);
}

}  // namespace
}  // namespace cold::core
