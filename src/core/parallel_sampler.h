// Parallel COLD inference on the GAS engine (§4.3, Fig 4, Alg 2).
//
// Graph abstraction (exactly the paper's): a bipartite graph connecting each
// user with each time slice — the edge (i, t) carries the posts user i wrote
// at time t together with their community/topic indicators — plus user-user
// edges carrying the link community indicators (s, s').
//
// Counter placement follows Alg 2: per-user membership counts n_ic and
// per-time counts n_ckt are vertex-owned and rebuilt in the gather/apply
// phases each superstep; the low-dimensional global counters (n_ck, n_kv,
// n_k, n_cc) are shared aggregates broadcast at superstep boundaries (the
// engine accounts that traffic).
//
// Scatter draws new assignments with Eqs. (1)-(3). In the default
// delta-table mode the canonical counters stay frozen for the whole phase:
// each worker reads them contention-free, records its +/- updates in a
// private delta buffer, and the buffers are merged at the superstep
// boundary — deterministic for a fixed seed regardless of worker count, and
// free of the fetch_add hot spot. Derived log/lgamma caches are rebuilt
// once per superstep from the stable counts (DESIGN.md §10). The legacy
// shared-atomic mode (live counts, per-token logs) remains selectable via
// EngineOptions::legacy_shared_counters for A/B benchmarking.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/cold_config.h"
#include "core/cold_estimates.h"
#include "core/parallel_state.h"
#include "engine/gas_engine.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::core {

/// \brief Vertex payload: user vertices come first (id = user), then time
/// vertices (id = slice).
struct ColdVertex {
  bool is_user = true;
  int32_t index = 0;
};

/// \brief Edge payload: a user-time edge owns the posts of (user, t); a
/// user-user edge owns one interaction link.
struct ColdEdge {
  enum class Type : uint8_t { kUserTime, kUserUser };
  Type type = Type::kUserTime;
  std::vector<text::PostId> posts;  // kUserTime
  graph::EdgeId link = -1;          // kUserUser
};

/// \brief One node's contribution to a distributed superstep: the sparse
/// count deltas its owned scatter chunks produced (flat delta-table indices,
/// see ParallelColdState::dx_n_*) plus the assignment rewrites for its own
/// edges. Per-cell int32 sums commute, so the union over nodes applied to
/// replicated frozen state reproduces the single-process superstep exactly
/// (DESIGN.md §12).
struct SuperstepUpdate {
  std::vector<std::pair<uint32_t, int32_t>> count_deltas;
  std::vector<std::array<int32_t, 3>> post_updates;  // {post, community, topic}
  std::vector<std::array<int32_t, 3>> link_updates;  // {link, s, s2}
};

class ColdVertexProgram;  // defined in parallel_sampler.cc

/// \brief Parallel trainer: builds the Fig-4 graph, runs `iterations`
/// supersteps, and exposes estimates plus engine statistics for the
/// scalability experiments (Figs 13-14).
class ParallelColdTrainer {
 public:
  ParallelColdTrainer(ColdConfig config, const text::PostStore& posts,
                      const graph::Digraph* links,
                      engine::EngineOptions engine_options = {});
  ~ParallelColdTrainer();

  /// \brief Builds the graph abstraction and the random initial assignment.
  cold::Status Init();

  /// \brief Runs the remaining supersteps (config.iterations minus
  /// supersteps_run()), so a trainer restored via RestoreState() picks up
  /// where the checkpoint left off.
  cold::Status Train();

  /// \brief Serializes the complete trainer state — shared counters,
  /// assignments, superstep index, and every worker's RNG stream — for the
  /// checkpoint layer (checkpoint.h). Defined in checkpoint.cc.
  cold::Status SerializeState(std::string* out) const;

  /// \brief Restores state captured by SerializeState(). Requires the same
  /// dataset, seed, schedule and worker count (the v1 payload serializes
  /// per-worker RNG streams; scatter draws are keyed by superstep and
  /// chunk, so resumed runs are bit-identical at any worker count that
  /// matches the checkpoint); validated before anything takes effect.
  /// Defined in checkpoint.cc.
  cold::Status RestoreState(const std::string& payload);

  /// 1-based count of completed supersteps.
  int supersteps_run() const { return supersteps_run_; }

  /// \brief Observer invoked by Train() after every superstep with the
  /// 1-based superstep number (the per-sweep telemetry snapshot hook).
  void SetSuperstepCallback(std::function<void(int)> callback) {
    superstep_callback_ = std::move(callback);
  }

  /// \brief Runs a single superstep (one full Gibbs sweep).
  void RunSuperstep();

  // --- distributed execution hooks (src/dist) -----------------------------
  //
  // A distributed node replicates the full model state, runs the gather and
  // apply phases in full (exact recompute from replicated assignments), and
  // scatters only the chunks it owns. RunSuperstepSharded defers the delta
  // merge and exports the node's sparse update; after the coordinator merges
  // all nodes' updates in rank order, ApplyGlobalUpdate installs the merged
  // result on every node, keeping the replicas in lockstep. Chunk RNG
  // streams are keyed by (superstep, chunk), so a node scattering exactly
  // its owned chunks draws bit-identically to the single-process run.

  /// Number of fixed-size scatter chunks (the distributed ownership unit).
  int64_t NumScatterChunks() const;

  /// Flat delta-table size (bounds the indices in SuperstepUpdate).
  size_t DeltaTableSize() const;

  /// \brief Deterministic chunk → node assignment: greedy vertex partition
  /// (PartitionerKind::kGreedy weights) lifted to chunks by work-unit
  /// plurality of each chunk's edges, ties to the lowest node id. Every
  /// node computes the identical table. Requires Init().
  std::vector<int32_t> ComputeChunkOwners(int num_nodes) const;

  /// \brief Runs one superstep scattering only chunks with a nonzero mask
  /// byte (mask size must equal NumScatterChunks()), leaving the canonical
  /// counters untouched, and fills `out` with this node's sparse update.
  /// Does not advance supersteps_run(); pair with ApplyGlobalUpdate.
  /// Requires delta-table mode (rejects legacy_shared_counters).
  cold::Status RunSuperstepSharded(const std::vector<uint8_t>& chunk_mask,
                                   SuperstepUpdate* out);

  /// \brief Installs the merged cluster-wide update (counts + assignment
  /// rewrites) and advances supersteps_run(). Rewrites for this node's own
  /// edges are idempotent re-writes of values scatter already stored.
  cold::Status ApplyGlobalUpdate(const SuperstepUpdate& update);

  /// \brief Appendix-A estimates from the current counters.
  ColdEstimates Estimates() const;

  /// \brief Snapshot of the shared state as a plain ColdState.
  ColdState StateSnapshot() const;

  const engine::EngineStats& engine_stats() const;

  /// \brief Projected wall-clock on the simulated cluster (see
  /// engine::GasEngine::SimulatedWallSeconds).
  double SimulatedWallSeconds(const engine::ClusterModel& model = {}) const;

  double lambda0() const { return lambda0_; }

 private:
  using Graph = engine::PropertyGraph<ColdVertex, ColdEdge>;

  // Engine access for checkpoint.cc (which cannot instantiate the engine
  // template against the incomplete ColdVertexProgram); defined in
  // parallel_sampler.cc.
  std::vector<cold::RngState> EngineSamplerStates() const;
  cold::Status EngineRestoreSamplerStates(
      const std::vector<cold::RngState>& states);
  void EngineSetSuperstepIndex(int64_t index);

  ColdConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph* links_;
  bool use_network_;
  double lambda0_ = 0.1;

  std::unique_ptr<ParallelColdState> state_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<ColdVertexProgram> program_;
  std::unique_ptr<engine::GasEngine<ColdVertex, ColdEdge, ColdVertexProgram>>
      engine_;
  engine::EngineOptions engine_options_;
  int supersteps_run_ = 0;
  bool initialized_ = false;
  std::function<void(int)> superstep_callback_;

  // Pre-superstep assignment snapshots used by RunSuperstepSharded to diff
  // out this node's assignment rewrites.
  std::vector<int32_t> prev_post_community_;
  std::vector<int32_t> prev_post_topic_;
  std::vector<int32_t> prev_link_src_community_;
  std::vector<int32_t> prev_link_dst_community_;
};

}  // namespace cold::core
