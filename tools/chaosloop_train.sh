#!/usr/bin/env bash
# Network/process chaos acceptance drill for self-healing distributed
# training (DESIGN.md §12):
#
#   cold_generate -> single-process reference (--parallel 1 --threads 1)
#                 -> clean SUPERVISED --nodes run (no faults): supervision
#                    must not perturb the model — byte-identical, and no
#                    restart may occur
#                 -> kill+stop drill: SIGKILL rank 1 AND SIGSTOP rank 2 at
#                    the same mid-run sweep (COLD_FAULT_POINT @rank
#                    scoping); the supervisor must reap the dead rank,
#                    SIGKILL the hung one, and restart from the newest
#                    common checkpoint with no human intervention
#                 -> stall drill: COLD_NET_FAULT freezes every send on
#                    rank 1 (heartbeats included) mid-superstep — only the
#                    coordinator's liveness deadline can catch this
#                 -> drop drill: the coordinator silently drops one
#                    kGlobal frame while its heartbeats keep flowing —
#                    only the worker's progress deadline can catch this
#
# Every recovered model is byte-compared against the reference: recovery
# must be bit-identical, not merely "converged".
#
# Injected faults fire once per job (recovery attempts run disarmed), so
# the fault sweeps need no alignment with the checkpoint cadence.
#
# Usage: tools/chaosloop_train.sh [build-dir] [iterations] [fault-sweep]
set -euo pipefail

BUILD_DIR="${1:-build}"
ITERATIONS="${2:-16}"
FAULT_SWEEP="${3:-$(( (ITERATIONS / 2) - 1 ))}"
C=4
K=6
WORK_DIR="$(mktemp -d /tmp/cold_chaosloop.XXXXXX)"

# Tight liveness knobs so detection, not training, dominates runtime.
LIVENESS=(--heartbeat-interval-ms 100 --heartbeat-timeout-ms 2000
          --progress-timeout-ms 5000)
CKPT=(--checkpoint-every 2 --checkpoint-keep 3)

cleanup() { rm -rf "${WORK_DIR}"; }
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

for bin in cold_generate cold_train; do
  [[ -x "${BUILD_DIR}/tools/${bin}" ]] \
    || die "missing ${BUILD_DIR}/tools/${bin} (build the project first)"
done
(( FAULT_SWEEP >= 3 && FAULT_SWEEP < ITERATIONS )) \
  || die "fault sweep ${FAULT_SWEEP} outside training schedule"

echo "== generate dataset (faults at sweep ${FAULT_SWEEP}/${ITERATIONS}) =="
"${BUILD_DIR}/tools/cold_generate" "${WORK_DIR}/data" 120 "${C}" "${K}" 8 \
  || die "cold_generate"

echo "== single-process reference run =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_ref.bin" "${C}" "${K}" "${ITERATIONS}" \
  --parallel 1 --threads 1 \
  || die "reference train"

echo "== clean supervised 2-node run must be bit-identical, no restarts =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_clean.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes 2 --threads 1 --max-restarts 2 "${LIVENESS[@]}" \
  --checkpoint-dir "${WORK_DIR}/ckpt_clean" "${CKPT[@]}" \
  >"${WORK_DIR}/clean.log" 2>&1 || die "clean supervised train"
grep -q "restarting from" "${WORK_DIR}/clean.log" \
  && die "clean supervised run must not restart"
cmp "${WORK_DIR}/model_ref.bin" "${WORK_DIR}/model_clean.bin" \
  || die "clean supervised model differs from the reference"
echo "  clean supervised model is byte-identical to the reference"

echo "== kill+stop drill: SIGKILL rank 1, SIGSTOP rank 2, 3 nodes =="
COLD_FAULT_POINT="after_sweep:${FAULT_SWEEP}:kill@1,after_sweep:${FAULT_SWEEP}:stop@2" \
  "${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_killstop.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes 3 --threads 1 --max-restarts 3 "${LIVENESS[@]}" \
  --checkpoint-dir "${WORK_DIR}/ckpt_killstop" "${CKPT[@]}" \
  >"${WORK_DIR}/killstop.log" 2>&1 || die "kill+stop drill did not recover"
grep -q "restarting from" "${WORK_DIR}/killstop.log" \
  || die "kill+stop drill never restarted (faults did not fire?)"
grep -q "recovered after" "${WORK_DIR}/killstop.log" \
  || die "kill+stop drill did not report recovery"
cmp "${WORK_DIR}/model_ref.bin" "${WORK_DIR}/model_killstop.bin" \
  || die "kill+stop recovered model differs from the reference"
echo "  recovered model is byte-identical after SIGKILL + SIGSTOP"

echo "== stall drill: rank 1 goes silent (liveness deadline) =="
COLD_NET_FAULT="stall:1:${FAULT_SWEEP}" \
  "${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_stall.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes 2 --threads 1 --max-restarts 3 "${LIVENESS[@]}" \
  --checkpoint-dir "${WORK_DIR}/ckpt_stall" "${CKPT[@]}" \
  >"${WORK_DIR}/stall.log" 2>&1 || die "stall drill did not recover"
grep -q "restarting from" "${WORK_DIR}/stall.log" \
  || die "stall drill never restarted (stall did not fire?)"
grep -Eq "silent past the liveness deadline|accept deadline" \
  "${WORK_DIR}/stall.log" \
  || die "stall was not detected by a liveness deadline"
cmp "${WORK_DIR}/model_ref.bin" "${WORK_DIR}/model_stall.bin" \
  || die "stall-recovered model differs from the reference"
echo "  hung peer detected by heartbeat timeout; recovery byte-identical"

echo "== drop drill: coordinator drops one kGlobal (progress deadline) =="
COLD_NET_FAULT="drop:0:${FAULT_SWEEP}" \
  "${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_drop.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes 2 --threads 1 --max-restarts 3 "${LIVENESS[@]}" \
  --checkpoint-dir "${WORK_DIR}/ckpt_drop" "${CKPT[@]}" \
  >"${WORK_DIR}/drop.log" 2>&1 || die "drop drill did not recover"
grep -q "restarting from" "${WORK_DIR}/drop.log" \
  || die "drop drill never restarted (drop did not fire?)"
cmp "${WORK_DIR}/model_ref.bin" "${WORK_DIR}/model_drop.bin" \
  || die "drop-recovered model differs from the reference"
echo "  dropped frame detected; recovery byte-identical"

echo "PASS: chaosloop train check complete"
