// Crash-injection harness for fault-tolerance testing: an env/flag-armed
// trigger that kills the process with SIGKILL at a named code point, so
// tests and the crashloop smoke script can exercise the checkpoint/resume
// path against the most hostile failure mode (no destructors, no flushes,
// no atexit — exactly `kill -9`).
//
// Spec grammar: "<point>:<n>", e.g. "after_sweep:7" kills the process the
// moment the instrumented point "after_sweep" is reached with n == 7.
// An empty spec disarms. The canonical entry point is the COLD_FAULT_POINT
// environment variable, read once by ConfigureFromEnv().
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace cold {

class FaultInjector {
 public:
  /// Instances start disarmed; tests exercise spec parsing on locals so a
  /// mistake can never arm the process-wide injector.
  FaultInjector() = default;

  /// The process-wide injector every instrumented point consults.
  static FaultInjector& Global();

  /// \brief Arms (spec = "<point>:<n>") or disarms (spec = "") the
  /// injector. Returns InvalidArgument on a malformed spec, leaving the
  /// injector disarmed.
  cold::Status Configure(const std::string& spec);

  /// \brief Reads COLD_FAULT_POINT; a malformed value logs a warning and
  /// disarms rather than failing the run.
  void ConfigureFromEnv();

  void Disarm();

  bool armed() const { return !point_.empty(); }

  /// \brief Kills the process (raise(SIGKILL)) iff armed with a matching
  /// (point, n). No-op hot path when disarmed: a single branch.
  void MaybeCrash(const char* point, int64_t n);

 private:
  std::string point_;
  int64_t n_ = -1;
};

}  // namespace cold
