// Byte transports for the distributed trainer (DESIGN.md §12).
//
// A Transport moves whole buffers between two training processes. The
// production flavor is a TCP connection (coordinator listens, workers
// connect); tests use a socketpair loopback, which exercises the identical
// frame path — both are just file descriptors under FdTransport, with all
// EINTR/partial-transfer handling delegated to util/net_io.h (shared with
// the serving layer).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "util/status.h"

namespace cold::dist {

/// \brief A reliable, ordered byte stream to one peer, plus byte counters
/// feeding the cold/dist/comm_bytes metrics.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends exactly `size` bytes (blocking, EINTR-robust).
  virtual cold::Status Send(const void* data, size_t size) = 0;

  /// Receives exactly `size` bytes; IOError on EOF.
  virtual cold::Status Recv(void* data, size_t size) = 0;

  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }

 protected:
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
};

/// \brief Transport over an owned file descriptor (TCP socket or one end of
/// a socketpair). Closes the fd on destruction.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  cold::Status Send(const void* data, size_t size) override;
  cold::Status Recv(void* data, size_t size) override;

  int fd() const { return fd_; }

 private:
  int fd_;
};

/// \brief Creates a connected in-process pair (AF_UNIX socketpair): bytes
/// sent on `a` arrive on `b` and vice versa. The loopback transport for
/// single-machine tests and self-forked local clusters.
cold::Status LoopbackPair(std::unique_ptr<Transport>* a,
                          std::unique_ptr<Transport>* b);

/// \brief Listening TCP socket on 127.0.0.1 (the coordinator side).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  /// readable via port() afterwards).
  cold::Status Listen(uint16_t port);

  /// Accepts one connection (blocking, EINTR-robust).
  cold::Result<std::unique_ptr<Transport>> Accept();

  void Close();

  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// \brief Connects to `host:port`, retrying connection refusal for roughly
/// `max_attempts` * 100ms — workers typically race the coordinator's bind.
cold::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    uint16_t port,
                                                    int max_attempts = 50);

}  // namespace cold::dist
