// Bounded, thread-safe LRU caches used by the serving layer to memoize
// per-(author, words) topic posteriors. LruCache is the single-mutex
// building block; ShardedLruCache hashes keys across S independent shards
// so reactor threads hitting the cache concurrently contend on S mutexes
// instead of one (the epoll core runs handlers on every reactor thread,
// which made the single global lock the hottest line in the profile).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cold::serve {

/// \brief String-keyed LRU map holding shared_ptr<const V> values so hits
/// can be returned without copying while eviction stays O(1).
template <typename V>
class LruCache {
 public:
  /// `capacity` == 0 disables caching entirely (every Get misses).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  /// \brief Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const V> Get(const std::string& key) {
    if (capacity_ == 0) return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// \brief Inserts/overwrites `key`, evicting the least-recently-used
  /// entry when full. Returns true when an entry was evicted to make room.
  bool Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      return true;
    }
    return false;
  }

  /// \brief Drops every entry (model hot-reload invalidation).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    order_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  // Front = most recently used.
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
};

/// \brief S independent LruCache shards behind one interface. A key always
/// maps to the same shard (std::hash of the key), total capacity is split
/// evenly, and each shard has its own mutex. ShardOf() is exposed so
/// callers can attribute hit/miss/eviction metrics to the shard involved.
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` == 0 disables caching; `num_shards` is clamped to >= 1.
  /// Each shard gets ceil(capacity / num_shards) entries so the total is
  /// never below the requested capacity.
  ShardedLruCache(size_t capacity, size_t num_shards) {
    if (num_shards == 0) num_shards = 1;
    size_t per_shard =
        capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<LruCache<V>>(per_shard));
    }
  }

  size_t num_shards() const { return shards_.size(); }

  size_t ShardOf(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

  std::shared_ptr<const V> Get(const std::string& key) {
    return shards_[ShardOf(key)]->Get(key);
  }

  /// Returns true when the owning shard evicted an entry to make room.
  bool Put(const std::string& key, std::shared_ptr<const V> value) {
    return shards_[ShardOf(key)]->Put(key, std::move(value));
  }

  void Clear() {
    for (auto& shard : shards_) shard->Clear();
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard->size();
    return total;
  }

 private:
  // unique_ptr keeps shards stable and LruCache non-movable (const member).
  std::vector<std::unique_ptr<LruCache<V>>> shards_;
};

}  // namespace cold::serve
