// Network fault injection for the distributed trainer's chaos harness
// (DESIGN.md §12). A COLD_NET_FAULT-armed process perturbs exactly one
// data frame (kDelta or kGlobal) on its way out, deterministically by
// seed, so the chaos loop can replay the same failure and assert the same
// recovery.
//
// Spec grammar:
//
//   <mode>:<rank>:<superstep>[:<seed>]
//
// where <mode> is one of
//
//   drop     silently discard the frame (the peer sees nothing — its
//            progress deadline, not its liveness deadline, must fire)
//   corrupt  flip one payload byte (position seed % payload) so the
//            receiver's CRC check rejects the frame
//   delay    hold the frame for 500 + seed % 1500 ms before sending
//   stall    freeze EVERY subsequent send in this process forever,
//            heartbeats included — a silently hung peer that only the
//            remote side's liveness deadline can detect
//
// and <rank> scopes the fault to one node (see SetNodeRank). The fault
// fires at most once per process lifetime, on the first matching data
// frame of the given superstep. An empty spec disarms. The canonical
// entry point is the COLD_NET_FAULT environment variable, read once by
// ConfigureFromEnv().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace cold::dist {

enum class NetFaultMode : int {
  kNone = 0,
  kDrop,
  kCorrupt,
  kDelay,
  kStall,
};

class NetFaultInjector {
 public:
  NetFaultInjector() = default;

  /// The process-wide injector WriteFrame consults.
  static NetFaultInjector& Global();

  /// \brief Arms (grammar above) or disarms (spec = "") the injector.
  /// InvalidArgument on a malformed spec, leaving the injector disarmed.
  cold::Status Configure(const std::string& spec);

  /// \brief Reads COLD_NET_FAULT; a malformed value logs a warning and
  /// disarms rather than failing the run.
  void ConfigureFromEnv();

  void Disarm();

  bool armed() const { return mode_ != NetFaultMode::kNone; }

  /// \brief Narrows the armed fault to this node: disarms unless the
  /// spec's rank matches. Call once per process after the rank is known.
  void SetNodeRank(int rank);

  /// \brief Blocks forever iff a stall fault has fired. Call at the top of
  /// every frame send (heartbeats included) so a stalled process goes
  /// completely silent instead of half-silent.
  void MaybeStall();

  /// \brief Consults the injector for one outgoing data frame carrying
  /// `superstep`, where `wire` is the fully assembled header+payload
  /// buffer and `header_bytes` its header length. May mutate `wire`
  /// (corrupt), sleep (delay), or arm the process-wide stall. Returns the
  /// action the caller must honor: kDrop means "do not send"; everything
  /// else means "send `wire` as it now stands". Fires at most once.
  NetFaultMode OnDataFrame(uint64_t superstep, std::string* wire,
                           size_t header_bytes);

 private:
  NetFaultMode mode_ = NetFaultMode::kNone;
  int rank_ = -1;
  uint64_t superstep_ = 0;
  uint64_t seed_ = 0;
  bool fired_ = false;
  std::atomic<bool> stalled_{false};
};

}  // namespace cold::dist
