#!/usr/bin/env bash
# End-to-end smoke check for the serving layer:
#
#   cold_generate -> cold_train (--arena-out) -> cold_serve -> curl
#
# Drives the epoll serving core over an mmap'd COLDARN1 arena snapshot
# with two reactors and two replicas: N sequential /v1/diffusion POSTs
# must all return HTTP 200, a hot reload is triggered mid-load (SIGHUP
# and /admin/reload), /metrics must report a request count consistent
# with the load, and the reload swap stall measured by
# cold/serve/reload_swap_seconds must stay under a generous bound.
#
# Usage: tools/smoke_serve.sh [build-dir] [num-requests]
set -euo pipefail

BUILD_DIR="${1:-build}"
NUM_REQUESTS="${2:-10000}"
WORK_DIR="$(mktemp -d /tmp/cold_smoke.XXXXXX)"
SERVE_LOG="${WORK_DIR}/serve.log"
SERVE_PID=""

cleanup() {
  if [[ -n "${SERVE_PID}" ]] && kill -0 "${SERVE_PID}" 2>/dev/null; then
    kill -TERM "${SERVE_PID}" 2>/dev/null || true
    wait "${SERVE_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

for bin in cold_generate cold_train cold_serve; do
  [[ -x "${BUILD_DIR}/tools/${bin}" ]] \
    || die "missing ${BUILD_DIR}/tools/${bin} (build the project first)"
done
command -v curl >/dev/null || die "curl not found"

echo "== generate + train a small model =="
"${BUILD_DIR}/tools/cold_generate" "${WORK_DIR}/data" 120 4 6 8 \
  || die "cold_generate"
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" "${WORK_DIR}/model.bin" \
  4 6 40 --arena-out "${WORK_DIR}/model.arena" || die "cold_train"
[[ -s "${WORK_DIR}/model.arena" ]] || die "no arena snapshot written"

echo "== start cold_serve (epoll, arena snapshot, 2 reactors, 2 replicas) =="
"${BUILD_DIR}/tools/cold_serve" "${WORK_DIR}/model.arena" --port 0 \
  --reactors 2 --replicas 2 >"${SERVE_LOG}" 2>&1 &
SERVE_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/.*cold_serve listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "${SERVE_LOG}" | head -n1)"
  [[ -n "${PORT}" ]] && break
  kill -0 "${SERVE_PID}" 2>/dev/null || die "server exited: $(cat "${SERVE_LOG}")"
  sleep 0.1
done
[[ -n "${PORT}" ]] && echo "server up on port ${PORT}" \
  || die "server never reported its port"
BASE="http://127.0.0.1:${PORT}"

echo "== probe every endpoint once =="
check() {  # check <expected-code> <name> <curl args...>
  local expect="$1" name="$2"; shift 2
  local code
  code="$(curl -s -o "${WORK_DIR}/last_body" -w '%{http_code}' "$@")" \
    || die "curl transport error on ${name}"
  [[ "${code}" == "${expect}" ]] \
    || die "${name}: HTTP ${code} (wanted ${expect}): $(cat "${WORK_DIR}/last_body")"
  echo "  ok ${name} (${code})"
}

check 200 "GET /healthz" "${BASE}/healthz"
check 200 "POST /v1/diffusion" -X POST \
  -d '{"publisher": 0, "candidate": 1, "words": [0, 1, 2]}' \
  "${BASE}/v1/diffusion"
check 200 "POST /v1/diffusion fan-out" -X POST \
  -d '{"publisher": 0, "candidates": [1, 2, 3], "words": [0, 1]}' \
  "${BASE}/v1/diffusion"
check 200 "POST /v1/topic_posterior" -X POST \
  -d '{"author": 0, "words": [0, 1, 2]}' "${BASE}/v1/topic_posterior"
check 200 "POST /v1/link" -X POST \
  -d '{"source": 0, "target": 1}' "${BASE}/v1/link"
check 200 "POST /v1/timestamp" -X POST \
  -d '{"author": 0, "words": [0, 1]}' "${BASE}/v1/timestamp"
check 200 "GET /v1/influential_communities" \
  "${BASE}/v1/influential_communities?topic=0&n=3&trials=8"
check 200 "POST /admin/reload" -X POST "${BASE}/admin/reload"
check 400 "malformed JSON -> 400" -X POST -d '{"publisher":' \
  "${BASE}/v1/diffusion"
check 422 "out-of-range author -> 422" -X POST \
  -d '{"author": 999999, "words": [0]}' "${BASE}/v1/topic_posterior"
check 404 "unknown route -> 404" "${BASE}/v1/nope"

echo "== ${NUM_REQUESTS} sequential /v1/diffusion requests =="
# One keep-alive connection, batched through curl's config reader so we do
# not fork per request. Every response must be HTTP 200.
CONFIG="${WORK_DIR}/curl_batch.cfg"
# "next" resets per-transfer options; without it curl would concatenate
# every data line into one giant body shared by all transfers.
BLOCK='url = "'${BASE}'/v1/diffusion"
data = "{\"publisher\": 0, \"candidate\": 1, \"words\": [0, 1, 2]}"
output = "/dev/null"
write-out = "%{http_code}\n"'
{
  printf '%s\n' "${BLOCK}"
  for _ in $(seq 2 "${NUM_REQUESTS}"); do
    printf 'next\n%s\n' "${BLOCK}"
  done
} >"${CONFIG}"
( sleep 1; kill -HUP "${SERVE_PID}" ) &  # hot reload mid-load
HUP_WAITER=$!
CODES="$(curl -s -K "${CONFIG}")" || die "bulk curl failed"
wait "${HUP_WAITER}" 2>/dev/null || true
NON_200="$(echo "${CODES}" | grep -cv '^200$' || true)"
TOTAL="$(echo "${CODES}" | wc -l)"
[[ "${TOTAL}" -eq "${NUM_REQUESTS}" ]] \
  || die "expected ${NUM_REQUESTS} responses, saw ${TOTAL}"
[[ "${NON_200}" -eq 0 ]] || die "${NON_200}/${TOTAL} non-200 responses"
echo "  ${TOTAL}/${TOTAL} returned 200 (hot reload fired mid-load)"

echo "== /metrics consistency =="
curl -s "${BASE}/metrics" >"${WORK_DIR}/metrics.txt" || die "GET /metrics"
for family in cold_serve_requests cold_serve_request_seconds \
    cold_serve_connections cold_serve_reloads; do
  grep -q "${family}" "${WORK_DIR}/metrics.txt" \
    || die "/metrics missing family ${family}"
done
DIFFUSION_COUNT="$(sed -n \
  's/^cold_serve_requests{endpoint="diffusion"} \([0-9.e+]*\)$/\1/p' \
  "${WORK_DIR}/metrics.txt" | head -n1)"
[[ -n "${DIFFUSION_COUNT}" ]] || die "no diffusion request counter exported"
# Integer-compare (counter prints as an integral double).
[[ "${DIFFUSION_COUNT%.*}" -ge "${NUM_REQUESTS}" ]] \
  || die "diffusion counter ${DIFFUSION_COUNT} < load ${NUM_REQUESTS}"
echo "  cold_serve_requests{endpoint=\"diffusion\"} = ${DIFFUSION_COUNT} (>= ${NUM_REQUESTS})"

echo "== /debug/vars exposes parseable telemetry with quantiles =="
curl -s "${BASE}/debug/vars" >"${WORK_DIR}/debug_vars.json" \
  || die "GET /debug/vars"
if command -v python3 >/dev/null; then
  python3 - "${WORK_DIR}/debug_vars.json" <<'PYEOF' || die "/debug/vars invalid"
import json, sys
with open(sys.argv[1]) as f:
    vars = json.load(f)
assert vars["model_loaded"] is True, "model_loaded not true"
assert "generation" in vars, "missing generation"
assert vars["generation"] >= 2, f"SIGHUP reload never landed: {vars['generation']}"
assert vars["snapshot_format"] == "coldarn1", \
    f"not serving from the arena: {vars.get('snapshot_format')}"
assert vars["replicas"] == 2, f"replica count: {vars.get('replicas')}"
hists = vars["telemetry"]["histograms"]
assert hists, "no histograms exported"
by_name = {h["name"]: h for h in hists}
latency = by_name["cold/serve/request_seconds"]
q = latency["quantiles"]
for key in ("p50", "p90", "p99"):
    assert key in q, f"missing quantile {key}"
    assert q[key] is None or q[key] > 0, f"{key} not positive: {q[key]}"
assert q["p99"] is not None, "p99 null despite load"
print(f"  request_seconds p50={q['p50']:.6f}s p99={q['p99']:.6f}s")
swap = by_name["cold/serve/reload_swap_seconds"]["quantiles"]
assert swap["p99"] is not None, "no reload swap samples despite SIGHUP"
# The swap is one atomic pointer store; tens of microseconds even on a
# loaded box. 10ms is the deliberately generous smoke bound.
assert swap["p99"] < 0.010, f"reload swap stall too high: {swap['p99']}s"
print(f"  reload_swap_seconds p99={swap['p99'] * 1e6:.1f}us (bound 10ms)")
PYEOF
else
  # No python3: at least assert the endpoint answers with the quantile keys.
  grep -q '"quantiles"' "${WORK_DIR}/debug_vars.json" \
    || die "/debug/vars missing quantiles"
  grep -q '"p99"' "${WORK_DIR}/debug_vars.json" \
    || die "/debug/vars missing p99"
  echo "  quantile keys present (python3 unavailable for full parse)"
fi

echo "== graceful shutdown =="
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}" || die "server exited non-zero"
SERVE_PID=""
echo "PASS: serving smoke check complete"
