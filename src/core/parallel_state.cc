#include "core/parallel_state.h"

#include <cstring>
#include <string>

namespace cold::core {

namespace {
std::unique_ptr<std::atomic<int32_t>[]> MakeZeroed(size_t n) {
  auto arr = std::make_unique<std::atomic<int32_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    arr[i].store(0, std::memory_order_relaxed);
  }
  return arr;
}

std::unique_ptr<PaddedCount[]> MakeZeroedPadded(size_t n) {
  auto arr = std::make_unique<PaddedCount[]>(n);
  for (size_t i = 0; i < n; ++i) {
    arr[i].value.store(0, std::memory_order_relaxed);
  }
  return arr;
}
}  // namespace

ParallelColdState::ParallelColdState(int num_users, int num_communities,
                                     int num_topics, int num_time_slices,
                                     int vocab_size, int num_posts,
                                     int64_t num_links)
    : num_users_(num_users),
      num_communities_(num_communities),
      num_topics_(num_topics),
      num_time_slices_(num_time_slices),
      vocab_size_(vocab_size) {
  post_community.assign(static_cast<size_t>(num_posts), -1);
  post_topic.assign(static_cast<size_t>(num_posts), -1);
  link_src_community.assign(static_cast<size_t>(num_links), -1);
  link_dst_community.assign(static_cast<size_t>(num_links), -1);

  n_ic_ = MakeZeroed(static_cast<size_t>(num_users) * num_communities);
  n_i_ = MakeZeroed(static_cast<size_t>(num_users));
  n_ck_ = MakeZeroed(static_cast<size_t>(num_communities) * num_topics);
  n_c_ = MakeZeroedPadded(static_cast<size_t>(num_communities));
  n_ckt_ = MakeZeroed(static_cast<size_t>(num_communities) * num_topics *
                      num_time_slices);
  n_kv_ = MakeZeroed(static_cast<size_t>(num_topics) * vocab_size);
  n_k_ = MakeZeroedPadded(static_cast<size_t>(num_topics));
  n_cc_ = MakeZeroed(static_cast<size_t>(num_communities) * num_communities);

  off_ic_ = 0;
  off_ck_ = off_ic_ + static_cast<size_t>(num_users) * num_communities;
  off_c_ = off_ck_ + static_cast<size_t>(num_communities) * num_topics;
  off_ckt_ = off_c_ + static_cast<size_t>(num_communities);
  off_kv_ = off_ckt_ + static_cast<size_t>(num_communities) * num_topics *
                           num_time_slices;
  off_k_ = off_kv_ + static_cast<size_t>(num_topics) * vocab_size;
  off_cc_ = off_k_ + static_cast<size_t>(num_topics);
  delta_size_ =
      off_cc_ + static_cast<size_t>(num_communities) * num_communities;
}

void ParallelColdState::EnsureDeltaBuffers(size_t num_workers) {
  while (deltas_.size() < num_workers) {
    auto* raw = static_cast<int32_t*>(::operator new[](
        delta_size_ * sizeof(int32_t), std::align_val_t{kCacheLineBytes}));
    std::memset(raw, 0, delta_size_ * sizeof(int32_t));
    deltas_.emplace_back(raw);
  }
}

std::atomic<int32_t>& ParallelColdState::CanonicalAt(size_t idx) {
  if (idx < off_ck_) return n_ic_[idx - off_ic_];
  if (idx < off_c_) return n_ck_[idx - off_ck_];
  if (idx < off_ckt_) return n_c_[idx - off_c_].value;
  if (idx < off_kv_) return n_ckt_[idx - off_ckt_];
  if (idx < off_k_) return n_kv_[idx - off_kv_];
  if (idx < off_cc_) return n_k_[idx - off_k_].value;
  return n_cc_[idx - off_cc_];
}

void ParallelColdState::MergeDeltaRange(size_t begin, size_t end) {
  for (size_t idx = begin; idx < end; ++idx) {
    int32_t total = 0;
    for (DeltaBuffer& buf : deltas_) {
      total += buf[idx];
      buf[idx] = 0;
    }
    if (total != 0) {
      CanonicalAt(idx).fetch_add(total, std::memory_order_relaxed);
    }
  }
}

void ParallelColdState::DrainDeltas(
    std::vector<std::pair<uint32_t, int32_t>>* out) {
  out->clear();
  for (size_t idx = 0; idx < delta_size_; ++idx) {
    int32_t total = 0;
    for (DeltaBuffer& buf : deltas_) {
      total += buf[idx];
      buf[idx] = 0;
    }
    if (total != 0) {
      out->emplace_back(static_cast<uint32_t>(idx), total);
    }
  }
}

cold::Status ParallelColdState::ApplyDeltaEntries(
    const std::vector<std::pair<uint32_t, int32_t>>& entries) {
  for (const auto& [idx, delta] : entries) {
    if (idx >= delta_size_) {
      return cold::Status::OutOfRange(
          "delta index " + std::to_string(idx) + " outside the " +
          std::to_string(delta_size_) + "-cell table");
    }
    CanonicalAt(idx).fetch_add(delta, std::memory_order_relaxed);
  }
  return cold::Status::OK();
}

ColdState ParallelColdState::ToColdState() const {
  ColdState out(num_users_, num_communities_, num_topics_, num_time_slices_,
                vocab_size_, static_cast<int>(post_community.size()),
                static_cast<int64_t>(link_src_community.size()));
  out.post_community = post_community;
  out.post_topic = post_topic;
  out.link_src_community = link_src_community;
  out.link_dst_community = link_dst_community;
  for (int i = 0; i < num_users_; ++i) {
    out.n_i(i) = n_i_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    for (int c = 0; c < num_communities_; ++c) {
      out.n_ic(i, c) = r_n_ic(i, c);
    }
  }
  for (int c = 0; c < num_communities_; ++c) {
    out.n_c(c) = r_n_c(c);
    for (int k = 0; k < num_topics_; ++k) {
      out.n_ck(c, k) = r_n_ck(c, k);
      for (int t = 0; t < num_time_slices_; ++t) {
        out.n_ckt(c, k, t) = r_n_ckt(c, k, t);
      }
    }
    for (int c2 = 0; c2 < num_communities_; ++c2) {
      out.n_cc(c, c2) = r_n_cc(c, c2);
    }
  }
  for (int k = 0; k < num_topics_; ++k) {
    out.n_k(k) = r_n_k(k);
    for (int v = 0; v < vocab_size_; ++v) {
      out.n_kv(k, v) = r_n_kv(k, v);
    }
  }
  return out;
}

cold::Status ParallelColdState::RestoreFrom(const ColdState& s) {
  if (s.U() != num_users_ || s.C() != num_communities_ ||
      s.K() != num_topics_ || s.T() != num_time_slices_ ||
      s.V() != vocab_size_ ||
      s.post_community.size() != post_community.size() ||
      s.link_src_community.size() != link_src_community.size()) {
    return cold::Status::InvalidArgument(
        "checkpoint state dimensions do not match the trainer");
  }
  post_community = s.post_community;
  post_topic = s.post_topic;
  link_src_community = s.link_src_community;
  link_dst_community = s.link_dst_community;
  for (int i = 0; i < num_users_; ++i) {
    n_i_[static_cast<size_t>(i)].store(s.n_i(i), std::memory_order_relaxed);
    for (int c = 0; c < num_communities_; ++c) {
      n_ic(i, c).store(s.n_ic(i, c), std::memory_order_relaxed);
    }
  }
  for (int c = 0; c < num_communities_; ++c) {
    n_c(c).store(s.n_c(c), std::memory_order_relaxed);
    for (int k = 0; k < num_topics_; ++k) {
      n_ck(c, k).store(s.n_ck(c, k), std::memory_order_relaxed);
      for (int t = 0; t < num_time_slices_; ++t) {
        n_ckt(c, k, t).store(s.n_ckt(c, k, t), std::memory_order_relaxed);
      }
    }
    for (int c2 = 0; c2 < num_communities_; ++c2) {
      n_cc(c, c2).store(s.n_cc(c, c2), std::memory_order_relaxed);
    }
  }
  for (int k = 0; k < num_topics_; ++k) {
    n_k(k).store(s.n_k(k), std::memory_order_relaxed);
    for (int v = 0; v < vocab_size_; ++v) {
      n_kv(k, v).store(s.n_kv(k, v), std::memory_order_relaxed);
    }
  }
  return cold::Status::OK();
}

}  // namespace cold::core
