file(REMOVE_RECURSE
  "CMakeFiles/cold_text.dir/post_store.cc.o"
  "CMakeFiles/cold_text.dir/post_store.cc.o.d"
  "CMakeFiles/cold_text.dir/tokenizer.cc.o"
  "CMakeFiles/cold_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/cold_text.dir/vocabulary.cc.o"
  "CMakeFiles/cold_text.dir/vocabulary.cc.o.d"
  "libcold_text.a"
  "libcold_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
