file(REMOVE_RECURSE
  "libcold_data.a"
)
