#include "serve/snapshot_arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace cold::serve {

cold::Result<std::shared_ptr<const ArenaSnapshot>> ArenaSnapshot::Map(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return cold::Status::IOError("open " + path + ": " +
                                 std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    cold::Status status = cold::Status::IOError("fstat " + path + ": " +
                                                std::strerror(errno));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return cold::Status::IOError("arena file is empty: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping survives the fd; keep nothing open behind it.
  ::close(fd);
  if (base == MAP_FAILED) {
    return cold::Status::IOError("mmap " + path + ": " +
                                 std::strerror(errno));
  }

  auto arena = core::ValidateArena(base, size);
  if (!arena.ok()) {
    ::munmap(base, size);
    return arena.status();
  }

  static obs::Counter* maps =
      obs::Registry::Global().GetCounter("cold/serve/arena_maps");
  maps->Increment();
  // make_shared needs a public ctor; the snapshot owns the mapping from
  // here, so no failure path below may leak it.
  return std::shared_ptr<const ArenaSnapshot>(
      new ArenaSnapshot(path, base, size, *arena));
}

ArenaSnapshot::~ArenaSnapshot() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

}  // namespace cold::serve
