#include "dist/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/net_io.h"

namespace cold::dist {

namespace {

cold::Status Errno(const std::string& what) {
  return cold::Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

cold::Status FdTransport::Send(const void* data, size_t size) {
  COLD_RETURN_NOT_OK(cold::WriteFull(fd_, data, size));
  bytes_sent_ += static_cast<int64_t>(size);
  return cold::Status::OK();
}

cold::Status FdTransport::Recv(void* data, size_t size) {
  COLD_RETURN_NOT_OK(cold::ReadFull(fd_, data, size));
  bytes_received_ += static_cast<int64_t>(size);
  return cold::Status::OK();
}

cold::Status LoopbackPair(std::unique_ptr<Transport>* a,
                          std::unique_ptr<Transport>* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Errno("socketpair");
  }
  *a = std::make_unique<FdTransport>(fds[0]);
  *b = std::make_unique<FdTransport>(fds[1]);
  return cold::Status::OK();
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

cold::Status TcpListener::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    cold::Status s = Errno("bind 127.0.0.1:" + std::to_string(port));
    Close();
    return s;
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    cold::Status s = Errno("listen");
    Close();
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    cold::Status s = Errno("getsockname");
    Close();
    return s;
  }
  port_ = ntohs(addr.sin_port);
  return cold::Status::OK();
}

cold::Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  if (fd_ < 0) return cold::Status::FailedPrecondition("listener not open");
  for (;;) {
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Transport>(
          std::make_unique<FdTransport>(client));
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

cold::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    uint16_t port,
                                                    int max_attempts) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return cold::Status::InvalidArgument("cannot parse IPv4 address '" +
                                         host + "'");
  }
  for (int attempt = 0;; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Transport>(std::make_unique<FdTransport>(fd));
    }
    int err = errno;
    ::close(fd);
    if (err == EINTR) continue;
    // The coordinator may still be binding; back off and retry refusal.
    if ((err == ECONNREFUSED || err == ETIMEDOUT) &&
        attempt + 1 < max_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    errno = err;
    return Errno("connect " + host + ":" + std::to_string(port));
  }
}

}  // namespace cold::dist
