// Topics over Time (Wang & McCallum, KDD 2006): a non-Markov continuous-
// time topic model where each topic carries a Beta density over normalized
// document time. The COLD paper contrasts TOT's *unimodal* Beta against
// COLD's multinomial psi (§3.3) and uses TOT inside the Pipeline baseline
// (§6.1). As with COLD we adapt to microblogs with one topic per post.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::baselines {

struct TotConfig {
  int num_topics = 20;
  double alpha = -1.0;  // <= 0 means 50/K
  double beta = 0.01;
  int iterations = 100;
  uint64_t seed = 42;

  double ResolvedAlpha() const { return alpha > 0 ? alpha : 50.0 / num_topics; }
};

struct TotEstimates {
  int K = 0, V = 0, T = 0;
  /// Global topic proportions.
  std::vector<double> topic_weight;
  /// phi[k*V + v].
  std::vector<double> phi;
  /// Beta(a_k, b_k) over normalized time in (0, 1).
  std::vector<double> beta_a;
  std::vector<double> beta_b;

  double Phi(int k, int v) const {
    return phi[static_cast<size_t>(k) * V + v];
  }

  /// Beta density of topic k at normalized time x in (0,1).
  double TimeDensity(int k, double x) const;

  /// Normalized midpoint of slice t among T slices.
  double SliceMidpoint(int t) const {
    return (static_cast<double>(t) + 0.5) / static_cast<double>(T);
  }
};

class TotModel {
 public:
  TotModel(TotConfig config, const text::PostStore& posts);

  /// \brief Trains on the subset `post_ids` (empty means all posts); the
  /// subset form is what Pipeline uses to fit one TOT per community.
  cold::Status Train(std::span<const text::PostId> post_ids = {});

  const TotEstimates& estimates() const { return estimates_; }

  /// \brief Topic posterior of an unseen bag of words (time unknown).
  std::vector<double> TopicPosterior(std::span<const text::WordId> words) const;

  /// \brief Per-slice scores for time-stamp prediction:
  /// score(t) = sum_k P(k | words) Beta_k(midpoint(t)); normalized.
  std::vector<double> TimestampScores(
      std::span<const text::WordId> words) const;

  int PredictTimestamp(std::span<const text::WordId> words) const;

 private:
  void UpdateBetaParameters(std::span<const text::PostId> ids,
                            std::span<const int32_t> post_topic);

  TotConfig config_;
  const text::PostStore& posts_;
  int vocab_ = 0;
  TotEstimates estimates_;
};

}  // namespace cold::baselines
