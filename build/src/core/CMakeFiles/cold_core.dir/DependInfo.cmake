
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cold_config.cc" "src/core/CMakeFiles/cold_core.dir/cold_config.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/cold_config.cc.o.d"
  "/root/repo/src/core/cold_estimates.cc" "src/core/CMakeFiles/cold_core.dir/cold_estimates.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/cold_estimates.cc.o.d"
  "/root/repo/src/core/cold_state.cc" "src/core/CMakeFiles/cold_core.dir/cold_state.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/cold_state.cc.o.d"
  "/root/repo/src/core/gibbs_sampler.cc" "src/core/CMakeFiles/cold_core.dir/gibbs_sampler.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/gibbs_sampler.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/cold_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/parallel_sampler.cc" "src/core/CMakeFiles/cold_core.dir/parallel_sampler.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/parallel_sampler.cc.o.d"
  "/root/repo/src/core/parallel_state.cc" "src/core/CMakeFiles/cold_core.dir/parallel_state.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/parallel_state.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/cold_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/cold_core.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cold_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cold_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cold_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cold_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
