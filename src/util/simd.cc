#include "util/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define COLD_SIMD_X86 1
#include <immintrin.h>
#else
#define COLD_SIMD_X86 0
#endif

namespace cold::simd {

namespace {

// --- scalar reference implementations ------------------------------------

void AddSubRowsScalar(const double* a, const double* b, const double* c,
                      double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i] - c[i];
}

void AccumulateScalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

double MaxValueScalar(const double* x, std::size_t n) {
  double m = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (x[i] > m) m = x[i];
  }
  return m;
}

#if COLD_SIMD_X86

// --- AVX2 implementations -------------------------------------------------
//
// Compiled with a per-function target attribute so the translation unit
// itself needs no -mavx2 (the binary must still run on pre-AVX2 hosts,
// where Avx2Enabled() routes everything to the scalar paths above).

__attribute__((target("avx2"))) void AddSubRowsAvx2(const double* a,
                                                    const double* b,
                                                    const double* c,
                                                    double* dst,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_loadu_pd(a + i);
    __m256d vb = _mm256_loadu_pd(b + i);
    __m256d vc = _mm256_loadu_pd(c + i);
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_add_pd(va, vb), vc));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i] - c[i];
}

__attribute__((target("avx2"))) void AccumulateAvx2(double* dst,
                                                    const double* src,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vd = _mm256_loadu_pd(dst + i);
    __m256d vs = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(vd, vs));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) double MaxValueAvx2(const double* x,
                                                    std::size_t n) {
  if (n < 8) return MaxValueScalar(x, n);
  __m256d vmax = _mm256_loadu_pd(x);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    vmax = _mm256_max_pd(vmax, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  double m = MaxValueScalar(lanes, 4);
  for (; i < n; ++i) {
    if (x[i] > m) m = x[i];
  }
  return m;
}

bool DetectAvx2() {
  if (!__builtin_cpu_supports("avx2")) return false;
  const char* env = std::getenv("COLD_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
       std::strcmp(env, "0") == 0)) {
    return false;
  }
  return true;
}

#else  // !COLD_SIMD_X86

bool DetectAvx2() { return false; }

#endif

}  // namespace

bool Avx2Enabled() {
  static const bool enabled = DetectAvx2();
  return enabled;
}

const char* DispatchName() { return Avx2Enabled() ? "avx2" : "scalar"; }

void AddSubRows(const double* a, const double* b, const double* c,
                double* dst, std::size_t n) {
#if COLD_SIMD_X86
  if (Avx2Enabled()) {
    AddSubRowsAvx2(a, b, c, dst, n);
    return;
  }
#endif
  AddSubRowsScalar(a, b, c, dst, n);
}

void Accumulate(double* dst, const double* src, std::size_t n) {
#if COLD_SIMD_X86
  if (Avx2Enabled()) {
    AccumulateAvx2(dst, src, n);
    return;
  }
#endif
  AccumulateScalar(dst, src, n);
}

double MaxValue(const double* x, std::size_t n) {
#if COLD_SIMD_X86
  if (Avx2Enabled()) return MaxValueAvx2(x, n);
#endif
  return MaxValueScalar(x, n);
}

}  // namespace cold::simd
