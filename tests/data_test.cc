#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "data/serialize.h"
#include "data/split.h"
#include "data/social_dataset.h"
#include "data/synthetic.h"

namespace cold::data {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_users = 120;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 12;
  config.core_words_per_topic = 10;
  config.background_words = 50;
  config.posts_per_user = 8.0;
  config.words_per_post = 7.0;
  config.follows_per_user = 6;
  config.seed = 7;
  return config;
}

SocialDataset Generate(const SyntheticConfig& config = SmallConfig()) {
  SyntheticSocialGenerator gen(config);
  auto result = gen.Generate();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

// ---------------------------------------------------------- SampleCount --

TEST(SampleCountTest, RespectsMinimum) {
  cold::RandomSampler sampler(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(SampleCount(&sampler, 5.0, 3), 3);
  }
  EXPECT_EQ(SampleCount(&sampler, 2.0, 5), 5);  // mean below min
}

TEST(SampleCountTest, MeanRoughlyMatches) {
  cold::RandomSampler sampler(2);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += SampleCount(&sampler, 10.0, 1);
  EXPECT_NEAR(total / n, 10.0, 0.5);
}

// ------------------------------------------------------------- Generator --

TEST(SyntheticGeneratorTest, RejectsBadConfig) {
  SyntheticConfig config = SmallConfig();
  config.num_users = 1;
  EXPECT_FALSE(SyntheticSocialGenerator(config).Generate().ok());
  config = SmallConfig();
  config.target_retweet_rate = 1.5;
  EXPECT_FALSE(SyntheticSocialGenerator(config).Generate().ok());
  config = SmallConfig();
  config.num_time_slices = 1;
  EXPECT_FALSE(SyntheticSocialGenerator(config).Generate().ok());
}

TEST(SyntheticGeneratorTest, DimensionsMatchConfig) {
  SyntheticConfig config = SmallConfig();
  SocialDataset ds = Generate(config);
  EXPECT_EQ(ds.num_users(), config.num_users);
  EXPECT_EQ(ds.num_time_slices(), config.num_time_slices);
  EXPECT_EQ(ds.vocabulary.size(),
            config.num_topics * config.core_words_per_topic +
                config.background_words);
  EXPECT_GE(ds.posts.num_posts(), config.num_users);  // >=1 post each
  EXPECT_EQ(ds.truth.pi.size(), static_cast<size_t>(config.num_users));
  EXPECT_EQ(ds.truth.theta.size(),
            static_cast<size_t>(config.num_communities));
  EXPECT_EQ(ds.truth.post_topic.size(),
            static_cast<size_t>(ds.posts.num_posts()));
}

TEST(SyntheticGeneratorTest, GroundTruthDistributionsNormalized) {
  SocialDataset ds = Generate();
  for (const auto& row : ds.truth.pi) {
    EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-9);
  }
  for (const auto& row : ds.truth.theta) {
    EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-9);
  }
  for (const auto& phi_k : ds.truth.phi) {
    EXPECT_NEAR(std::accumulate(phi_k.begin(), phi_k.end(), 0.0), 1.0, 1e-6);
  }
  for (const auto& psi_k : ds.truth.psi) {
    for (const auto& series : psi_k) {
      EXPECT_NEAR(std::accumulate(series.begin(), series.end(), 0.0), 1.0,
                  1e-9);
    }
  }
}

TEST(SyntheticGeneratorTest, Deterministic) {
  SocialDataset a = Generate();
  SocialDataset b = Generate();
  ASSERT_EQ(a.posts.num_posts(), b.posts.num_posts());
  for (text::PostId d = 0; d < a.posts.num_posts(); ++d) {
    EXPECT_EQ(a.posts.author(d), b.posts.author(d));
    EXPECT_EQ(a.posts.time(d), b.posts.time(d));
  }
  EXPECT_EQ(a.interactions.num_edges(), b.interactions.num_edges());
  EXPECT_EQ(a.retweets.size(), b.retweets.size());
}

TEST(SyntheticGeneratorTest, RetweetRateNearTarget) {
  SyntheticConfig config = SmallConfig();
  config.target_retweet_rate = 0.10;
  SocialDataset ds = Generate(config);
  int64_t retweets = 0, exposures = 0;
  for (const RetweetTuple& t : ds.retweets) {
    retweets += static_cast<int64_t>(t.retweeters.size());
    exposures += static_cast<int64_t>(t.retweeters.size() +
                                      t.ignorers.size());
  }
  ASSERT_GT(exposures, 0);
  double rate = static_cast<double>(retweets) / static_cast<double>(exposures);
  EXPECT_NEAR(rate, 0.10, 0.04);
}

TEST(SyntheticGeneratorTest, InteractionsDerivedFromRetweets) {
  SocialDataset ds = Generate();
  // Every interaction edge must appear as (author -> retweeter) somewhere.
  std::set<std::pair<int, int>> observed;
  for (const RetweetTuple& t : ds.retweets) {
    for (text::UserId f : t.retweeters) observed.insert({t.author, f});
  }
  EXPECT_EQ(static_cast<size_t>(ds.interactions.num_edges()), observed.size());
  for (graph::EdgeId e = 0; e < ds.interactions.num_edges(); ++e) {
    const graph::Edge& edge = ds.interactions.edge(e);
    EXPECT_TRUE(observed.count({edge.src, edge.dst}) > 0);
  }
}

TEST(SyntheticGeneratorTest, RetweetersAreFollowers) {
  SocialDataset ds = Generate();
  for (const RetweetTuple& t : ds.retweets) {
    for (text::UserId f : t.retweeters) {
      EXPECT_TRUE(ds.followers.HasEdge(t.author, f));
    }
  }
}

TEST(SyntheticGeneratorTest, PsiProfilesAreMultimodalCapable) {
  // With minor bursts enabled at least some (k, c) profile should have two
  // separated local maxima — the property TOT's unimodal Beta cannot fit.
  SocialDataset ds = Generate();
  int multimodal = 0;
  for (const auto& psi_k : ds.truth.psi) {
    for (const auto& s : psi_k) {
      int peaks = 0;
      for (size_t t = 1; t + 1 < s.size(); ++t) {
        if (s[t] > s[t - 1] && s[t] > s[t + 1] && s[t] > 0.02) ++peaks;
      }
      if (peaks >= 2) ++multimodal;
    }
  }
  EXPECT_GT(multimodal, 0);
}

// ---------------------------------------------------------------- Splits --

TEST(SplitPostsTest, PartitionsAllPosts) {
  SocialDataset ds = Generate();
  PostSplit split = SplitPosts(ds.posts, 0.2, /*seed=*/3, /*fold=*/0);
  EXPECT_EQ(split.train.num_posts() + split.test.num_posts(),
            ds.posts.num_posts());
  EXPECT_NEAR(static_cast<double>(split.test.num_posts()) /
                  ds.posts.num_posts(),
              0.2, 0.02);
  EXPECT_EQ(split.train.num_users(), ds.posts.num_users());
  EXPECT_EQ(split.test.num_time_slices(), ds.posts.num_time_slices());
  EXPECT_EQ(split.test_original_ids.size(),
            static_cast<size_t>(split.test.num_posts()));
}

TEST(SplitPostsTest, FoldsAreDisjoint) {
  SocialDataset ds = Generate();
  std::set<text::PostId> seen;
  size_t total = 0;
  for (int fold = 0; fold < 5; ++fold) {
    PostSplit split = SplitPosts(ds.posts, 0.2, /*seed=*/3, fold);
    for (text::PostId d : split.test_original_ids) {
      EXPECT_TRUE(seen.insert(d).second) << "post in two folds";
    }
    total += split.test_original_ids.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(ds.posts.num_posts()));
}

TEST(SplitLinksTest, HoldsOutPositivesAndSamplesNegatives) {
  SocialDataset ds = Generate();
  LinkSplit split =
      SplitLinks(ds.interactions, 0.2, /*negative_per_positive=*/2.0,
                 /*seed=*/4, /*fold=*/0);
  EXPECT_EQ(split.train.num_edges() +
                static_cast<int64_t>(split.test_positive.size()),
            ds.interactions.num_edges());
  EXPECT_NEAR(static_cast<double>(split.test_negative.size()),
              2.0 * static_cast<double>(split.test_positive.size()),
              split.test_positive.size() * 0.2 + 2.0);
  // Negatives must not be actual links.
  for (const auto& [a, b] : split.test_negative) {
    EXPECT_FALSE(ds.interactions.HasEdge(a, b));
    EXPECT_NE(a, b);
  }
}

TEST(SplitRetweetsTest, TrainNetworkExcludesTestTuples) {
  SocialDataset ds = Generate();
  RetweetSplit split = SplitRetweets(ds, 0.2, /*seed=*/5, /*fold=*/0);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.retweets.size());
  // Every test tuple must have both classes.
  for (const RetweetTuple& t : split.test) {
    EXPECT_FALSE(t.retweeters.empty());
    EXPECT_FALSE(t.ignorers.empty());
  }
  // Train interactions contain only train retweet pairs.
  std::set<std::pair<int, int>> train_pairs;
  for (const RetweetTuple& t : split.train) {
    for (text::UserId f : t.retweeters) train_pairs.insert({t.author, f});
  }
  EXPECT_EQ(static_cast<size_t>(split.train_interactions.num_edges()),
            train_pairs.size());
}

// --------------------------------------------------------- Serialization --

TEST(SerializeTest, RoundTrip) {
  SocialDataset ds = Generate();
  std::string dir =
      (std::filesystem::temp_directory_path() / "cold_serialize_test")
          .string();
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  auto loaded_result = LoadDataset(dir);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  SocialDataset loaded = std::move(loaded_result).ValueOrDie();

  EXPECT_EQ(loaded.vocabulary.size(), ds.vocabulary.size());
  EXPECT_EQ(loaded.vocabulary.word(3), ds.vocabulary.word(3));
  ASSERT_EQ(loaded.posts.num_posts(), ds.posts.num_posts());
  for (text::PostId d = 0; d < ds.posts.num_posts(); d += 17) {
    EXPECT_EQ(loaded.posts.author(d), ds.posts.author(d));
    EXPECT_EQ(loaded.posts.time(d), ds.posts.time(d));
    ASSERT_EQ(loaded.posts.length(d), ds.posts.length(d));
    for (int l = 0; l < ds.posts.length(d); ++l) {
      EXPECT_EQ(loaded.posts.words(d)[static_cast<size_t>(l)],
                ds.posts.words(d)[static_cast<size_t>(l)]);
    }
  }
  EXPECT_EQ(loaded.interactions.num_edges(), ds.interactions.num_edges());
  EXPECT_EQ(loaded.followers.num_edges(), ds.followers.num_edges());
  ASSERT_EQ(loaded.retweets.size(), ds.retweets.size());
  EXPECT_EQ(loaded.retweets[0].retweeters, ds.retweets[0].retweeters);
  EXPECT_EQ(loaded.retweets[0].ignorers, ds.retweets[0].ignorers);
  EXPECT_TRUE(loaded.truth.empty());

  std::filesystem::remove_all(dir);
}

TEST(SerializeTest, LoadMissingDirectoryFails) {
  auto result = LoadDataset("/nonexistent/cold_dataset");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), cold::StatusCode::kIOError);
}

}  // namespace
}  // namespace cold::data
