file(REMOVE_RECURSE
  "libcold_core.a"
)
