#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cold.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace cold::obs {
namespace {

// ------------------------------------------------------ JSON validation --
// Minimal recursive-descent JSON syntax checker, enough to assert that
// DumpJson round-trips through a real parser's grammar.

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : text_(std::move(text)) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string text_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- Counter --

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Registry::Enable();
  Counter* counter =
      Registry::Global().GetCounter("cold/obs_test/concurrent_counter");
  counter->Reset();
  constexpr size_t kItems = 100000;
  ThreadPool pool(8);
  pool.ParallelFor(kItems, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->Value(), static_cast<int64_t>(kItems));

  // A second wave of weighted increments from explicit Submit tasks.
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&] { counter->Increment(1000); });
  }
  pool.Wait();
  EXPECT_EQ(counter->Value(), static_cast<int64_t>(kItems) + 8000);
}

TEST(CounterTest, DisabledIncrementsAreDropped) {
  Counter* counter =
      Registry::Global().GetCounter("cold/obs_test/disabled_counter");
  counter->Reset();
  Registry::Disable();
  counter->Increment(42);
  Registry::Enable();
  EXPECT_EQ(counter->Value(), 0);
  counter->Increment(7);
  EXPECT_EQ(counter->Value(), 7);
}

TEST(GaugeTest, SetAndAdd) {
  Registry::Enable();
  Gauge* gauge = Registry::Global().GetGauge("cold/obs_test/gauge");
  gauge->Set(1.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 1.5);
  gauge->Add(0.25);
  gauge->Add(0.25);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.0);
}

TEST(RegistryTest, SameNameAndLabelsReturnsSameInstance) {
  auto& registry = Registry::Global();
  Counter* a = registry.GetCounter("cold/obs_test/family", {{"x", "1"}});
  Counter* b = registry.GetCounter("cold/obs_test/family", {{"x", "1"}});
  Counter* c = registry.GetCounter("cold/obs_test/family", {{"x", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RegistryTest, KindMismatchReturnsDetachedDummy) {
  auto& registry = Registry::Global();
  registry.GetCounter("cold/obs_test/kind_clash");
  Gauge* dummy = registry.GetGauge("cold/obs_test/kind_clash");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(5.0);  // must not crash; value is detached from the registry
  TelemetrySnapshot snapshot = registry.Snapshot();
  for (const auto& g : snapshot.gauges) {
    EXPECT_NE(g.name, "cold/obs_test/kind_clash");
  }
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, LogScaleBucketBoundaries) {
  HistogramOptions options;
  options.min_upper_bound = 1e-3;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram hist(options);
  ASSERT_EQ(hist.upper_bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[0], 1e-3);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[1], 2e-3);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[2], 4e-3);
  EXPECT_DOUBLE_EQ(hist.upper_bounds()[3], 8e-3);

  Registry::Enable();
  hist.Observe(0.5e-3);  // bucket 0
  hist.Observe(1e-3);    // bucket 0 (le is inclusive)
  hist.Observe(1.5e-3);  // bucket 1
  hist.Observe(8e-3);    // bucket 3
  hist.Observe(9e-3);    // overflow
  hist.Observe(123.0);   // overflow
  std::vector<int64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[4], 2);
  EXPECT_EQ(hist.count(), 6);
  EXPECT_NEAR(hist.sum(), 0.5e-3 + 1e-3 + 1.5e-3 + 8e-3 + 9e-3 + 123.0,
              1e-12);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Registry::Enable();
  Histogram* hist = Registry::Global().GetHistogram(
      "cold/obs_test/concurrent_hist", {},
      HistogramOptions{1e-6, 2.0, 8});
  hist->Reset();
  constexpr size_t kItems = 50000;
  ThreadPool pool(8);
  pool.ParallelFor(kItems, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hist->Observe(1e-5);
  });
  EXPECT_EQ(hist->count(), static_cast<int64_t>(kItems));
  int64_t bucketed = 0;
  for (int64_t c : hist->bucket_counts()) bucketed += c;
  EXPECT_EQ(bucketed, static_cast<int64_t>(kItems));
}

// ------------------------------------------------------------- Exporters --

TEST(ExportTest, JsonSnapshotParses) {
  auto& registry = Registry::Global();
  Registry::Enable();
  registry.GetCounter("cold/obs_test/json_counter")->Increment(3);
  registry.GetGauge("cold/obs_test/json_gauge", {{"phase", "post"}})
      ->Set(0.125);
  registry
      .GetHistogram("cold/obs_test/json_hist", {},
                    HistogramOptions{1e-3, 10.0, 3})
      ->Observe(0.5);
  std::ostringstream os;
  registry.DumpJson(os);
  std::string json = os.str();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"cold/obs_test/json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"post\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  TelemetrySnapshot snapshot;
  snapshot.counters.push_back(
      {"weird\"name\\with\nstuff", {{"k", "v\"q"}}, 1});
  std::ostringstream os;
  DumpJson(snapshot, os);
  JsonChecker checker(os.str());
  EXPECT_TRUE(checker.Valid()) << os.str();
}

TEST(ExportTest, PrometheusTextFormat) {
  auto& registry = Registry::Global();
  Registry::Enable();
  registry.GetCounter("cold/obs_test/prom_counter")->Increment(5);
  registry.GetGauge("cold/obs_test/prom_gauge", {{"phase", "link"}})
      ->Set(2.5);
  Histogram* hist = registry.GetHistogram(
      "cold/obs_test/prom_hist", {}, HistogramOptions{1e-3, 10.0, 3});
  hist->Reset();
  hist->Observe(5e-4);
  hist->Observe(5e-3);
  hist->Observe(100.0);

  std::ostringstream os;
  registry.DumpPrometheusText(os);
  std::string text = os.str();

  // Every line is either a comment or `name{labels} value`.
  std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$)");
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, sample_re)) << "bad line: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0);

  // Sanitized names, cumulative histogram buckets, sum/count series.
  EXPECT_NE(text.find("cold_obs_test_prom_counter 5"), std::string::npos);
  EXPECT_NE(text.find("cold_obs_test_prom_gauge{phase=\"link\"} 2.5"),
            std::string::npos);
  EXPECT_NE(text.find("cold_obs_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cold_obs_test_prom_hist_count 3"), std::string::npos);
}

// ------------------------------------------------------------- Quantiles --

TEST(QuantileTest, UniformSingleBucketInterpolatesLinearly) {
  // 100 observations spread uniformly in (0, 1]: one bucket with bound 1.
  std::vector<double> bounds = {1.0};
  std::vector<int64_t> counts = {100, 0};
  EXPECT_NEAR(EstimateQuantile(bounds, counts, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(EstimateQuantile(bounds, counts, 0.9), 0.9, 1e-12);
  EXPECT_NEAR(EstimateQuantile(bounds, counts, 0.99), 0.99, 1e-12);
}

TEST(QuantileTest, MultiBucketRanksLandInTheRightBucket) {
  // Buckets (0,1], (1,2], (2,4] with 10 / 70 / 20 observations: p50 and
  // p90 must interpolate inside their containing buckets.
  std::vector<double> bounds = {1.0, 2.0, 4.0};
  std::vector<int64_t> counts = {10, 70, 20, 0};
  // rank 50 is 40 of the 70 observations into (1,2].
  EXPECT_NEAR(EstimateQuantile(bounds, counts, 0.5), 1.0 + 40.0 / 70.0,
              1e-12);
  // rank 90 is 10 of the 20 observations into (2,4].
  EXPECT_NEAR(EstimateQuantile(bounds, counts, 0.9), 2.0 + 2.0 * 10.0 / 20.0,
              1e-12);
  // Everything at or below rank 10 is in the first bucket.
  EXPECT_LE(EstimateQuantile(bounds, counts, 0.05), 1.0);
}

TEST(QuantileTest, KnownDistributionAgainstExactQuantiles) {
  // Feed a real Histogram 1..1000 (exact quantiles known) and check the
  // log-bucket estimate stays within one bucket's relative width.
  HistogramOptions options;
  options.min_upper_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 12;
  Histogram hist(options);
  Registry::Enable();
  for (int i = 1; i <= 1000; ++i) hist.Observe(static_cast<double>(i));
  HistogramSnapshot snapshot;
  snapshot.upper_bounds = hist.upper_bounds();
  snapshot.bucket_counts = hist.bucket_counts();
  snapshot.count = hist.count();
  for (double q : {0.5, 0.9, 0.99}) {
    double exact = 1000.0 * q;
    double estimate = snapshot.Quantile(q);
    // A growth-2 layout bounds the estimate within a factor of 2.
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
  }
}

TEST(QuantileTest, EmptyHistogramIsNaN) {
  std::vector<double> bounds = {1.0, 2.0};
  std::vector<int64_t> counts = {0, 0, 0};
  EXPECT_TRUE(std::isnan(EstimateQuantile(bounds, counts, 0.5)));
}

TEST(QuantileTest, OverflowBucketClampsToLastFiniteBound) {
  // All mass in the overflow bucket: the estimate cannot invent values
  // beyond the instrumented range, so it clamps to the last finite bound.
  std::vector<double> bounds = {1.0, 2.0};
  std::vector<int64_t> counts = {0, 0, 50};
  EXPECT_DOUBLE_EQ(EstimateQuantile(bounds, counts, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(EstimateQuantile(bounds, counts, 0.99), 2.0);
}

TEST(QuantileTest, ExportersCarryQuantiles) {
  auto& registry = Registry::Global();
  Registry::Enable();
  Histogram* hist = registry.GetHistogram(
      "cold/obs_test/quantile_hist", {}, HistogramOptions{1e-3, 2.0, 10});
  hist->Reset();
  for (int i = 0; i < 100; ++i) hist->Observe(1e-2);

  std::ostringstream json_os;
  registry.DumpJson(json_os);
  std::string json = json_os.str();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  std::ostringstream prom_os;
  registry.DumpPrometheusText(prom_os);
  std::string prom = prom_os.str();
  EXPECT_NE(prom.find("cold_obs_test_quantile_hist_quantile{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.9\""), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
}

// ----------------------------------------------------------- Trace spans --

TEST(TraceTest, NestedSpansAttributeTimeToTheRightFamily) {
  Registry::Enable();
  auto& registry = Registry::Global();
  Histogram* outer = registry.GetHistogram("cold/trace/obs_test/outer");
  Histogram* inner = registry.GetHistogram("cold/trace/obs_test/inner");
  outer->Reset();
  inner->Reset();
  TraceRing::Enable(16);
  {
    COLD_TRACE_SPAN("obs_test/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      COLD_TRACE_SPAN("obs_test/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(outer->count(), 1);
  EXPECT_EQ(inner->count(), 1);
  // The outer span covers the inner one.
  EXPECT_GE(outer->sum(), inner->sum());
  EXPECT_GT(inner->sum(), 0.0);

  // Ring events carry nesting depth; the inner span completes first.
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "obs_test/inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "obs_test/outer");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_LE(events[1].start_seconds, events[0].start_seconds);
}

TEST(TraceTest, RingBufferKeepsNewestEvents) {
  TraceRing::Enable(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.name = "e";
    event.name += std::to_string(i);
    event.start_seconds = i;
    TraceRing::Push(std::move(event));
  }
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(TraceTest, ConcurrentPushKeepsRingConsistent) {
  // Hammer the ring from several threads at a capacity far below the push
  // count: no crashes/tears, ring stays exactly at capacity, and every
  // surviving event is one that was actually pushed.
  constexpr size_t kCapacity = 64;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  TraceRing::Enable(kCapacity);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent event;
        // Built with append (not operator+ chains): GCC 12's -Wrestrict
        // false-positives on literal + to_string concatenations.
        event.name = "t";
        event.name += std::to_string(t);
        event.name += "/e";
        event.name += std::to_string(i);
        event.start_seconds = t * kPerThread + i;
        TraceRing::Push(std::move(event));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), kCapacity);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.name[0], 't');
    EXPECT_NE(event.name.find("/e"), std::string::npos);
  }
}

TEST(TraceTest, SpansRecordDistinctThreadIds) {
  TraceRing::Enable(32);
  Registry::Enable();
  {
    COLD_TRACE_SPAN("obs_test/tid_main");
  }
  std::thread worker([] { COLD_TRACE_SPAN("obs_test/tid_worker"); });
  worker.join();
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GT(events[0].tid, 0);
  EXPECT_GT(events[1].tid, 0);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceTest, ChromeTraceExportIsValidJson) {
  TraceRing::Enable(16);
  Registry::Enable();
  {
    COLD_TRACE_SPAN("obs_test/chrome \"outer\"");
    { COLD_TRACE_SPAN("obs_test/chrome_inner"); }
  }
  std::vector<TraceEvent> events = TraceRing::Events();
  TraceRing::Disable();
  ASSERT_EQ(events.size(), 2u);

  std::ostringstream os;
  WriteChromeTrace(events, os);
  std::string json = os.str();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  // Chrome Trace Event essentials: complete events with µs timestamps and
  // the string name escaped.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("chrome \\\"outer\\\""), std::string::npos);
}

TEST(TraceTest, DisabledRegistryMakesSpansFree) {
  auto& registry = Registry::Global();
  Histogram* hist = registry.GetHistogram("cold/trace/obs_test/disabled");
  hist->Reset();
  Registry::Disable();
  {
    COLD_TRACE_SPAN("obs_test/disabled");
  }
  Registry::Enable();
  EXPECT_EQ(hist->count(), 0);
}

// ------------------------------------------------- End-to-end with COLD --

data::SocialDataset SmallData() {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_time_slices = 6;
  config.core_words_per_topic = 8;
  config.background_words = 40;
  config.posts_per_user = 5.0;
  config.words_per_post = 6.0;
  config.follows_per_user = 5;
  config.seed = 7;
  data::SyntheticSocialGenerator gen(config);
  return std::move(gen.Generate()).ValueOrDie();
}

core::ColdConfig SmallModelConfig(int iterations) {
  core::ColdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.iterations = iterations;
  config.burn_in = iterations - 1;
  config.rho = 0.5;
  config.seed = 23;
  return config;
}

TEST(GibbsTelemetryTest, PerSweepMetricsPopulated) {
  Registry::Enable();
  auto& registry = Registry::Global();
  registry.Reset();
  data::SocialDataset ds = SmallData();
  core::ColdGibbsSampler sampler(SmallModelConfig(5), ds.posts,
                                 &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  int callbacks = 0;
  sampler.SetSweepCallback([&](int sweep) {
    ++callbacks;
    EXPECT_EQ(sweep, callbacks);
  });
  ASSERT_TRUE(sampler.Train().ok());
  EXPECT_EQ(callbacks, 5);

  EXPECT_EQ(registry.GetCounter("cold/gibbs/sweeps")->Value(), 5);
  // Every token is resampled every sweep.
  EXPECT_EQ(registry.GetCounter("cold/gibbs/tokens_resampled")->Value(),
            5 * ds.posts.num_tokens());
  EXPECT_GT(registry.GetGauge("cold/gibbs/sweep_seconds")->Value(), 0.0);
  double post_s =
      registry.GetGauge("cold/gibbs/phase_seconds", {{"phase", "post"}})
          ->Value();
  double link_s =
      registry.GetGauge("cold/gibbs/phase_seconds", {{"phase", "link"}})
          ->Value();
  EXPECT_GT(post_s, 0.0);
  EXPECT_GT(link_s, 0.0);
  EXPECT_NEAR(registry.GetGauge("cold/gibbs/sweep_seconds")->Value(),
              post_s + link_s, 1e-12);
  double switch_rate =
      registry.GetGauge("cold/gibbs/community_switch_rate")->Value();
  EXPECT_GE(switch_rate, 0.0);
  EXPECT_LE(switch_rate, 1.0);
  // The sweep span fed the trace histogram.
  EXPECT_EQ(registry.GetHistogram("cold/trace/gibbs/sweep")->count(), 5);
}

TEST(GibbsTelemetryTest, HotPathOverheadIsSmall) {
  // Acceptance: instrumentation adds < 5% to a 50-sweep serial train. Wall
  // clocks on shared CI are noisy, so assert loosely (50% headroom) and
  // take the best of two runs per variant.
  data::SocialDataset ds = SmallData();
  auto train_seconds = [&]() {
    core::ColdGibbsSampler sampler(SmallModelConfig(50), ds.posts,
                                   &ds.interactions);
    EXPECT_TRUE(sampler.Init().ok());
    Stopwatch watch;
    EXPECT_TRUE(sampler.Train().ok());
    return watch.ElapsedSeconds();
  };
  double disabled = 1e100, enabled = 1e100;
  for (int rep = 0; rep < 2; ++rep) {
    Registry::Enable();
    enabled = std::min(enabled, train_seconds());
    Registry::Disable();
    disabled = std::min(disabled, train_seconds());
  }
  Registry::Enable();
  EXPECT_LT(enabled, disabled * 1.5 + 0.02)
      << "instrumented=" << enabled << "s disabled=" << disabled << "s";
}

}  // namespace
}  // namespace cold::obs
