file(REMOVE_RECURSE
  "libcold_text.a"
)
