file(REMOVE_RECURSE
  "../bench/fig18_sensitivity_links"
  "../bench/fig18_sensitivity_links.pdb"
  "CMakeFiles/fig18_sensitivity_links.dir/fig18_sensitivity_links.cc.o"
  "CMakeFiles/fig18_sensitivity_links.dir/fig18_sensitivity_links.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sensitivity_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
