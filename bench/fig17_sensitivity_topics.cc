// Figure 17 (Appendix B): impact of #communities C and #topics K on topic
// extraction (held-out perplexity). Paper shape: perplexity falls then
// levels off with K; nearly flat in C.
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 17: (C, K) sensitivity — perplexity");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  data::PostSplit split = data::SplitPosts(dataset.posts, 0.2, 89, 0);

  const std::vector<int> c_values = {4, 8, 16};
  const std::vector<int> k_values = {4, 8, 12, 20};

  std::printf("%-8s", "C \\ K");
  for (int k : k_values) std::printf(" %8d", k);
  std::printf("\n");
  for (int c : c_values) {
    std::printf("%-8d", c);
    for (int k : k_values) {
      core::ColdEstimates est = bench::TrainCold(
          bench::BenchColdConfig(c, k, 60), split.train,
          &dataset.interactions);
      std::printf(" %8.1f", core::ColdPredictor(est).Perplexity(split.test));
    }
    std::printf("\n");
  }
  std::printf("\n(paper shape: columns fall then flatten with K; rows are\n"
              " nearly constant in C)\n");
  return 0;
}
