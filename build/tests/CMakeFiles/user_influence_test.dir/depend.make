# Empty dependencies file for user_influence_test.
# This may be replaced when dependencies are built.
