# Empty dependencies file for fig16_influence.
# This may be replaced when dependencies are built.
