file(REMOVE_RECURSE
  "CMakeFiles/cold_data.dir/serialize.cc.o"
  "CMakeFiles/cold_data.dir/serialize.cc.o.d"
  "CMakeFiles/cold_data.dir/split.cc.o"
  "CMakeFiles/cold_data.dir/split.cc.o.d"
  "CMakeFiles/cold_data.dir/synthetic.cc.o"
  "CMakeFiles/cold_data.dir/synthetic.cc.o.d"
  "libcold_data.a"
  "libcold_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
