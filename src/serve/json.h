// Minimal JSON value type with a strict parser and a compact serializer,
// used by the serving layer's request/response bodies. Dependency-free by
// design (the serving tentpole must build with nothing but the toolchain).
//
// Supported: objects, arrays, strings (with \uXXXX escapes, encoded to
// UTF-8), finite numbers, booleans, null. Parsing rejects trailing
// garbage, unterminated literals, non-finite numbers and inputs nested
// deeper than kMaxDepth. Object keys keep insertion order; duplicate keys
// keep the last value on lookup (like most production parsers).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace cold::serve {

/// \brief One JSON value (recursive sum type).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value members.
  using Object = std::vector<std::pair<std::string, Json>>;

  /// Parser recursion limit; inputs nested deeper fail with
  /// InvalidArgument rather than overflowing the stack.
  static constexpr int kMaxDepth = 64;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}              // NOLINT
  Json(bool b) : value_(b) {}                            // NOLINT
  Json(double d) : value_(d) {}                          // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}        // NOLINT
  Json(int64_t i) : value_(static_cast<double>(i)) {}    // NOLINT
  Json(const char* s) : value_(std::string(s)) {}        // NOLINT
  Json(std::string s) : value_(std::move(s)) {}          // NOLINT
  Json(Array a) : value_(std::move(a)) {}                // NOLINT
  Json(Object o) : value_(std::move(o)) {}               // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// \brief Object member lookup; nullptr when not an object or the key is
  /// absent. Duplicate keys resolve to the last occurrence.
  const Json* Find(const std::string& key) const;

  /// \brief Appends to an array value (must be kArray).
  void Append(Json v) { as_array().push_back(std::move(v)); }

  /// \brief Sets/overwrites an object member (must be kObject).
  void Set(std::string key, Json v);

  /// \brief Compact serialization (no whitespace). Non-finite numbers are
  /// emitted as null, matching JSON's lack of NaN/Inf literals.
  std::string Dump() const;

  /// \brief Strict parse of a complete JSON document.
  static cold::Result<Json> Parse(const std::string& text);

  /// \brief Convenience: numeric member with bounds — Status when the
  /// member is missing, non-numeric, non-integral or outside
  /// [min_value, max_value]. Used by request decoding.
  cold::Result<int64_t> GetInt(const std::string& key, int64_t min_value,
                               int64_t max_value) const;

  /// \brief Convenience: member `key` as a vector of integers in
  /// [0, upper_bound). Missing member yields an empty vector; a
  /// non-array member or out-of-range element is an error.
  cold::Result<std::vector<int>> GetIntArray(const std::string& key,
                                             int64_t upper_bound) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace cold::serve
