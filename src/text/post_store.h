// Time-stamped post storage: the text+time half of the COLD input
// (Definition 1), stored column-wise for cache-friendly Gibbs sweeps.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace cold::text {

/// Dense user identifier in [0, num_users).
using UserId = int32_t;
/// Dense post identifier in [0, num_posts).
using PostId = int32_t;
/// Discrete time-slice index in [0, num_time_slices).
using TimeSlice = int32_t;

/// \brief One post: author, time slice, bag of words.
struct Post {
  UserId author = -1;
  TimeSlice time = 0;
  std::vector<WordId> words;
};

/// \brief Column-wise store of all posts.
///
/// Words for all posts live in one flat array with per-post offsets (CSR
/// layout). Per-user post lists are built on Finalize().
class PostStore {
 public:
  PostStore() = default;

  /// \brief Appends a post; returns its id. Must be called before
  /// Finalize().
  PostId Add(UserId author, TimeSlice time, std::span<const WordId> words);

  /// \brief Freezes the store: builds per-user indexes and computes
  /// num_users / num_time_slices / num_words upper bounds.
  ///
  /// `min_users` / `min_time_slices` let callers reserve id space for users
  /// or slices that have no posts.
  void Finalize(int min_users = 0, int min_time_slices = 0);

  bool finalized() const { return finalized_; }

  int num_posts() const { return static_cast<int>(time_.size()); }
  int num_users() const { return num_users_; }
  int num_time_slices() const { return num_time_slices_; }
  /// Total token count over all posts.
  int64_t num_tokens() const { return static_cast<int64_t>(words_.size()); }

  UserId author(PostId d) const { return author_[static_cast<size_t>(d)]; }
  TimeSlice time(PostId d) const { return time_[static_cast<size_t>(d)]; }

  /// The words of post `d`.
  std::span<const WordId> words(PostId d) const {
    size_t b = offsets_[static_cast<size_t>(d)];
    size_t e = offsets_[static_cast<size_t>(d) + 1];
    return {words_.data() + b, e - b};
  }

  /// Number of words in post `d`.
  int length(PostId d) const {
    return static_cast<int>(offsets_[static_cast<size_t>(d) + 1] -
                            offsets_[static_cast<size_t>(d)]);
  }

  /// The posts of user `i` (requires Finalize()).
  std::span<const PostId> posts_of(UserId i) const {
    size_t b = user_offsets_[static_cast<size_t>(i)];
    size_t e = user_offsets_[static_cast<size_t>(i) + 1];
    return {user_posts_.data() + b, e - b};
  }

  /// \brief Distinct (word, count) pairs of post `d`, for the per-post
  /// Dirichlet-multinomial term in Eq. (3). Counts are computed on the fly;
  /// posts are short so this is a handful of comparisons.
  std::vector<std::pair<WordId, int>> WordCounts(PostId d) const;

  /// \brief WordCounts into a caller-owned buffer (cleared first), so the
  /// Gibbs hot path reuses one allocation across the whole sweep.
  void WordCounts(PostId d, std::vector<std::pair<WordId, int>>* out) const;

  /// \brief Precomputed distinct (word, count) pairs of post `d`, in first-
  /// occurrence order (identical to WordCounts). Posts are immutable after
  /// Finalize(), so the pairs are built once there and the Gibbs hot path
  /// reads them with zero per-call work. Requires Finalize().
  std::span<const std::pair<WordId, int>> word_pairs(PostId d) const {
    size_t b = pair_offsets_[static_cast<size_t>(d)];
    size_t e = pair_offsets_[static_cast<size_t>(d) + 1];
    return {word_pairs_.data() + b, e - b};
  }

 private:
  std::vector<UserId> author_;
  std::vector<TimeSlice> time_;
  std::vector<WordId> words_;
  std::vector<size_t> offsets_{0};

  std::vector<PostId> user_posts_;
  std::vector<size_t> user_offsets_;
  std::vector<std::pair<WordId, int>> word_pairs_;
  std::vector<size_t> pair_offsets_;
  int num_users_ = 0;
  int num_time_slices_ = 0;
  bool finalized_ = false;
};

}  // namespace cold::text
