// Robust full-transfer socket I/O shared by the serving layer and the
// distributed trainer: a partial read/write or a signal landing mid-syscall
// (EINTR) must never be mistaken for completion, progress, or EOF. Both
// loops retry interrupted syscalls and continue until the requested byte
// count has moved or a real error (or EOF) occurs.
#pragma once

#include <cstddef>

#include "util/status.h"

namespace cold {

/// \brief Writes exactly `size` bytes of `data` to `fd`, retrying partial
/// writes and EINTR. Uses send(MSG_NOSIGNAL) on sockets so a closed peer
/// surfaces as an IOError (EPIPE) instead of killing the process with
/// SIGPIPE; falls back to write() for non-socket descriptors.
cold::Status WriteFull(int fd, const void* data, size_t size);

/// \brief Reads exactly `size` bytes from `fd` into `data`, retrying
/// partial reads and EINTR. EOF before `size` bytes is an IOError (a
/// length-prefixed frame or fixed-size header can never legitimately end
/// early); a cleanly closed connection at byte 0 reports "connection
/// closed" so callers can distinguish peer shutdown from a torn transfer.
cold::Status ReadFull(int fd, void* data, size_t size);

}  // namespace cold
