// Coverage for corners the focused suites skip: negative paths of the
// invariant checker, the cluster cost model's arithmetic, logging levels,
// and odd-size split behaviour.
#include <gtest/gtest.h>

#include "core/cold.h"
#include "data/split.h"
#include "engine/gas_engine.h"
#include "util/logging.h"

namespace cold {
namespace {

// ------------------------------------- invariant checker detects damage --

text::PostStore TwoPosts() {
  text::PostStore posts;
  posts.Add(0, 0, std::vector<text::WordId>{0, 1});
  posts.Add(1, 1, std::vector<text::WordId>{1});
  posts.Finalize(2, 2);
  return posts;
}

TEST(InvariantCheckerTest, DetectsCorruptedAssignment) {
  text::PostStore posts = TwoPosts();
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 2;
  config.burn_in = 0;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.state().CheckInvariants(posts, nullptr, false).ok());

  // Flip an assignment without updating counters: the checker must notice.
  core::ColdState& state = sampler.mutable_state();
  state.post_topic[0] ^= 1;
  auto status = state.CheckInvariants(posts, nullptr, false);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(InvariantCheckerTest, DetectsOutOfRangeAssignment) {
  text::PostStore posts = TwoPosts();
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 1;
  config.burn_in = 0;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  sampler.mutable_state().post_community[1] = 99;
  EXPECT_FALSE(
      sampler.state().CheckInvariants(posts, nullptr, false).ok());
}

// ------------------------------------------------- cluster model maths ---

struct UnitProgram {
  using GatherType = int;
  static constexpr engine::GatherEdges kGatherEdges =
      engine::GatherEdges::kNone;
  GatherType GatherInit() const { return 0; }
  void Gather(const engine::PropertyGraph<int, int>&, engine::VertexId,
              engine::EdgeId, GatherType*) const {}
  void Apply(engine::PropertyGraph<int, int>*, engine::VertexId,
             const GatherType&) {}
  void Scatter(engine::PropertyGraph<int, int>*, engine::EdgeId,
               engine::WorkerContext*) {}
  void PostSuperstep(engine::PropertyGraph<int, int>*, int) {}
  int64_t GlobalStateBytes() const { return 1000; }
  int64_t EdgeWorkUnits(engine::EdgeId) const { return 1; }
};

TEST(ClusterModelTest, SingleNodeReturnsMeasuredCompute) {
  engine::PropertyGraph<int, int> g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(0, 1, 0);
  g.Finalize();
  UnitProgram program;
  engine::GasEngine<int, int, UnitProgram> eng(&g, &program);
  eng.RunSuperstep();
  engine::ClusterModel model;
  model.sync_latency_sec = 100.0;  // must be ignored for one node
  EXPECT_NEAR(eng.SimulatedWallSeconds(model),
              eng.stats().total_seconds(), 1e-9);
}

TEST(ClusterModelTest, SyncLatencyScalesWithLogNodes) {
  auto build = [](int nodes, double latency) {
    engine::PropertyGraph<int, int> g;
    for (int i = 0; i < 8; ++i) g.AddVertex(0);
    for (int i = 0; i + 1 < 8; ++i) g.AddEdge(i, i + 1, 0);
    g.Finalize();
    UnitProgram program;
    engine::EngineOptions options;
    options.num_nodes = nodes;
    engine::GasEngine<int, int, UnitProgram> eng(&g, &program, options);
    eng.RunSuperstep();
    engine::ClusterModel model;
    model.bandwidth_bytes_per_sec = 1e18;  // comm free
    model.sync_latency_sec = latency;
    // Compute is ~0 for the unit program; sync dominates.
    return eng.SimulatedWallSeconds(model);
  };
  // 1 superstep: ceil(log2(2)) = 1 unit, ceil(log2(8)) = 3 units.
  double t2 = build(2, 1.0);
  double t8 = build(8, 1.0);
  EXPECT_NEAR(t8 - t2, 2.0, 0.05);
}

// -------------------------------------------------------------- logging --

TEST(LoggingTest, LevelFilteringIsMonotone) {
  LogLevel original = Logger::GetLevel();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kError);
  // Emitting below the level must be a no-op (no crash, no output check
  // needed — this guards the code path).
  COLD_LOG(kDebug) << "suppressed";
  COLD_LOG(kInfo) << "suppressed";
  Logger::SetLevel(original);
}

// ----------------------------------------------------- odd-size splits ---

TEST(SplitOddSizeTest, LastFoldAbsorbsRemainder) {
  text::PostStore posts;
  for (int i = 0; i < 11; ++i) {  // 11 % 5 != 0
    posts.Add(i % 3, i % 2, std::vector<text::WordId>{0});
  }
  posts.Finalize();
  size_t total = 0;
  for (int fold = 0; fold < 5; ++fold) {
    data::PostSplit split = data::SplitPosts(posts, 0.2, 5, fold);
    total += static_cast<size_t>(split.test.num_posts());
    EXPECT_EQ(split.train.num_posts() + split.test.num_posts(), 11);
  }
  EXPECT_EQ(total, 11u);
}

TEST(SplitOddSizeTest, FoldIndexWrapsAround) {
  text::PostStore posts;
  for (int i = 0; i < 10; ++i) {
    posts.Add(0, 0, std::vector<text::WordId>{0});
  }
  posts.Finalize();
  data::PostSplit a = data::SplitPosts(posts, 0.2, 5, 1);
  data::PostSplit b = data::SplitPosts(posts, 0.2, 5, 6);  // 6 % 5 == 1
  EXPECT_EQ(a.test_original_ids, b.test_original_ids);
}

// ------------------------------------------- predictor distribution edge --

TEST(PredictorEdgeTest, SingleTimeSliceAlwaysPredictsZero) {
  text::PostStore posts;
  posts.Add(0, 0, std::vector<text::WordId>{0, 1});
  posts.Add(1, 0, std::vector<text::WordId>{1});
  posts.Finalize(2, 1);
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 4;
  config.burn_in = 1;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.Train().ok());
  core::ColdPredictor predictor(sampler.AveragedEstimates());
  std::vector<text::WordId> words = {0};
  EXPECT_EQ(predictor.PredictTimestamp(words, 0), 0);
  auto scores = predictor.TimestampScores(words, 0);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
}

}  // namespace
}  // namespace cold
