file(REMOVE_RECURSE
  "libcold_util.a"
)
