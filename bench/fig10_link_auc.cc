// Figure 10: link-prediction AUC for COLD, PMTLM and MMSB on held-out
// links. Paper shape: COLD ≳ PMTLM >> MMSB (content helps network
// modeling; decoupling communities from topics helps a little more).
#include "baselines/mmsb.h"
#include "baselines/pmtlm.h"
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 10: link prediction AUC (higher is better)");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  // At least two folds here: single-split AUC noise (~±0.02) is comparable
  // to the COLD-vs-PMTLM margin the figure is about.
  const int folds = std::max(2, bench::NumFolds());

  double cold_auc = 0.0, pmtlm_auc = 0.0, mmsb_auc = 0.0;
  for (int fold = 0; fold < folds; ++fold) {
    data::LinkSplit split =
        data::SplitLinks(dataset.interactions, 0.2, 3.0, 73, fold);

    core::ColdEstimates est = bench::TrainCold(bench::BenchColdConfig(),
                                               dataset.posts, &split.train);
    core::ColdPredictor predictor(est);
    cold_auc += bench::LinkAuc(split, [&](int a, int b) {
      return predictor.LinkProbability(a, b);
    });

    baselines::PmtlmConfig pc;
    pc.num_factors = 8;
    pc.alpha = 0.5;
    pc.iterations = 80;
    baselines::PmtlmModel pmtlm(pc, dataset.posts, split.train);
    if (!pmtlm.Train().ok()) return 1;
    pmtlm_auc += bench::LinkAuc(split, [&](int a, int b) {
      return pmtlm.LinkProbability(a, b);
    });

    baselines::MmsbConfig mc;
    mc.num_communities = 8;
    mc.rho = 0.5;
    mc.iterations = 80;
    baselines::MmsbModel mmsb(mc, split.train, dataset.num_users());
    if (!mmsb.Train().ok()) return 1;
    mmsb_auc += bench::LinkAuc(split, [&](int a, int b) {
      return mmsb.LinkProbability(a, b);
    });
  }

  std::printf("%-8s %8s\n", "method", "AUC");
  std::printf("%-8s %8.4f\n", "COLD", cold_auc / folds);
  std::printf("%-8s %8.4f\n", "PMTLM", pmtlm_auc / folds);
  std::printf("%-8s %8.4f\n", "MMSB", mmsb_auc / folds);
  std::printf("\n(paper shape: COLD >= PMTLM >> MMSB)\n");
  return 0;
}
