#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.h"

namespace cold::graph {
namespace {

Digraph MakeTriangle() {
  Digraph::Builder builder;
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0).ok());
  return std::move(builder).Build();
}

TEST(DigraphTest, BasicCounts) {
  Digraph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(DigraphTest, RejectsSelfLoopAndNegative) {
  Digraph::Builder builder;
  EXPECT_EQ(builder.AddEdge(1, 1).code(), cold::StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(-1, 2).code(), cold::StatusCode::kInvalidArgument);
}

TEST(DigraphTest, AdjacencyIsConsistent) {
  Digraph g = MakeTriangle();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(g.out_degree(n), 1);
    EXPECT_EQ(g.in_degree(n), 1);
    for (EdgeId e : g.out_edges(n)) EXPECT_EQ(g.edge(e).src, n);
    for (EdgeId e : g.in_edges(n)) EXPECT_EQ(g.edge(e).dst, n);
  }
}

TEST(DigraphTest, NeighborsAndHasEdge) {
  Digraph g = MakeTriangle();
  EXPECT_EQ(g.OutNeighbors(0), std::vector<NodeId>{1});
  EXPECT_EQ(g.InNeighbors(0), std::vector<NodeId>{2});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(DigraphTest, DedupeCollapsesParallelEdges) {
  Digraph::Builder builder;
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  Digraph g = std::move(builder).Build(0, /*dedupe=*/true);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(DigraphTest, KeepsParallelEdgesWithoutDedupe) {
  Digraph::Builder builder;
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  Digraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(DigraphTest, ExplicitNodeCountReservesIsolatedNodes) {
  Digraph::Builder builder;
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  Digraph g = std::move(builder).Build(/*num_nodes=*/5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.out_degree(4), 0);
  EXPECT_EQ(g.in_degree(4), 0);
}

TEST(DigraphTest, NegativePairCount) {
  Digraph g = MakeTriangle();
  // 3 nodes => 6 ordered pairs, 3 present.
  EXPECT_EQ(g.NumNegativePairs(), 3);
}

TEST(DigraphTest, EmptyGraph) {
  Digraph::Builder builder;
  Digraph g = std::move(builder).Build(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.NumNegativePairs(), 12);
}

TEST(DigraphTest, EdgeIdOrderMatchesInsertion) {
  Digraph::Builder builder;
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  Digraph g = std::move(builder).Build();
  EXPECT_EQ(g.edge(0).src, 2);
  EXPECT_EQ(g.edge(1).src, 0);
}

}  // namespace
}  // namespace cold::graph
