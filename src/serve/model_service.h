// The COLD prediction service: JSON endpoints over a hot-swappable
// ColdPredictor snapshot (§5.2's online half).
//
//   POST /v1/diffusion                Eq. (7)  P(candidate retweets post)
//   POST /v1/topic_posterior          Eq. (5)  P(k | words, author)
//   POST /v1/link                     §6.2     link score P_{i->i'}
//   POST /v1/timestamp                §6.3     time-slice distribution
//   GET  /v1/influential_communities  §6.6     top communities per topic
//   GET  /healthz                     liveness + model dimensions
//   GET  /metrics                     Prometheus text exposition (src/obs)
//   GET  /debug/vars                  full JSON telemetry snapshot
//   POST /admin/reload                atomic snapshot hot-reload
//
// Model sharing is a shared_ptr<const ColdPredictor> swapped under a
// mutex: requests pin the snapshot they started with, so a reload never
// invalidates an in-flight computation and old snapshots free themselves
// when their last request completes.
//
// Diffusion requests are micro-batched: they queue into a single drain
// thread that groups the batch by (author, words) so the O(K |w_d|) topic
// posterior — the expensive half of Eq. (7) — is computed once per post
// per drain, then fanned out across candidates via DiffusionFromPosterior.
// A bounded LRU keyed by (generation, author, words) memoizes posteriors
// across batches for /v1/topic_posterior and repeat traffic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "serve/http.h"
#include "serve/lru_cache.h"
#include "util/status.h"

namespace cold::serve {

struct ModelServiceOptions {
  /// Snapshot reloaded by POST /admin/reload (without a "path" override)
  /// and by SIGHUP in the cold_serve tool. May be empty for in-process
  /// services constructed from estimates directly.
  std::string model_path;
  /// |TopComm(i)| used when constructing predictors (the paper fixes 5).
  int top_communities = 5;
  /// Entries in the (generation, author, words) -> posterior LRU;
  /// 0 disables caching.
  size_t posterior_cache_capacity = 4096;
  /// Micro-batching of /v1/diffusion. Disabled, requests compute inline.
  bool batching_enabled = true;
  /// Max requests drained into one batch.
  size_t max_batch = 64;
  /// How long a drain waits for the batch to fill once non-empty.
  int batch_wait_us = 200;
  /// Monte-Carlo IC trials for /v1/influential_communities (§6.6).
  int influence_trials = 64;
  /// Requests slower than this are logged with method/path/latency/batch
  /// size (the slow-request log); 0 disables it.
  int slow_request_ms = 0;
};

class ModelService {
 public:
  explicit ModelService(ModelServiceOptions options);
  /// Drains the batching queue (pending requests are still answered).
  ~ModelService();

  ModelService(const ModelService&) = delete;
  ModelService& operator=(const ModelService&) = delete;

  /// \brief Loads a COLDEST1 snapshot and swaps it in atomically. On
  /// failure the previous model keeps serving.
  cold::Status LoadFromFile(const std::string& path);

  /// \brief Reloads from options.model_path (the SIGHUP path).
  cold::Status Reload() { return LoadFromFile(options_.model_path); }

  /// \brief Installs an in-memory predictor (tests, examples).
  void SetPredictor(std::shared_ptr<const core::ColdPredictor> predictor);

  /// \brief The current snapshot; may be nullptr before the first load.
  std::shared_ptr<const core::ColdPredictor> predictor() const;

  /// Number of successful swaps (initial load counts).
  int64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// \brief The HTTP entry point, safe for concurrent calls; wire this
  /// into HttpServer as the handler.
  HttpResponse Handle(const HttpRequest& request);

 private:
  struct PendingDiffusion {
    std::shared_ptr<const core::ColdPredictor> model;
    int64_t generation = 0;
    text::UserId publisher = 0;
    text::UserId candidate = 0;
    std::vector<text::WordId> words;
    std::promise<double> promise;
  };

  HttpResponse Route(const HttpRequest& request, const char** endpoint);
  HttpResponse HandleDiffusion(const HttpRequest& request);
  HttpResponse HandleTopicPosterior(const HttpRequest& request);
  HttpResponse HandleLink(const HttpRequest& request);
  HttpResponse HandleTimestamp(const HttpRequest& request);
  HttpResponse HandleInfluentialCommunities(const HttpRequest& request);
  HttpResponse HandleHealth();
  HttpResponse HandleMetrics();
  HttpResponse HandleDebugVars();
  HttpResponse HandleReload(const HttpRequest& request);

  /// Cache-assisted Eq. (5); never nullptr for validated inputs.
  std::shared_ptr<const std::vector<double>> PosteriorFor(
      const core::ColdPredictor& model, int64_t generation,
      text::UserId author, const std::vector<text::WordId>& words);

  /// Enqueues one diffusion scoring; the future resolves after a drain.
  std::future<double> EnqueueDiffusion(
      std::shared_ptr<const core::ColdPredictor> model, int64_t generation,
      text::UserId publisher, text::UserId candidate,
      std::vector<text::WordId> words);

  void BatchLoop();
  void ExecuteBatch(std::vector<PendingDiffusion>* batch);

  const ModelServiceOptions options_;

  mutable std::mutex model_mutex_;
  std::shared_ptr<const core::ColdPredictor> model_;
  std::atomic<int64_t> generation_{0};

  LruCache<std::vector<double>> posterior_cache_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingDiffusion> queue_;
  bool stopping_ = false;
  std::thread batch_thread_;
};

}  // namespace cold::serve
