// HTTP/1.1 server front for the prediction service, with two serving
// cores behind one facade:
//
//  - kEpoll (default): a non-blocking event loop. The listener thread
//    accepts and round-robins connections across N reactor threads; each
//    reactor owns one edge-triggered epoll fd plus the read/write buffers
//    and parser state machine of every connection assigned to it, so
//    thousands of keep-alive connections cost two buffers each instead of
//    a parked thread. Idle connections are reaped on a timer
//    (cold/serve/idle_closes) and graceful drain flushes in-flight
//    responses before closing.
//
//  - kBlocking (legacy): the PR-2 accept loop + ThreadPool, one worker
//    pinned per connection. Kept as the bench baseline (bench/serve_load
//    measures the two cores against each other) and as a fallback.
//
// Both cores share the bounded HTTP parser (serve/http.h), the shedding
// policy (503 + Retry-After straight from the accept path) and the metric
// names, so the ModelService handler cannot tell them apart.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "serve/http.h"
#include "util/status.h"

namespace cold::serve {

enum class ServerMode {
  kEpoll,     // Non-blocking event loop (reactor threads).
  kBlocking,  // Legacy thread-per-connection pool.
};

/// \brief Server knobs; defaults favor tests (ephemeral port, loopback).
struct HttpServerOptions {
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  ServerMode mode = ServerMode::kEpoll;
  /// kBlocking: worker threads == max concurrent connections.
  size_t num_workers = 8;
  /// kEpoll: reactor threads; 0 sizes to min(hardware threads, 16).
  int num_reactors = 0;
  /// Seconds a keep-alive connection may sit idle before being closed
  /// (reaped by the event loop / SO_RCVTIMEO in blocking mode). Counted
  /// by cold/serve/idle_closes.
  int idle_timeout_seconds = 5;
  /// Seconds a response write may block on a slow-reading client before
  /// the connection is dropped (SO_SNDTIMEO; counted by
  /// cold/serve/write_timeouts). 0 reuses idle_timeout_seconds. kEpoll
  /// never blocks on writes; slow readers are bounded by
  /// max_buffered_out_bytes plus the idle reaper instead.
  int write_timeout_seconds = 0;
  /// Seconds Stop() waits for in-flight requests before force-closing.
  int drain_timeout_seconds = 10;
  /// Load shedding: when more than this many connections are already being
  /// serviced, new ones are answered straight from the accept path with
  /// 503 + Retry-After (0 = no shedding). Counted by cold/serve/shed_total.
  size_t max_inflight_requests = 0;
  /// kEpoll: cap on a connection's unflushed response bytes; while above
  /// it, further pipelined requests are left unparsed in the read buffer
  /// (backpressure on slow readers).
  size_t max_buffered_out_bytes = 4u << 20;
  HttpLimits limits;
};

/// \brief The request handler: pure function of the parsed request.
/// Invoked concurrently from worker/reactor threads; must be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Internal interface the two serving cores implement.
class HttpServerImpl {
 public:
  virtual ~HttpServerImpl() = default;
  virtual cold::Status Start() = 0;
  virtual void Stop() = 0;
  virtual int port() const = 0;
  virtual bool running() const = 0;
  virtual int active_connections() const = 0;
};

class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// \brief Binds 127.0.0.1:port and starts the serving core.
  cold::Status Start();

  /// \brief Graceful shutdown: stops accepting, waits up to
  /// drain_timeout_seconds for open connections to finish their in-flight
  /// request, then force-closes stragglers and joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  int port() const;

  bool running() const;

  /// Connections currently being serviced (observability/tests).
  int active_connections() const;

 private:
  std::unique_ptr<HttpServerImpl> impl_;
};

namespace internal {

/// \brief Opens, binds and listens on 127.0.0.1:`port` (0 = ephemeral);
/// returns the fd and writes the bound port to `*bound_port`. Shared by
/// both serving cores.
cold::Result<int> OpenListener(int port, int* bound_port);

std::unique_ptr<HttpServerImpl> MakeBlockingServerImpl(
    HttpServerOptions options, HttpHandler handler);
std::unique_ptr<HttpServerImpl> MakeEpollServerImpl(HttpServerOptions options,
                                                    HttpHandler handler);

}  // namespace internal

}  // namespace cold::serve
