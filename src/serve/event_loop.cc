// The epoll serving core (HttpServer's default mode): a listener thread
// accepts and round-robins connections across N reactor threads. Each
// reactor owns one edge-triggered epoll fd and the full state of every
// connection assigned to it — read buffer, write buffer, parser position —
// so no lock is ever taken on the request path and a connection costs two
// strings instead of a parked thread.
//
// Per-connection state machine, driven by readiness edges:
//
//   readable  -> recv until EAGAIN into `in`
//             -> parse complete requests off the front of `in`
//                (serve/http.h's incremental parser), run the handler,
//                append each response to `out`
//             -> send `out` until EAGAIN; arm EPOLLOUT only while bytes
//                remain (edge-triggered writes are otherwise free)
//   writable  -> resume the same flush/process loop
//   idle      -> reaped by a periodic sweep after idle_timeout_seconds
//                (cold/serve/idle_closes)
//   drain     -> responses flip to Connection: close, idle connections
//                close immediately, stragglers are force-closed at the
//                drain deadline (cold/serve/connections_force_closed)
//
// Handlers run on the reactor thread: they are expected to be CPU-short
// (the ModelService fast path is microseconds), so reactor count bounds
// handler parallelism, not connection count.
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/http_server.h"
#include "util/logging.h"

namespace cold::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct LoopMetrics {
  obs::Counter* connections;
  obs::Counter* malformed_requests;
  obs::Counter* dropped_at_shutdown;
  obs::Counter* shed;
  obs::Counter* idle_closes;
};

// Same metric names as the blocking core (the registry dedups), so
// dashboards don't care which serving core is running.
LoopMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static LoopMetrics metrics{
      registry.GetCounter("cold/serve/connections"),
      registry.GetCounter("cold/serve/malformed_requests"),
      registry.GetCounter("cold/serve/connections_force_closed"),
      registry.GetCounter("cold/serve/shed_total"),
      registry.GetCounter("cold/serve/idle_closes")};
  return metrics;
}

class Reactor {
 public:
  Reactor(const HttpServerOptions* options, const HttpHandler* handler,
          std::atomic<int>* active)
      : options_(options), handler_(handler), active_(active) {}

  ~Reactor() {
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  cold::Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return cold::Status::IOError(std::string("epoll_create1: ") +
                                   std::strerror(errno));
    }
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) {
      return cold::Status::IOError(std::string("eventfd: ") +
                                   std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // The wakeup marker; connections carry a ptr.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
      return cold::Status::IOError(std::string("epoll_ctl eventfd: ") +
                                   std::strerror(errno));
    }
    return cold::Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Loop(); });
  }

  /// Hands a freshly accepted (already non-blocking) fd to this reactor.
  /// Called from the listener thread; the fd crosses threads through the
  /// mutexed queue and an eventfd poke.
  void Enqueue(int fd) {
    {
      std::lock_guard<std::mutex> lock(incoming_mutex_);
      incoming_.push_back(fd);
    }
    Wake();
  }

  void BeginDrain() {
    draining_.store(true, std::memory_order_release);
    Wake();
  }

  void RequestExit() {
    exiting_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// After Join(): force-close whatever outlived the drain deadline,
  /// including accepted fds never adopted into the loop.
  void CloseRemaining() {
    for (auto& [fd, conn] : conns_) {
      Metrics().dropped_at_shutdown->Increment();
      ::close(fd);
      active_->fetch_sub(1, std::memory_order_relaxed);
    }
    conns_.clear();
    std::lock_guard<std::mutex> lock(incoming_mutex_);
    for (int fd : incoming_) {
      Metrics().dropped_at_shutdown->Increment();
      ::close(fd);
      active_->fetch_sub(1, std::memory_order_relaxed);
    }
    incoming_.clear();
  }

 private:
  struct Connection {
    int fd = -1;
    std::string in;       // Unparsed request bytes.
    std::string out;      // Serialized, not-yet-flushed response bytes.
    size_t out_off = 0;   // Prefix of `out` already written to the socket.
    Clock::time_point last_active;
    bool want_close = false;   // Close once `out` is flushed.
    bool saw_eof = false;      // Peer half-closed; answer then close.
    bool write_armed = false;  // EPOLLOUT currently requested.
  };

  enum class ProcessResult { kNeedMore, kBlocked };
  enum class FlushResult { kDone, kPending, kError };

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }

  void Loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (!exiting_.load(std::memory_order_acquire)) {
      int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
      if (n < 0) {
        if (errno == EINTR) continue;
        COLD_LOG(kWarning) << "epoll_wait: " << std::strerror(errno);
        break;
      }
      AdoptIncoming();
      for (int i = 0; i < n; ++i) {
        if (events[i].data.ptr == nullptr) {
          uint64_t buf;
          while (::read(event_fd_, &buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        HandleEvent(static_cast<Connection*>(events[i].data.ptr),
                    events[i].events);
      }
      if (draining_.load(std::memory_order_acquire)) {
        DrainSweep();
      } else {
        SweepIdle();
      }
    }
  }

  void AdoptIncoming() {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(incoming_mutex_);
      fds.swap(incoming_);
    }
    for (int fd : fds) {
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->last_active = Clock::now();
      Connection* c = conn.get();
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
      ev.data.ptr = c;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        active_->fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      conns_.emplace(fd, std::move(conn));
      // Edge-triggered: bytes that raced the EPOLL_CTL_ADD would otherwise
      // never edge again, so poke the read path once.
      HandleEvent(c, EPOLLIN);
    }
  }

  void HandleEvent(Connection* c, uint32_t ev) {
    if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
      Close(c);
      return;
    }
    if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0 && !ReadInto(c)) {
      Close(c);
      return;
    }
    // Alternate parse/handle and flush until the connection is waiting on
    // the peer again. A full flush lifts write backpressure, which is the
    // one case where Process() must run again in the same pass.
    for (;;) {
      ProcessResult pr = Process(c);
      FlushResult fr = Flush(c);
      if (fr == FlushResult::kError) {
        Close(c);
        return;
      }
      if (fr == FlushResult::kPending) return;  // EPOLLOUT will resume us.
      if (c->want_close) {
        Close(c);
        return;
      }
      if (pr != ProcessResult::kBlocked) break;
    }
    if (c->saw_eof) Close(c);  // Half-closed and fully answered.
  }

  /// Reads until EAGAIN (edge-triggered contract). Returns false on a
  /// fatal socket error; EOF is recorded, not fatal, so a half-closing
  /// client still gets its last response.
  bool ReadInto(Connection* c) {
    char chunk[16384];
    for (;;) {
      ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c->in.append(chunk, static_cast<size_t>(n));
        c->last_active = Clock::now();
        // A flood of pipelined bytes the handler can't keep up with is
        // protocol abuse, not load; cap the backlog at two max requests.
        if (c->in.size() >
            2 * (options_->limits.max_header_bytes +
                 options_->limits.max_body_bytes)) {
          return false;
        }
        continue;
      }
      if (n == 0) {
        c->saw_eof = true;
        return true;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
  }

  ProcessResult Process(Connection* c) {
    while (!c->want_close) {
      // Backpressure: stop producing responses a slow reader isn't
      // consuming; the unparsed requests stay in `in` until `out` drains.
      if (c->out.size() - c->out_off >= options_->max_buffered_out_bytes) {
        return ProcessResult::kBlocked;
      }
      HttpRequest request;
      auto parsed = ParseHttpRequest(&c->in, &request, options_->limits);
      if (!parsed.ok()) {
        Metrics().malformed_requests->Increment();
        AppendHttpResponse(
            &c->out, HttpResponse::Error(400, parsed.status().message()),
            /*close_connection=*/true);
        c->want_close = true;
        break;
      }
      if (*parsed == HttpParseState::kNeedMore) break;
      c->last_active = Clock::now();
      HttpResponse response = (*handler_)(request);
      bool keep = request.keep_alive() &&
                  !draining_.load(std::memory_order_relaxed);
      AppendHttpResponse(&c->out, response, !keep);
      if (!keep) c->want_close = true;
    }
    return ProcessResult::kNeedMore;
  }

  FlushResult Flush(Connection* c) {
    while (c->out_off < c->out.size()) {
      ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                         c->out.size() - c->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c->out_off += static_cast<size_t>(n);
        c->last_active = Clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        ArmWrite(c, true);
        return FlushResult::kPending;
      }
      return FlushResult::kError;
    }
    c->out.clear();
    c->out_off = 0;
    if (c->write_armed) ArmWrite(c, false);
    return FlushResult::kDone;
  }

  void ArmWrite(Connection* c, bool enable) {
    if (c->write_armed == enable) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET | (enable ? EPOLLOUT : 0u);
    ev.data.ptr = c;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) == 0) {
      c->write_armed = enable;
    }
  }

  void Close(Connection* c) {
    ::close(c->fd);  // Also removes the fd from the epoll set.
    conns_.erase(c->fd);
    active_->fetch_sub(1, std::memory_order_relaxed);
  }

  void SweepIdle() {
    if (options_->idle_timeout_seconds <= 0) return;
    Clock::time_point now = Clock::now();
    if (now < next_sweep_) return;
    next_sweep_ = now + std::chrono::milliseconds(250);
    const auto limit = std::chrono::seconds(options_->idle_timeout_seconds);
    std::vector<Connection*> victims;
    for (auto& [fd, conn] : conns_) {
      if (now - conn->last_active > limit) victims.push_back(conn.get());
    }
    for (Connection* c : victims) {
      Metrics().idle_closes->Increment();
      Close(c);
    }
  }

  /// Drain: anything with no unflushed bytes can go now; connections
  /// mid-flush get until the drain deadline (then CloseRemaining).
  void DrainSweep() {
    std::vector<Connection*> victims;
    for (auto& [fd, conn] : conns_) {
      if (conn->out_off == conn->out.size()) victims.push_back(conn.get());
    }
    for (Connection* c : victims) Close(c);
  }

  const HttpServerOptions* options_;
  const HttpHandler* handler_;
  std::atomic<int>* active_;

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;

  std::mutex incoming_mutex_;
  std::vector<int> incoming_;

  // Owned exclusively by the reactor thread (listener only touches the
  // incoming queue), so no lock guards them.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> exiting_{false};
  Clock::time_point next_sweep_ = Clock::now();
};

class EpollServerImpl : public HttpServerImpl {
 public:
  EpollServerImpl(HttpServerOptions options, HttpHandler handler)
      : options_(std::move(options)), handler_(std::move(handler)) {}

  ~EpollServerImpl() override { Stop(); }

  cold::Status Start() override {
    if (running_.load()) {
      return cold::Status::FailedPrecondition("already running");
    }
    COLD_ASSIGN_OR_RETURN(listen_fd_,
                          internal::OpenListener(options_.port, &port_));
    // Non-blocking listener: the accept loop drains the whole backlog per
    // poll() wakeup and must get EAGAIN, not block, when it runs dry
    // (accepted fds do not inherit the flag and start out blocking).
    int lflags = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, lflags | O_NONBLOCK);
    int num_reactors = options_.num_reactors;
    if (num_reactors <= 0) {
      unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      num_reactors = static_cast<int>(std::min(hw, 16u));
    }
    reactors_.clear();
    for (int r = 0; r < num_reactors; ++r) {
      auto reactor = std::make_unique<Reactor>(&options_, &handler_,
                                               &active_connections_);
      if (cold::Status st = reactor->Init(); !st.ok()) {
        reactors_.clear();
        ::close(listen_fd_);
        listen_fd_ = -1;
        return st;
      }
      reactors_.push_back(std::move(reactor));
    }
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    for (auto& r : reactors_) r->StartThread();
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    COLD_LOG(kInfo) << "cold_serve listening on 127.0.0.1:" << port_ << " ("
                    << num_reactors << " reactors)";
    return cold::Status::OK();
  }

  void Stop() override {
    if (!running_.exchange(false)) return;
    stopping_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& r : reactors_) r->BeginDrain();
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(options_.drain_timeout_seconds);
    while (active_connections_.load(std::memory_order_relaxed) > 0 &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (auto& r : reactors_) r->RequestExit();
    for (auto& r : reactors_) r->Join();
    for (auto& r : reactors_) r->CloseRemaining();
    reactors_.clear();
    COLD_LOG(kInfo) << "cold_serve stopped";
  }

  int port() const override { return port_; }
  bool running() const override {
    return running_.load(std::memory_order_acquire);
  }
  int active_connections() const override {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop() {
    size_t next_reactor = 0;
    while (!stopping_.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, 200);
      if (ready < 0 && errno != EINTR) {
        COLD_LOG(kWarning) << "accept poll: " << std::strerror(errno);
      }
      if (ready <= 0) continue;
      // Drain the whole accept backlog per readiness wakeup.
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN (empty backlog) or a transient error.
        }
        if (stopping_.load(std::memory_order_acquire)) {
          ::close(fd);
          return;
        }
        Metrics().connections->Increment();

        // Shedding is the same policy as the blocking core, answered from
        // the listener thread while the fd is still in blocking mode.
        if (options_.max_inflight_requests > 0 &&
            static_cast<size_t>(active_connections_.load(
                std::memory_order_relaxed)) >=
                options_.max_inflight_requests) {
          Metrics().shed->Increment();
          HttpResponse response =
              HttpResponse::Error(503, "server overloaded, retry later");
          response.headers.emplace("Retry-After", "1");
          WriteHttpResponse(fd, response, /*close_connection=*/true);
          ::close(fd);
          continue;
        }

        int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        active_connections_.fetch_add(1, std::memory_order_relaxed);
        reactors_[next_reactor % reactors_.size()]->Enqueue(fd);
        ++next_reactor;
      }
    }
  }

  const HttpServerOptions options_;
  const HttpHandler handler_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};

  std::thread accept_thread_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace

namespace internal {

std::unique_ptr<HttpServerImpl> MakeEpollServerImpl(HttpServerOptions options,
                                                    HttpHandler handler) {
  return std::make_unique<EpollServerImpl>(std::move(options),
                                           std::move(handler));
}

}  // namespace internal

}  // namespace cold::serve
