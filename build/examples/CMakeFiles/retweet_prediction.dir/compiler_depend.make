# Empty compiler generated dependencies file for retweet_prediction.
# This may be replaced when dependencies are built.
