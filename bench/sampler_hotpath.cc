// Persistent throughput benchmark for the collapsed Gibbs hot path
// (tentpole of the sampler-performance PR; DESIGN.md §9).
//
// Measures, at two data scales:
//   - the topic kernel in isolation: the lgamma-collapsed TopicLogWeights
//     vs a per-token-log reference evaluated over every post, with the
//     max-abs log-weight disagreement (guard: they must agree to ~1e-9);
//   - the sparse (alias + MH) topic draw vs the dense draw (row scan +
//     LogCategorical) at the base topic count and at K=48, with the worst
//     single-topic-evaluator disagreement;
//   - serial full sweeps: per-sweep seconds, tokens/sec, links/sec series,
//     with non-steady-state (stalled) sweeps excluded from the per-second
//     series and counted separately;
//   - the parallel trainer: per-superstep seconds and tokens/sec series,
//     with the same stall treatment.
//
// Results land as JSON in --out (default BENCH_sampler.json) so runs can
// be diffed across commits. --smoke shrinks everything to seconds of
// runtime, re-parses the emitted JSON and fails (exit 1) unless it is
// well-formed with positive throughput — wired up as the `bench_smoke`
// ctest.
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common.h"
#include "core/alias_table.h"
#include "core/parallel_sampler.h"
#include "core/sparse_topic_kernel.h"
#include "serve/json.h"
#include "util/math_util.h"
#include "util/simd.h"

namespace {

using namespace cold;

/// Per-token-log reference for Eq. (3), matching the pre-optimization
/// kernel: every community/time term is a live std::log and the word and
/// length Dirichlet-multinomial terms are explicit ascending-factorial
/// loops. Evaluated against the sampler's current counters (including post
/// d), exactly like ColdGibbsSampler::TopicLogWeights.
void BaselineTopicLogWeights(const core::ColdGibbsSampler& sampler,
                             const text::PostStore& posts, text::PostId d,
                             int community, std::span<double> log_weights) {
  const core::ColdState& state = sampler.state();
  const core::ColdConfig& config = sampler.config();
  const int K = config.num_topics;
  const int T = posts.num_time_slices();
  const int V = state.V();
  const double alpha = config.ResolvedAlpha();
  const double beta = config.beta;
  const double epsilon = config.epsilon;
  const int t = posts.time(d);
  const int len = posts.length(d);
  auto word_counts = posts.WordCounts(d);

  for (int k = 0; k < K; ++k) {
    double lw = std::log(state.n_ck(community, k) + alpha) +
                std::log(state.n_ckt(community, k, t) + epsilon) -
                std::log(state.n_ck(community, k) + T * epsilon);
    for (const auto& [w, cnt] : word_counts) {
      double base = state.n_kv(k, w) + beta;
      for (int q = 0; q < cnt; ++q) lw += std::log(base + q);
    }
    double denom = state.n_k(k) + V * beta;
    for (int q = 0; q < len; ++q) lw -= std::log(denom + q);
    log_weights[static_cast<size_t>(k)] = lw;
  }
}

struct KernelResult {
  double optimized_tokens_per_sec = 0.0;
  double baseline_tokens_per_sec = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// Times one full pass of the topic kernel over every post (x `reps`),
/// optimized vs baseline, and records the worst log-weight disagreement.
KernelResult BenchKernel(core::ColdGibbsSampler* sampler,
                         const text::PostStore& posts, int reps) {
  const int K = sampler->config().num_topics;
  std::vector<double> lw_opt(static_cast<size_t>(K));
  std::vector<double> lw_ref(static_cast<size_t>(K));
  int64_t tokens = 0;
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    tokens += posts.length(d);
  }

  KernelResult result;
  // Checksums defeat dead-code elimination of the timed loops.
  double sink = 0.0;
  double opt_seconds = 0.0, ref_seconds = 0.0;
  {
    ScopedTimer timer(opt_seconds);
    for (int r = 0; r < reps; ++r) {
      for (text::PostId d = 0; d < posts.num_posts(); ++d) {
        int c = sampler->state().post_community[static_cast<size_t>(d)];
        sampler->TopicLogWeights(d, c, lw_opt);
        sink += lw_opt[0];
      }
    }
  }
  {
    ScopedTimer timer(ref_seconds);
    for (int r = 0; r < reps; ++r) {
      for (text::PostId d = 0; d < posts.num_posts(); ++d) {
        int c = sampler->state().post_community[static_cast<size_t>(d)];
        BaselineTopicLogWeights(*sampler, posts, d, c, lw_ref);
        sink += lw_ref[0];
      }
    }
  }
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    int c = sampler->state().post_community[static_cast<size_t>(d)];
    sampler->TopicLogWeights(d, c, lw_opt);
    BaselineTopicLogWeights(*sampler, posts, d, c, lw_ref);
    for (int k = 0; k < K; ++k) {
      result.max_abs_diff = std::max(
          result.max_abs_diff,
          std::abs(lw_opt[static_cast<size_t>(k)] -
                   lw_ref[static_cast<size_t>(k)]));
    }
  }
  if (sink == 12345.6789) std::printf(" ");  // keep `sink` observable
  double total = static_cast<double>(tokens) * reps;
  if (opt_seconds > 0.0) result.optimized_tokens_per_sec = total / opt_seconds;
  if (ref_seconds > 0.0) result.baseline_tokens_per_sec = total / ref_seconds;
  if (result.baseline_tokens_per_sec > 0.0) {
    result.speedup =
        result.optimized_tokens_per_sec / result.baseline_tokens_per_sec;
  }
  return result;
}

struct SparseKernelResult {
  int num_topics = 0;
  double dense_draw_tokens_per_sec = 0.0;
  double sparse_draw_tokens_per_sec = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// Times a full *topic draw* per post, dense vs sparse, at `num_topics`:
///   - dense: the PR-4 kernel — TopicLogWeights row scan (O(K * length))
///     followed by the softmax LogCategorical draw;
///   - sparse: per-(community, time) alias proposal + MH accept against the
///     exact O(length) single-topic evaluator, with the alias rows rebuilt
///     once per pass (the amortized cost the budgeted-lazy policy pays in a
///     real sweep).
/// Both run on the same burnt-in sparse-configured sampler (so the
/// single-topic evaluator has its lgamma table, exactly as in a sweep) and
/// neither mutates sampler state. Also records the worst disagreement
/// between the single-topic evaluator and the dense row — the 1e-9
/// exactness evidence at bench scale.
SparseKernelResult BenchSparseDraw(const core::ColdConfig& base_config,
                                   data::SocialDataset* dataset,
                                   int num_topics, int warmup, int reps) {
  core::ColdConfig config = base_config;
  config.num_topics = num_topics;
  config.topic_sampling = core::TopicSampling::kSparse;
  core::ColdGibbsSampler sampler(config, dataset->posts,
                                 &dataset->interactions);
  if (auto st = sampler.Init(); !st.ok()) {
    std::fprintf(stderr, "sparse init: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  for (int i = 0; i < warmup; ++i) sampler.RunIteration();

  const text::PostStore& posts = dataset->posts;
  const core::ColdState& state = sampler.state();
  const int K = num_topics;
  const int C = config.num_communities;
  const int T = posts.num_time_slices();
  const double alpha = config.ResolvedAlpha();
  const double epsilon = config.epsilon;
  int64_t tokens = 0;
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    tokens += posts.length(d);
  }

  SparseKernelResult result;
  result.num_topics = K;
  double sink = 0.0;

  RandomSampler dense_rng(2024, 7);
  std::vector<double> lw(static_cast<size_t>(K));
  double dense_seconds = 0.0;
  {
    ScopedTimer timer(dense_seconds);
    for (int r = 0; r < reps; ++r) {
      for (text::PostId d = 0; d < posts.num_posts(); ++d) {
        int c = state.post_community[static_cast<size_t>(d)];
        sampler.TopicLogWeights(d, c, lw);
        sink += dense_rng.LogCategorical(lw);
      }
    }
  }

  RandomSampler sparse_rng(2024, 9);
  std::vector<core::AliasTable> rows(static_cast<size_t>(C * T));
  std::vector<double> wts(static_cast<size_t>(K));
  double sparse_seconds = 0.0;
  {
    ScopedTimer timer(sparse_seconds);
    for (int r = 0; r < reps; ++r) {
      for (int c = 0; c < C; ++c) {
        for (int t = 0; t < T; ++t) {
          for (int k = 0; k < K; ++k) {
            double nck = state.n_ck(c, k);
            wts[static_cast<size_t>(k)] =
                (nck + alpha) * (state.n_ckt(c, k, t) + epsilon) /
                (nck + T * epsilon);
          }
          rows[static_cast<size_t>(c * T + t)].Build(wts);
        }
      }
      for (text::PostId d = 0; d < posts.num_posts(); ++d) {
        int c = state.post_community[static_cast<size_t>(d)];
        int t = posts.time(d);
        int k0 = state.post_topic[static_cast<size_t>(d)];
        sink += core::MhTopicDraw(
            rows[static_cast<size_t>(c * T + t)], k0, config.sparse_mh_steps,
            sparse_rng,
            [&](int k) { return sampler.TopicLogWeightOne(d, c, k); });
      }
    }
  }

  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    int c = state.post_community[static_cast<size_t>(d)];
    sampler.TopicLogWeights(d, c, lw);
    for (int k = 0; k < K; ++k) {
      result.max_abs_diff =
          std::max(result.max_abs_diff,
                   std::abs(lw[static_cast<size_t>(k)] -
                            sampler.TopicLogWeightOne(d, c, k)));
    }
  }
  if (sink == 12345.6789) std::printf(" ");  // keep `sink` observable
  double total = static_cast<double>(tokens) * reps;
  if (dense_seconds > 0.0) {
    result.dense_draw_tokens_per_sec = total / dense_seconds;
  }
  if (sparse_seconds > 0.0) {
    result.sparse_draw_tokens_per_sec = total / sparse_seconds;
  }
  if (result.dense_draw_tokens_per_sec > 0.0) {
    result.speedup =
        result.sparse_draw_tokens_per_sec / result.dense_draw_tokens_per_sec;
  }
  return result;
}

using bench::ToJsonArray;

/// Marks sweeps whose wall time exceeds 1.25x the median as non-steady
/// (checkpoint/observer hiccups, CPU contention). The per-second series are
/// computed from steady sweeps only — a handful of stalled sweeps would
/// otherwise drag the recorded throughput and skew the regression gate —
/// while the raw seconds and the stall count are kept alongside.
std::vector<char> SteadyMask(const std::vector<double>& seconds) {
  std::vector<char> mask(seconds.size(), 1);
  if (seconds.size() < 3) return mask;  // too short to call anything a stall
  const double med = Median(seconds);
  if (!(med > 0.0)) return mask;
  const double cutoff = 1.25 * med;
  for (size_t i = 0; i < seconds.size(); ++i) {
    mask[i] = seconds[i] <= cutoff ? 1 : 0;
  }
  return mask;
}

/// One benchmark scale: dataset size multiplier + sweep/superstep counts.
struct Scale {
  const char* name;
  double data_scale;   // multiplies BenchDataConfig user count
  int serial_sweeps;
  int parallel_supersteps;
  int kernel_reps;
};

serve::Json RunScale(const Scale& scale) {
  data::SyntheticConfig data_config = bench::BenchDataConfig();
  data_config.num_users =
      std::max(20, static_cast<int>(data_config.num_users * scale.data_scale));
  data::SocialDataset dataset = bench::GenerateBenchData(data_config);
  int64_t tokens = 0;
  for (text::PostId d = 0; d < dataset.posts.num_posts(); ++d) {
    tokens += dataset.posts.length(d);
  }

  core::ColdConfig config = bench::BenchColdConfig(8, 12, /*iterations=*/200);
  config.vocab_size = dataset.vocabulary.size();

  serve::Json out = serve::Json::MakeObject();
  out.Set("name", scale.name);
  out.Set("num_posts", dataset.posts.num_posts());
  out.Set("num_links", static_cast<int64_t>(dataset.interactions.num_edges()));
  out.Set("tokens", tokens);

  // Serial: warm-up sweeps (so the counters reflect a burnt-in state, not
  // the uniform random init), then timed sweeps.
  core::ColdGibbsSampler sampler(config, dataset.posts, &dataset.interactions);
  if (auto st = sampler.Init(); !st.ok()) {
    std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  const int warmup = std::max(1, scale.serial_sweeps / 4);
  for (int i = 0; i < warmup; ++i) sampler.RunIteration();

  serve::Json kernel = serve::Json::MakeObject();
  KernelResult kr = BenchKernel(&sampler, dataset.posts, scale.kernel_reps);
  kernel.Set("optimized_tokens_per_sec", kr.optimized_tokens_per_sec);
  kernel.Set("baseline_tokens_per_sec", kr.baseline_tokens_per_sec);
  kernel.Set("speedup", kr.speedup);
  kernel.Set("max_abs_log_weight_diff", kr.max_abs_diff);
  out.Set("kernel", kernel);
  std::printf(
      "%-8s kernel: %.3g tok/s optimized, %.3g tok/s baseline "
      "(%.2fx, max |dlw| %.2e)\n",
      scale.name, kr.optimized_tokens_per_sec, kr.baseline_tokens_per_sec,
      kr.speedup, kr.max_abs_diff);

  // Sparse draw vs dense draw, at the base topic count and at a topic count
  // in the regime the sparse path targets (K >= 32, where the dense
  // O(K * length) row scan dominates). The sparse draw cost is ~flat in K —
  // the sub-linearity claim the pair of rows demonstrates.
  serve::Json sparse_array = serve::Json::MakeArray();
  for (int k_topics : {config.num_topics, 48}) {
    SparseKernelResult sr = BenchSparseDraw(config, &dataset, k_topics, warmup,
                                            scale.kernel_reps);
    serve::Json sparse_json = serve::Json::MakeObject();
    sparse_json.Set("num_topics", static_cast<int64_t>(sr.num_topics));
    sparse_json.Set("dense_draw_tokens_per_sec", sr.dense_draw_tokens_per_sec);
    sparse_json.Set("sparse_draw_tokens_per_sec",
                    sr.sparse_draw_tokens_per_sec);
    sparse_json.Set("speedup", sr.speedup);
    sparse_json.Set("max_abs_log_weight_diff", sr.max_abs_diff);
    sparse_array.Append(sparse_json);
    std::printf(
        "%-8s sparse K=%-3d %.3g tok/s sparse draw, %.3g tok/s dense draw "
        "(%.2fx, max |dlw| %.2e)\n",
        scale.name, sr.num_topics, sr.sparse_draw_tokens_per_sec,
        sr.dense_draw_tokens_per_sec, sr.speedup, sr.max_abs_diff);
  }
  out.Set("sparse_kernel", sparse_array);

  std::vector<double> sweep_seconds, tokens_per_sec, links_per_sec;
  for (int i = 0; i < scale.serial_sweeps; ++i) {
    double seconds = 0.0;
    {
      ScopedTimer timer(seconds);
      sampler.RunIteration();
    }
    sweep_seconds.push_back(seconds);
  }
  std::vector<char> steady = SteadyMask(sweep_seconds);
  int64_t stalled_sweeps = 0;
  for (size_t i = 0; i < sweep_seconds.size(); ++i) {
    if (!steady[i]) {
      ++stalled_sweeps;
      continue;
    }
    if (sweep_seconds[i] > 0.0) {
      tokens_per_sec.push_back(static_cast<double>(tokens) / sweep_seconds[i]);
      links_per_sec.push_back(
          static_cast<double>(dataset.interactions.num_edges()) /
          sweep_seconds[i]);
    }
  }
  serve::Json serial = serve::Json::MakeObject();
  serial.Set("sweep_seconds", ToJsonArray(sweep_seconds));
  serial.Set("stalled_sweeps", stalled_sweeps);
  serial.Set("tokens_per_second", ToJsonArray(tokens_per_sec));
  serial.Set("links_per_second", ToJsonArray(links_per_sec));
  out.Set("serial", serial);
  std::printf(
      "%-8s serial: %.3g tok/s, %.3g links/s over %zu sweeps "
      "(%lld stalled, excluded)\n",
      scale.name, tokens_per_sec.empty() ? 0.0 : Mean(tokens_per_sec),
      links_per_sec.empty() ? 0.0 : Mean(links_per_sec), sweep_seconds.size(),
      static_cast<long long>(stalled_sweeps));

  // Parallel: wall-clock per superstep on the multi-threaded GAS engine.
  core::ColdConfig parallel_config = config;
  parallel_config.iterations = scale.parallel_supersteps;
  parallel_config.burn_in = std::max(0, scale.parallel_supersteps - 1);
  engine::EngineOptions options;
  options.num_nodes = 4;
  core::ParallelColdTrainer trainer(parallel_config, dataset.posts,
                                    &dataset.interactions, options);
  if (auto st = trainer.Init(); !st.ok()) {
    std::fprintf(stderr, "parallel init: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::vector<double> superstep_seconds, parallel_tokens_per_sec;
  Stopwatch superstep_watch;
  trainer.SetSuperstepCallback([&](int) {
    double seconds = superstep_watch.ElapsedSeconds();
    superstep_watch.Restart();
    superstep_seconds.push_back(seconds);
  });
  if (auto st = trainer.Train(); !st.ok()) {
    std::fprintf(stderr, "parallel train: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::vector<char> parallel_steady = SteadyMask(superstep_seconds);
  int64_t stalled_supersteps = 0;
  for (size_t i = 0; i < superstep_seconds.size(); ++i) {
    if (!parallel_steady[i]) {
      ++stalled_supersteps;
      continue;
    }
    if (superstep_seconds[i] > 0.0) {
      parallel_tokens_per_sec.push_back(static_cast<double>(tokens) /
                                        superstep_seconds[i]);
    }
  }
  serve::Json parallel = serve::Json::MakeObject();
  parallel.Set("superstep_seconds", ToJsonArray(superstep_seconds));
  parallel.Set("stalled_supersteps", stalled_supersteps);
  parallel.Set("tokens_per_second", ToJsonArray(parallel_tokens_per_sec));
  out.Set("parallel", parallel);
  std::printf("%-8s parallel: %.3g tok/s over %zu supersteps\n", scale.name,
              parallel_tokens_per_sec.empty() ? 0.0
                                              : Mean(parallel_tokens_per_sec),
              superstep_seconds.size());
  return out;
}

/// Smoke validation: the emitted file must parse as JSON with the expected
/// shape and strictly positive kernel + sweep throughput.
bool ValidateJson(const std::string& path) {
  auto parsed = bench::LoadJsonFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "smoke: invalid JSON: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  const serve::Json& root = parsed.ValueOrDie();
  const serve::Json* scales = root.Find("scales");
  if (scales == nullptr || !scales->is_array() || scales->as_array().empty()) {
    std::fprintf(stderr, "smoke: missing scales array\n");
    return false;
  }
  for (const serve::Json& scale : scales->as_array()) {
    const serve::Json* kernel = scale.Find("kernel");
    const serve::Json* serial = scale.Find("serial");
    if (kernel == nullptr || serial == nullptr) {
      std::fprintf(stderr, "smoke: scale missing kernel/serial\n");
      return false;
    }
    const serve::Json* opt = kernel->Find("optimized_tokens_per_sec");
    if (opt == nullptr || !opt->is_number() || !(opt->as_number() > 0.0)) {
      std::fprintf(stderr, "smoke: kernel tokens/sec not > 0\n");
      return false;
    }
    const serve::Json* tps = serial->Find("tokens_per_second");
    if (tps == nullptr || !tps->is_array() || tps->as_array().empty() ||
        !(tps->as_array()[0].as_number() > 0.0)) {
      std::fprintf(stderr, "smoke: serial tokens/sec series not > 0\n");
      return false;
    }
    const serve::Json* sparse = scale.Find("sparse_kernel");
    if (sparse == nullptr || !sparse->is_array() ||
        sparse->as_array().empty()) {
      std::fprintf(stderr, "smoke: missing sparse_kernel array\n");
      return false;
    }
    for (const serve::Json& row : sparse->as_array()) {
      const serve::Json* sps = row.Find("sparse_draw_tokens_per_sec");
      if (sps == nullptr || !sps->is_number() || !(sps->as_number() > 0.0)) {
        std::fprintf(stderr, "smoke: sparse draw tokens/sec not > 0\n");
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  bench::QuietLogs();

  std::string out_path = "BENCH_sampler.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 1;
    }
  }
  bench::PrintHeader("Sampler hot path: tokens/sec and sweep seconds");

  std::vector<Scale> scales;
  if (smoke) {
    scales.push_back({"smoke", 0.05, 3, 2, 1});
  } else {
    scales.push_back({"small", 0.25, 12, 6, 3});
    scales.push_back({"medium", 1.0, 8, 4, 2});
  }

  serve::Json root = serve::Json::MakeObject();
  root.Set("bench", "sampler_hotpath");
  root.Set("simd", simd::DispatchName());
  serve::Json scale_array = serve::Json::MakeArray();
  for (const Scale& scale : scales) scale_array.Append(RunScale(scale));
  root.Set("scales", scale_array);

  if (!bench::WriteJsonFile(root, out_path)) return 1;
  std::printf("results written to %s\n", out_path.c_str());

  if (smoke && !ValidateJson(out_path)) return 1;
  bench::DumpTelemetryIfRequested();
  return 0;
}
