#include "core/sparse_topic_kernel.h"

#include <algorithm>

namespace cold::core {

void LGammaTable::Build(double offset, int64_t max_n) {
  offset_ = offset;
  const int64_t entries = std::min(max_n + 1, kMaxEntries);
  table_.resize(static_cast<size_t>(std::max<int64_t>(entries, 0)));
  for (size_t n = 0; n < table_.size(); ++n) {
    table_[n] = cold::LGamma(static_cast<double>(n) + offset_);
  }
}

void TopicAliasBank::Reset(int num_communities, int num_time_slices,
                           int num_topics, int rebuild_budget) {
  num_communities_ = num_communities;
  num_time_slices_ = num_time_slices;
  num_topics_ = num_topics;
  rebuild_budget_ = std::max(rebuild_budget, 1);
  const size_t n = static_cast<size_t>(num_communities) *
                   static_cast<size_t>(num_time_slices);
  rows_.resize(n);
  dirty_.assign(n, 1);
  updates_.assign(static_cast<size_t>(num_communities), 0);
}

void TopicAliasBank::InvalidateAll() {
  std::fill(dirty_.begin(), dirty_.end(), uint8_t{1});
  std::fill(updates_.begin(), updates_.end(), 0);
}

void TopicAliasBank::MarkCommunityDirty(int c) {
  const size_t begin = Index(c, 0);
  std::fill(dirty_.begin() + static_cast<ptrdiff_t>(begin),
            dirty_.begin() +
                static_cast<ptrdiff_t>(begin + static_cast<size_t>(num_time_slices_)),
            uint8_t{1});
  updates_[static_cast<size_t>(c)] = 0;
}

}  // namespace cold::core
