#include "graph/pagerank.h"

#include <cmath>

namespace cold::graph {

std::vector<double> PageRank(const Digraph& graph, PageRankOptions options) {
  const int n = graph.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(static_cast<size_t>(n), 1.0 / n);
  std::vector<double> next(static_cast<size_t>(n));

  for (int it = 0; it < options.max_iterations; ++it) {
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (graph.out_degree(v) == 0) dangling += rank[static_cast<size_t>(v)];
    }
    double base = (1.0 - options.damping) / n +
                  options.damping * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (NodeId v = 0; v < n; ++v) {
      int degree = graph.out_degree(v);
      if (degree == 0) continue;
      double share =
          options.damping * rank[static_cast<size_t>(v)] / degree;
      for (EdgeId e : graph.out_edges(v)) {
        next[static_cast<size_t>(graph.edge(e).dst)] += share;
      }
    }
    double change = 0.0;
    for (size_t i = 0; i < rank.size(); ++i) {
      change += std::abs(next[i] - rank[i]);
    }
    rank.swap(next);
    if (change < options.tolerance) break;
  }
  return rank;
}

}  // namespace cold::graph
