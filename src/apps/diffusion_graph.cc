#include "apps/diffusion_graph.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/math_util.h"

namespace cold::apps {

TopicDiffusionSummary SummarizeTopicDiffusion(
    const core::ColdEstimates& estimates, int topic, int num_communities,
    int num_arcs, int num_words) {
  TopicDiffusionSummary summary;
  summary.topic = topic;
  summary.top_words = estimates.TopWords(topic, num_words);

  std::vector<int> top_comms =
      estimates.TopCommunitiesForTopic(topic, num_communities);
  for (int c : top_comms) {
    DiffusionNode node;
    node.community = c;
    std::vector<double> interests(static_cast<size_t>(estimates.K));
    for (int k = 0; k < estimates.K; ++k) {
      interests[static_cast<size_t>(k)] = estimates.Theta(c, k);
    }
    node.top_topics = cold::TopKIndices(interests, 5);
    for (int k : node.top_topics) {
      node.top_topic_weights.push_back(interests[static_cast<size_t>(k)]);
    }
    node.focus_interest = estimates.Theta(c, topic);
    node.popularity = estimates.PsiSeries(topic, c);
    summary.nodes.push_back(std::move(node));
  }

  std::vector<DiffusionArc> arcs;
  for (int a : top_comms) {
    for (int b : top_comms) {
      if (a == b) continue;
      arcs.push_back({a, b, estimates.Zeta(topic, a, b)});
    }
  }
  std::sort(arcs.begin(), arcs.end(),
            [](const DiffusionArc& x, const DiffusionArc& y) {
              return x.strength > y.strength;
            });
  if (static_cast<int>(arcs.size()) > num_arcs) {
    arcs.resize(static_cast<size_t>(num_arcs));
  }
  summary.arcs = std::move(arcs);
  return summary;
}

namespace {
// A coarse text sparkline over eight levels.
std::string Sparkline(const std::vector<double>& series) {
  static const char* kLevels = " .:-=+*#";
  double peak = 1e-300;
  for (double v : series) peak = std::max(peak, v);
  std::string out;
  for (double v : series) {
    int level = static_cast<int>(std::floor(v / peak * 7.999));
    out.push_back(kLevels[std::clamp(level, 0, 7)]);
  }
  return out;
}
}  // namespace

std::string RenderTopicDiffusion(const TopicDiffusionSummary& summary,
                                 const text::Vocabulary* vocabulary) {
  std::ostringstream out;
  out << "Topic " << summary.topic << " word cloud:";
  for (int w : summary.top_words) {
    out << ' ';
    if (vocabulary != nullptr && w < vocabulary->size()) {
      out << vocabulary->word(w);
    } else {
      out << "w" << w;
    }
  }
  out << '\n';
  for (const DiffusionNode& node : summary.nodes) {
    out << "  community " << node.community << " (interest "
        << node.focus_interest << ") pie:";
    for (size_t i = 0; i < node.top_topics.size(); ++i) {
      out << " k" << node.top_topics[i] << ":" << node.top_topic_weights[i];
    }
    out << "\n    popularity |" << Sparkline(node.popularity) << "|\n";
  }
  for (const DiffusionArc& arc : summary.arcs) {
    out << "  arc " << arc.from_community << " -> " << arc.to_community
        << " zeta=" << arc.strength << '\n';
  }
  return out.str();
}

}  // namespace cold::apps
