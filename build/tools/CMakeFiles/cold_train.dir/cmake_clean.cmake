file(REMOVE_RECURSE
  "CMakeFiles/cold_train.dir/cold_train.cc.o"
  "CMakeFiles/cold_train.dir/cold_train.cc.o.d"
  "cold_train"
  "cold_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
