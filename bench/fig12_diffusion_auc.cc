// Figure 12: diffusion (retweet) prediction — averaged per-tuple AUC for
// COLD, TI and WTM on held-out retweet tuples. Paper shape:
// COLD > TI > WTM (community-level collective behavior beats direct
// individual-level influence estimation).
#include "baselines/ti.h"
#include "baselines/wtm.h"
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 12: diffusion prediction averaged AUC");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  const int folds = bench::NumFolds();

  double cold_auc = 0.0, ti_auc = 0.0, wtm_auc = 0.0;
  for (int fold = 0; fold < folds; ++fold) {
    data::RetweetSplit split = data::SplitRetweets(dataset, 0.2, 79, fold);

    core::ColdEstimates est = bench::TrainCold(
        bench::BenchColdConfig(), dataset.posts, &split.train_interactions);
    core::ColdPredictor predictor(est, /*top_communities=*/5);
    cold_auc += bench::DiffusionAuc(
        split.test, dataset.posts, [&](int a, int b, auto words) {
          return predictor.DiffusionProbability(a, b, words);
        });

    baselines::TiConfig tc;
    tc.lda.num_topics = 12;
    tc.lda.alpha = 0.5;
    tc.lda.iterations = 60;
    baselines::TiModel ti(tc, dataset.posts, split.train);
    if (!ti.Train().ok()) return 1;
    ti_auc += bench::DiffusionAuc(split.test, dataset.posts,
                                  [&](int a, int b, auto words) {
                                    return ti.Score(a, b, words);
                                  });

    baselines::WtmModel wtm(baselines::WtmConfig{}, dataset.posts,
                            split.train_interactions, split.train);
    if (!wtm.Train().ok()) return 1;
    wtm_auc += bench::DiffusionAuc(split.test, dataset.posts,
                                   [&](int a, int b, auto words) {
                                     return wtm.Score(a, b, words);
                                   });
  }

  std::printf("%-8s %8s\n", "method", "AUC");
  std::printf("%-8s %8.4f\n", "COLD", cold_auc / folds);
  std::printf("%-8s %8.4f\n", "TI", ti_auc / folds);
  std::printf("%-8s %8.4f\n", "WTM", wtm_auc / folds);
  std::printf("\n(paper shape: COLD > TI > WTM)\n");
  return 0;
}
