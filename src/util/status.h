// Status / Result error-handling primitives, in the style of Apache Arrow and
// RocksDB: library code never throws across API boundaries; fallible functions
// return `Status` or `Result<T>`.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace cold {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kFailedPrecondition = 8,
  kDeadlineExceeded = 9,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus, when not OK, a
/// message.
///
/// The OK state carries no allocation, so returning `Status::OK()` is free.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg);

  /// \brief The singleton-like OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  /// The status code (kOk when `ok()`).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The failure message; empty when `ok()`.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // Null for OK; shared so Status is cheap to copy.
  std::shared_ptr<const Rep> rep_;
};

/// \brief Either a value of type T or a failure Status.
///
/// Mirrors `arrow::Result`: callers check `ok()` then take `ValueOrDie()` /
/// `*result`, or propagate `status()`.
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the value; the result must be `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out; the result must be `ok()`.
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status from the evaluated expression.
#define COLD_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::cold::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result-returning expression; on failure returns its status,
/// otherwise assigns the value to `lhs`.
#define COLD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define COLD_ASSIGN_OR_RETURN(lhs, rexpr) \
  COLD_ASSIGN_OR_RETURN_IMPL(COLD_CONCAT(_res_, __LINE__), lhs, rexpr)

#define COLD_CONCAT_INNER(a, b) a##b
#define COLD_CONCAT(a, b) COLD_CONCAT_INNER(a, b)

}  // namespace cold
