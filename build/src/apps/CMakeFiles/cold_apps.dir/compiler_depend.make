# Empty compiler generated dependencies file for cold_apps.
# This may be replaced when dependencies are built.
