#include "baselines/wtm.h"

#include <algorithm>
#include <cmath>

namespace cold::baselines {

namespace {
uint64_t PairKey(text::UserId a, text::UserId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}
}  // namespace

WtmModel::WtmModel(WtmConfig config, const text::PostStore& posts,
                   const graph::Digraph& interactions,
                   std::span<const data::RetweetTuple> train_tuples)
    : config_(config),
      posts_(posts),
      interactions_(interactions),
      train_tuples_(train_tuples) {}

cold::Status WtmModel::Train() {
  if (!posts_.finalized() || posts_.num_posts() == 0) {
    return cold::Status::InvalidArgument("no posts");
  }
  int vocab = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) vocab = std::max(vocab, w + 1);
  }

  // IDF over posts as documents.
  std::vector<int32_t> doc_freq(static_cast<size_t>(vocab), 0);
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (const auto& [w, cnt] : posts_.WordCounts(d)) {
      (void)cnt;
      doc_freq[static_cast<size_t>(w)]++;
    }
  }
  idf_.resize(static_cast<size_t>(vocab));
  double n_docs = static_cast<double>(posts_.num_posts());
  for (int v = 0; v < vocab; ++v) {
    idf_[static_cast<size_t>(v)] =
        std::log((n_docs + 1.0) / (doc_freq[static_cast<size_t>(v)] + 1.0));
  }

  // Per-user TF-IDF history profiles.
  user_profiles_.assign(static_cast<size_t>(posts_.num_users()), {});
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    Profile& profile = user_profiles_[static_cast<size_t>(posts_.author(d))];
    for (text::WordId w : posts_.words(d)) {
      profile[w] += idf_[static_cast<size_t>(w)];
    }
  }
  user_profile_norms_.assign(static_cast<size_t>(posts_.num_users()), 0.0);
  for (int i = 0; i < posts_.num_users(); ++i) {
    double norm = 0.0;
    for (const auto& [w, weight] : user_profiles_[static_cast<size_t>(i)]) {
      (void)w;
      norm += weight * weight;
    }
    user_profile_norms_[static_cast<size_t>(i)] = std::sqrt(norm);
  }

  // Relationship counts from training retweet events.
  relationship_counts_.clear();
  int32_t max_count = 1;
  for (const data::RetweetTuple& tuple : train_tuples_) {
    for (text::UserId f : tuple.retweeters) {
      int32_t& count = relationship_counts_[PairKey(tuple.author, f)];
      ++count;
      max_count = std::max(max_count, count);
    }
  }
  max_log_relationship_ = std::log1p(static_cast<double>(max_count));

  // Influence: the candidate's retweeter count in the training network
  // (out-edges (u -> f) mean f retweeted u).
  influence_.assign(static_cast<size_t>(posts_.num_users()), 0.0);
  double max_influence = 1.0;
  for (int i = 0; i < posts_.num_users() && i < interactions_.num_nodes();
       ++i) {
    influence_[static_cast<size_t>(i)] =
        std::log1p(static_cast<double>(interactions_.out_degree(i)));
    max_influence = std::max(max_influence, influence_[static_cast<size_t>(i)]);
  }
  for (double& v : influence_) v /= max_influence;
  return cold::Status::OK();
}

double WtmModel::InterestMatch(text::UserId candidate,
                               std::span<const text::WordId> words) const {
  if (words.empty()) return 0.0;
  // Message TF-IDF built on the fly.
  std::unordered_map<text::WordId, double> message;
  double msg_norm = 0.0;
  for (text::WordId w : words) {
    if (w >= 0 && static_cast<size_t>(w) < idf_.size()) {
      message[w] += idf_[static_cast<size_t>(w)];
    }
  }
  for (const auto& [w, weight] : message) {
    (void)w;
    msg_norm += weight * weight;
  }
  if (msg_norm <= 0.0) return 0.0;
  msg_norm = std::sqrt(msg_norm);

  // WTM's features are content-dependent: the candidate's interest in THIS
  // message is the average TF-IDF cosine against each post of her history,
  // computed per query. This per-candidate history scan (no compact topic
  // representation to fall back on) is the online cost Fig 15 highlights.
  auto history = posts_.posts_of(candidate);
  if (history.empty()) return 0.0;
  double total = 0.0;
  for (text::PostId d : history) {
    double dot = 0.0, post_norm = 0.0;
    for (text::WordId w : posts_.words(d)) {
      double weight =
          (w >= 0 && static_cast<size_t>(w) < idf_.size())
              ? idf_[static_cast<size_t>(w)]
              : 0.0;
      post_norm += weight * weight;
      auto it = message.find(w);
      if (it != message.end()) dot += weight * it->second;
    }
    if (post_norm > 0.0) total += dot / (std::sqrt(post_norm) * msg_norm);
  }
  return total / static_cast<double>(history.size());
}

double WtmModel::Relationship(text::UserId i, text::UserId i2) const {
  auto it = relationship_counts_.find(PairKey(i, i2));
  if (it == relationship_counts_.end()) return 0.0;
  return std::log1p(static_cast<double>(it->second)) / max_log_relationship_;
}

double WtmModel::Influence(text::UserId candidate) const {
  return influence_[static_cast<size_t>(candidate)];
}

double WtmModel::Score(text::UserId i, text::UserId i2,
                       std::span<const text::WordId> words) const {
  return config_.weight_interest * InterestMatch(i2, words) +
         config_.weight_relationship * Relationship(i, i2) +
         config_.weight_influence * Influence(i2);
}

}  // namespace cold::baselines
