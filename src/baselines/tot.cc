#include "baselines/tot.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace cold::baselines {

double TotEstimates::TimeDensity(int k, double x) const {
  double a = beta_a[static_cast<size_t>(k)];
  double b = beta_b[static_cast<size_t>(k)];
  x = std::clamp(x, 1e-6, 1.0 - 1e-6);
  double log_pdf = (a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) -
                   cold::LogBeta(a, b);
  return std::exp(log_pdf);
}

TotModel::TotModel(TotConfig config, const text::PostStore& posts)
    : config_(config), posts_(posts) {
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) vocab_ = std::max(vocab_, w + 1);
  }
}

void TotModel::UpdateBetaParameters(std::span<const text::PostId> ids,
                                    std::span<const int32_t> post_topic) {
  const int K = config_.num_topics;
  // Method of moments per topic, as in the TOT paper (eq. for a-hat, b-hat).
  std::vector<double> sum(static_cast<size_t>(K), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(K), 0.0);
  std::vector<int> count(static_cast<size_t>(K), 0);
  for (size_t idx = 0; idx < ids.size(); ++idx) {
    int k = post_topic[idx];
    double x = estimates_.SliceMidpoint(posts_.time(ids[idx]));
    sum[static_cast<size_t>(k)] += x;
    sum_sq[static_cast<size_t>(k)] += x * x;
    count[static_cast<size_t>(k)]++;
  }
  for (int k = 0; k < K; ++k) {
    double a = 1.0, b = 1.0;  // uniform fallback for empty topics
    if (count[static_cast<size_t>(k)] >= 2) {
      double n = count[static_cast<size_t>(k)];
      double mean = sum[static_cast<size_t>(k)] / n;
      double var = sum_sq[static_cast<size_t>(k)] / n - mean * mean;
      var = std::max(var, 1e-5);
      double common = mean * (1.0 - mean) / var - 1.0;
      if (common > 0.0) {
        a = std::clamp(mean * common, 0.05, 500.0);
        b = std::clamp((1.0 - mean) * common, 0.05, 500.0);
      }
    }
    estimates_.beta_a[static_cast<size_t>(k)] = a;
    estimates_.beta_b[static_cast<size_t>(k)] = b;
  }
}

cold::Status TotModel::Train(std::span<const text::PostId> post_ids) {
  if (config_.num_topics < 1 || config_.iterations < 1) {
    return cold::Status::InvalidArgument("bad TOT config");
  }
  std::vector<text::PostId> all;
  if (post_ids.empty()) {
    all.resize(static_cast<size_t>(posts_.num_posts()));
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      all[static_cast<size_t>(d)] = d;
    }
    post_ids = all;
  }
  if (post_ids.empty()) {
    return cold::Status::InvalidArgument("no posts");
  }
  const int K = config_.num_topics;
  const double alpha = config_.ResolvedAlpha();
  const double beta = config_.beta;

  estimates_.K = K;
  estimates_.V = vocab_;
  estimates_.T = posts_.num_time_slices();
  estimates_.beta_a.assign(static_cast<size_t>(K), 1.0);
  estimates_.beta_b.assign(static_cast<size_t>(K), 1.0);

  std::vector<int32_t> n_k_posts(static_cast<size_t>(K), 0);
  std::vector<int32_t> n_kv(static_cast<size_t>(K) * vocab_, 0);
  std::vector<int32_t> n_k_tokens(static_cast<size_t>(K), 0);
  std::vector<int32_t> post_topic(post_ids.size());

  cold::RandomSampler sampler(config_.seed, /*stream=*/37);
  for (size_t idx = 0; idx < post_ids.size(); ++idx) {
    int k = static_cast<int>(sampler.UniformInt(static_cast<uint32_t>(K)));
    post_topic[idx] = static_cast<int32_t>(k);
    n_k_posts[static_cast<size_t>(k)]++;
    for (text::WordId w : posts_.words(post_ids[idx])) {
      n_kv[static_cast<size_t>(k) * vocab_ + w]++;
    }
    n_k_tokens[static_cast<size_t>(k)] += posts_.length(post_ids[idx]);
  }
  UpdateBetaParameters(post_ids, post_topic);

  std::vector<double> log_weights(static_cast<size_t>(K));
  for (int it = 0; it < config_.iterations; ++it) {
    for (size_t idx = 0; idx < post_ids.size(); ++idx) {
      text::PostId d = post_ids[idx];
      int old_k = post_topic[idx];
      int len = posts_.length(d);
      n_k_posts[static_cast<size_t>(old_k)]--;
      for (text::WordId w : posts_.words(d)) {
        n_kv[static_cast<size_t>(old_k) * vocab_ + w]--;
      }
      n_k_tokens[static_cast<size_t>(old_k)] -= len;

      double x = estimates_.SliceMidpoint(posts_.time(d));
      auto word_counts = posts_.WordCounts(d);
      for (int k = 0; k < K; ++k) {
        double lw = std::log(n_k_posts[static_cast<size_t>(k)] + alpha) +
                    std::log(std::max(estimates_.TimeDensity(k, x), 1e-300));
        for (const auto& [w, cnt] : word_counts) {
          double base = n_kv[static_cast<size_t>(k) * vocab_ + w] + beta;
          for (int q = 0; q < cnt; ++q) lw += std::log(base + q);
        }
        double denom = n_k_tokens[static_cast<size_t>(k)] + vocab_ * beta;
        for (int q = 0; q < len; ++q) lw -= std::log(denom + q);
        log_weights[static_cast<size_t>(k)] = lw;
      }
      int new_k = sampler.LogCategorical(log_weights);
      post_topic[idx] = static_cast<int32_t>(new_k);
      n_k_posts[static_cast<size_t>(new_k)]++;
      for (text::WordId w : posts_.words(d)) {
        n_kv[static_cast<size_t>(new_k) * vocab_ + w]++;
      }
      n_k_tokens[static_cast<size_t>(new_k)] += len;
    }
    UpdateBetaParameters(post_ids, post_topic);
  }

  estimates_.topic_weight.resize(static_cast<size_t>(K));
  double total_posts = static_cast<double>(post_ids.size());
  for (int k = 0; k < K; ++k) {
    estimates_.topic_weight[static_cast<size_t>(k)] =
        (n_k_posts[static_cast<size_t>(k)] + alpha) /
        (total_posts + K * alpha);
  }
  estimates_.phi.resize(static_cast<size_t>(K) * vocab_);
  for (int k = 0; k < K; ++k) {
    double denom = n_k_tokens[static_cast<size_t>(k)] + vocab_ * beta;
    for (int v = 0; v < vocab_; ++v) {
      estimates_.phi[static_cast<size_t>(k) * vocab_ + v] =
          (n_kv[static_cast<size_t>(k) * vocab_ + v] + beta) / denom;
    }
  }
  return cold::Status::OK();
}

std::vector<double> TotModel::TopicPosterior(
    std::span<const text::WordId> words) const {
  const int K = estimates_.K;
  std::vector<double> log_w(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    double lw = std::log(
        std::max(estimates_.topic_weight[static_cast<size_t>(k)], 1e-300));
    for (text::WordId w : words) {
      lw += std::log(
          std::max(estimates_.Phi(k, std::min<int>(w, vocab_ - 1)), 1e-300));
    }
    log_w[static_cast<size_t>(k)] = lw;
  }
  double lse = cold::LogSumExp(log_w);
  for (double& v : log_w) v = std::exp(v - lse);
  return log_w;
}

std::vector<double> TotModel::TimestampScores(
    std::span<const text::WordId> words) const {
  std::vector<double> topic_post = TopicPosterior(words);
  std::vector<double> scores(static_cast<size_t>(estimates_.T), 0.0);
  for (int t = 0; t < estimates_.T; ++t) {
    double x = estimates_.SliceMidpoint(t);
    double s = 0.0;
    for (int k = 0; k < estimates_.K; ++k) {
      s += topic_post[static_cast<size_t>(k)] * estimates_.TimeDensity(k, x);
    }
    scores[static_cast<size_t>(t)] = s;
  }
  cold::NormalizeInPlace(scores);
  return scores;
}

int TotModel::PredictTimestamp(std::span<const text::WordId> words) const {
  std::vector<double> scores = TimestampScores(words);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace cold::baselines
