// Atomic counter state for the parallel sampler. Mirrors ColdState's layout
// with std::atomic cells so concurrent scatter tasks can update shared
// counters with relaxed read-modify-writes (the approximate-parallel Gibbs
// semantics of §4.3: assignments are drawn simultaneously against
// slightly-stale counts).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/cold_state.h"

namespace cold::core {

/// \brief Shared mutable counters + assignments for the GAS sampler.
///
/// Assignment vectors are plain (each element is written only by the single
/// scatter task owning its edge); counters are atomics.
class ParallelColdState {
 public:
  ParallelColdState(int num_users, int num_communities, int num_topics,
                    int num_time_slices, int vocab_size, int num_posts,
                    int64_t num_links);

  int U() const { return num_users_; }
  int C() const { return num_communities_; }
  int K() const { return num_topics_; }
  int T() const { return num_time_slices_; }
  int V() const { return vocab_size_; }

  std::vector<int32_t> post_community;
  std::vector<int32_t> post_topic;
  std::vector<int32_t> link_src_community;
  std::vector<int32_t> link_dst_community;

  std::atomic<int32_t>& n_ic(int i, int c) {
    return n_ic_[static_cast<size_t>(i) * num_communities_ + c];
  }
  std::atomic<int32_t>& n_i(int i) { return n_i_[static_cast<size_t>(i)]; }
  std::atomic<int32_t>& n_ck(int c, int k) {
    return n_ck_[static_cast<size_t>(c) * num_topics_ + k];
  }
  std::atomic<int32_t>& n_c(int c) { return n_c_[static_cast<size_t>(c)]; }
  std::atomic<int32_t>& n_ckt(int c, int k, int t) {
    return n_ckt_[(static_cast<size_t>(c) * num_topics_ + k) *
                      num_time_slices_ +
                  t];
  }
  std::atomic<int32_t>& n_kv(int k, int v) {
    return n_kv_[static_cast<size_t>(k) * vocab_size_ + v];
  }
  std::atomic<int32_t>& n_k(int k) { return n_k_[static_cast<size_t>(k)]; }
  std::atomic<int32_t>& n_cc(int c, int c2) {
    return n_cc_[static_cast<size_t>(c) * num_communities_ + c2];
  }

  // Relaxed readers (sampling tolerates slight staleness).
  int32_t r_n_ic(int i, int c) const {
    return n_ic_[static_cast<size_t>(i) * num_communities_ + c].load(
        std::memory_order_relaxed);
  }
  int32_t r_n_ck(int c, int k) const {
    return n_ck_[static_cast<size_t>(c) * num_topics_ + k].load(
        std::memory_order_relaxed);
  }
  int32_t r_n_c(int c) const {
    return n_c_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }
  int32_t r_n_ckt(int c, int k, int t) const {
    return n_ckt_[(static_cast<size_t>(c) * num_topics_ + k) *
                      num_time_slices_ +
                  t]
        .load(std::memory_order_relaxed);
  }
  int32_t r_n_kv(int k, int v) const {
    return n_kv_[static_cast<size_t>(k) * vocab_size_ + v].load(
        std::memory_order_relaxed);
  }
  int32_t r_n_k(int k) const {
    return n_k_[static_cast<size_t>(k)].load(std::memory_order_relaxed);
  }
  int32_t r_n_cc(int c, int c2) const {
    return n_cc_[static_cast<size_t>(c) * num_communities_ + c2].load(
        std::memory_order_relaxed);
  }

  /// \brief Snapshots everything into a plain ColdState (for estimate
  /// extraction, invariant checks, and checkpoint serialization).
  ColdState ToColdState() const;

  /// \brief Installs assignments and counters from a plain ColdState (the
  /// checkpoint restore path). Dimensions must match; returns
  /// InvalidArgument otherwise. Not thread-safe — call only while no
  /// superstep is executing.
  cold::Status RestoreFrom(const ColdState& s);

 private:
  int num_users_;
  int num_communities_;
  int num_topics_;
  int num_time_slices_;
  int vocab_size_;

  std::unique_ptr<std::atomic<int32_t>[]> n_ic_;
  std::unique_ptr<std::atomic<int32_t>[]> n_i_;
  std::unique_ptr<std::atomic<int32_t>[]> n_ck_;
  std::unique_ptr<std::atomic<int32_t>[]> n_c_;
  std::unique_ptr<std::atomic<int32_t>[]> n_ckt_;
  std::unique_ptr<std::atomic<int32_t>[]> n_kv_;
  std::unique_ptr<std::atomic<int32_t>[]> n_k_;
  std::unique_ptr<std::atomic<int32_t>[]> n_cc_;
};

}  // namespace cold::core
