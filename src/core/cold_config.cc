#include "core/cold_config.h"

namespace cold::core {

cold::Status ColdConfig::Validate() const {
  if (num_communities < 1) {
    return cold::Status::InvalidArgument("num_communities must be >= 1");
  }
  if (num_topics < 1) {
    return cold::Status::InvalidArgument("num_topics must be >= 1");
  }
  if (beta <= 0.0 || epsilon <= 0.0) {
    return cold::Status::InvalidArgument("beta and epsilon must be > 0");
  }
  if (lambda1 <= 0.0 || kappa <= 0.0) {
    return cold::Status::InvalidArgument("lambda1 and kappa must be > 0");
  }
  if (iterations < 1) {
    return cold::Status::InvalidArgument("iterations must be >= 1");
  }
  if (burn_in < 0 || burn_in >= iterations) {
    return cold::Status::InvalidArgument(
        "burn_in must be in [0, iterations)");
  }
  if (sample_lag < 1) {
    return cold::Status::InvalidArgument("sample_lag must be >= 1");
  }
  if (top_communities < 1) {
    return cold::Status::InvalidArgument("top_communities must be >= 1");
  }
  if (vocab_size < 0) {
    return cold::Status::InvalidArgument("vocab_size must be >= 0");
  }
  if (sparse_mh_steps < 1) {
    return cold::Status::InvalidArgument("sparse_mh_steps must be >= 1");
  }
  return cold::Status::OK();
}

}  // namespace cold::core
