
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/eutb.cc" "src/baselines/CMakeFiles/cold_baselines.dir/eutb.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/eutb.cc.o.d"
  "/root/repo/src/baselines/lda.cc" "src/baselines/CMakeFiles/cold_baselines.dir/lda.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/lda.cc.o.d"
  "/root/repo/src/baselines/mmsb.cc" "src/baselines/CMakeFiles/cold_baselines.dir/mmsb.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/mmsb.cc.o.d"
  "/root/repo/src/baselines/pipeline.cc" "src/baselines/CMakeFiles/cold_baselines.dir/pipeline.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/pipeline.cc.o.d"
  "/root/repo/src/baselines/pmtlm.cc" "src/baselines/CMakeFiles/cold_baselines.dir/pmtlm.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/pmtlm.cc.o.d"
  "/root/repo/src/baselines/ti.cc" "src/baselines/CMakeFiles/cold_baselines.dir/ti.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/ti.cc.o.d"
  "/root/repo/src/baselines/tot.cc" "src/baselines/CMakeFiles/cold_baselines.dir/tot.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/tot.cc.o.d"
  "/root/repo/src/baselines/wtm.cc" "src/baselines/CMakeFiles/cold_baselines.dir/wtm.cc.o" "gcc" "src/baselines/CMakeFiles/cold_baselines.dir/wtm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cold_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cold_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cold_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cold_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
