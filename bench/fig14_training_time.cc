// Figure 14: training time of all methods (C = K at the bench scale).
// COLD models text+network+time jointly, so its serial cost exceeds the
// partial-feature baselines; the 8-node parallel run ("COLD (8)") brings it
// back to a practical range — the paper's deployment argument.
#include "baselines/eutb.h"
#include "baselines/mmsb.h"
#include "baselines/pipeline.h"
#include "baselines/pmtlm.h"
#include "baselines/ti.h"
#include "baselines/wtm.h"
#include "common.h"
#include "core/parallel_sampler.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 14: training time per method");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  data::RetweetSplit retweet_split = data::SplitRetweets(dataset, 0.2, 81, 0);
  const int iterations = 60;

  std::printf("%-12s %10s\n", "method", "seconds");
  auto report = [](const char* name, double seconds) {
    std::printf("%-12s %10.3f\n", name, seconds);
  };

  {
    double seconds = 0.0;
    bench::TrainCold(bench::BenchColdConfig(8, 12, iterations), dataset.posts,
                     &dataset.interactions, &seconds);
    report("COLD", seconds);
  }
  {
    // Same config as the serial run above — a burn_in override here would
    // give the parallel trainer a different schedule and skew the
    // comparison.
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iterations);
    engine::EngineOptions options;
    options.num_nodes = 8;
    core::ParallelColdTrainer trainer(config, dataset.posts,
                                      &dataset.interactions, options);
    if (!trainer.Init().ok() || !trainer.Train().ok()) return 1;
    report("COLD (8)", trainer.SimulatedWallSeconds());
  }
  {
    Stopwatch watch;
    baselines::PmtlmConfig pc;
    pc.num_factors = 12;
    pc.alpha = 0.5;
    pc.iterations = iterations;
    baselines::PmtlmModel pmtlm(pc, dataset.posts, dataset.interactions);
    if (!pmtlm.Train().ok()) return 1;
    report("PMTLM", watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    baselines::MmsbConfig mc;
    mc.num_communities = 8;
    mc.rho = 0.5;
    mc.iterations = iterations;
    baselines::MmsbModel mmsb(mc, dataset.interactions, dataset.num_users());
    if (!mmsb.Train().ok()) return 1;
    report("MMSB", watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    baselines::EutbConfig ec;
    ec.num_topics = 12;
    ec.alpha = 0.5;
    ec.iterations = iterations;
    baselines::EutbModel eutb(ec, dataset.posts);
    if (!eutb.Train().ok()) return 1;
    report("EUTB", watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    baselines::PipelineConfig pc;
    pc.mmsb.num_communities = 8;
    pc.mmsb.rho = 0.5;
    pc.mmsb.iterations = iterations;
    pc.tot.num_topics = 12;
    pc.tot.alpha = 0.5;
    pc.tot.iterations = iterations / 2;
    baselines::PipelineModel pipeline(pc, dataset.posts, dataset.interactions);
    if (!pipeline.Train().ok()) return 1;
    report("Pipeline", watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    baselines::TiConfig tc;
    tc.lda.num_topics = 12;
    tc.lda.alpha = 0.5;
    tc.lda.iterations = iterations;
    baselines::TiModel ti(tc, dataset.posts, retweet_split.train);
    if (!ti.Train().ok()) return 1;
    report("TI", watch.ElapsedSeconds());
  }
  {
    Stopwatch watch;
    baselines::WtmModel wtm(baselines::WtmConfig{}, dataset.posts,
                            retweet_split.train_interactions,
                            retweet_split.train);
    if (!wtm.Train().ok()) return 1;
    report("WTM", watch.ElapsedSeconds());
  }
  std::printf(
      "\n(paper shape: serial COLD costs more than partial-feature\n"
      " baselines; COLD (8) on the cluster is competitive)\n");
  bench::DumpTelemetryIfRequested();
  return 0;
}
