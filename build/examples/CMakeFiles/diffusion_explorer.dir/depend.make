# Empty dependencies file for diffusion_explorer.
# This may be replaced when dependencies are built.
