// Figure 6: correlation between community interest (theta_ck, x-axis, log
// scale) and topic popularity fluctuation (variance of psi_kc, y-axis),
// plus the CDF of interest strengths. Paper shape: fluctuation peaks for
// MODERATE interest (~0.01%..1%) and is low at both extremes.
#include "apps/patterns.h"
#include "common.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 6: topic fluctuation vs community interest");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  core::ColdEstimates estimates = bench::TrainCold(
      bench::BenchColdConfig(), dataset.posts, &dataset.interactions);

  auto points = apps::FluctuationScatter(estimates);
  std::vector<double> bin_edges = {0.0,   1e-5, 1e-4, 1e-3,
                                   1e-2,  0.05, 0.15, 0.4};
  auto means = apps::MeanFluctuationByInterestBin(points, bin_edges);
  auto cdf = apps::InterestCdf(points, bin_edges);

  std::printf("%-22s %-18s %-10s\n", "interest bin (theta)",
              "mean fluctuation", "CDF(theta)");
  for (size_t b = 0; b < bin_edges.size(); ++b) {
    std::printf("[%8.0e, %8s) %18.6g %10.3f\n", bin_edges[b],
                b + 1 < bin_edges.size()
                    ? std::to_string(bin_edges[b + 1]).substr(0, 8).c_str()
                    : "inf",
                means[b], cdf[b]);
  }

  // Summary statistic matching the paper's claim: the peak-fluctuation bin
  // should be an interior (moderate-interest) bin, not an extreme one.
  size_t peak_bin = 0;
  for (size_t b = 1; b + 1 < means.size(); ++b) {
    if (means[b] > means[peak_bin]) peak_bin = b;
  }
  std::printf("\npeak mean fluctuation in bin %zu of %zu (moderate interest "
              "expected: interior bin)\n",
              peak_bin, bin_edges.size());
  return 0;
}
