// Failure-injection and edge-case tests: malformed inputs, degenerate
// datasets, and boundary configurations must produce clean Status errors or
// well-defined behaviour, never crashes or silent corruption.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include "baselines/eutb.h"
#include "baselines/lda.h"
#include "baselines/pmtlm.h"
#include "baselines/tot.h"
#include "core/checkpoint.h"
#include "core/cold.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "text/tokenizer.h"
#include "util/fileio.h"

namespace cold {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------ serialization attacks --

class CorruptDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-suffixed so concurrent ctest processes cannot clobber each other.
    dir_ = (fs::temp_directory_path() /
            ("cold_corrupt_test." + std::to_string(::getpid())))
               .string();
    data::SyntheticConfig config;
    config.num_users = 30;
    config.num_communities = 2;
    config.num_topics = 2;
    config.num_time_slices = 4;
    config.core_words_per_topic = 4;
    config.background_words = 10;
    config.posts_per_user = 3.0;
    config.words_per_post = 4.0;
    config.follows_per_user = 3;
    auto ds = std::move(data::SyntheticSocialGenerator(config).Generate())
                  .ValueOrDie();
    ASSERT_TRUE(data::SaveDataset(ds, dir_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  void Overwrite(const std::string& file, const std::string& content) {
    std::ofstream out(dir_ + "/" + file);
    out << content;
  }

  std::string dir_;
};

TEST_F(CorruptDatasetTest, IntactRoundTripLoads) {
  EXPECT_TRUE(data::LoadDataset(dir_).ok());
}

TEST_F(CorruptDatasetTest, MissingFileFails) {
  fs::remove(dir_ + "/posts.tsv");
  auto result = data::LoadDataset(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(CorruptDatasetTest, MalformedRetweetLineFails) {
  Overwrite("retweets.tsv", "0\t1\tgarbage\tn:2\n");
  auto result = data::LoadDataset(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(CorruptDatasetTest, EmptyRetweetsFileIsValid) {
  Overwrite("retweets.tsv", "");
  auto result = data::LoadDataset(dir_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->retweets.empty());
}

TEST_F(CorruptDatasetTest, SelfLoopLinkFails) {
  Overwrite("links.tsv", "3\t3\n");
  auto result = data::LoadDataset(dir_);
  EXPECT_FALSE(result.ok());
}

TEST_F(CorruptDatasetTest, EmptyLinesInPostsAreSkipped) {
  std::ifstream in(dir_ + "/posts.tsv");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  Overwrite("posts.tsv", "\n" + content + "\n\n");
  EXPECT_TRUE(data::LoadDataset(dir_).ok());
}

// ----------------------------------------------------- degenerate inputs --

text::PostStore SinglePostStore() {
  text::PostStore posts;
  posts.Add(0, 0, std::vector<text::WordId>{0, 1, 0});
  posts.Finalize(2, 2);
  return posts;
}

TEST(DegenerateDataTest, ColdTrainsOnSinglePost) {
  text::PostStore posts = SinglePostStore();
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 5;
  config.burn_in = 2;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_TRUE(sampler.Train().ok());
  core::ColdEstimates est = sampler.AveragedEstimates();
  EXPECT_EQ(est.U, 2);
  EXPECT_EQ(est.V, 2);
}

TEST(DegenerateDataTest, ColdHandlesEmptyWordPosts) {
  text::PostStore posts;
  posts.Add(0, 0, std::vector<text::WordId>{});
  posts.Add(0, 1, std::vector<text::WordId>{0});
  posts.Finalize();
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 4;
  config.burn_in = 1;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_TRUE(sampler.Train().ok());
  auto st = sampler.state().CheckInvariants(posts, nullptr, false);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(DegenerateDataTest, ColdRejectsEmptyStore) {
  text::PostStore posts;
  posts.Finalize(1, 1);
  core::ColdConfig config;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  EXPECT_FALSE(sampler.Init().ok());
}

TEST(DegenerateDataTest, ParallelTrainerOnSingleUser) {
  text::PostStore posts;
  posts.Add(0, 0, std::vector<text::WordId>{0, 1});
  posts.Add(0, 1, std::vector<text::WordId>{1, 2});
  posts.Finalize(1, 2);
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 3;
  config.burn_in = 0;
  core::ParallelColdTrainer trainer(config, posts, nullptr);
  ASSERT_TRUE(trainer.Init().ok());
  EXPECT_TRUE(trainer.Train().ok());
  auto snapshot = trainer.StateSnapshot();
  EXPECT_TRUE(snapshot.CheckInvariants(posts, nullptr, false).ok());
}

TEST(DegenerateDataTest, BaselinesRejectEmptyCorpora) {
  text::PostStore empty;
  empty.Finalize(1, 1);
  baselines::LdaConfig lc;
  EXPECT_FALSE(baselines::LdaModel(lc, empty).Train().ok());
  baselines::EutbConfig ec;
  EXPECT_FALSE(baselines::EutbModel(ec, empty).Train().ok());
  baselines::TotConfig tc;
  EXPECT_FALSE(baselines::TotModel(tc, empty).Train().ok());
}

TEST(DegenerateDataTest, PredictorHandlesEmptyMessage) {
  text::PostStore posts = SinglePostStore();
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 4;
  config.burn_in = 1;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.Train().ok());
  core::ColdPredictor predictor(sampler.AveragedEstimates());

  std::vector<text::WordId> empty;
  auto posterior = predictor.TopicPosterior(empty, 0);
  double total = 0.0;
  for (double p : posterior) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  double prob = predictor.DiffusionProbability(0, 1, empty);
  EXPECT_GE(prob, 0.0);
  int t = predictor.PredictTimestamp(empty, 0);
  EXPECT_GE(t, 0);
  EXPECT_LT(t, 2);
}

TEST(DegenerateDataTest, PerplexityOfEmptyTestSetIsZero) {
  text::PostStore posts = SinglePostStore();
  core::ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 3;
  config.burn_in = 1;
  core::ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.Train().ok());
  core::ColdPredictor predictor(sampler.AveragedEstimates());
  text::PostStore empty;
  empty.Finalize(2, 2);
  EXPECT_DOUBLE_EQ(predictor.Perplexity(empty), 0.0);
}

// ------------------------------------------------------ tokenizer abuse ---

TEST(TokenizerRobustnessTest, HandlesBinaryAndUnicodeBytes) {
  text::Tokenizer tokenizer;
  std::string nasty = "caf\xc3\xa9 \x01\x02 na\xc3\xafve \xff\xfe tail";
  auto tokens = tokenizer.Tokenize(nasty);
  // Multi-byte sequences are kept inside tokens; control bytes split.
  EXPECT_FALSE(tokens.empty());
  for (const std::string& t : tokens) EXPECT_FALSE(t.empty());
}

TEST(TokenizerRobustnessTest, VeryLongToken) {
  text::Tokenizer tokenizer;
  std::string long_word(10000, 'a');
  auto tokens = tokenizer.Tokenize(long_word);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].size(), 10000u);
}

// ------------------------------------------------- config boundary grid ---

TEST(ConfigBoundaryTest, MinimalLegalColdConfig) {
  core::ColdConfig config;
  config.num_communities = 1;
  config.num_topics = 1;
  config.iterations = 1;
  config.burn_in = 0;
  config.sample_lag = 1;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigBoundaryTest, PmtlmRejectsZeroFactors) {
  text::PostStore posts = SinglePostStore();
  graph::Digraph::Builder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  graph::Digraph links = std::move(b).Build(2);
  baselines::PmtlmConfig config;
  config.num_factors = 0;
  EXPECT_FALSE(baselines::PmtlmModel(config, posts, links).Train().ok());
}

TEST(ConfigBoundaryTest, EutbLambdaStaysClamped) {
  // All posts from one user: the learned switch must stay inside (0, 1).
  text::PostStore posts;
  for (int j = 0; j < 30; ++j) {
    posts.Add(0, j % 3, std::vector<text::WordId>{0, 1});
  }
  posts.Finalize();
  baselines::EutbConfig config;
  config.num_topics = 2;
  config.iterations = 10;
  baselines::EutbModel model(config, posts);
  ASSERT_TRUE(model.Train().ok());
  EXPECT_GT(model.estimates().lambda_user, 0.0);
  EXPECT_LT(model.estimates().lambda_user, 1.0);
}

// ---------------------------------------------- checkpoint corruption ----
//
// Every corruption flavor must be *detected* (clear IOError, never a crash
// or silent misparse) and *survivable*: LoadLatest falls back to the next
// rotation entry when the newest file is damaged.

class CorruptCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-suffixed so concurrent ctest processes cannot clobber each other.
    dir_ = (fs::temp_directory_path() /
            ("cold_corrupt_ckpt_test." + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    mgr_ = std::make_unique<core::CheckpointManager>(
        core::CheckpointOptions{dir_, /*every=*/1, /*keep_last=*/3});
    ASSERT_TRUE(mgr_->Init().ok());
    // Two healthy rotation entries: sweep 10 (fallback) and sweep 20
    // (newest, the one the tests damage).
    for (int sweep : {10, 20}) {
      core::CheckpointMeta meta;
      meta.sweep = sweep;
      meta.data_fingerprint = 42;
      ASSERT_TRUE(
          mgr_->Write(meta, "payload for sweep " + std::to_string(sweep))
              .ok());
    }
    newest_ = (fs::path(dir_) / core::CheckpointManager::FileName(20))
                  .string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string ReadNewest() {
    return std::move(ReadFileToString(newest_)).ValueOrDie();
  }
  void WriteNewest(const std::string& bytes) {
    std::ofstream out(newest_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  /// The corrupted newest file must fail with kIOError on direct read,
  /// while LoadLatest still recovers the sweep-10 entry.
  void ExpectDetectedAndFellBack() {
    auto direct = core::CheckpointManager::ReadFile(newest_);
    ASSERT_FALSE(direct.ok());
    EXPECT_EQ(direct.status().code(), StatusCode::kIOError)
        << direct.status().ToString();
    EXPECT_FALSE(direct.status().message().empty());

    auto latest = mgr_->LoadLatest();
    ASSERT_TRUE(latest.ok()) << latest.status().ToString();
    EXPECT_EQ(latest->meta.sweep, 10);
    EXPECT_EQ(latest->payload, "payload for sweep 10");
  }

  std::string dir_;
  std::string newest_;
  std::unique_ptr<core::CheckpointManager> mgr_;
};

TEST_F(CorruptCheckpointTest, TruncatedFileDetectedAndSkipped) {
  std::string bytes = ReadNewest();
  WriteNewest(bytes.substr(0, bytes.size() - 7));
  ExpectDetectedAndFellBack();
}

TEST_F(CorruptCheckpointTest, TruncatedToPartialHeaderDetected) {
  WriteNewest(ReadNewest().substr(0, 20));
  ExpectDetectedAndFellBack();
}

TEST_F(CorruptCheckpointTest, BitFlippedPayloadDetectedAndSkipped) {
  std::string bytes = ReadNewest();
  bytes[bytes.size() - 3] ^= 0x10;  // inside the payload
  WriteNewest(bytes);
  ExpectDetectedAndFellBack();
}

TEST_F(CorruptCheckpointTest, BitFlippedHeaderDetectedAndSkipped) {
  std::string bytes = ReadNewest();
  bytes[16] ^= 0x01;  // sweep field, covered by the header CRC
  WriteNewest(bytes);
  ExpectDetectedAndFellBack();
}

TEST_F(CorruptCheckpointTest, WrongMagicDetectedAndSkipped) {
  std::string bytes = ReadNewest();
  bytes[0] = 'X';
  WriteNewest(bytes);
  ExpectDetectedAndFellBack();
}

TEST_F(CorruptCheckpointTest, WrongVersionDetectedAndSkipped) {
  // Flip the version field *and* refresh the header CRC, simulating a
  // well-formed file from a future format rather than random damage.
  std::string bytes = ReadNewest();
  const uint32_t version = 99;
  std::memcpy(bytes.data() + 8, &version, sizeof version);
  const uint32_t crc = Crc32(std::string_view(bytes.data(), 44));
  std::memcpy(bytes.data() + 44, &crc, sizeof crc);
  WriteNewest(bytes);

  auto direct = core::CheckpointManager::ReadFile(newest_);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("version"), std::string::npos)
      << direct.status().ToString();
  ExpectDetectedAndFellBack();
}

TEST_F(CorruptCheckpointTest, AllEntriesCorruptIsNotFound) {
  for (const auto& [sweep, path] : mgr_->ListFiles()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto latest = mgr_->LoadLatest();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

TEST_F(CorruptCheckpointTest, CorruptPayloadRejectedBySamplerToo) {
  // Belt and braces: even if a damaged payload slipped past the file CRC,
  // RestoreState's structural validation must refuse it.
  data::SyntheticConfig config;
  config.num_users = 20;
  config.num_communities = 2;
  config.num_topics = 2;
  config.num_time_slices = 3;
  config.core_words_per_topic = 3;
  config.background_words = 8;
  config.posts_per_user = 3.0;
  config.words_per_post = 4.0;
  config.follows_per_user = 2;
  auto ds = std::move(data::SyntheticSocialGenerator(config).Generate())
                .ValueOrDie();
  core::ColdConfig model;
  model.num_communities = 2;
  model.num_topics = 2;
  model.iterations = 4;
  model.burn_in = 2;
  model.sample_lag = 1;
  core::ColdGibbsSampler sampler(model, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  std::string payload;
  ASSERT_TRUE(sampler.SerializeState(&payload).ok());

  std::string truncated = payload.substr(0, payload.size() / 2);
  EXPECT_FALSE(sampler.RestoreState(truncated).ok());
  // The failed restore must not have clobbered the sampler.
  std::string after;
  ASSERT_TRUE(sampler.SerializeState(&after).ok());
  EXPECT_EQ(after, payload);
}

}  // namespace
}  // namespace cold
