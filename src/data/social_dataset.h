// The full input bundle for COLD and all baselines: time-stamped posts, the
// retweet-derived interaction network, the (simulation-only) follower graph,
// retweet outcome tuples for diffusion-prediction evaluation, and — because
// the data is synthetic — the planted ground-truth parameters.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "text/post_store.h"
#include "text/vocabulary.h"

namespace cold::data {

using text::PostId;
using text::TimeSlice;
using text::UserId;

/// \brief One evaluation tuple RT_{id} = (i, d, U_id, \bar U_id) from §6.3:
/// the followers of `author` who did / did not retweet post `post`.
struct RetweetTuple {
  UserId author = -1;
  PostId post = -1;
  std::vector<UserId> retweeters;
  std::vector<UserId> ignorers;
};

/// \brief Planted parameters of the generative process, kept for recovery
/// tests and oracle comparisons. Empty for real (non-synthetic) data.
struct GroundTruth {
  /// pi[i][c]: user i's community membership.
  std::vector<std::vector<double>> pi;
  /// theta[c][k]: community c's topic mixture.
  std::vector<std::vector<double>> theta;
  /// eta[c][c']: inter-community influence strength.
  std::vector<std::vector<double>> eta;
  /// phi[k][v]: topic word distributions.
  std::vector<std::vector<double>> phi;
  /// psi[k][c][t]: community-specific temporal profile of topic k.
  std::vector<std::vector<std::vector<double>>> psi;
  /// Latent community / topic of each post.
  std::vector<int> post_community;
  std::vector<int> post_topic;

  bool empty() const { return pi.empty(); }
};

/// \brief A complete social dataset.
struct SocialDataset {
  text::Vocabulary vocabulary;
  text::PostStore posts;

  /// Interaction network derived from retweets: edge (i, i') iff i' retweeted
  /// i at least once among *training* retweet events (Definition 1).
  graph::Digraph interactions;

  /// Follower graph: edge (i, i') means i' follows i and therefore sees i's
  /// posts. Used by the cascade simulator and the diffusion-prediction task.
  graph::Digraph followers;

  /// Per-post retweet outcomes over the author's followers.
  std::vector<RetweetTuple> retweets;

  GroundTruth truth;

  int num_users() const { return posts.num_users(); }
  int num_time_slices() const { return posts.num_time_slices(); }
};

}  // namespace cold::data
