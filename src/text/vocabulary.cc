#include "text/vocabulary.h"

namespace cold::text {

WordId Vocabulary::Add(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) {
    counts_[static_cast<size_t>(it->second)]++;
    return it->second;
  }
  WordId id = static_cast<WordId>(words_.size());
  words_.emplace_back(word);
  counts_.push_back(1);
  index_.emplace(words_.back(), id);
  return id;
}

WordId Vocabulary::Lookup(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? -1 : it->second;
}

Vocabulary Vocabulary::Prune(int64_t min_count,
                             std::vector<WordId>* remap) const {
  Vocabulary pruned;
  if (remap != nullptr) {
    remap->assign(words_.size(), -1);
  }
  for (size_t i = 0; i < words_.size(); ++i) {
    if (counts_[i] >= min_count) {
      WordId nid = pruned.Add(words_[i]);
      pruned.counts_[static_cast<size_t>(nid)] = counts_[i];
      if (remap != nullptr) (*remap)[i] = nid;
    }
  }
  return pruned;
}

}  // namespace cold::text
