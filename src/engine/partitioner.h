// Vertex partitioning across simulated cluster nodes, plus communication
// accounting for edges that cross partitions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "engine/property_graph.h"

namespace cold::engine {

/// \brief Placement strategy for the engine's partitioner.
enum class PartitionerKind {
  /// Modulo over vertex ids (GraphLab's random hash placement degenerates
  /// to this for dense ids). Balanced but locality-blind.
  kModulo,
  /// Degree-aware linear deterministic greedy (see GreedyAssignment).
  kGreedy,
};

/// \brief Assigns vertices to `num_nodes` simulated machines.
///
/// The default strategy is modulo placement (GraphLab's random hash
/// placement degenerates to this for dense ids). A custom assignment can be
/// installed for locality experiments.
class Partitioner {
 public:
  /// Modulo partition of `num_vertices` ids over `num_nodes` nodes.
  Partitioner(int32_t num_vertices, int num_nodes);

  /// Installs an explicit assignment; `assignment[v]` in [0, num_nodes).
  void SetAssignment(std::vector<int> assignment);

  int num_nodes() const { return num_nodes_; }

  /// The node owning vertex `v`.
  int NodeOf(VertexId v) const {
    return assignment_[static_cast<size_t>(v)];
  }

  /// True iff `e`'s endpoints live on different nodes.
  template <typename VData, typename EData>
  bool IsCut(const PropertyGraph<VData, EData>& g, EdgeId e) const {
    return NodeOf(g.src(e)) != NodeOf(g.dst(e));
  }

  /// Number of vertices owned by each node.
  std::vector<int64_t> NodeLoads() const;

 private:
  int num_nodes_;
  std::vector<int> assignment_;
};

/// \brief Degree-aware greedy placement: linear deterministic greedy (LDG,
/// Stanton & Kliot, KDD 2012) with a work-weighted capacity constraint.
///
/// Vertices are streamed in descending degree order (hubs pin the layout
/// before the long tail fills in around them; ties break on the lower id,
/// so the result is fully deterministic). Each vertex lands on the node
/// maximizing
///
///     |already-placed neighbors on node| * (1 - load(node) / capacity)
///
/// with ties broken toward the lighter node. `vertex_work[v]` is the
/// program-defined work a vertex contributes to its node (e.g. tokens of
/// the edges it owns); zero-work vertices still count one unit so hub-only
/// vertices spread instead of piling onto one node. Compared with modulo
/// placement, this cuts far fewer edges on community-clustered graphs
/// (follower networks), directly lowering the engine's cut_edges and
/// comm_bytes accounting.
template <typename VData, typename EData>
std::vector<int> GreedyAssignment(const PropertyGraph<VData, EData>& g,
                                  int num_nodes,
                                  const std::vector<int64_t>& vertex_work) {
  const int32_t n = g.num_vertices();
  std::vector<int> assign(static_cast<size_t>(n), 0);
  if (num_nodes <= 1 || n == 0) return assign;

  auto work_of = [&vertex_work](VertexId v) -> double {
    int64_t w = static_cast<size_t>(v) < vertex_work.size()
                    ? vertex_work[static_cast<size_t>(v)]
                    : 0;
    return w > 0 ? static_cast<double>(w) : 1.0;
  };
  auto degree_of = [&g](VertexId v) {
    return g.out_edges(v).size() + g.in_edges(v).size();
  };

  std::vector<int32_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    size_t da = degree_of(a), db = degree_of(b);
    if (da != db) return da > db;
    return a < b;
  });

  double total_work = 0.0;
  for (int32_t v = 0; v < n; ++v) total_work += work_of(v);
  // 10% slack over the perfectly balanced share: enough headroom for the
  // greedy step to honor locality, tight enough to bound work skew.
  const double capacity = total_work / num_nodes * 1.10 + 1.0;

  std::vector<double> load(static_cast<size_t>(num_nodes), 0.0);
  std::vector<int32_t> neighbors_on(static_cast<size_t>(num_nodes), 0);
  for (size_t i = 0; i < assign.size(); ++i) assign[i] = -1;

  for (int32_t v : order) {
    std::fill(neighbors_on.begin(), neighbors_on.end(), 0);
    for (EdgeId e : g.out_edges(v)) {
      int node = assign[static_cast<size_t>(g.dst(e))];
      if (node >= 0) neighbors_on[static_cast<size_t>(node)]++;
    }
    for (EdgeId e : g.in_edges(v)) {
      int node = assign[static_cast<size_t>(g.src(e))];
      if (node >= 0) neighbors_on[static_cast<size_t>(node)]++;
    }
    int best = 0;
    double best_score = -1.0;
    for (int node = 0; node < num_nodes; ++node) {
      double headroom =
          1.0 - load[static_cast<size_t>(node)] / capacity;
      if (headroom < 0.0) headroom = 0.0;
      double score = neighbors_on[static_cast<size_t>(node)] * headroom;
      if (score > best_score ||
          (score == best_score &&
           load[static_cast<size_t>(node)] < load[static_cast<size_t>(best)])) {
        best = node;
        best_score = score;
      }
    }
    assign[static_cast<size_t>(v)] = best;
    load[static_cast<size_t>(best)] += work_of(v);
  }
  return assign;
}

}  // namespace cold::engine
