// Figure 13: training-time scalability of the parallel GAS sampler.
//   (a) wall time vs data size at a fixed 4-node cluster — linear shape;
//   (b) wall time vs cluster size on the full set — near-linear speedup.
// The cluster is simulated (this host has one core; DESIGN.md §1): the
// engine attributes measured compute to nodes by work share and adds the
// modeled communication cost.
#include "common.h"
#include "core/parallel_sampler.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 13a: training time vs data size (4 nodes)");

  const int iterations = 20;
  engine::ClusterModel cluster;  // 1 GB/s NIC
  cluster.sync_latency_sec = 5e-4;  // sub-ms MPI-style barrier

  auto train = [&](const data::SocialDataset& ds, int nodes,
                   double* sim_seconds) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iterations);
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = nodes;
    core::ParallelColdTrainer trainer(config, ds.posts, &ds.interactions,
                                      options);
    auto st = trainer.Init();
    if (st.ok()) st = trainer.Train();
    if (!st.ok()) {
      std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    *sim_seconds = trainer.SimulatedWallSeconds(cluster);
    return trainer.engine_stats().total_seconds();
  };

  std::printf("%-12s %-10s %-14s %-14s\n", "users", "posts",
              "measured (s)", "simulated (s)");
  for (double frac : {0.25, 0.5, 1.0}) {
    data::SyntheticConfig dc = bench::BenchDataConfig();
    dc.num_users = static_cast<int>(dc.num_users * frac);
    data::SocialDataset ds = bench::GenerateBenchData(dc);
    double sim = 0.0;
    double measured = train(ds, 4, &sim);
    std::printf("%-12d %-10d %-14.3f %-14.3f\n", ds.num_users(),
                ds.posts.num_posts(), measured, sim);
  }
  std::printf("(paper shape: time grows linearly with data size)\n\n");

  bench::PrintHeader("Fig 13b: training time vs #nodes (full dataset)");
  // Fig 13b uses the "whole dataset" (4x the Fig-13a maximum), mirroring the
  // paper's use of the larger crawl for the node sweep.
  data::SyntheticConfig full = bench::BenchDataConfig();
  full.num_users *= 4;
  data::SocialDataset ds = bench::GenerateBenchData(full);
  std::printf("%-8s %-14s %-16s %-12s\n", "nodes", "simulated (s)",
              "comm (MB/superstep)", "speedup");
  double base = -1.0;
  for (int nodes : {1, 2, 4, 8}) {
    double sim = 0.0;
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iterations);
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = nodes;
    core::ParallelColdTrainer trainer(config, ds.posts, &ds.interactions,
                                      options);
    if (!trainer.Init().ok() || !trainer.Train().ok()) return 1;
    sim = trainer.SimulatedWallSeconds(cluster);
    if (base < 0.0) base = sim;
    double comm_mb = static_cast<double>(trainer.engine_stats().comm_bytes) /
                     trainer.engine_stats().supersteps / 1e6;
    std::printf("%-8d %-14.3f %-16.2f %-12.2f\n", nodes, sim, comm_mb,
                base / sim);
  }
  std::printf("(paper shape: near-linear speedup, flattening as sync and\n"
              " communication costs grow with the cluster)\n");
  bench::DumpTelemetryIfRequested();
  return 0;
}
