file(REMOVE_RECURSE
  "../bench/fig19_sensitivity_diffusion"
  "../bench/fig19_sensitivity_diffusion.pdb"
  "CMakeFiles/fig19_sensitivity_diffusion.dir/fig19_sensitivity_diffusion.cc.o"
  "CMakeFiles/fig19_sensitivity_diffusion.dir/fig19_sensitivity_diffusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_sensitivity_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
