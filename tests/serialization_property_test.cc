// Property sweeps over both serialization formats: dataset flat files and
// binary model estimates must round-trip exactly across a grid of shapes,
// including degenerate ones.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/model_io.h"
#include "data/serialize.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace cold {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------- dataset round-trip grid --

struct DatasetShape {
  int users;
  int communities;
  int topics;
  int slices;
};

class DatasetRoundTrip : public ::testing::TestWithParam<DatasetShape> {};

TEST_P(DatasetRoundTrip, ExactRoundTrip) {
  const DatasetShape& shape = GetParam();
  data::SyntheticConfig config;
  config.num_users = shape.users;
  config.num_communities = shape.communities;
  config.num_topics = shape.topics;
  config.num_time_slices = shape.slices;
  config.core_words_per_topic = 4;
  config.background_words = 10;
  config.posts_per_user = 3.0;
  config.words_per_post = 4.0;
  config.follows_per_user = 2;
  config.seed = static_cast<uint64_t>(shape.users) * 7 + shape.topics;
  auto ds = std::move(data::SyntheticSocialGenerator(config).Generate())
                .ValueOrDie();

  std::string dir =
      (fs::temp_directory_path() /
       ("cold_ds_rt_" + std::to_string(shape.users) + "_" +
        std::to_string(shape.topics)))
          .string();
  ASSERT_TRUE(data::SaveDataset(ds, dir).ok());
  auto loaded = data::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->posts.num_posts(), ds.posts.num_posts());
  EXPECT_EQ(loaded->posts.num_tokens(), ds.posts.num_tokens());
  EXPECT_EQ(loaded->vocabulary.size(), ds.vocabulary.size());
  EXPECT_EQ(loaded->interactions.num_edges(), ds.interactions.num_edges());
  EXPECT_EQ(loaded->followers.num_edges(), ds.followers.num_edges());
  ASSERT_EQ(loaded->retweets.size(), ds.retweets.size());
  for (size_t i = 0; i < ds.retweets.size(); i += 11) {
    EXPECT_EQ(loaded->retweets[i].author, ds.retweets[i].author);
    EXPECT_EQ(loaded->retweets[i].post, ds.retweets[i].post);
    EXPECT_EQ(loaded->retweets[i].retweeters, ds.retweets[i].retweeters);
    EXPECT_EQ(loaded->retweets[i].ignorers, ds.retweets[i].ignorers);
  }
  // Every post identical.
  for (text::PostId d = 0; d < ds.posts.num_posts(); ++d) {
    ASSERT_EQ(loaded->posts.length(d), ds.posts.length(d));
    for (int l = 0; l < ds.posts.length(d); ++l) {
      EXPECT_EQ(loaded->posts.words(d)[static_cast<size_t>(l)],
                ds.posts.words(d)[static_cast<size_t>(l)]);
    }
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DatasetRoundTrip,
                         ::testing::Values(DatasetShape{10, 2, 2, 2},
                                           DatasetShape{40, 3, 5, 8},
                                           DatasetShape{80, 6, 3, 4},
                                           DatasetShape{25, 1, 1, 2}));

// ------------------------------------------------- model round-trip grid --

struct ModelShape {
  int U, C, K, T, V;
};

class ModelRoundTrip : public ::testing::TestWithParam<ModelShape> {};

TEST_P(ModelRoundTrip, ExactRoundTrip) {
  const ModelShape& shape = GetParam();
  core::ColdEstimates est;
  est.U = shape.U;
  est.C = shape.C;
  est.K = shape.K;
  est.T = shape.T;
  est.V = shape.V;
  RandomSampler sampler(static_cast<uint64_t>(shape.U + shape.V));
  auto fill = [&](std::vector<double>* v, size_t n) {
    v->resize(n);
    for (double& x : *v) x = sampler.Uniform();
  };
  fill(&est.pi, static_cast<size_t>(shape.U) * shape.C);
  fill(&est.theta, static_cast<size_t>(shape.C) * shape.K);
  fill(&est.eta, static_cast<size_t>(shape.C) * shape.C);
  fill(&est.phi, static_cast<size_t>(shape.K) * shape.V);
  fill(&est.psi, static_cast<size_t>(shape.K) * shape.C * shape.T);

  std::string path =
      (fs::temp_directory_path() /
       ("cold_model_rt_" + std::to_string(shape.U) + "_" +
        std::to_string(shape.K) + ".bin"))
          .string();
  ASSERT_TRUE(core::SaveEstimates(est, path).ok());
  auto loaded = core::LoadEstimates(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->pi, est.pi);
  EXPECT_EQ(loaded->theta, est.theta);
  EXPECT_EQ(loaded->eta, est.eta);
  EXPECT_EQ(loaded->phi, est.phi);
  EXPECT_EQ(loaded->psi, est.psi);
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ModelRoundTrip,
                         ::testing::Values(ModelShape{1, 1, 1, 1, 1},
                                           ModelShape{10, 3, 4, 5, 20},
                                           ModelShape{0, 2, 2, 2, 3},
                                           ModelShape{100, 8, 12, 24, 700}));

}  // namespace
}  // namespace cold
