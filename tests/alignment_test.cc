#include <gtest/gtest.h>

#include "core/cold.h"
#include "data/synthetic.h"
#include "eval/alignment.h"

namespace cold::eval {
namespace {

// ------------------------------------------------------------------ NMI --

TEST(NmiTest, IdenticalLabelingsScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, a), 1.0, 1e-12);
}

TEST(NmiTest, PermutedLabelsStillScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {5, 5, 9, 9, 7, 7};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IndependentLabelingsScoreNearZero) {
  // a alternates fast, b alternates slow, sizes co-prime-ish.
  std::vector<int> a, b;
  for (int i = 0; i < 900; ++i) {
    a.push_back(i % 3);
    b.push_back((i / 300) % 3);
  }
  EXPECT_LT(NormalizedMutualInformation(a, b), 0.01);
}

TEST(NmiTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({}, {}), 0.0);
  std::vector<int> constant = {1, 1, 1};
  std::vector<int> varied = {0, 1, 2};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(constant, varied), 0.0);
}

TEST(NmiTest, PartialAgreementBetweenZeroAndOne) {
  std::vector<int> a = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> b = {0, 0, 0, 1, 1, 1, 1, 0};
  double nmi = NormalizedMutualInformation(a, b);
  EXPECT_GT(nmi, 0.05);
  EXPECT_LT(nmi, 0.95);
}

// ------------------------------------------------------------- matching --

TEST(GreedyMatchingTest, FindsPermutation) {
  std::vector<std::vector<double>> truth = {
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  std::vector<std::vector<double>> learned = {
      {0.0, 0.1, 0.9}, {0.9, 0.1, 0.0}, {0.1, 0.9, 0.0}};
  auto match = GreedyMatching(truth, learned);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 2);
  EXPECT_EQ(match[2], 0);
  EXPECT_GT(GreedyMatchedCosine(truth, learned), 0.95);
}

TEST(GreedyMatchingTest, ExtraLearnedRowsIgnored) {
  std::vector<std::vector<double>> truth = {{1.0, 0.0}};
  std::vector<std::vector<double>> learned = {
      {0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5}};
  auto match = GreedyMatching(truth, learned);
  EXPECT_EQ(match[0], 1);
  EXPECT_NEAR(GreedyMatchedCosine(truth, learned), 1.0, 1e-12);
}

TEST(GreedyMatchingTest, MoreTruthThanLearnedLeavesUnmatched) {
  std::vector<std::vector<double>> truth = {{1.0, 0.0}, {0.0, 1.0}};
  std::vector<std::vector<double>> learned = {{0.9, 0.1}};
  auto match = GreedyMatching(truth, learned);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], -1);
}

// -------------------------------------------- recovery on trained model --

TEST(RecoveryMetricsTest, TrainedModelBeatsUntrainedOnBothSpaces) {
  data::SyntheticConfig dc;
  dc.num_users = 200;
  dc.num_communities = 4;
  dc.num_topics = 6;
  dc.num_time_slices = 12;
  dc.core_words_per_topic = 12;
  dc.background_words = 60;
  dc.posts_per_user = 12.0;
  dc.words_per_post = 8.0;
  dc.follows_per_user = 10;
  dc.seed = 33;
  auto ds = std::move(data::SyntheticSocialGenerator(dc).Generate())
                .ValueOrDie();

  core::ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.iterations = 60;
  config.burn_in = 40;
  core::ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  double phi_before = 0.0;
  {
    // Matched cosine of the random-init estimates.
    core::ColdEstimates init = sampler.EstimatesFromCurrentSample();
    std::vector<std::vector<double>> learned;
    for (int k = 0; k < init.K; ++k) {
      std::vector<double> row(static_cast<size_t>(init.V));
      for (int v = 0; v < init.V; ++v) row[static_cast<size_t>(v)] = init.Phi(k, v);
      learned.push_back(std::move(row));
    }
    phi_before = GreedyMatchedCosine(ds.truth.phi, learned);
  }
  ASSERT_TRUE(sampler.Train().ok());
  core::ColdEstimates est = sampler.AveragedEstimates();

  // Topic recovery: matched cosine of phi rows.
  std::vector<std::vector<double>> learned_phi;
  for (int k = 0; k < est.K; ++k) {
    std::vector<double> row(static_cast<size_t>(est.V));
    for (int v = 0; v < est.V; ++v) row[static_cast<size_t>(v)] = est.Phi(k, v);
    learned_phi.push_back(std::move(row));
  }
  double phi_after = GreedyMatchedCosine(ds.truth.phi, learned_phi);
  EXPECT_GT(phi_after, 0.8);
  EXPECT_GT(phi_after, phi_before + 0.3);

  // Community recovery: NMI between planted and estimated dominant
  // community per post.
  std::vector<int> planted(ds.truth.post_community.begin(),
                           ds.truth.post_community.end());
  std::vector<int> estimated(sampler.state().post_community.begin(),
                             sampler.state().post_community.end());
  double nmi = NormalizedMutualInformation(planted, estimated);
  EXPECT_GT(nmi, 0.25) << "post-community NMI too low";
}

}  // namespace
}  // namespace cold::eval
