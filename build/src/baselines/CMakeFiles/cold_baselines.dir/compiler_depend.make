# Empty compiler generated dependencies file for cold_baselines.
# This may be replaced when dependencies are built.
