// Serial collapsed Gibbs sampler for COLD (§4.1, Appendix A).
//
// Per sweep: for every post, resample its community c_ij (Eq. 1) and topic
// z_ij (Eq. 3); for every positive link, resample the community pair
// (s_ii', s'_ii') (Eq. 2). Negative links never appear — they are folded
// into the Beta(lambda_0, lambda_1) prior on eta (§3.3), giving linear
// complexity in the data size (§4.2).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/cold_config.h"
#include "core/cold_estimates.h"
#include "core/cold_state.h"
#include "core/sparse_topic_kernel.h"
#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::core {

/// \brief Serial trainer. The parallel trainer (parallel_sampler.h) shares
/// the state layout and estimate extraction.
class ColdGibbsSampler {
 public:
  /// \param posts finalized post store.
  /// \param links the interaction network, or nullptr (forces
  ///        config.use_network = false behaviour).
  ColdGibbsSampler(ColdConfig config, const text::PostStore& posts,
                   const graph::Digraph* links);

  /// \brief Validates the config and draws the random initial assignment.
  cold::Status Init();

  /// \brief Runs one full Gibbs sweep (all posts, then all links).
  void RunIteration();

  /// \brief Full schedule: iterations sweeps, accumulating estimates every
  /// `sample_lag` sweeps after burn-in. Init() must have succeeded. Resumes
  /// from iterations_run(), so a sampler restored via RestoreState()
  /// continues the remaining sweeps bit-identically.
  cold::Status Train();

  /// \brief Serializes the complete sampler state (assignments, counters,
  /// RNG engine, sample accumulator, sweep index) into `out` for the
  /// checkpoint layer (checkpoint.h). Defined in checkpoint.cc.
  cold::Status SerializeState(std::string* out) const;

  /// \brief Restores state captured by SerializeState(). Init() must have
  /// succeeded against the same dataset, seed and schedule; every dimension
  /// and the counter/assignment consistency are validated before anything
  /// takes effect, so a corrupt payload leaves the sampler usable. Defined
  /// in checkpoint.cc.
  cold::Status RestoreState(const std::string& payload);

  /// \brief Observer invoked by Train() after every sweep with the 1-based
  /// sweep number — the hook `cold_train --metrics-out` uses to snapshot
  /// the telemetry registry per sweep. Pass an empty function to clear.
  void SetSweepCallback(std::function<void(int)> callback) {
    sweep_callback_ = std::move(callback);
  }

  /// \brief Fills `log_weights` (size K) with Eq. (3)'s unnormalized topic
  /// log-weights for post `d` under community `community`, evaluated
  /// against the *current* counters (the sweep removes d's own
  /// contribution first; callers probing a live state get the
  /// including-d weights). This is the lgamma-collapsed kernel the sweep
  /// uses — exposed so tests and benches can check it against the
  /// per-token reference loop. Not thread-safe (uses sampler scratch).
  void TopicLogWeights(text::PostId d, int community,
                       std::span<double> log_weights) const;

  /// \brief Eq. (3)'s unnormalized log-weight for a *single* topic `k` —
  /// the O(post length) evaluator the sparse MH accept step uses (the
  /// dense kernel above is O(K * length) for the full row). Exposed so the
  /// property tests can pin it against TopicLogWeights to 1e-9. Requires
  /// Init(); valid whether or not the sparse path is active.
  double TopicLogWeightOne(text::PostId d, int community, int k) const;

  /// \brief Whether topic draws use the sparse alias+MH path (resolved
  /// from config at Init()).
  bool sparse_topic_sampling() const { return sparse_active_; }

  /// \brief Max absolute difference between the incrementally-refreshed
  /// derived log caches and an exact from-counters recompute. Exactly 0.0
  /// when the caches are consistent (each refresh evaluates the same
  /// expression a rebuild would); the debug build asserts this at every
  /// periodic rebuild, and tests probe it directly.
  double MaxDerivedTableDrift() const;

  /// \brief Point estimates from the *current* sample (Appendix A).
  ColdEstimates EstimatesFromCurrentSample() const;

  /// \brief Estimates averaged over the post-burn-in samples collected by
  /// Train(); falls back to the current sample if none were collected.
  ColdEstimates AveragedEstimates() const;

  /// \brief Joint log-likelihood of training words, stamps and links under
  /// the current point estimates (the convergence monitor of §4.3).
  double TrainingLogLikelihood() const;

  const ColdState& state() const { return *state_; }
  ColdState& mutable_state() { return *state_; }
  const ColdConfig& config() const { return config_; }
  /// lambda_0 derived from the negative-link count (§3.3).
  double lambda0() const { return lambda0_; }
  int iterations_run() const { return iterations_run_; }

 private:
  void SamplePost(text::PostId d);
  void SamplePostCommunity(text::PostId d);
  void SamplePostTopic(text::PostId d);
  void SamplePostTopicSparse(text::PostId d);
  /// Fills scratch with the Eq. (3) prior mass
  /// (n_ck+α)(n_ckt+ε)/(n_ck+Tε) for all k — the alias proposal weights.
  void FillTopicPriorWeights(int c, int t, std::vector<double>* weights);
  void SampleLinkJoint(graph::EdgeId e);
  void SampleLinkAlternating(graph::EdgeId e);

  void RemovePost(text::PostId d);
  void AddPost(text::PostId d);

  bool UseJointLinkSampling() const;

  /// Recomputes every derived-value cache (cached logs / lgammas of
  /// counter+prior terms and the link weight table) from the current
  /// counters. Called at the end of Init() and after a checkpoint restore
  /// installs new counter tables.
  void RebuildDerivedTables();
  /// Refreshes the cached log terms touched by one post add/remove.
  void RefreshPostDerived(int c, int k, int t,
                          std::span<const text::WordId> words);
  /// Refreshes the cached link weight for block (c, c2) after n_cc moved.
  void RefreshLinkDerived(int c, int c2);

  ColdConfig config_;
  const text::PostStore& posts_;
  const graph::Digraph* links_;
  bool use_network_;
  double lambda0_ = 0.1;

  std::unique_ptr<ColdState> state_;
  cold::RandomSampler sampler_;

  // Scratch buffers reused across sweeps to avoid per-post allocation.
  std::vector<double> weights_c_;
  std::vector<double> log_weights_k_;
  std::vector<double> weights_joint_;
  std::vector<double> link_src_weights_;
  std::vector<double> link_dst_weights_;

  // Per-sweep derived-value caches, refreshed incrementally as counters
  // change so the hot kernels read precomputed logs instead of calling
  // std::log per (topic, token). Each entry is a pure function of one
  // integer counter plus fixed priors, so incremental refresh is exact.
  std::vector<double> log_nck_alpha_;    // C*K: log(n_ck + alpha)
  std::vector<double> log_nck_teps_;     // C*K: log(n_ck + T*epsilon)
  std::vector<double> log_nckt_eps_;     // C*K*T: log(n_ckt + epsilon)
  std::vector<double> log_nkv_beta_;     // K*V: log(n_kv + beta)
  std::vector<double> lgamma_nk_vbeta_;  // K: lgamma(n_k + V*beta)
  std::vector<double> w_link_;  // C*C: (n_cc+l1)/(n_cc+l0+l1), Eq. 2

  // Sparse topic path (sparse_topic_kernel.h): per-(c, t) alias proposals
  // over the prior mass, the integer-indexed lgamma table that makes the
  // single-topic MH evaluation O(post length), and its weight scratch.
  // All of it is derived state — rebuilt deterministically from counters,
  // never serialized — and the bank is invalidated wholesale at every
  // sweep start so sweep-boundary state (where checkpoints land) is
  // independent of staleness carried within a sweep.
  bool sparse_active_ = false;
  TopicAliasBank alias_bank_;
  LGammaTable lgamma_len_;
  std::vector<double> alias_weights_;

  std::unique_ptr<ColdEstimates> accumulated_;
  int num_accumulated_ = 0;
  int iterations_run_ = 0;
  bool initialized_ = false;
  std::function<void(int)> sweep_callback_;
};

/// \brief Extracts Appendix-A point estimates from any counter state (shared
/// by the serial and parallel samplers).
ColdEstimates ExtractEstimates(const ColdState& state,
                               const ColdConfig& config, double lambda0);

/// \brief Computes lambda_0 = kappa * ln(n_neg / C^2), floored at lambda_1
/// so the Beta prior stays proper even on dense toy graphs.
double ComputeLambda0(const ColdConfig& config, int num_users,
                      int64_t num_links);

}  // namespace cold::core
