#include "core/parallel_sampler.h"

#include <algorithm>
#include <cmath>

#include "core/gibbs_sampler.h"
#include "core/sparse_topic_kernel.h"
#include "engine/partitioner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/math_util.h"
#include "util/simd.h"
#include "util/stopwatch.h"

namespace cold::core {

namespace {
constexpr size_t kMaxWorkers = 256;

/// Per-superstep throughput telemetry for the parallel trainer, mirroring
/// the serial sampler's cold/gibbs/* gauges. stale_clamp_total counts every
/// negative-count clamp in the sampling kernels: nonzero only when the
/// legacy shared-counter mode races (the delta-table mode reads frozen
/// counts whose own-contribution exclusion is exact, so it stays at zero).
struct ParallelMetrics {
  obs::Counter* supersteps;
  obs::Gauge* superstep_seconds;
  obs::Gauge* tokens_per_second;
  obs::Counter* stale_clamps;
};

ParallelMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static ParallelMetrics metrics{
      registry.GetCounter("cold/parallel/supersteps"),
      registry.GetGauge("cold/parallel/superstep_seconds"),
      registry.GetGauge("cold/parallel/tokens_per_second"),
      registry.GetCounter("cold/parallel/stale_clamp_total")};
  return metrics;
}

}  // namespace

/// Vertex program implementing Alg 2. See file header of
/// parallel_sampler.h for the counter-placement discussion.
class ColdVertexProgram {
 public:
  using Graph = engine::PropertyGraph<ColdVertex, ColdEdge>;
  using GatherType = std::vector<int32_t>;
  static constexpr engine::GatherEdges kGatherEdges = engine::GatherEdges::kAll;

  ColdVertexProgram(const ColdConfig& config, const text::PostStore& posts,
                    const graph::Digraph* links, ParallelColdState* state,
                    const Graph* graph, bool use_network, double lambda0,
                    bool legacy_shared_counters)
      : config_(config),
        posts_(posts),
        links_(links),
        state_(state),
        graph_(graph),
        use_network_(use_network),
        legacy_(legacy_shared_counters),
        lambda0_(lambda0),
        // Derived prior constants hoisted once — the scatter kernels run per
        // token per superstep and should not re-resolve them.
        rho_(config.ResolvedRho()),
        alpha_(config.ResolvedAlpha()),
        kalpha_(config.num_topics * config.ResolvedAlpha()),
        teps_(posts.num_time_slices() * config.epsilon),
        vbeta_(state->V() * config.beta),
        scratch_(kMaxWorkers) {
    if (legacy_) return;
    const size_t C = static_cast<size_t>(config.num_communities);
    const size_t K = static_cast<size_t>(config.num_topics);
    const size_t T = static_cast<size_t>(posts.num_time_slices());
    const size_t V = static_cast<size_t>(state->V());
    comm_factor_.resize(K * C);
    topic_ck_.resize(C * K);
    log_nckt_eps_.resize(C * T * K);
    log_nkv_beta_.resize(V * K);
    lgamma_nk_vbeta_.resize(K);
    for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
      max_post_len_ = std::max(max_post_len_, posts_.length(d));
    }
    denom_.resize(static_cast<size_t>(max_post_len_ + 1) * K);
    if (use_network_) {
      w_link_.resize(C * C);
      w_link_in_.resize(C * C);
    }
    // Sparse topic path: alias rows live only within a superstep (rebuilt
    // eagerly from the frozen counters in PreScatter, so their content is
    // independent of worker count), and the integer-indexed lgamma table
    // serves the single-topic MH evaluations.
    sparse_ = config.UseSparseTopicSampling();
    if (sparse_) {
      sparse_mh_steps_ = config.sparse_mh_steps;
      alias_bank_.Reset(static_cast<int>(C), static_cast<int>(T),
                        static_cast<int>(K), /*rebuild_budget=*/1);
      lgamma_tab_.Build(vbeta_, posts.num_tokens() + max_post_len_);
    }
  }

  GatherType GatherInit() const { return {}; }

  // Gather: lines 1-10 of Alg 2 — community counts for user vertices,
  // community-topic counts for time vertices.
  void Gather(const Graph& g, engine::VertexId v, engine::EdgeId e,
              GatherType* acc) const {
    const ColdVertex& vd = g.vertex_data(v);
    const ColdEdge& ed = g.edge_data(e);
    const int C = config_.num_communities;
    if (vd.is_user) {
      if (acc->empty()) acc->assign(static_cast<size_t>(C), 0);
      if (ed.type == ColdEdge::Type::kUserTime) {
        // Only the user-side endpoint gathers posts.
        if (g.src(e) == v) {
          for (text::PostId d : ed.posts) {
            (*acc)[static_cast<size_t>(
                state_->post_community[static_cast<size_t>(d)])]++;
          }
        }
      } else {
        // A user-user edge contributes s to its src and s' to its dst.
        if (g.src(e) == v) {
          (*acc)[static_cast<size_t>(
              state_->link_src_community[static_cast<size_t>(ed.link)])]++;
        } else {
          (*acc)[static_cast<size_t>(
              state_->link_dst_community[static_cast<size_t>(ed.link)])]++;
        }
      }
    } else {
      // Time vertex: count (c, k) pairs of incident posts.
      const int K = config_.num_topics;
      if (acc->empty()) acc->assign(static_cast<size_t>(C) * K, 0);
      if (ed.type == ColdEdge::Type::kUserTime) {
        for (text::PostId d : ed.posts) {
          int c = state_->post_community[static_cast<size_t>(d)];
          int k = state_->post_topic[static_cast<size_t>(d)];
          (*acc)[static_cast<size_t>(c) * K + k]++;
        }
      }
    }
  }

  // Apply: lines 12-17 of Alg 2 — write the rebuilt vertex-owned counters.
  void Apply(Graph* g, engine::VertexId v, const GatherType& acc) {
    const ColdVertex& vd = g->vertex_data(v);
    const int C = config_.num_communities;
    if (vd.is_user) {
      for (int c = 0; c < C; ++c) {
        int32_t value = acc.empty() ? 0 : acc[static_cast<size_t>(c)];
        state_->n_ic(vd.index, c).store(value, std::memory_order_relaxed);
      }
    } else {
      const int K = config_.num_topics;
      for (int c = 0; c < C; ++c) {
        for (int k = 0; k < K; ++k) {
          int32_t value =
              acc.empty() ? 0 : acc[static_cast<size_t>(c) * K + k];
          state_->n_ckt(c, k, vd.index)
              .store(value, std::memory_order_relaxed);
        }
      }
    }
  }

  // Scatter: lines 19-26 of Alg 2 — draw new assignments.
  void Scatter(Graph* g, engine::EdgeId e, engine::WorkerContext* ctx) {
    ColdEdge& ed = g->edge_data(e);
    Scratch& scratch = GetScratch(ctx->worker_index);
    if (legacy_) {
      if (ed.type == ColdEdge::Type::kUserTime) {
        for (text::PostId d : ed.posts) {
          SamplePostCommunity(d, &scratch, ctx->sampler);
          SamplePostTopic(d, &scratch, ctx->sampler);
        }
      } else if (use_network_) {
        SampleLink(ed.link, &scratch, ctx->sampler);
      }
      return;
    }
    int32_t* delta = state_->delta(ctx->worker_index);
    if (ed.type == ColdEdge::Type::kUserTime) {
      for (text::PostId d : ed.posts) {
        SamplePostDelta(d, delta, &scratch, ctx->sampler);
      }
    } else if (use_network_) {
      SampleLinkDelta(ed.link, delta, &scratch, ctx->sampler);
    }
  }

  /// Delta mode setup, run after apply under the superstep barrier: the
  /// canonical counters are final for this superstep, so rebuild the
  /// derived log/lgamma caches from them and make sure every pool worker
  /// has a delta buffer.
  void PreScatter(cold::ThreadPool* pool) {
    if (legacy_) return;
    state_->EnsureDeltaBuffers(pool->num_threads());
    RebuildDerivedCaches(pool);
  }

  /// Superstep-boundary reduction: folds every worker's delta buffer into
  /// the canonical tables (striped across the pool; each cell is summed
  /// over workers in fixed order, so the merged counts are deterministic)
  /// and flushes the per-worker clamp tallies to the registry counter.
  void PostScatter(cold::ThreadPool* pool) {
    int64_t clamps = 0;
    for (Scratch& s : scratch_) {
      clamps += s.clamps;
      s.clamps = 0;
    }
    if (clamps > 0) Metrics().stale_clamps->Increment(clamps);
    if (legacy_ || defer_merge_) return;
    COLD_TRACE_SPAN("parallel/merge");
    const size_t n = state_->delta_size();
    pool->ParallelFor(n, [this](size_t begin, size_t end, size_t) {
      state_->MergeDeltaRange(begin, end);
    });
  }

  void PostSuperstep(Graph*, int) {}

  /// \brief Distributed mode: leave scattered deltas in the per-worker
  /// buffers at the superstep boundary instead of merging them, so the
  /// trainer can drain them into the node's exchange payload
  /// (RunSuperstepSharded). Delta mode only.
  void set_defer_delta_merge(bool defer) { defer_merge_ = defer; }

  /// Bytes of the global aggregator state broadcast each superstep:
  /// n_ck, n_c, n_kv, n_k, n_cc.
  int64_t GlobalStateBytes() const {
    const int64_t C = config_.num_communities;
    const int64_t K = config_.num_topics;
    const int64_t V = state_->V();
    return 4 * (C * K + C + K * V + K + C * C);
  }

  /// Work units: tokens plus per-post sampling cost for post edges; the
  /// link-table cost for link edges.
  int64_t EdgeWorkUnits(engine::EdgeId e) const {
    const ColdEdge& ed = graph_->edge_data(e);
    const int64_t C = config_.num_communities;
    const int64_t K = config_.num_topics;
    if (ed.type == ColdEdge::Type::kUserTime) {
      int64_t units = 0;
      for (text::PostId d : ed.posts) {
        units += posts_.length(d) + C + K;
      }
      return units;
    }
    return 2 * C;
  }

 private:
  struct Scratch {
    std::vector<double> weights_c;
    std::vector<double> log_weights_k;
    /// Negative-count clamps observed by this worker since the last flush
    /// (PostScatter). Kept worker-local so the hot path never touches a
    /// shared counter.
    int64_t clamps = 0;
  };

  Scratch& GetScratch(size_t worker) {
    Scratch& s = scratch_[worker];
    if (s.weights_c.empty()) {
      s.weights_c.resize(static_cast<size_t>(config_.num_communities));
      s.log_weights_k.resize(static_cast<size_t>(config_.num_topics));
    }
    return s;
  }

  /// Floors a count at zero, tallying the clamp (stale-count observability;
  /// see cold/parallel/stale_clamp_total).
  static double ClampNonNeg(double v, Scratch* scratch) {
    if (v < 0.0) {
      scratch->clamps++;
      return 0.0;
    }
    return v;
  }

  /// \brief Rebuilds the derived-value caches from the canonical counters
  /// (the parallel analogue of the serial sampler's RebuildDerivedTables).
  /// Runs under the superstep barrier while the counters are stable; only
  /// the K*V word-log table is big enough to parallelize.
  void RebuildDerivedCaches(cold::ThreadPool* pool) {
    COLD_TRACE_SPAN("parallel/cache_rebuild");
    const int C = config_.num_communities;
    const int K = config_.num_topics;
    const int T = posts_.num_time_slices();
    const int V = state_->V();
    const double epsilon = config_.epsilon;
    for (int c = 0; c < C; ++c) {
      for (int k = 0; k < K; ++k) {
        const double n_ck = state_->r_n_ck(c, k);
        const double n_c = state_->r_n_c(c);
        // Transposed [k*C + c]: the community kernel scans c for a fixed k.
        comm_factor_[static_cast<size_t>(k) * C + c] =
            (n_ck + alpha_) / ((n_c + kalpha_) * (n_ck + teps_));
        topic_ck_[static_cast<size_t>(c) * K + k] =
            std::log(n_ck + alpha_) - std::log(n_ck + teps_);
        // Transposed [(c*T + t)*K + k]: the topic kernel scans k for a
        // fixed (c, t).
        for (int t = 0; t < T; ++t) {
          log_nckt_eps_[(static_cast<size_t>(c) * T + t) * K + k] =
              std::log(state_->r_n_ckt(c, k, t) + epsilon);
        }
      }
    }
    // Transposed [v*K + k]: the word loop adds one contiguous K-row per
    // token instead of K scattered loads — the hottest reads of the topic
    // kernel.
    pool->ParallelFor(static_cast<size_t>(V),
                      [this, K](size_t begin, size_t end, size_t) {
                        for (size_t v = begin; v < end; ++v) {
                          for (int k = 0; k < K; ++k) {
                            log_nkv_beta_[v * K + k] = std::log(
                                state_->r_n_kv(k, static_cast<int>(v)) +
                                config_.beta);
                          }
                        }
                      });
    // Length-denominator table, transposed [len*K + k]: log ascending
    // factorial of (n_k + V*beta) over `len` steps, built incrementally so
    // the whole table costs one log per cell. Makes the per-post length
    // term a contiguous K-row lookup for every topic except the post's own.
    for (int k = 0; k < K; ++k) {
      const double base = state_->r_n_k(k) + vbeta_;
      lgamma_nk_vbeta_[k] = cold::LGamma(base);
      double acc = 0.0;
      denom_[static_cast<size_t>(k)] = 0.0;
      for (int len = 1; len <= max_post_len_; ++len) {
        acc += std::log(base + (len - 1));
        denom_[static_cast<size_t>(len) * K + k] = acc;
      }
    }
    if (use_network_) {
      const double lambda1 = config_.lambda1;
      for (int c = 0; c < C; ++c) {
        for (int c2 = 0; c2 < C; ++c2) {
          const double n = state_->r_n_cc(c, c2);
          const double w = (n + lambda1) / (n + lambda0_ + lambda1);
          // Row-major for the s'|s scan (fixed src community s1), column-
          // major copy for the s|s' scan (fixed dst community s').
          w_link_[static_cast<size_t>(c) * C + c2] = w;
          w_link_in_[static_cast<size_t>(c2) * C + c] = w;
        }
      }
    }
    // Sparse path: rebuild every (c, t) alias row from the same frozen
    // counters. Rows are independent, so the rebuild parallelizes freely
    // and the result is identical at any worker count.
    if (sparse_) {
      pool->ParallelFor(
          static_cast<size_t>(C) * static_cast<size_t>(T),
          [this, T, K, epsilon](size_t begin, size_t end, size_t) {
            std::vector<double> wts(static_cast<size_t>(K));
            for (size_t r = begin; r < end; ++r) {
              const int c = static_cast<int>(r / static_cast<size_t>(T));
              const int t = static_cast<int>(r % static_cast<size_t>(T));
              for (int k = 0; k < K; ++k) {
                const double nck = state_->r_n_ck(c, k);
                wts[static_cast<size_t>(k)] =
                    (nck + alpha_) *
                    (state_->r_n_ckt(c, k, t) + epsilon) / (nck + teps_);
              }
              alias_bank_.RebuildRow(c, t, wts);
            }
          });
    }
  }

  // Eq. (1) with own-contribution exclusion against shared counters.
  void SamplePostCommunity(text::PostId d, Scratch* scratch,
                           cold::RandomSampler* sampler) {
    const int C = config_.num_communities;
    const double epsilon = config_.epsilon;
    const int c0 = state_->post_community[static_cast<size_t>(d)];
    const int k = state_->post_topic[static_cast<size_t>(d)];
    const int t = posts_.time(d);
    const text::UserId i = posts_.author(d);

    for (int c = 0; c < C; ++c) {
      int own = (c == c0) ? 1 : 0;
      double n_ick = state_->r_n_ic(i, c) - own;
      double n_ck = state_->r_n_ck(c, k) - own;
      double n_c = state_->r_n_c(c) - own;
      double n_ckt = state_->r_n_ckt(c, k, t) - own;
      // Stale counts can transiently dip below zero; clamp (and count).
      n_ick = ClampNonNeg(n_ick, scratch);
      n_ck = ClampNonNeg(n_ck, scratch);
      n_c = ClampNonNeg(n_c, scratch);
      n_ckt = ClampNonNeg(n_ckt, scratch);
      scratch->weights_c[static_cast<size_t>(c)] =
          (n_ick + rho_) * ((n_ck + alpha_) / (n_c + kalpha_)) *
          ((n_ckt + epsilon) / (n_ck + teps_));
    }
    int c1 = sampler->Categorical(scratch->weights_c);
    if (c1 != c0) {
      state_->post_community[static_cast<size_t>(d)] =
          static_cast<int32_t>(c1);
      state_->n_ic(i, c0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ic(i, c1).fetch_add(1, std::memory_order_relaxed);
      state_->n_ck(c0, k).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ck(c1, k).fetch_add(1, std::memory_order_relaxed);
      state_->n_c(c0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_c(c1).fetch_add(1, std::memory_order_relaxed);
      state_->n_ckt(c0, k, t).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ckt(c1, k, t).fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Eq. (3) with own-contribution exclusion.
  void SamplePostTopic(text::PostId d, Scratch* scratch,
                       cold::RandomSampler* sampler) {
    const int K = config_.num_topics;
    const double beta = config_.beta;
    const double epsilon = config_.epsilon;
    const int c = state_->post_community[static_cast<size_t>(d)];
    const int k0 = state_->post_topic[static_cast<size_t>(d)];
    const int t = posts_.time(d);
    const int len = posts_.length(d);

    const auto word_pairs = posts_.word_pairs(d);

    // Same lgamma-collapsed form as the serial TopicLogWeights; here the
    // counters are shared atomics so the log terms are computed live, but
    // the ascending-factorial loops still collapse to lgamma pairs.
    for (int k = 0; k < K; ++k) {
      int own = (k == k0) ? 1 : 0;
      double n_ck = ClampNonNeg(state_->r_n_ck(c, k) - own, scratch);
      double n_ckt = ClampNonNeg(state_->r_n_ckt(c, k, t) - own, scratch);
      double lw = std::log(n_ck + alpha_) +
                  std::log((n_ckt + epsilon) / (n_ck + teps_));
      for (const auto& [w, cnt] : word_pairs) {
        double base =
            ClampNonNeg(state_->r_n_kv(k, w) - own * cnt, scratch) + beta;
        lw += cold::LogAscendingFactorial(base, cnt);
      }
      double denom =
          ClampNonNeg(state_->r_n_k(k) - own * len, scratch) + vbeta_;
      lw -= cold::LogAscendingFactorial(denom, len);
      scratch->log_weights_k[static_cast<size_t>(k)] = lw;
    }
    int k1 = sampler->LogCategorical(scratch->log_weights_k);
    if (k1 != k0) {
      state_->post_topic[static_cast<size_t>(d)] = static_cast<int32_t>(k1);
      state_->n_ck(c, k0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ck(c, k1).fetch_add(1, std::memory_order_relaxed);
      state_->n_ckt(c, k0, t).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ckt(c, k1, t).fetch_add(1, std::memory_order_relaxed);
      for (text::WordId w : posts_.words(d)) {
        state_->n_kv(k0, w).fetch_sub(1, std::memory_order_relaxed);
        state_->n_kv(k1, w).fetch_add(1, std::memory_order_relaxed);
      }
      state_->n_k(k0).fetch_sub(len, std::memory_order_relaxed);
      state_->n_k(k1).fetch_add(len, std::memory_order_relaxed);
    }
  }

  // Eq. (2), alternating conditionals (cheap and race-tolerant).
  void SampleLink(graph::EdgeId link, Scratch* scratch,
                  cold::RandomSampler* sampler) {
    const int C = config_.num_communities;
    const double lambda1 = config_.lambda1;
    const graph::Edge& edge = links_->edge(link);
    const int s0 = state_->link_src_community[static_cast<size_t>(link)];
    const int s20 = state_->link_dst_community[static_cast<size_t>(link)];

    // s | s'.
    for (int cc = 0; cc < C; ++cc) {
      int own = (cc == s0) ? 1 : 0;
      double n_ic =
          ClampNonNeg(state_->r_n_ic(edge.src, cc) - own, scratch);
      double n = ClampNonNeg(state_->r_n_cc(cc, s20) - own, scratch);
      scratch->weights_c[static_cast<size_t>(cc)] =
          (n_ic + rho_) * (n + lambda1) / (n + lambda0_ + lambda1);
    }
    int s1 = sampler->Categorical(scratch->weights_c);

    // s' | s (own contribution now sits at (s1, s20) only if s1 == s0).
    for (int cc = 0; cc < C; ++cc) {
      int own = (cc == s20) ? 1 : 0;
      double n_ic =
          ClampNonNeg(state_->r_n_ic(edge.dst, cc) - own, scratch);
      int own_pair = (s1 == s0 && cc == s20) ? 1 : 0;
      double n = ClampNonNeg(state_->r_n_cc(s1, cc) - own_pair, scratch);
      scratch->weights_c[static_cast<size_t>(cc)] =
          (n_ic + rho_) * (n + lambda1) / (n + lambda0_ + lambda1);
    }
    int s21 = sampler->Categorical(scratch->weights_c);

    if (s1 != s0) {
      state_->link_src_community[static_cast<size_t>(link)] =
          static_cast<int32_t>(s1);
      state_->n_ic(edge.src, s0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ic(edge.src, s1).fetch_add(1, std::memory_order_relaxed);
    }
    if (s21 != s20) {
      state_->link_dst_community[static_cast<size_t>(link)] =
          static_cast<int32_t>(s21);
      state_->n_ic(edge.dst, s20).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ic(edge.dst, s21).fetch_add(1, std::memory_order_relaxed);
    }
    if (s1 != s0 || s21 != s20) {
      state_->n_cc(s0, s20).fetch_sub(1, std::memory_order_relaxed);
      state_->n_cc(s1, s21).fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Eqs. (1)+(3) in delta mode. The canonical counters are frozen at their
  // pre-superstep values, so this post's own contribution sits exactly at
  // its frozen assignment (c0, k0): exclusion is exact (no clamps can fire)
  // and every term not involving (c0, k0) comes from the per-superstep
  // caches instead of live logs. Updates go to the worker's delta buffer.
  void SamplePostDelta(text::PostId d, int32_t* delta, Scratch* scratch,
                       cold::RandomSampler* sampler) {
    const int C = config_.num_communities;
    const int K = config_.num_topics;
    const int T = posts_.num_time_slices();
    const double beta = config_.beta;
    const double epsilon = config_.epsilon;
    const int c0 = state_->post_community[static_cast<size_t>(d)];
    const int k0 = state_->post_topic[static_cast<size_t>(d)];
    const int t = posts_.time(d);
    const int len = posts_.length(d);
    const text::UserId i = posts_.author(d);

    // --- community draw, Eq. (1) ---
    const double* comm_row = &comm_factor_[static_cast<size_t>(k0) * C];
    for (int c = 0; c < C; ++c) {
      scratch->weights_c[static_cast<size_t>(c)] =
          (state_->r_n_ic(i, c) + rho_) * comm_row[c] *
          (state_->r_n_ckt(c, k0, t) + epsilon);
    }
    {
      // Own-contribution fixup at c0; frozen counts make the exclusion
      // exact.
      double n_ick = ClampNonNeg(state_->r_n_ic(i, c0) - 1, scratch);
      double n_ck = ClampNonNeg(state_->r_n_ck(c0, k0) - 1, scratch);
      double n_c = ClampNonNeg(state_->r_n_c(c0) - 1, scratch);
      double n_ckt = ClampNonNeg(state_->r_n_ckt(c0, k0, t) - 1, scratch);
      scratch->weights_c[static_cast<size_t>(c0)] =
          (n_ick + rho_) * ((n_ck + alpha_) / (n_c + kalpha_)) *
          ((n_ckt + epsilon) / (n_ck + teps_));
    }
    const int c1 = sampler->Categorical(scratch->weights_c);
    if (c1 != c0) {
      state_->post_community[static_cast<size_t>(d)] =
          static_cast<int32_t>(c1);
      delta[state_->dx_n_ic(i, c0)]--;
      delta[state_->dx_n_ic(i, c1)]++;
      delta[state_->dx_n_ck(c0, k0)]--;
      delta[state_->dx_n_ck(c1, k0)]++;
      delta[state_->dx_n_c(c0)]--;
      delta[state_->dx_n_c(c1)]++;
      delta[state_->dx_n_ckt(c0, k0, t)]--;
      delta[state_->dx_n_ckt(c1, k0, t)]++;
    }

    // --- topic draw, Eq. (3), conditioned on the fresh community ---
    // (The frozen (c, k) cell contains this post only when the community
    // draw kept c0; the frozen word/length counts contain it at k0 always.)
    const auto word_pairs = posts_.word_pairs(d);

    // Exact own-excluded log-weight at the post's frozen topic k0, all
    // terms recomputed live against the frozen counters.
    auto eval_own = [&]() -> double {
      double own;
      if (c1 == c0) {
        double n_ck = ClampNonNeg(state_->r_n_ck(c1, k0) - 1, scratch);
        double n_ckt = ClampNonNeg(state_->r_n_ckt(c1, k0, t) - 1, scratch);
        own = std::log(n_ck + alpha_) +
              std::log((n_ckt + epsilon) / (n_ck + teps_));
      } else {
        own = topic_ck_[static_cast<size_t>(c1) * K + k0] +
              log_nckt_eps_[(static_cast<size_t>(c1) * T + t) * K + k0];
      }
      for (const auto& [w, cnt] : word_pairs) {
        double base =
            ClampNonNeg(state_->r_n_kv(k0, w) - cnt, scratch) + beta;
        own += cold::LogAscendingFactorial(base, cnt);
      }
      if (sparse_) {
        // Own-excluded denominator via two lgamma-table reads.
        int64_t nk = state_->r_n_k(k0) - len;
        if (nk < 0) {
          scratch->clamps++;
          nk = 0;
        }
        own -= lgamma_tab_.LogAscFactorial(nk, len);
      } else {
        // Denominator with own words removed: lgamma(n_k + Vbeta) is
        // cached, leaving a single live lgamma per post.
        double base = ClampNonNeg(state_->r_n_k(k0) - len, scratch) + vbeta_;
        own -=
            lgamma_nk_vbeta_[static_cast<size_t>(k0)] - cold::LGamma(base);
      }
      return own;
    };

    int k1;
    if (sparse_) {
      // Alias + MH: the per-superstep (c, t) alias row proposes from the
      // prior mass; each accept test evaluates the exact log-weight for
      // one topic in O(post length) via the frozen cache rows.
      auto eval_one = [&](int k) -> double {
        if (k == k0) return eval_own();
        double v = topic_ck_[static_cast<size_t>(c1) * K + k] +
                   log_nckt_eps_[(static_cast<size_t>(c1) * T + t) * K + k] -
                   denom_[static_cast<size_t>(len) * K + k];
        for (const auto& [w, cnt] : word_pairs) {
          if (cnt == 1) {
            v += log_nkv_beta_[static_cast<size_t>(w) * K + k];
          } else {
            v += cold::LogAscendingFactorial(state_->r_n_kv(k, w) + beta,
                                             cnt);
          }
        }
        return v;
      };
      k1 = MhTopicDraw(alias_bank_.Row(c1, t), k0, sparse_mh_steps_,
                       *sampler, eval_one);
    } else {
      // Dense scan: all topics take the cached path first — every read is
      // a contiguous K-row, vectorized (util/simd.h; the AVX2 and scalar
      // forms are bit-identical) — then k0 is overwritten with the live
      // own-excluded value.
      double* lw = scratch->log_weights_k.data();
      const size_t nk = static_cast<size_t>(K);
      simd::AddSubRows(&topic_ck_[static_cast<size_t>(c1) * K],
                       &log_nckt_eps_[(static_cast<size_t>(c1) * T + t) * K],
                       &denom_[static_cast<size_t>(len) * K], lw, nk);
      for (const auto& [w, cnt] : word_pairs) {
        if (cnt == 1) {
          simd::Accumulate(lw, &log_nkv_beta_[static_cast<size_t>(w) * K],
                           nk);
        } else {
          for (int k = 0; k < K; ++k) {
            lw[k] += cold::LogAscendingFactorial(state_->r_n_kv(k, w) + beta,
                                                 cnt);
          }
        }
      }
      lw[k0] = eval_own();
      k1 = sampler->LogCategorical(scratch->log_weights_k);
    }
    if (k1 != k0) {
      state_->post_topic[static_cast<size_t>(d)] = static_cast<int32_t>(k1);
      // Composes with the community deltas above: the net over both draws
      // moves the post from (c0, k0) to (c1, k1).
      delta[state_->dx_n_ck(c1, k0)]--;
      delta[state_->dx_n_ck(c1, k1)]++;
      delta[state_->dx_n_ckt(c1, k0, t)]--;
      delta[state_->dx_n_ckt(c1, k1, t)]++;
      for (text::WordId w : posts_.words(d)) {
        delta[state_->dx_n_kv(k0, w)]--;
        delta[state_->dx_n_kv(k1, w)]++;
      }
      delta[state_->dx_n_k(k0)] -= len;
      delta[state_->dx_n_k(k1)] += len;
    }
  }

  // Eq. (2) in delta mode: same alternating conditionals as SampleLink, but
  // against frozen counts (exact own-exclusion) with the link weight ratio
  // (n_cc + l1) / (n_cc + l0 + l1) cached per community pair.
  void SampleLinkDelta(graph::EdgeId link, int32_t* delta, Scratch* scratch,
                       cold::RandomSampler* sampler) {
    const int C = config_.num_communities;
    const double lambda1 = config_.lambda1;
    const graph::Edge& edge = links_->edge(link);
    const int s0 = state_->link_src_community[static_cast<size_t>(link)];
    const int s20 = state_->link_dst_community[static_cast<size_t>(link)];

    // s | s': cached column of incoming-link ratios for fixed s', then the
    // own-contribution fixup at s0 (exact against frozen counts).
    const double* w_in = &w_link_in_[static_cast<size_t>(s20) * C];
    for (int cc = 0; cc < C; ++cc) {
      scratch->weights_c[static_cast<size_t>(cc)] =
          (state_->r_n_ic(edge.src, cc) + rho_) * w_in[cc];
    }
    {
      double n_ic = ClampNonNeg(state_->r_n_ic(edge.src, s0) - 1, scratch);
      double n = ClampNonNeg(state_->r_n_cc(s0, s20) - 1, scratch);
      scratch->weights_c[static_cast<size_t>(s0)] =
          (n_ic + rho_) * (n + lambda1) / (n + lambda0_ + lambda1);
    }
    const int s1 = sampler->Categorical(scratch->weights_c);

    // s' | s: cached row for fixed s, with fixups at the dst's own n_ic
    // cell (s20) and — only if the first draw kept s0 — the own n_cc cell.
    const double* w_out = &w_link_[static_cast<size_t>(s1) * C];
    for (int cc = 0; cc < C; ++cc) {
      scratch->weights_c[static_cast<size_t>(cc)] =
          (state_->r_n_ic(edge.dst, cc) + rho_) * w_out[cc];
    }
    {
      double n_ic = ClampNonNeg(state_->r_n_ic(edge.dst, s20) - 1, scratch);
      double n = ClampNonNeg(
          state_->r_n_cc(s1, s20) - (s1 == s0 ? 1 : 0), scratch);
      scratch->weights_c[static_cast<size_t>(s20)] =
          (n_ic + rho_) * (n + lambda1) / (n + lambda0_ + lambda1);
    }
    const int s21 = sampler->Categorical(scratch->weights_c);

    if (s1 != s0) {
      state_->link_src_community[static_cast<size_t>(link)] =
          static_cast<int32_t>(s1);
      delta[state_->dx_n_ic(edge.src, s0)]--;
      delta[state_->dx_n_ic(edge.src, s1)]++;
    }
    if (s21 != s20) {
      state_->link_dst_community[static_cast<size_t>(link)] =
          static_cast<int32_t>(s21);
      delta[state_->dx_n_ic(edge.dst, s20)]--;
      delta[state_->dx_n_ic(edge.dst, s21)]++;
    }
    if (s1 != s0 || s21 != s20) {
      delta[state_->dx_n_cc(s0, s20)]--;
      delta[state_->dx_n_cc(s1, s21)]++;
    }
  }

  const ColdConfig& config_;
  const text::PostStore& posts_;
  const graph::Digraph* links_;
  ParallelColdState* state_;
  const Graph* graph_;
  bool use_network_;
  bool legacy_;    // legacy shared-atomic mode (A/B baseline)
  bool defer_merge_ = false;  // distributed mode: skip the boundary merge
  double lambda0_;
  double rho_;     // resolved membership prior
  double alpha_;   // resolved topic prior
  double kalpha_;  // K * alpha
  double teps_;    // T * epsilon
  double vbeta_;   // V * beta
  std::vector<Scratch> scratch_;

  // Delta-mode derived caches, rebuilt once per superstep from the frozen
  // canonical counters (RebuildDerivedCaches). Layouts are transposed to
  // put the kernel's scan dimension innermost (see the rebuild comments).
  int max_post_len_ = 0;
  std::vector<double> comm_factor_;     // [k*C+c] (n_ck+a)/((n_c+Ka)(n_ck+Te))
  std::vector<double> topic_ck_;        // [c*K+k] log(n_ck+a) - log(n_ck+Te)
  std::vector<double> log_nckt_eps_;    // [(c*T+t)*K+k] log(n_ckt+e)
  std::vector<double> log_nkv_beta_;    // [v*K+k] log(n_kv+b)
  std::vector<double> lgamma_nk_vbeta_; // [k] lgamma(n_k+Vb)
  std::vector<double> denom_;           // [len*K+k] log asc. factorial table
  std::vector<double> w_link_;          // [c*C+c2] (n_cc+l1)/(n_cc+l0+l1)
  std::vector<double> w_link_in_;       // [c2*C+c] transposed copy

  // Sparse topic path (sparse_topic_kernel.h): per-(c, t) alias proposals
  // rebuilt every superstep from the frozen counters, and the lgamma table
  // the own-excluded length term reads. Delta mode only.
  bool sparse_ = false;
  int sparse_mh_steps_ = 2;
  TopicAliasBank alias_bank_;
  LGammaTable lgamma_tab_;
};

ParallelColdTrainer::ParallelColdTrainer(ColdConfig config,
                                         const text::PostStore& posts,
                                         const graph::Digraph* links,
                                         engine::EngineOptions engine_options)
    : config_(config),
      posts_(posts),
      links_(links),
      use_network_(config.use_network && links != nullptr &&
                   links->num_edges() > 0),
      engine_options_(engine_options) {}

ParallelColdTrainer::~ParallelColdTrainer() = default;

cold::Status ParallelColdTrainer::Init() {
  COLD_RETURN_NOT_OK(config_.Validate());
  if (!posts_.finalized()) {
    return cold::Status::FailedPrecondition("post store not finalized");
  }
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  const int U = posts_.num_users();
  const int T = posts_.num_time_slices();
  int64_t num_links = use_network_ ? links_->num_edges() : 0;
  lambda0_ = use_network_ ? ComputeLambda0(config_, U, num_links)
                          : config_.lambda1;

  // Same vocab-size rule as the serial sampler: prefer the dataset-wide
  // vocabulary from config_.vocab_size over the training-split max word id,
  // which under-sizes n_kv/phi when held-out posts carry higher ids.
  int max_word = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) max_word = std::max(max_word, w + 1);
  }
  int vocab = max_word;
  if (config_.vocab_size > 0) {
    if (max_word > config_.vocab_size) {
      return cold::Status::InvalidArgument(
          "vocab_size " + std::to_string(config_.vocab_size) +
          " is smaller than max word id + 1 (" + std::to_string(max_word) +
          ")");
    }
    vocab = config_.vocab_size;
  }
  state_ = std::make_unique<ParallelColdState>(U, C, K, T, vocab,
                                               posts_.num_posts(), num_links);

  // Build the bipartite user-time graph plus user-user edges (Fig 4).
  graph_ = std::make_unique<Graph>();
  for (int i = 0; i < U; ++i) {
    graph_->AddVertex(ColdVertex{true, i});
  }
  for (int t = 0; t < T; ++t) {
    graph_->AddVertex(ColdVertex{false, t});
  }
  // Group each user's posts by time slice.
  for (int i = 0; i < U; ++i) {
    // Time slices are few; a local map via sort keeps this allocation-light.
    auto user_posts = posts_.posts_of(i);
    std::vector<text::PostId> sorted(user_posts.begin(), user_posts.end());
    std::sort(sorted.begin(), sorted.end(),
              [this](text::PostId a, text::PostId b) {
                return posts_.time(a) < posts_.time(b);
              });
    size_t p = 0;
    while (p < sorted.size()) {
      text::TimeSlice t = posts_.time(sorted[p]);
      ColdEdge edge;
      edge.type = ColdEdge::Type::kUserTime;
      while (p < sorted.size() && posts_.time(sorted[p]) == t) {
        edge.posts.push_back(sorted[p]);
        ++p;
      }
      graph_->AddEdge(static_cast<engine::VertexId>(i),
                      static_cast<engine::VertexId>(U + t), std::move(edge));
    }
  }
  if (use_network_) {
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      ColdEdge edge;
      edge.type = ColdEdge::Type::kUserUser;
      edge.link = e;
      graph_->AddEdge(static_cast<engine::VertexId>(links_->edge(e).src),
                      static_cast<engine::VertexId>(links_->edge(e).dst),
                      std::move(edge));
    }
  }
  graph_->Finalize();

  // Random initial assignments + counter build (serial; cheap).
  cold::RandomSampler init_sampler(config_.seed, /*stream=*/5);
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    int c = static_cast<int>(init_sampler.UniformInt(static_cast<uint32_t>(C)));
    int k = static_cast<int>(init_sampler.UniformInt(static_cast<uint32_t>(K)));
    state_->post_community[static_cast<size_t>(d)] = c;
    state_->post_topic[static_cast<size_t>(d)] = k;
    text::UserId i = posts_.author(d);
    state_->n_ic(i, c).fetch_add(1, std::memory_order_relaxed);
    state_->n_i(i).fetch_add(1, std::memory_order_relaxed);
    state_->n_ck(c, k).fetch_add(1, std::memory_order_relaxed);
    state_->n_c(c).fetch_add(1, std::memory_order_relaxed);
    state_->n_ckt(c, k, posts_.time(d)).fetch_add(1, std::memory_order_relaxed);
    for (text::WordId w : posts_.words(d)) {
      state_->n_kv(k, w).fetch_add(1, std::memory_order_relaxed);
    }
    state_->n_k(k).fetch_add(posts_.length(d), std::memory_order_relaxed);
  }
  if (use_network_) {
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      int s = static_cast<int>(
          init_sampler.UniformInt(static_cast<uint32_t>(C)));
      int s2 = static_cast<int>(
          init_sampler.UniformInt(static_cast<uint32_t>(C)));
      state_->link_src_community[static_cast<size_t>(e)] = s;
      state_->link_dst_community[static_cast<size_t>(e)] = s2;
      const graph::Edge& edge = links_->edge(e);
      state_->n_ic(edge.src, s).fetch_add(1, std::memory_order_relaxed);
      state_->n_i(edge.src).fetch_add(1, std::memory_order_relaxed);
      state_->n_ic(edge.dst, s2).fetch_add(1, std::memory_order_relaxed);
      state_->n_i(edge.dst).fetch_add(1, std::memory_order_relaxed);
      state_->n_cc(s, s2).fetch_add(1, std::memory_order_relaxed);
    }
  }

  program_ = std::make_unique<ColdVertexProgram>(
      config_, posts_, links_, state_.get(), graph_.get(), use_network_,
      lambda0_, engine_options_.legacy_shared_counters);
  engine_ = std::make_unique<
      engine::GasEngine<ColdVertex, ColdEdge, ColdVertexProgram>>(
      graph_.get(), program_.get(), engine_options_);
  supersteps_run_ = 0;
  initialized_ = true;
  return cold::Status::OK();
}

cold::Status ParallelColdTrainer::Train() {
  if (!initialized_) {
    return cold::Status::FailedPrecondition("call Init() before Train()");
  }
  int64_t total_tokens = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    total_tokens += posts_.length(d);
  }
  // One engine iteration at a time (respecting the execution mode) so the
  // per-superstep observer sees every boundary. Resume-aware: a trainer
  // restored from a checkpoint runs only the remaining supersteps.
  while (supersteps_run_ < config_.iterations) {
    double superstep_seconds = 0.0;
    {
      cold::ScopedTimer timer(superstep_seconds);
      engine_->Run(1);
    }
    supersteps_run_++;
    ParallelMetrics& metrics = Metrics();
    metrics.supersteps->Increment();
    metrics.superstep_seconds->Set(superstep_seconds);
    if (superstep_seconds > 0.0) {
      metrics.tokens_per_second->Set(static_cast<double>(total_tokens) /
                                     superstep_seconds);
    }
    if (superstep_callback_) superstep_callback_(supersteps_run_);
    // After the callback — the superstep-barrier checkpoint must be durable
    // before the injected crash fires.
    cold::FaultInjector::Global().MaybeCrash("after_sweep", supersteps_run_);
  }
  return cold::Status::OK();
}

void ParallelColdTrainer::RunSuperstep() {
  engine_->RunSuperstep();
  supersteps_run_++;
}

int64_t ParallelColdTrainer::NumScatterChunks() const {
  return engine_ != nullptr ? engine_->num_scatter_chunks() : 0;
}

size_t ParallelColdTrainer::DeltaTableSize() const {
  return state_ != nullptr ? state_->delta_size() : 0;
}

std::vector<int32_t> ParallelColdTrainer::ComputeChunkOwners(
    int num_nodes) const {
  // Same vertex work model as the engine's greedy placement: each edge's
  // work units charged to its source vertex.
  std::vector<int64_t> vertex_work(
      static_cast<size_t>(graph_->num_vertices()), 0);
  const int64_t num_edges = graph_->num_edges();
  for (engine::EdgeId e = 0; e < num_edges; ++e) {
    vertex_work[static_cast<size_t>(graph_->src(e))] +=
        program_->EdgeWorkUnits(e);
  }
  std::vector<int> vertex_node =
      engine::GreedyAssignment(*graph_, num_nodes, vertex_work);

  // Lift vertex placement to whole scatter chunks (the RNG-stream unit) by
  // work-unit plurality over each chunk's edges; ties go to the lowest node
  // id so every node derives the identical table.
  const int64_t num_chunks = NumScatterChunks();
  std::vector<int32_t> owners(static_cast<size_t>(num_chunks), 0);
  std::vector<int64_t> node_work(static_cast<size_t>(num_nodes), 0);
  for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
    std::fill(node_work.begin(), node_work.end(), 0);
    const int64_t stop =
        std::min(num_edges, (chunk + 1) * engine::kScatterChunkEdges);
    for (int64_t e = chunk * engine::kScatterChunkEdges; e < stop; ++e) {
      const int node = vertex_node[static_cast<size_t>(graph_->src(e))];
      // +1 so zero-work edges still vote for their node.
      node_work[static_cast<size_t>(node)] += program_->EdgeWorkUnits(e) + 1;
    }
    int best = 0;
    for (int n = 1; n < num_nodes; ++n) {
      if (node_work[static_cast<size_t>(n)] >
          node_work[static_cast<size_t>(best)]) {
        best = n;
      }
    }
    owners[static_cast<size_t>(chunk)] = best;
  }
  return owners;
}

cold::Status ParallelColdTrainer::RunSuperstepSharded(
    const std::vector<uint8_t>& chunk_mask, SuperstepUpdate* out) {
  if (!initialized_) {
    return cold::Status::FailedPrecondition(
        "call Init() before RunSuperstepSharded()");
  }
  if (engine_options_.legacy_shared_counters) {
    return cold::Status::FailedPrecondition(
        "distributed execution requires the delta-table mode "
        "(legacy_shared_counters must be off)");
  }
  if (static_cast<int64_t>(chunk_mask.size()) != NumScatterChunks()) {
    return cold::Status::InvalidArgument(
        "chunk mask covers " + std::to_string(chunk_mask.size()) +
        " chunks, engine has " + std::to_string(NumScatterChunks()));
  }
  prev_post_community_ = state_->post_community;
  prev_post_topic_ = state_->post_topic;
  prev_link_src_community_ = state_->link_src_community;
  prev_link_dst_community_ = state_->link_dst_community;

  program_->set_defer_delta_merge(true);
  engine_->set_scatter_chunk_mask(&chunk_mask);
  engine_->RunSuperstep();
  engine_->set_scatter_chunk_mask(nullptr);
  program_->set_defer_delta_merge(false);

  state_->DrainDeltas(&out->count_deltas);
  out->post_updates.clear();
  out->link_updates.clear();
  for (size_t d = 0; d < prev_post_community_.size(); ++d) {
    if (state_->post_community[d] != prev_post_community_[d] ||
        state_->post_topic[d] != prev_post_topic_[d]) {
      out->post_updates.push_back({static_cast<int32_t>(d),
                                   state_->post_community[d],
                                   state_->post_topic[d]});
    }
  }
  for (size_t l = 0; l < prev_link_src_community_.size(); ++l) {
    if (state_->link_src_community[l] != prev_link_src_community_[l] ||
        state_->link_dst_community[l] != prev_link_dst_community_[l]) {
      out->link_updates.push_back({static_cast<int32_t>(l),
                                   state_->link_src_community[l],
                                   state_->link_dst_community[l]});
    }
  }
  return cold::Status::OK();
}

cold::Status ParallelColdTrainer::ApplyGlobalUpdate(
    const SuperstepUpdate& update) {
  if (!initialized_) {
    return cold::Status::FailedPrecondition(
        "call Init() before ApplyGlobalUpdate()");
  }
  COLD_RETURN_NOT_OK(state_->ApplyDeltaEntries(update.count_deltas));
  const auto num_posts = static_cast<int32_t>(state_->post_community.size());
  for (const auto& [d, c, k] : update.post_updates) {
    if (d < 0 || d >= num_posts || c < 0 || c >= config_.num_communities ||
        k < 0 || k >= config_.num_topics) {
      return cold::Status::OutOfRange("post update out of range");
    }
    state_->post_community[static_cast<size_t>(d)] = c;
    state_->post_topic[static_cast<size_t>(d)] = k;
  }
  const auto num_links =
      static_cast<int32_t>(state_->link_src_community.size());
  for (const auto& [l, s, s2] : update.link_updates) {
    if (l < 0 || l >= num_links || s < 0 || s >= config_.num_communities ||
        s2 < 0 || s2 >= config_.num_communities) {
      return cold::Status::OutOfRange("link update out of range");
    }
    state_->link_src_community[static_cast<size_t>(l)] = s;
    state_->link_dst_community[static_cast<size_t>(l)] = s2;
  }
  supersteps_run_++;
  return cold::Status::OK();
}

std::vector<cold::RngState> ParallelColdTrainer::EngineSamplerStates() const {
  return engine_->SamplerStates();
}

cold::Status ParallelColdTrainer::EngineRestoreSamplerStates(
    const std::vector<cold::RngState>& states) {
  return engine_->RestoreSamplerStates(states);
}

void ParallelColdTrainer::EngineSetSuperstepIndex(int64_t index) {
  engine_->set_superstep_index(index);
}

ColdEstimates ParallelColdTrainer::Estimates() const {
  ColdState snapshot = state_->ToColdState();
  return ExtractEstimates(snapshot, config_, lambda0_);
}

ColdState ParallelColdTrainer::StateSnapshot() const {
  return state_->ToColdState();
}

const engine::EngineStats& ParallelColdTrainer::engine_stats() const {
  static const engine::EngineStats kEmpty;
  return engine_ != nullptr ? engine_->stats() : kEmpty;
}

double ParallelColdTrainer::SimulatedWallSeconds(
    const engine::ClusterModel& model) const {
  return engine_ != nullptr ? engine_->SimulatedWallSeconds(model) : 0.0;
}

}  // namespace cold::core
