# Empty compiler generated dependencies file for fig05_diffusion_graph.
# This may be replaced when dependencies are built.
