// Process-wide telemetry: a thread-safe metrics registry with lock-free
// hot-path updates.
//
// Three metric kinds, all addressable by a slash-separated name following
// the `cold/<component>/<metric>` convention plus an optional label set:
//
//   Counter   — monotonically increasing int64 (events, bytes, tokens);
//   Gauge     — double holding the latest value (rates, last-sweep seconds)
//               with an Add() for accumulating time totals;
//   Histogram — fixed log-scale buckets over doubles (durations).
//
// Registration (Registry::Get*) takes a mutex and returns a pointer that
// stays valid for the life of the process — callers cache it once and the
// subsequent Increment/Set/Observe calls are a relaxed atomic each. The
// whole subsystem can be switched off with Registry::Disable(), which turns
// every update into a single relaxed load + branch, so instrumented code
// can stay instrumented in benchmarks.
//
// Exporters: Registry::Snapshot() for programmatic access, DumpJson() and
// DumpPrometheusText() for files/scrapes. See DESIGN.md §Observability.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cold::obs {

namespace internal {
/// Global on/off switch checked by every metric update (relaxed load).
inline std::atomic<bool> g_metrics_enabled{true};
inline bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
}  // namespace internal

/// \brief Key-value labels distinguishing members of a metric family
/// (e.g. {{"phase", "gather"}}). Order-sensitive: register with a
/// consistent order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing event count. Lock-free updates.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    if (!internal::MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Zeroes the counter (test isolation; see Registry::Reset).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-value metric with an accumulate option. Lock-free updates.
class Gauge {
 public:
  void Set(double value) {
    if (!internal::MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  /// Accumulates into the gauge (used for seconds-spent totals).
  void Add(double delta) {
    if (!internal::MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Log-scale bucket layout: upper bounds are
/// `min_upper_bound * growth^i` for i in [0, num_buckets), plus an implicit
/// overflow bucket. Defaults cover 1 microsecond to ~1 minute of seconds.
struct HistogramOptions {
  double min_upper_bound = 1e-6;
  double growth = 2.0;
  int num_buckets = 36;
};

/// \brief Fixed-bucket histogram over doubles. Observe() is lock-free:
/// a binary search over the (immutable) bounds plus two relaxed atomics.
/// Bucket i counts observations v with v <= upper_bounds[i] (and greater
/// than the previous bound); the last slot of bucket_counts() is the
/// overflow (+Inf) bucket.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size = upper_bounds().size() + 1.
  std::vector<int64_t> bucket_counts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> counts_;  // bounds_.size() + 1 slots.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief One exported counter/gauge/histogram value; see TelemetrySnapshot.
struct CounterSnapshot {
  std::string name;
  Labels labels;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::vector<double> upper_bounds;
  /// Per-bucket counts; last entry is the overflow (+Inf) bucket.
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  double sum = 0.0;

  /// Estimated q-quantile (q in [0,1]); see EstimateQuantile.
  double Quantile(double q) const;
};

/// \brief Estimates the q-quantile of a bucketed distribution by linear
/// interpolation inside the bucket containing the target rank (the same
/// scheme as Prometheus' histogram_quantile). The first bucket's lower
/// edge is 0; observations in the overflow bucket clamp to the last finite
/// bound. Returns NaN for an empty histogram. Accuracy is bounded by the
/// bucket width (a factor of `growth` in the log-scale layout).
double EstimateQuantile(const std::vector<double>& upper_bounds,
                        const std::vector<int64_t>& bucket_counts, double q);

/// \brief Point-in-time copy of every registered metric, sorted by name
/// (then label registration order) for deterministic output.
struct TelemetrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// \brief Writes the snapshot as one JSON object:
/// {"counters":[{"name":...,"labels":{...},"value":...}], "gauges":[...],
///  "histograms":[{"name":...,"buckets":[{"le":...,"count":...}],...}]}.
void DumpJson(const TelemetrySnapshot& snapshot, std::ostream& os);

/// \brief Writes the snapshot in the Prometheus text exposition format
/// (names sanitized to [a-zA-Z0-9_:], histogram buckets cumulative with
/// `le` labels, `_sum`/`_count` series).
void DumpPrometheusText(const TelemetrySnapshot& snapshot, std::ostream& os);

/// \brief Process-wide metric registry. Get* registers on first use and
/// returns a stable pointer; subsequent calls with the same (name, labels)
/// return the same instance. A name maps to one metric kind for the process
/// lifetime — a kind-mismatched lookup logs an error and returns a detached
/// dummy metric so callers never receive nullptr.
class Registry {
 public:
  /// The process-wide instance every component reports into.
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const HistogramOptions& options = {});

  /// Disables every metric update process-wide (updates become a relaxed
  /// load + branch). Registration still works while disabled.
  static void Disable() {
    internal::g_metrics_enabled.store(false, std::memory_order_relaxed);
  }
  static void Enable() {
    internal::g_metrics_enabled.store(true, std::memory_order_relaxed);
  }
  static bool enabled() { return internal::MetricsEnabled(); }

  TelemetrySnapshot Snapshot() const;
  void DumpJson(std::ostream& os) const;
  void DumpPrometheusText(std::ostream& os) const;

  /// Zeroes every registered metric's value. Pointers handed out by Get*
  /// remain valid (instances are kept; only values reset) — safe to call
  /// between tests even while samplers cache metric pointers.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::vector<Entry> entries;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      Kind kind, const HistogramOptions& options);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace cold::obs
