// Train/test splitters for the three evaluation protocols of §6:
// post holdout (perplexity, time-stamp prediction), positive/negative link
// holdout (link-prediction AUC), and retweet-tuple holdout (diffusion
// prediction).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/social_dataset.h"

namespace cold::data {

/// \brief Post holdout: both stores share user/time id spaces.
struct PostSplit {
  text::PostStore train;
  text::PostStore test;
  /// Original PostId of each test post (index-aligned with `test`).
  std::vector<PostId> test_original_ids;
};

/// \brief Splits posts into train/test with `test_fraction` of posts held
/// out, deterministically for (seed, fold). Matches §6.2's protocol of
/// holding out 20% of posts per fold.
PostSplit SplitPosts(const text::PostStore& posts, double test_fraction,
                     uint64_t seed, int fold);

/// \brief Link holdout: training graph plus labeled test pairs.
struct LinkSplit {
  graph::Digraph train;
  /// Held-out true links.
  std::vector<std::pair<UserId, UserId>> test_positive;
  /// Sampled absent pairs (not in the full graph).
  std::vector<std::pair<UserId, UserId>> test_negative;
};

/// \brief Holds out `test_fraction` of positive links and samples
/// `negative_per_positive` absent pairs per held-out positive (§6.2 uses 20%
/// positives and 1% of negatives; we keep the count proportional so AUC is
/// well-estimated at any scale).
LinkSplit SplitLinks(const graph::Digraph& interactions, double test_fraction,
                     double negative_per_positive, uint64_t seed, int fold);

/// \brief Retweet-tuple holdout. The training interaction network is rebuilt
/// from training tuples only, so no test information leaks into the graph
/// the models train on.
struct RetweetSplit {
  std::vector<RetweetTuple> train;
  std::vector<RetweetTuple> test;
  graph::Digraph train_interactions;
};

/// \brief Holds out `test_fraction` of tuples that have both retweeters and
/// ignorers (the AUC requires both classes), per §6.3.
RetweetSplit SplitRetweets(const SocialDataset& dataset, double test_fraction,
                           uint64_t seed, int fold);

}  // namespace cold::data
