# Empty compiler generated dependencies file for fig12_diffusion_auc.
# This may be replaced when dependencies are built.
