#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cold::serve {

namespace {

/// Appends `cp` to `out` as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

/// Recursive-descent parser over a [begin, end) byte range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  cold::Result<Json> ParseDocument() {
    COLD_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (p_ != end_) return Error("trailing characters after JSON value");
    return value;
  }

 private:
  cold::Status Error(const std::string& what) const {
    return cold::Status::InvalidArgument(
        "json: " + what + " at offset " + std::to_string(offset_));
  }

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::memcmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    offset_ += n;
    return true;
  }

  cold::Result<Json> ParseValue(int depth) {
    if (depth > Json::kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (p_ == end_) return Error("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        COLD_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json(nullptr);
        return Error("invalid literal");
      default: return ParseNumber();
    }
  }

  cold::Result<Json> ParseObject(int depth) {
    Advance();  // '{'
    Json::Object members;
    SkipWhitespace();
    if (p_ != end_ && *p_ == '}') {
      Advance();
      return Json(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (p_ == end_ || *p_ != '"') return Error("expected object key");
      COLD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (p_ == end_ || *p_ != ':') return Error("expected ':'");
      Advance();
      COLD_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (p_ == end_) return Error("unterminated object");
      if (*p_ == ',') {
        Advance();
        continue;
      }
      if (*p_ == '}') {
        Advance();
        return Json(std::move(members));
      }
      return Error("expected ',' or '}'");
    }
  }

  cold::Result<Json> ParseArray(int depth) {
    Advance();  // '['
    Json::Array items;
    SkipWhitespace();
    if (p_ != end_ && *p_ == ']') {
      Advance();
      return Json(std::move(items));
    }
    while (true) {
      COLD_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (p_ == end_) return Error("unterminated array");
      if (*p_ == ',') {
        Advance();
        continue;
      }
      if (*p_ == ']') {
        Advance();
        return Json(std::move(items));
      }
      return Error("expected ',' or ']'");
    }
  }

  cold::Result<std::string> ParseString() {
    Advance();  // opening quote
    std::string out;
    while (true) {
      if (p_ == end_) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        Advance();
        return out;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out.push_back(*p_);
        Advance();
        continue;
      }
      Advance();  // backslash
      if (p_ == end_) return Error("unterminated escape");
      char esc = *p_;
      Advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          COLD_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (end_ - p_ < 2 || p_[0] != '\\' || p_[1] != 'u') {
              return Error("unpaired surrogate");
            }
            Advance();
            Advance();
            COLD_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default: return Error("invalid escape character");
      }
    }
  }

  cold::Result<uint32_t> ParseHex4() {
    if (end_ - p_ < 4) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = *p_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
      Advance();
    }
    return value;
  }

  cold::Result<Json> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') Advance();
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return Error("invalid number");
    }
    if (*p_ == '0') {
      Advance();  // A leading zero must stand alone ("01" is not JSON).
      if (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        return Error("leading zero in number");
      }
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
      }
    }
    if (p_ != end_ && *p_ == '.') {
      Advance();
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Error("invalid number");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
      }
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      Advance();
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) Advance();
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Error("invalid number");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
      }
    }
    std::string token(start, p_);
    char* parse_end = nullptr;
    double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    return Json(value);
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

void DumpInto(const Json& v, std::string* out) {
  switch (v.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += v.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber: {
      double d = v.as_number();
      if (!std::isfinite(d)) {
        *out += "null";
        break;
      }
      // Integral values print without a fraction so ids stay readable.
      if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      break;
    }
    case Json::Type::kString:
      EscapeInto(v.as_string(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : v.as_array()) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        DumpInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Json* found = nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) found = &v;
  }
  return found;
}

void Json::Set(std::string key, Json v) {
  for (auto& [k, existing] : as_object()) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(v));
}

std::string Json::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

cold::Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

cold::Result<int64_t> Json::GetInt(const std::string& key, int64_t min_value,
                                   int64_t max_value) const {
  const Json* member = Find(key);
  if (member == nullptr) {
    return cold::Status::InvalidArgument("missing field '" + key + "'");
  }
  if (!member->is_number()) {
    return cold::Status::InvalidArgument("field '" + key +
                                         "' must be a number");
  }
  double d = member->as_number();
  if (d != std::floor(d)) {
    return cold::Status::InvalidArgument("field '" + key +
                                         "' must be an integer");
  }
  if (d < static_cast<double>(min_value) ||
      d > static_cast<double>(max_value)) {
    return cold::Status::OutOfRange(
        "field '" + key + "' out of range [" + std::to_string(min_value) +
        ", " + std::to_string(max_value) + "]");
  }
  return static_cast<int64_t>(d);
}

cold::Result<std::vector<int>> Json::GetIntArray(const std::string& key,
                                                 int64_t upper_bound) const {
  std::vector<int> out;
  const Json* member = Find(key);
  if (member == nullptr) return out;
  if (!member->is_array()) {
    return cold::Status::InvalidArgument("field '" + key +
                                         "' must be an array");
  }
  out.reserve(member->as_array().size());
  for (const Json& item : member->as_array()) {
    if (!item.is_number() || item.as_number() != std::floor(item.as_number())) {
      return cold::Status::InvalidArgument(
          "field '" + key + "' must contain integers");
    }
    double d = item.as_number();
    if (d < 0 || d >= static_cast<double>(upper_bound)) {
      return cold::Status::OutOfRange(
          "element of '" + key + "' out of range [0, " +
          std::to_string(upper_bound) + ")");
    }
    out.push_back(static_cast<int>(d));
  }
  return out;
}

}  // namespace cold::serve
