#include "engine/partitioner.h"

#include <cassert>

namespace cold::engine {

Partitioner::Partitioner(int32_t num_vertices, int num_nodes)
    : num_nodes_(num_nodes) {
  assert(num_nodes >= 1);
  assignment_.resize(static_cast<size_t>(num_vertices));
  for (int32_t v = 0; v < num_vertices; ++v) {
    assignment_[static_cast<size_t>(v)] = v % num_nodes;
  }
}

void Partitioner::SetAssignment(std::vector<int> assignment) {
  for (int node : assignment) {
    assert(node >= 0 && node < num_nodes_);
    (void)node;
  }
  assignment_ = std::move(assignment);
}

std::vector<int64_t> Partitioner::NodeLoads() const {
  std::vector<int64_t> loads(static_cast<size_t>(num_nodes_), 0);
  for (int node : assignment_) loads[static_cast<size_t>(node)]++;
  return loads;
}

}  // namespace cold::engine
