# Empty dependencies file for cold_predict.
# This may be replaced when dependencies are built.
