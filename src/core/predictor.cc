#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"

namespace cold::core {

namespace {

/// Query-volume counters for the online prediction paths (one relaxed
/// atomic per query; the Fig-15 latency story is told by the trace spans).
struct PredictorMetrics {
  obs::Counter* topic_posteriors;
  obs::Counter* diffusion_scores;
  obs::Counter* link_scores;
  obs::Counter* timestamp_scores;
  obs::Counter* fold_ins;
};

PredictorMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static PredictorMetrics metrics{
      registry.GetCounter("cold/predictor/topic_posteriors"),
      registry.GetCounter("cold/predictor/diffusion_scores"),
      registry.GetCounter("cold/predictor/link_scores"),
      registry.GetCounter("cold/predictor/timestamp_scores"),
      registry.GetCounter("cold/predictor/fold_ins")};
  return metrics;
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

cold::Status ColdPredictor::ValidateQuery(
    text::UserId author, std::span<const text::WordId> words) const {
  if (!ValidUser(author)) {
    return cold::Status::OutOfRange("user id " + std::to_string(author) +
                                    " outside [0, " + std::to_string(view_.U) +
                                    ")");
  }
  for (text::WordId w : words) {
    if (!ValidWord(w)) {
      return cold::Status::OutOfRange("word id " + std::to_string(w) +
                                      " outside [0, " +
                                      std::to_string(view_.V) + ")");
    }
  }
  return cold::Status::OK();
}

ColdPredictor::ColdPredictor(ColdEstimates estimates, int top_communities)
    : owned_(std::make_shared<const ColdEstimates>(std::move(estimates))),
      view_(*owned_),
      top_communities_(std::min(top_communities, owned_->C)) {
  auto table = std::make_shared<std::vector<int32_t>>();
  table->reserve(static_cast<size_t>(owned_->U) * top_communities_);
  for (int i = 0; i < owned_->U; ++i) {
    for (int c : owned_->TopCommunitiesForUser(i, top_communities_)) {
      table->push_back(static_cast<int32_t>(c));
    }
  }
  top_comm_store_ = std::move(table);
  top_comm_data_ = top_comm_store_->data();
}

ColdPredictor::ColdPredictor(const EstimatesView& view,
                             std::shared_ptr<const void> keepalive,
                             std::span<const int32_t> top_comm,
                             int top_communities)
    : keepalive_(std::move(keepalive)),
      view_(view),
      top_comm_data_(top_comm.data()),
      top_communities_(std::min(top_communities, view.C)) {}

void ColdPredictor::WordLogLikelihoods(std::span<const text::WordId> words,
                                       std::vector<double>* out) const {
  out->assign(static_cast<size_t>(view_.K), 0.0);
  for (int k = 0; k < view_.K; ++k) {
    double lw = 0.0;
    for (text::WordId w : words) {
      lw += std::log(std::max(view_.Phi(k, w), 1e-300));
    }
    (*out)[static_cast<size_t>(k)] = lw;
  }
}

std::vector<double> ColdPredictor::TopicPosterior(
    std::span<const text::WordId> words, text::UserId author) const {
  if (!ValidateQuery(author, words).ok()) return {};
  Metrics().topic_posteriors->Increment();
  std::vector<double> log_w;
  WordLogLikelihoods(words, &log_w);
  // P(k|i) restricted to the author's top communities (Eq. 5).
  std::vector<double> scores(static_cast<size_t>(view_.K));
  for (int k = 0; k < view_.K; ++k) {
    double pref = 0.0;
    for (int32_t c : TopComm(author)) {
      pref += view_.Pi(author, c) * view_.Theta(c, k);
    }
    scores[static_cast<size_t>(k)] =
        log_w[static_cast<size_t>(k)] + std::log(std::max(pref, 1e-300));
  }
  double lse = cold::LogSumExp(scores);
  for (double& s : scores) s = std::exp(s - lse);
  return scores;
}

double ColdPredictor::TopicInfluence(text::UserId i, text::UserId i2,
                                     int k) const {
  if (!ValidUser(i) || !ValidUser(i2) || k < 0 || k >= view_.K) return kNaN;
  double p = 0.0;
  for (int32_t c : TopComm(i)) {
    double left = view_.Pi(i, c) * view_.Theta(c, k);
    for (int32_t c2 : TopComm(i2)) {
      // zeta_kcc' expanded; theta_ck factored out of the inner loop.
      p += left * view_.Pi(i2, c2) * view_.Theta(c2, k) * view_.Eta(c, c2);
    }
  }
  return p;
}

double ColdPredictor::DiffusionProbability(
    text::UserId i, text::UserId i2,
    std::span<const text::WordId> words) const {
  if (!ValidUser(i2)) return kNaN;
  std::vector<double> topic_post = TopicPosterior(words, i);
  if (topic_post.empty()) return kNaN;
  return DiffusionFromPosterior(i, i2, topic_post);
}

double ColdPredictor::DiffusionFromPosterior(
    text::UserId i, text::UserId i2,
    std::span<const double> topic_posterior) const {
  if (!ValidUser(i) || !ValidUser(i2) ||
      topic_posterior.size() != static_cast<size_t>(view_.K)) {
    return kNaN;
  }
  Metrics().diffusion_scores->Increment();
  double p = 0.0;
  for (int k = 0; k < view_.K; ++k) {
    if (topic_posterior[static_cast<size_t>(k)] < 1e-8) continue;
    p += topic_posterior[static_cast<size_t>(k)] * TopicInfluence(i, i2, k);
  }
  return p;
}

double ColdPredictor::LinkProbability(text::UserId i, text::UserId i2) const {
  if (!ValidUser(i) || !ValidUser(i2)) return kNaN;
  Metrics().link_scores->Increment();
  double p = 0.0;
  for (int c = 0; c < view_.C; ++c) {
    double pi_ic = view_.Pi(i, c);
    if (pi_ic <= 0.0) continue;
    for (int c2 = 0; c2 < view_.C; ++c2) {
      p += pi_ic * view_.Pi(i2, c2) * view_.Eta(c, c2);
    }
  }
  return p;
}

std::vector<double> ColdPredictor::TimestampScores(
    std::span<const text::WordId> words, text::UserId author) const {
  if (!ValidateQuery(author, words).ok()) return {};
  Metrics().timestamp_scores->Increment();
  std::vector<double> log_w;
  WordLogLikelihoods(words, &log_w);
  double max_lw = *std::max_element(log_w.begin(), log_w.end());

  std::vector<double> scores(static_cast<size_t>(view_.T), 0.0);
  for (int k = 0; k < view_.K; ++k) {
    double word_term = std::exp(log_w[static_cast<size_t>(k)] - max_lw);
    if (word_term < 1e-12) continue;
    for (int c = 0; c < view_.C; ++c) {
      double weight = word_term * view_.Pi(author, c) * view_.Theta(c, k);
      if (weight < 1e-15) continue;
      for (int t = 0; t < view_.T; ++t) {
        scores[static_cast<size_t>(t)] += weight * view_.Psi(k, c, t);
      }
    }
  }
  cold::NormalizeInPlace(scores);
  return scores;
}

int ColdPredictor::PredictTimestamp(std::span<const text::WordId> words,
                                    text::UserId author) const {
  std::vector<double> scores = TimestampScores(words, author);
  if (scores.empty()) return -1;
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

double ColdPredictor::LogPostProbability(std::span<const text::WordId> words,
                                         text::UserId author) const {
  if (!ValidateQuery(author, words).ok()) return kNaN;
  std::vector<double> log_w;
  WordLogLikelihoods(words, &log_w);
  // p(w_d) = sum_k (sum_c pi theta) prod phi, via LSE over k.
  std::vector<double> terms(static_cast<size_t>(view_.K));
  for (int k = 0; k < view_.K; ++k) {
    double mix = 0.0;
    for (int c = 0; c < view_.C; ++c) {
      mix += view_.Pi(author, c) * view_.Theta(c, k);
    }
    terms[static_cast<size_t>(k)] =
        log_w[static_cast<size_t>(k)] + std::log(std::max(mix, 1e-300));
  }
  return cold::LogSumExp(terms);
}

std::vector<double> ColdPredictor::FoldInMembership(
    std::span<const FoldInPost> posts, int iterations, double rho) const {
  Metrics().fold_ins->Increment();
  std::vector<double> pi(static_cast<size_t>(view_.C), 1.0 / view_.C);
  if (posts.empty()) return pi;

  // Per-post, per-community evidence e_d(c) = sum_k theta_ck psi_kct
  // prod_l phi_kw — constant across EM iterations, so precompute.
  std::vector<std::vector<double>> evidence(posts.size());
  std::vector<double> log_w;
  for (size_t d = 0; d < posts.size(); ++d) {
    WordLogLikelihoods(posts[d].words, &log_w);
    double max_lw = *std::max_element(log_w.begin(), log_w.end());
    evidence[d].assign(static_cast<size_t>(view_.C), 0.0);
    int t = std::clamp<int>(posts[d].time, 0, view_.T - 1);
    for (int c = 0; c < view_.C; ++c) {
      double acc = 0.0;
      for (int k = 0; k < view_.K; ++k) {
        acc += view_.Theta(c, k) * view_.Psi(k, c, t) *
               std::exp(log_w[static_cast<size_t>(k)] - max_lw);
      }
      evidence[d][static_cast<size_t>(c)] = std::max(acc, 1e-300);
    }
  }

  std::vector<double> counts(static_cast<size_t>(view_.C));
  std::vector<double> resp(static_cast<size_t>(view_.C));
  for (int it = 0; it < iterations; ++it) {
    std::fill(counts.begin(), counts.end(), 0.0);
    for (size_t d = 0; d < posts.size(); ++d) {
      for (int c = 0; c < view_.C; ++c) {
        resp[static_cast<size_t>(c)] =
            pi[static_cast<size_t>(c)] * evidence[d][static_cast<size_t>(c)];
      }
      cold::NormalizeInPlace(resp);
      for (int c = 0; c < view_.C; ++c) {
        counts[static_cast<size_t>(c)] += resp[static_cast<size_t>(c)];
      }
    }
    double denom = static_cast<double>(posts.size()) + view_.C * rho;
    for (int c = 0; c < view_.C; ++c) {
      pi[static_cast<size_t>(c)] = (counts[static_cast<size_t>(c)] + rho) / denom;
    }
  }
  return pi;
}

double ColdPredictor::DiffusionProbabilityToNewUser(
    text::UserId publisher, std::span<const double> candidate_pi,
    std::span<const text::WordId> words) const {
  if (candidate_pi.size() != static_cast<size_t>(view_.C)) return kNaN;
  std::vector<double> topic_post = TopicPosterior(words, publisher);
  if (topic_post.empty()) return kNaN;
  std::vector<int> candidate_top(
      cold::TopKIndices(candidate_pi, top_communities_));
  double p = 0.0;
  for (int k = 0; k < view_.K; ++k) {
    double pk = topic_post[static_cast<size_t>(k)];
    if (pk < 1e-8) continue;
    double inf = 0.0;
    for (int32_t c : TopComm(publisher)) {
      double left = view_.Pi(publisher, c) * view_.Theta(c, k);
      for (int c2 : candidate_top) {
        inf += left * candidate_pi[static_cast<size_t>(c2)] *
               view_.Theta(c2, k) * view_.Eta(c, c2);
      }
    }
    p += pk * inf;
  }
  return p;
}

double ColdPredictor::Perplexity(const text::PostStore& test_posts) const {
  COLD_TRACE_SPAN("predictor/perplexity");
  double total_ll = 0.0;
  int64_t total_tokens = 0;
  for (text::PostId d = 0; d < test_posts.num_posts(); ++d) {
    if (test_posts.length(d) == 0) continue;
    total_ll += LogPostProbability(test_posts.words(d), test_posts.author(d));
    total_tokens += test_posts.length(d);
  }
  if (total_tokens == 0) return 0.0;
  return std::exp(-total_ll / static_cast<double>(total_tokens));
}

}  // namespace cold::core
