// Figure 19 (Appendix B): joint impact of C and K on diffusion prediction
// AUC. Paper shape: both dimensions matter — performance improves as each
// grows toward the data's true complexity.
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 19: (C, K) sensitivity — diffusion prediction AUC");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  data::RetweetSplit split = data::SplitRetweets(dataset, 0.2, 97, 0);

  const std::vector<int> c_values = {2, 4, 8};
  const std::vector<int> k_values = {2, 6, 12};

  std::printf("%-8s", "C \\ K");
  for (int k : k_values) std::printf(" %8d", k);
  std::printf("\n");
  for (int c : c_values) {
    std::printf("%-8d", c);
    for (int k : k_values) {
      core::ColdEstimates est =
          bench::TrainCold(bench::BenchColdConfig(c, k, 150), dataset.posts,
                           &split.train_interactions);
      core::ColdPredictor predictor(est, 5);
      double auc = bench::DiffusionAuc(
          split.test, dataset.posts, [&](int a, int b, auto words) {
            return predictor.DiffusionProbability(a, b, words);
          });
      std::printf(" %8.4f", auc);
    }
    std::printf("\n");
  }
  std::printf("\n(paper shape: AUC improves along BOTH axes — communities\n"
              " and topics are jointly critical for diffusion)\n");
  return 0;
}
