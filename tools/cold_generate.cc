// cold_generate — writes a synthetic social dataset to a directory in the
// flat-file format of data/serialize.h (swap in real data with the same
// layout).
//
// Usage: cold_generate <output-dir> [users] [communities] [topics] [slices]
//                      [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/serialize.h"
#include "data/synthetic.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace cold;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output-dir> [users=800] [communities=8] "
                 "[topics=12] [slices=24] [seed=42]\n",
                 argv[0]);
    return 2;
  }
  data::SyntheticConfig config;
  config.num_users = argc > 2 ? std::atoi(argv[2]) : 800;
  config.num_communities = argc > 3 ? std::atoi(argv[3]) : 8;
  config.num_topics = argc > 4 ? std::atoi(argv[4]) : 12;
  config.num_time_slices = argc > 5 ? std::atoi(argv[5]) : 24;
  config.seed = argc > 6 ? static_cast<uint64_t>(std::atoll(argv[6])) : 42;

  auto result = data::SyntheticSocialGenerator(config).Generate();
  if (!result.ok()) {
    std::fprintf(stderr, "generate: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const data::SocialDataset& dataset = *result;
  if (auto st = data::SaveDataset(dataset, argv[1]); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d users, %d posts, %lld tokens, %lld links, "
              "%zu retweet tuples\n",
              argv[1], dataset.num_users(), dataset.posts.num_posts(),
              static_cast<long long>(dataset.posts.num_tokens()),
              static_cast<long long>(dataset.interactions.num_edges()),
              dataset.retweets.size());
  return 0;
}
