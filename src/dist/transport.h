// Byte transports for the distributed trainer (DESIGN.md §12).
//
// A Transport moves whole buffers between two training processes. The
// production flavor is a TCP connection (coordinator listens, workers
// connect); tests use a socketpair loopback, which exercises the identical
// frame path — both are just file descriptors under FdTransport, with all
// EINTR/partial-transfer handling delegated to util/net_io.h (shared with
// the serving layer).
//
// Concurrency: Send/SendDeadline are serialized by an internal mutex, so
// two threads (the training thread and the heartbeat thread) can emit
// whole frames on one transport without interleaving bytes, provided each
// frame is a single Send call. Recv is single-consumer (the training
// thread only).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "util/status.h"

namespace cold::dist {

/// \brief A reliable, ordered byte stream to one peer, plus byte counters
/// feeding the cold/dist/comm_bytes metrics.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends exactly `size` bytes (blocking, EINTR-robust).
  virtual cold::Status Send(const void* data, size_t size) = 0;

  /// Receives exactly `size` bytes; IOError on EOF.
  virtual cold::Status Recv(void* data, size_t size) = 0;

  /// \brief Send bounded by `timeout_ms` of wall time for the whole
  /// transfer; kDeadlineExceeded on expiry (the stream is then torn).
  /// timeout_ms < 0 blocks like Send.
  virtual cold::Status SendDeadline(const void* data, size_t size,
                                    int timeout_ms) = 0;

  /// \brief Recv bounded by `timeout_ms`; same semantics as SendDeadline.
  virtual cold::Status RecvDeadline(void* data, size_t size,
                                    int timeout_ms) = 0;

  int64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  int64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
};

/// \brief Transport over an owned file descriptor (TCP socket or one end of
/// a socketpair). Closes the fd on destruction.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  cold::Status Send(const void* data, size_t size) override;
  cold::Status Recv(void* data, size_t size) override;
  cold::Status SendDeadline(const void* data, size_t size,
                            int timeout_ms) override;
  cold::Status RecvDeadline(void* data, size_t size,
                            int timeout_ms) override;

  int fd() const { return fd_; }

 private:
  int fd_;
  // Serializes whole-frame sends across the training + heartbeat threads.
  std::mutex send_mutex_;
};

/// \brief Creates a connected in-process pair (AF_UNIX socketpair): bytes
/// sent on `a` arrive on `b` and vice versa. The loopback transport for
/// single-machine tests and self-forked local clusters.
cold::Status LoopbackPair(std::unique_ptr<Transport>* a,
                          std::unique_ptr<Transport>* b);

/// \brief Listening TCP socket on 127.0.0.1 (the coordinator side).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  /// readable via port() afterwards).
  cold::Status Listen(uint16_t port);

  /// \brief Accepts one connection (EINTR-robust). `timeout_ms` bounds the
  /// wait (kDeadlineExceeded on expiry) so a worker that died before
  /// connecting cannot hang the coordinator; < 0 blocks forever.
  cold::Result<std::unique_ptr<Transport>> Accept(int timeout_ms = -1);

  void Close();

  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// \brief Connects to `host:port` under an overall `deadline_ms` budget,
/// retrying transient failures (ECONNREFUSED while the coordinator is
/// still binding, plus ETIMEDOUT/EHOSTUNREACH/ENETUNREACH on flaky
/// networks) with jittered exponential backoff. kDeadlineExceeded when the
/// budget expires without a connection.
cold::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    uint16_t port,
                                                    int deadline_ms = 15000);

}  // namespace cold::dist
