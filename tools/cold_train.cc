// cold_train — trains COLD on a dataset directory (the data/serialize.h
// layout) and writes the fitted estimates to a binary model file.
//
// Usage: cold_train <dataset-dir> <model-out> [C=8] [K=12] [iterations=150]
//                   [--parallel [nodes=4]] [--metrics-out FILE] [--trace]
//                   [--trace-out FILE] [--profile] [--profile-out FILE]
//                   [--oversubscribe] [--checkpoint-dir DIR]
//                   [--checkpoint-every N] [--checkpoint-keep N] [--resume]
//
// --metrics-out writes a JSON array with one telemetry snapshot per sweep
// (sweep/phase durations, tokens resampled, switch rates, train
// log-likelihood, engine phase seconds when --parallel); --trace enables
// the in-memory span ring buffer and prints a span summary after training.
//
// Performance observability (DESIGN.md §11): --profile samples the
// training run with the in-process SIGPROF profiler and prints a top-15
// symbol table (--profile-out additionally writes folded stacks for
// flamegraph tooling); --trace-out writes the span timeline as Chrome
// Trace Event JSON, loadable in ui.perfetto.dev; --oversubscribe lets
// --parallel run more worker threads than the host has cores (useful for
// multi-thread traces on small machines).
//
// --checkpoint-dir enables durable training checkpoints (atomic write,
// CRC-verified, keep-last-N rotation) every --checkpoint-every sweeps;
// --resume restarts from the newest usable checkpoint in that directory
// and continues to a bit-identical final model (see DESIGN.md, "Fault
// tolerance"). The COLD_FAULT_POINT environment variable (e.g.
// "after_sweep:25") arms the crash-injection harness used by
// tools/crashloop_train.sh.
//
// Distributed training (DESIGN.md §12): --nodes N runs COLD as N real OS
// processes exchanging per-superstep deltas over sockets. Without
// --coordinator the process self-forks N-1 workers over an ephemeral
// loopback port; with --coordinator HOST:PORT (plus --node-rank R) each
// rank is launched separately and rank 0 listens on PORT. A fixed seed
// produces bit-identical models for every node count. --checkpoint-dir
// gets a per-rank subdirectory (node-<rank>); on --resume the cluster
// negotiates the newest sweep every node can load. COLD_FAULT_NODE=R
// restricts COLD_FAULT_POINT to rank R (the node-death drill of
// tools/distloop_train.sh).
//
// Self-healing (DESIGN.md §12): every node heartbeats its peers
// (--heartbeat-interval-ms) and bounds every receive by a liveness
// deadline (--heartbeat-timeout-ms; silence means a dead or hung peer)
// plus a progress deadline (--progress-timeout-ms; heartbeats without
// data mean a lost frame). With --max-restarts K > 0 in self-fork mode
// the parent becomes a pure supervisor: ALL ranks run as children, and
// when any child fails the supervisor kills the stragglers, waits out a
// jittered exponential backoff, and reforks the whole job with --resume
// semantics forced on, so it continues from the newest checkpoint sweep
// common to all ranks — bit-identical to an uninterrupted run. The
// COLD_NET_FAULT environment variable (e.g. "stall:1:6") arms the
// network chaos layer used by tools/chaosloop_train.sh; injected faults
// fire on the first attempt only (a fault spec models one failure event,
// not a permanently broken network).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/cold.h"
#include "core/model_io.h"
#include "data/serialize.h"
#include "dist/dist_trainer.h"
#include "dist/net_fault.h"
#include "dist/transport.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dataset-dir> <model-out> [C=8] [K=12] "
               "[--arena-out PATH] "
               "[iterations=150] [--parallel [nodes=4]] [--threads N] "
               "[--partitioner modulo|greedy] [--legacy-counters] "
               "[--nodes N [--node-rank R --coordinator HOST:PORT]] "
               "[--max-restarts K] [--heartbeat-interval-ms N] "
               "[--heartbeat-timeout-ms N] [--progress-timeout-ms N] "
               "[--metrics-out FILE] [--trace] [--trace-out FILE] "
               "[--profile] [--profile-out FILE] [--oversubscribe] "
               "[--checkpoint-dir DIR] "
               "[--checkpoint-every N] [--checkpoint-keep N] [--resume] "
               "[--topic-sampling auto|dense|sparse] [--sparse-mh-steps N]\n",
               argv0);
  return 2;
}

/// Strict positive-int parse: the whole token must be digits (no silent
/// atoi-style truncation to 0).
bool ParsePositiveInt(const char* s, int* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v <= 0 || v > 1000000000) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

/// Like ParsePositiveInt but admits 0 (restart budgets and "disable this
/// deadline" knobs).
bool ParseNonNegativeInt(const char* s, int* out) {
  if (s != nullptr && std::strcmp(s, "0") == 0) {
    *out = 0;
    return true;
  }
  return ParsePositiveInt(s, out);
}

struct Args {
  std::string dataset_dir;
  std::string model_out;
  /// When non-empty, also write a COLDARN1 mmap-able arena snapshot here
  /// (the cold_serve zero-copy format).
  std::string arena_out;
  int num_communities = 8;
  int num_topics = 12;
  int iterations = 150;
  bool parallel = false;
  int nodes = 4;
  /// Real multi-process training: 0 = off, N >= 1 = cluster size.
  int dist_nodes = 0;
  int node_rank = -1;
  std::string coordinator;
  /// Self-fork supervision: > 0 turns the parent into a supervisor that
  /// restarts the whole job from the newest common checkpoint.
  int max_restarts = 0;
  /// Liveness knobs (DistConfig mirrors; 0 timeout disables the layer).
  int heartbeat_interval_ms = 1000;
  int heartbeat_timeout_ms = 10000;
  int progress_timeout_ms = 120000;
  int threads_per_node = 1;
  cold::engine::PartitionerKind partitioner = cold::engine::PartitionerKind::kGreedy;
  bool legacy_counters = false;
  std::string metrics_out;
  bool trace = false;
  std::string trace_out;
  bool profile = false;
  std::string profile_out;
  bool oversubscribe = false;
  std::string checkpoint_dir;
  int checkpoint_every = 10;
  int checkpoint_keep = 3;
  bool resume = false;
  /// Topic-draw strategy (DESIGN.md §13): auto picks sparse for K >= 32.
  cold::core::TopicSampling topic_sampling =
      cold::core::TopicSampling::kAuto;
  int sparse_mh_steps = 2;
};


/// Writes the optional COLDARN1 arena next to the COLDEST1 model when
/// --arena-out was given. Non-fatal on its own; callers fold the result
/// into their exit code.
bool MaybeSaveArena(const Args& args, const cold::core::ColdEstimates& estimates,
                    int top_communities) {
  namespace core = cold::core;
  if (args.arena_out.empty()) return true;
  if (auto st = core::SaveArenaSnapshot(estimates, top_communities,
                                        args.arena_out);
      !st.ok()) {
    std::fprintf(stderr, "arena: %s\n", st.ToString().c_str());
    return false;
  }
  std::printf("arena snapshot written to %s\n", args.arena_out.c_str());
  return true;
}

/// Returns false (after printing the offending token) on any unknown flag
/// or malformed value.
bool ParseArgs(int argc, char** argv, Args* args) {
  std::vector<const char*> positional;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--parallel") == 0) {
      args->parallel = true;
      // Optional node count: consume the next token iff it is not a flag.
      if (a + 1 < argc && argv[a + 1][0] != '-') {
        if (!ParsePositiveInt(argv[++a], &args->nodes)) {
          std::fprintf(stderr, "invalid --parallel node count '%s'\n",
                       argv[a]);
          return false;
        }
      }
    } else if (std::strcmp(arg, "--nodes") == 0) {
      if (a + 1 >= argc || !ParsePositiveInt(argv[++a], &args->dist_nodes)) {
        std::fprintf(stderr, "--nodes requires a positive int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--node-rank") == 0) {
      int rank = 0;
      // Rank 0 is valid, so ParsePositiveInt alone doesn't fit.
      if (a + 1 >= argc || (std::strcmp(argv[a + 1], "0") != 0 &&
                            !ParsePositiveInt(argv[a + 1], &rank))) {
        std::fprintf(stderr, "--node-rank requires a non-negative int\n");
        return false;
      }
      ++a;
      args->node_rank = rank;
    } else if (std::strcmp(arg, "--max-restarts") == 0) {
      if (a + 1 >= argc ||
          !ParseNonNegativeInt(argv[++a], &args->max_restarts)) {
        std::fprintf(stderr, "--max-restarts requires a non-negative int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--heartbeat-interval-ms") == 0) {
      if (a + 1 >= argc ||
          !ParsePositiveInt(argv[++a], &args->heartbeat_interval_ms)) {
        std::fprintf(stderr,
                     "--heartbeat-interval-ms requires a positive int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--heartbeat-timeout-ms") == 0) {
      if (a + 1 >= argc ||
          !ParseNonNegativeInt(argv[++a], &args->heartbeat_timeout_ms)) {
        std::fprintf(stderr,
                     "--heartbeat-timeout-ms requires a non-negative int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--progress-timeout-ms") == 0) {
      if (a + 1 >= argc ||
          !ParseNonNegativeInt(argv[++a], &args->progress_timeout_ms)) {
        std::fprintf(stderr,
                     "--progress-timeout-ms requires a non-negative int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--coordinator") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--coordinator requires HOST:PORT\n");
        return false;
      }
      args->coordinator = argv[++a];
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (a + 1 >= argc ||
          !ParsePositiveInt(argv[++a], &args->threads_per_node)) {
        std::fprintf(stderr, "--threads requires a positive int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--partitioner") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--partitioner requires modulo|greedy\n");
        return false;
      }
      const char* kind = argv[++a];
      if (std::strcmp(kind, "modulo") == 0) {
        args->partitioner = cold::engine::PartitionerKind::kModulo;
      } else if (std::strcmp(kind, "greedy") == 0) {
        args->partitioner = cold::engine::PartitionerKind::kGreedy;
      } else {
        std::fprintf(stderr, "unknown partitioner '%s' (modulo|greedy)\n",
                     kind);
        return false;
      }
    } else if (std::strcmp(arg, "--legacy-counters") == 0) {
      args->legacy_counters = true;
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--metrics-out requires a file argument\n");
        return false;
      }
      args->metrics_out = argv[++a];
    } else if (std::strcmp(arg, "--trace") == 0) {
      args->trace = true;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--trace-out requires a file argument\n");
        return false;
      }
      args->trace_out = argv[++a];
    } else if (std::strcmp(arg, "--profile") == 0) {
      args->profile = true;
    } else if (std::strcmp(arg, "--profile-out") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--profile-out requires a file argument\n");
        return false;
      }
      args->profile = true;
      args->profile_out = argv[++a];
    } else if (std::strcmp(arg, "--oversubscribe") == 0) {
      args->oversubscribe = true;
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--checkpoint-dir requires a directory\n");
        return false;
      }
      args->checkpoint_dir = argv[++a];
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      if (a + 1 >= argc || !ParsePositiveInt(argv[++a],
                                             &args->checkpoint_every)) {
        std::fprintf(stderr, "--checkpoint-every requires a positive int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--checkpoint-keep") == 0) {
      if (a + 1 >= argc || !ParsePositiveInt(argv[++a],
                                             &args->checkpoint_keep)) {
        std::fprintf(stderr, "--checkpoint-keep requires a positive int\n");
        return false;
      }
    } else if (std::strcmp(arg, "--resume") == 0) {
      args->resume = true;
    } else if (std::strcmp(arg, "--arena-out") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--arena-out requires a path\n");
        return false;
      }
      args->arena_out = argv[++a];
    } else if (std::strcmp(arg, "--topic-sampling") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr,
                     "--topic-sampling requires auto|dense|sparse\n");
        return false;
      }
      const char* mode = argv[++a];
      if (std::strcmp(mode, "auto") == 0) {
        args->topic_sampling = cold::core::TopicSampling::kAuto;
      } else if (std::strcmp(mode, "dense") == 0) {
        args->topic_sampling = cold::core::TopicSampling::kDense;
      } else if (std::strcmp(mode, "sparse") == 0) {
        args->topic_sampling = cold::core::TopicSampling::kSparse;
      } else {
        std::fprintf(stderr,
                     "unknown topic sampling '%s' (auto|dense|sparse)\n",
                     mode);
        return false;
      }
    } else if (std::strcmp(arg, "--sparse-mh-steps") == 0) {
      if (a + 1 >= argc ||
          !ParsePositiveInt(argv[++a], &args->sparse_mh_steps)) {
        std::fprintf(stderr, "--sparse-mh-steps requires a positive int\n");
        return false;
      }
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2 || positional.size() > 5) {
    std::fprintf(stderr, "expected 2-5 positional arguments, got %zu\n",
                 positional.size());
    return false;
  }
  if (args->resume && args->checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return false;
  }
  if (args->dist_nodes > 0 && args->parallel) {
    std::fprintf(stderr, "--nodes (multi-process) and --parallel "
                 "(single-process) are mutually exclusive\n");
    return false;
  }
  if (args->dist_nodes == 0 &&
      (args->node_rank >= 0 || !args->coordinator.empty())) {
    std::fprintf(stderr, "--node-rank/--coordinator require --nodes\n");
    return false;
  }
  if ((args->node_rank >= 0) != !args->coordinator.empty()) {
    std::fprintf(stderr,
                 "--node-rank and --coordinator must be given together "
                 "(omit both for a self-forked local cluster)\n");
    return false;
  }
  if (args->node_rank >= args->dist_nodes && args->node_rank >= 0) {
    std::fprintf(stderr, "--node-rank must be < --nodes\n");
    return false;
  }
  if (args->max_restarts > 0 &&
      (args->dist_nodes < 2 || !args->coordinator.empty())) {
    std::fprintf(stderr,
                 "--max-restarts requires a self-forked cluster "
                 "(--nodes N >= 2 without --coordinator)\n");
    return false;
  }
  args->dataset_dir = positional[0];
  args->model_out = positional[1];
  int* ints[3] = {&args->num_communities, &args->num_topics,
                  &args->iterations};
  for (size_t p = 2; p < positional.size(); ++p) {
    if (!ParsePositiveInt(positional[p], ints[p - 2])) {
      std::fprintf(stderr, "invalid positional integer '%s'\n",
                   positional[p]);
      return false;
    }
  }
  return true;
}

/// Collects one registry snapshot per sweep and writes them as a JSON
/// array of {"sweep": N, "metrics": {...}} objects.
class MetricsSeries {
 public:
  void Record(int sweep) {
    std::ostringstream os;
    os << "{\"sweep\":" << sweep << ",\"metrics\":";
    cold::obs::Registry::Global().DumpJson(os);
    os << "}";
    snapshots_.push_back(os.str());
  }

  bool WriteTo(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "[\n";
    for (size_t i = 0; i < snapshots_.size(); ++i) {
      out << snapshots_[i] << (i + 1 < snapshots_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return static_cast<bool>(out);
  }

  size_t size() const { return snapshots_.size(); }

 private:
  std::vector<std::string> snapshots_;
};

/// Loads the newest usable checkpoint and hands its payload to `restore`.
/// Returns false on a fatal mismatch (message already printed); an empty
/// checkpoint directory is not fatal — training simply starts from sweep 0.
bool TryResume(const cold::core::CheckpointManager& ckpt,
               cold::core::CheckpointFlavor expected_flavor,
               uint64_t fingerprint,
               const std::function<cold::Status(const std::string&)>& restore) {
  auto loaded_result = ckpt.LoadLatest();
  if (!loaded_result.ok()) {
    if (loaded_result.status().code() == cold::StatusCode::kNotFound) {
      std::printf("no usable checkpoint in %s; starting from sweep 0\n",
                  ckpt.options().dir.c_str());
      return true;
    }
    std::fprintf(stderr, "resume: %s\n",
                 loaded_result.status().ToString().c_str());
    return false;
  }
  cold::core::LoadedCheckpoint loaded = std::move(loaded_result).ValueOrDie();
  if (loaded.meta.flavor != expected_flavor) {
    std::fprintf(stderr,
                 "resume: %s was written by the %s trainer; resume with the "
                 "same mode it was trained with\n",
                 loaded.path.c_str(),
                 loaded.meta.flavor == cold::core::CheckpointFlavor::kParallel
                     ? "--parallel"
                     : "serial");
    return false;
  }
  if (loaded.meta.data_fingerprint != fingerprint) {
    std::fprintf(stderr,
                 "resume: %s was written for a different dataset\n",
                 loaded.path.c_str());
    return false;
  }
  if (auto st = restore(loaded.payload); !st.ok()) {
    std::fprintf(stderr, "resume: %s\n", st.ToString().c_str());
    return false;
  }
  std::printf("resumed from %s (sweep %d)\n", loaded.path.c_str(),
              loaded.meta.sweep);
  return true;
}

/// Serializes the trainer and writes one rotation entry. Checkpoint
/// failures are logged, not fatal: training should survive a full or
/// flaky disk and still produce a model.
void WriteCheckpoint(
    const cold::core::CheckpointManager& ckpt,
    cold::core::CheckpointFlavor flavor, int sweep, uint64_t fingerprint,
    const std::function<cold::Status(std::string*)>& serialize) {
  std::string payload;
  cold::Status st = serialize(&payload);
  if (st.ok()) {
    cold::core::CheckpointMeta meta;
    meta.flavor = flavor;
    meta.sweep = sweep;
    meta.data_fingerprint = fingerprint;
    st = ckpt.Write(meta, payload);
  }
  if (!st.ok()) {
    COLD_LOG(kWarning) << "checkpoint at sweep " << sweep
                       << " failed: " << st.message();
  }
}

/// Prints each trace-span family's count/total/mean from the registry.
void PrintSpanSummary() {
  cold::obs::TelemetrySnapshot snapshot =
      cold::obs::Registry::Global().Snapshot();
  std::printf("trace spans:\n");
  for (const auto& h : snapshot.histograms) {
    constexpr const char* kPrefix = "cold/trace/";
    if (h.name.rfind(kPrefix, 0) != 0 || h.count == 0) continue;
    std::printf("  %-28s count=%lld total=%.3fs mean=%.6fs\n",
                h.name.c_str() + std::strlen(kPrefix),
                static_cast<long long>(h.count), h.sum,
                h.sum / static_cast<double>(h.count));
  }
}

/// Splits "HOST:PORT"; false (with message) on malformed input.
bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      !ParsePositiveInt(spec.c_str() + colon + 1, port) || *port > 65535) {
    std::fprintf(stderr, "--coordinator expects HOST:PORT, got '%s'\n",
                 spec.c_str());
    return false;
  }
  *host = spec.substr(0, colon);
  return true;
}

/// \brief Establishes this process's rank and peer transports for --nodes.
///
/// Self-fork mode (no --coordinator): rank 0 binds an ephemeral loopback
/// listener, then forks the workers BEFORE any thread pool exists (fork and
/// threads don't mix); children connect back over 127.0.0.1. Cluster mode:
/// rank 0 listens on the given port, workers connect to it. On success
/// `children` holds the forked worker pids (parent, self-fork mode only).
bool SetupDistTransports(
    const Args& args, int* rank,
    std::vector<std::unique_ptr<cold::dist::Transport>>* peers,
    std::vector<pid_t>* children) {
  using cold::dist::TcpConnect;
  using cold::dist::TcpListener;
  using cold::dist::Transport;
  const int n = args.dist_nodes;
  if (n == 1) {
    *rank = 0;
    return true;
  }

  std::string host = "127.0.0.1";
  int port = 0;
  TcpListener listener;
  if (!args.coordinator.empty()) {
    if (!ParseHostPort(args.coordinator, &host, &port)) return false;
    *rank = args.node_rank;
  } else {
    // Self-fork: bind first so workers can't race the listener, and flush
    // stdio so buffered output is not duplicated into every child.
    if (auto st = listener.Listen(0); !st.ok()) {
      std::fprintf(stderr, "dist: %s\n", st.ToString().c_str());
      return false;
    }
    port = listener.port();
    std::fflush(nullptr);
    *rank = 0;
    for (int r = 1; r < n; ++r) {
      pid_t pid = ::fork();
      if (pid < 0) {
        std::perror("fork");
        return false;
      }
      if (pid == 0) {
        *rank = r;
        children->clear();
        listener.Close();
        break;
      }
      children->push_back(pid);
    }
  }

  if (*rank == 0) {
    if (!args.coordinator.empty()) {
      if (auto st = listener.Listen(static_cast<uint16_t>(port)); !st.ok()) {
        std::fprintf(stderr, "dist: %s\n", st.ToString().c_str());
        return false;
      }
    }
    // Bound the accept wait: a worker that dies before connecting must
    // not hang the coordinator forever.
    const int accept_timeout_ms =
        args.heartbeat_timeout_ms > 0
            ? std::max(args.heartbeat_timeout_ms, 10000)
            : -1;
    for (int r = 1; r < n; ++r) {
      auto accepted = listener.Accept(accept_timeout_ms);
      if (!accepted.ok()) {
        std::fprintf(stderr, "dist: %s\n",
                     accepted.status().ToString().c_str());
        return false;
      }
      peers->push_back(std::move(accepted).ValueOrDie());
    }
  } else {
    auto connected = TcpConnect(host, static_cast<uint16_t>(port));
    if (!connected.ok()) {
      std::fprintf(stderr, "dist: %s\n",
                   connected.status().ToString().c_str());
      return false;
    }
    peers->push_back(std::move(connected).ValueOrDie());
  }
  return true;
}

/// \brief Trains this process's rank to completion and returns its exit
/// code. Only rank 0 writes the model/metrics. `force_resume` is the
/// supervisor's restart path: resume semantics on regardless of --resume.
int RunDistNode(const Args& args, const cold::core::ColdConfig& config,
                const cold::data::SocialDataset& dataset, int rank,
                std::vector<std::unique_ptr<cold::dist::Transport>> peers,
                bool force_resume) {
  using namespace cold;

  // Narrow the armed fault entries to this rank (unscoped entries honor
  // the legacy COLD_FAULT_NODE narrowing), and arm the network chaos
  // layer from COLD_NET_FAULT.
  FaultInjector::Global().SetNodeRank(rank);
  dist::NetFaultInjector::Global().ConfigureFromEnv();
  dist::NetFaultInjector::Global().SetNodeRank(rank);

  dist::DistConfig dc;
  dc.num_nodes = args.dist_nodes;
  dc.node_rank = rank;
  dc.cold = config;
  dc.engine.threads_per_node = args.threads_per_node;
  dc.engine.partitioner = args.partitioner;
  dc.engine.legacy_shared_counters = args.legacy_counters;
  dc.engine.oversubscribe = args.oversubscribe;
  if (!args.checkpoint_dir.empty()) {
    dc.checkpoint.dir =
        args.checkpoint_dir + "/node-" + std::to_string(rank);
    dc.checkpoint.every = args.checkpoint_every;
    dc.checkpoint.keep_last = args.checkpoint_keep;
  }
  dc.resume = args.resume || force_resume;
  dc.heartbeat_interval_ms = args.heartbeat_interval_ms;
  dc.heartbeat_timeout_ms = args.heartbeat_timeout_ms;
  dc.progress_timeout_ms = args.progress_timeout_ms;

  dist::DistTrainer trainer(dc, dataset.posts, &dataset.interactions);
  MetricsSeries series;
  if (rank == 0 && !args.metrics_out.empty()) {
    trainer.SetSuperstepCallback([&](int sweep) { series.Record(sweep); });
  }

  Stopwatch watch;
  cold::Status st = trainer.Run(std::move(peers));
  int exit_code = 0;
  if (!st.ok()) {
    std::fprintf(stderr, "dist rank %d: %s\n", rank, st.ToString().c_str());
    exit_code = 1;
  } else if (rank == 0) {
    const dist::DistStats& stats = trainer.stats();
    if (stats.resumed_sweep >= 0) {
      std::printf("resumed from sweep %d on all %d nodes\n",
                  stats.resumed_sweep, args.dist_nodes);
    }
    std::printf("distributed training (%d nodes): measured %.2fs, "
                "%lld comm bytes, %lld/%lld owned chunks on rank 0\n",
                args.dist_nodes, watch.ElapsedSeconds(),
                static_cast<long long>(stats.bytes_sent +
                                       stats.bytes_received),
                static_cast<long long>(stats.owned_chunks),
                static_cast<long long>(stats.total_chunks));
    core::ColdEstimates estimates = trainer.Estimates();
    if (!args.metrics_out.empty() && !series.WriteTo(args.metrics_out)) {
      std::fprintf(stderr, "metrics: cannot write %s\n",
                   args.metrics_out.c_str());
      exit_code = 1;
    }
    if (auto save = core::SaveEstimates(estimates, args.model_out);
        !save.ok()) {
      std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
      exit_code = 1;
    } else {
      std::printf("model written to %s (U=%d C=%d K=%d T=%d V=%d)\n",
                  args.model_out.c_str(), estimates.U, estimates.C,
                  estimates.K, estimates.T, estimates.V);
      if (!MaybeSaveArena(args, estimates, config.top_communities)) {
        exit_code = 1;
      }
    }
  }
  return exit_code;
}

/// \brief Self-healing self-fork mode (--max-restarts > 0): the parent is
/// a pure supervisor — ALL ranks run as children over a loopback port the
/// supervisor holds open across attempts. When any child fails, the
/// stragglers (including a SIGSTOPped hung rank) are SIGKILLed, the
/// supervisor backs off with jitter, and the whole job is reforked with
/// resume forced on, continuing from the newest checkpoint sweep common
/// to all ranks. The restart is bit-identical to an uninterrupted run.
int RunSupervised(const Args& args, const cold::core::ColdConfig& config,
                  const cold::data::SocialDataset& dataset) {
  using cold::dist::TcpConnect;
  using cold::dist::TcpListener;
  using cold::dist::Transport;
  const int n = args.dist_nodes;

  TcpListener listener;
  if (auto st = listener.Listen(0); !st.ok()) {
    std::fprintf(stderr, "dist: %s\n", st.ToString().c_str());
    return 1;
  }
  const uint16_t port = listener.port();
  // Bound the coordinator's accept wait: a worker that dies before
  // connecting must not hang the whole attempt.
  const int accept_timeout_ms =
      args.heartbeat_timeout_ms > 0
          ? std::max(args.heartbeat_timeout_ms, 10000)
          : -1;
  std::minstd_rand rng(
      static_cast<uint32_t>(::getpid()) * 2654435761u ^
      static_cast<uint32_t>(std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count()));

  for (int attempt = 0;; ++attempt) {
    std::fflush(nullptr);
    std::vector<pid_t> children;
    bool fork_failed = false;
    for (int r = 0; r < n; ++r) {
      pid_t pid = ::fork();
      if (pid < 0) {
        std::perror("fork");
        fork_failed = true;
        break;
      }
      if (pid == 0) {
        // An injected fault models ONE failure event: recovery attempts
        // run with both chaos layers disarmed, otherwise a fault whose
        // sweep is revisited after resume would refire forever.
        if (attempt > 0) {
          ::unsetenv("COLD_FAULT_POINT");
          ::unsetenv("COLD_NET_FAULT");
          cold::FaultInjector::Global().Disarm();
          cold::dist::NetFaultInjector::Global().Disarm();
        }
        std::vector<std::unique_ptr<Transport>> peers;
        int code = 1;
        if (r == 0) {
          bool ok = true;
          for (int i = 1; i < n; ++i) {
            auto accepted = listener.Accept(accept_timeout_ms);
            if (!accepted.ok()) {
              std::fprintf(stderr, "dist: %s\n",
                           accepted.status().ToString().c_str());
              ok = false;
              break;
            }
            peers.push_back(std::move(accepted).ValueOrDie());
          }
          if (ok) {
            code = RunDistNode(args, config, dataset, 0, std::move(peers),
                               /*force_resume=*/attempt > 0);
          }
        } else {
          listener.Close();
          auto connected = TcpConnect("127.0.0.1", port);
          if (!connected.ok()) {
            std::fprintf(stderr, "dist: %s\n",
                         connected.status().ToString().c_str());
          } else {
            peers.push_back(std::move(connected).ValueOrDie());
            code = RunDistNode(args, config, dataset, r, std::move(peers),
                               /*force_resume=*/attempt > 0);
          }
        }
        std::fflush(nullptr);
        ::_exit(code);
      }
      children.push_back(pid);
    }

    // Reap the attempt. The first failed child condemns the rest:
    // survivors are already aborting on their own (kAbort broadcast or
    // liveness deadline), but a SIGSTOPped hung rank never would, so
    // everything still running is SIGKILLed. Checkpoint writes are
    // atomic (tmp + rename), so a kill can never tear one.
    bool all_ok = !fork_failed;
    bool condemned = fork_failed;
    std::vector<bool> reaped(children.size(), false);
    if (condemned) {
      for (pid_t pid : children) ::kill(pid, SIGKILL);
    }
    size_t live = children.size();
    while (live > 0) {
      int wstatus = 0;
      pid_t pid = ::waitpid(-1, &wstatus, 0);
      if (pid < 0) {
        if (errno == EINTR) continue;
        break;
      }
      size_t idx = children.size();
      for (size_t i = 0; i < children.size(); ++i) {
        if (!reaped[i] && children[i] == pid) idx = i;
      }
      if (idx == children.size()) continue;
      reaped[idx] = true;
      --live;
      if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
        all_ok = false;
        if (!condemned) {
          condemned = true;
          for (size_t i = 0; i < children.size(); ++i) {
            if (!reaped[i]) ::kill(children[i], SIGKILL);
          }
        }
      }
    }

    if (all_ok) {
      if (attempt > 0) {
        std::printf("dist: job recovered after %d restart(s)\n", attempt);
      }
      return 0;
    }
    if (attempt >= args.max_restarts) {
      std::fprintf(stderr, "dist: restart budget of %d exhausted\n",
                   args.max_restarts);
      return 1;
    }

    // Jittered exponential backoff so restart storms cannot synchronize;
    // then re-bind the same port to flush any stale half-open connections
    // out of the listen backlog before the next attempt.
    const int ceiling_ms = 200 << std::min(attempt, 5);
    const int sleep_ms =
        ceiling_ms / 2 +
        static_cast<int>(rng() % static_cast<uint32_t>(ceiling_ms / 2 + 1));
    std::fprintf(stderr,
                 "dist: attempt %d failed; restarting from the newest "
                 "common checkpoint in %dms (restart %d of %d)\n",
                 attempt + 1, sleep_ms, attempt + 1, args.max_restarts);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    listener.Close();
    cold::Status rebind = cold::Status::OK();
    for (int tries = 0; tries < 50; ++tries) {
      rebind = listener.Listen(port);
      if (rebind.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!rebind.ok()) {
      std::fprintf(stderr, "dist: cannot re-bind port %u: %s\n",
                   static_cast<unsigned>(port), rebind.ToString().c_str());
      return 1;
    }
  }
}

/// The --nodes execution path: returns the process exit code. With
/// --max-restarts > 0 (self-fork mode) the parent supervises and restarts
/// the job; otherwise the legacy fail-stop layout runs — the parent IS
/// rank 0, workers are its children, and any failure fails the whole job
/// (the operator restarts it with --resume).
int RunDistributed(const Args& args, const cold::core::ColdConfig& config,
                   const cold::data::SocialDataset& dataset) {
  using namespace cold;
  if (args.max_restarts > 0) return RunSupervised(args, config, dataset);

  int rank = 0;
  std::vector<std::unique_ptr<dist::Transport>> peers;
  std::vector<pid_t> children;
  if (!SetupDistTransports(args, &rank, &peers, &children)) return 1;

  int exit_code = RunDistNode(args, config, dataset, rank, std::move(peers),
                              /*force_resume=*/false);

  // Reap self-forked workers; any failed or killed worker fails the job.
  for (pid_t pid : children) {
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, 0) < 0 || !WIFEXITED(wstatus) ||
        WEXITSTATUS(wstatus) != 0) {
      std::fprintf(stderr, "dist: worker pid %d failed\n",
                   static_cast<int>(pid));
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  // Arms the crash-injection harness when COLD_FAULT_POINT is set (no-op
  // otherwise); used by tools/crashloop_train.sh and the recovery tests.
  FaultInjector::Global().ConfigureFromEnv();

  if (args.trace || !args.trace_out.empty()) obs::TraceRing::Enable(8192);

  auto dataset_result = data::LoadDataset(args.dataset_dir);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  data::SocialDataset dataset = std::move(dataset_result).ValueOrDie();
  std::printf("loaded %d users, %d posts, %lld links\n", dataset.num_users(),
              dataset.posts.num_posts(),
              static_cast<long long>(dataset.interactions.num_edges()));

  core::ColdConfig config;
  config.num_communities = args.num_communities;
  config.num_topics = args.num_topics;
  config.iterations = args.iterations;
  config.burn_in = config.iterations * 3 / 4;
  // Dataset-wide vocabulary, so phi/n_kv cover word ids beyond those seen
  // in whatever subset trains (see ColdConfig::vocab_size).
  config.vocab_size = static_cast<int>(dataset.vocabulary.size());
  config.rho = 0.5;
  config.alpha = 0.5;
  config.kappa = 10.0;
  config.topic_sampling = args.topic_sampling;
  config.sparse_mh_steps = args.sparse_mh_steps;
  if (auto st = config.Validate(); !st.ok()) {
    std::fprintf(stderr, "config: %s\n", st.ToString().c_str());
    return 1;
  }

  core::CheckpointManager ckpt(
      {args.checkpoint_dir, args.checkpoint_every, args.checkpoint_keep});
  uint64_t fingerprint = 0;
  if (!args.checkpoint_dir.empty()) {
    if (auto st = ckpt.Init(); !st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    fingerprint = core::DataFingerprint(dataset.posts, &dataset.interactions);
  }

  MetricsSeries series;
  Stopwatch watch;
  core::ColdEstimates estimates;

  // Profiling covers exactly the training phase (load/save excluded so
  // attribution reflects the hot path, not I/O).
  std::optional<obs::ProfileScope> profile;
  if (args.profile) {
    obs::ProfileScopeOptions popts;
    popts.out_path = args.profile_out;
    popts.print_top = 15;
    profile.emplace(std::move(popts));
  }

  if (args.dist_nodes > 0) {
    // Multi-process path: forks/connects before any thread pool exists and
    // handles its own checkpointing (per-rank directories), metrics, and
    // model write. Trace/profile output above still applies to this
    // process (rank 0 in self-fork mode).
    int exit_code = RunDistributed(args, config, dataset);
    profile.reset();
    if (exit_code == 0 && !args.trace_out.empty() &&
        !obs::ExportChromeTrace(args.trace_out)) {
      return 1;
    }
    if (args.trace) PrintSpanSummary();
    return exit_code;
  }

  if (args.parallel) {
    engine::EngineOptions options;
    options.num_nodes = args.nodes;
    options.threads_per_node = args.threads_per_node;
    options.partitioner = args.partitioner;
    options.legacy_shared_counters = args.legacy_counters;
    options.oversubscribe = args.oversubscribe;
    core::ParallelColdTrainer trainer(config, dataset.posts,
                                      &dataset.interactions, options);
    if (auto st = trainer.Init(); !st.ok()) {
      std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
      return 1;
    }
    if (args.resume &&
        !TryResume(ckpt, core::CheckpointFlavor::kParallel, fingerprint,
                   [&](const std::string& p) {
                     return trainer.RestoreState(p);
                   })) {
      return 1;
    }
    if (!args.metrics_out.empty() || ckpt.enabled()) {
      trainer.SetSuperstepCallback([&](int sweep) {
        if (!args.metrics_out.empty()) series.Record(sweep);
        if (ckpt.ShouldCheckpoint(sweep)) {
          WriteCheckpoint(ckpt, core::CheckpointFlavor::kParallel, sweep,
                          fingerprint, [&](std::string* out) {
                            return trainer.SerializeState(out);
                          });
        }
      });
    }
    if (auto st = trainer.Train(); !st.ok()) {
      std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
      return 1;
    }
    estimates = trainer.Estimates();
    std::printf("parallel training (%d simulated nodes): measured %.2fs, "
                "projected cluster wall %.2fs\n",
                args.nodes, watch.ElapsedSeconds(),
                trainer.SimulatedWallSeconds());
  } else {
    core::ColdGibbsSampler sampler(config, dataset.posts,
                                   &dataset.interactions);
    if (auto st = sampler.Init(); !st.ok()) {
      std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
      return 1;
    }
    if (args.resume &&
        !TryResume(ckpt, core::CheckpointFlavor::kSerial, fingerprint,
                   [&](const std::string& p) {
                     return sampler.RestoreState(p);
                   })) {
      return 1;
    }
    if (!args.metrics_out.empty() || ckpt.enabled()) {
      // Refresh the train-LL gauge every sweep so each snapshot carries the
      // convergence trajectory (§4.3). This costs an extra likelihood pass
      // per sweep — metrics collection is opt-in for exactly this reason.
      obs::Gauge* ll_gauge = obs::Registry::Global().GetGauge(
          "cold/gibbs/train_log_likelihood");
      sampler.SetSweepCallback([&](int sweep) {
        if (!args.metrics_out.empty()) {
          ll_gauge->Set(sampler.TrainingLogLikelihood());
          series.Record(sweep);
        }
        if (ckpt.ShouldCheckpoint(sweep)) {
          WriteCheckpoint(ckpt, core::CheckpointFlavor::kSerial, sweep,
                          fingerprint, [&](std::string* out) {
                            return sampler.SerializeState(out);
                          });
        }
      });
    }
    if (auto st = sampler.Train(); !st.ok()) {
      std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
      return 1;
    }
    estimates = sampler.AveragedEstimates();
    std::printf("serial training: %.2fs\n", watch.ElapsedSeconds());
  }

  // End the profiling session (writing/printing its report) before the
  // post-training bookkeeping below.
  profile.reset();

  if (!args.trace_out.empty() && !obs::ExportChromeTrace(args.trace_out)) {
    return 1;
  }

  if (!args.metrics_out.empty()) {
    if (!series.WriteTo(args.metrics_out)) {
      std::fprintf(stderr, "metrics: cannot write %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    std::printf("metrics series (%zu snapshots) written to %s\n",
                series.size(), args.metrics_out.c_str());
  }
  if (args.trace) PrintSpanSummary();

  if (auto st = core::SaveEstimates(estimates, args.model_out); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s (U=%d C=%d K=%d T=%d V=%d)\n",
              args.model_out.c_str(), estimates.U, estimates.C, estimates.K,
              estimates.T, estimates.V);
  if (!MaybeSaveArena(args, estimates, config.top_communities)) return 1;
  return 0;
}
