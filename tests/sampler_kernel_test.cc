// Guard tests for the lgamma-collapsed topic kernel and the vocab-size
// derivation (sampler-performance PR): the optimized kernel must agree
// with the per-token reference loop to 1e-9, fixed-seed sweeps must stay
// deterministic for both trainers, and the samplers must honor
// ColdConfig::vocab_size over the training-split max word id.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/alias_table.h"
#include "core/cold.h"
#include "core/predictor.h"
#include "core/sparse_topic_kernel.h"
#include "data/synthetic.h"
#include "util/math_util.h"

namespace cold::core {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 10;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 9.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 8;
  config.seed = 23;
  return config;
}

const data::SocialDataset& TestData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticSocialGenerator gen(TestDataConfig());
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

ColdConfig TestModelConfig() {
  ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.iterations = 20;
  config.burn_in = 10;
  config.seed = 29;
  config.rho = 0.5;
  return config;
}

// ------------------------------------------------- LogAscendingFactorial --

TEST(LogAscendingFactorialTest, ZeroAndNegativeCountsAreZero) {
  EXPECT_EQ(LogAscendingFactorial(3.7, 0), 0.0);
  EXPECT_EQ(LogAscendingFactorial(3.7, -2), 0.0);
  EXPECT_EQ(LogAscendingFactorial(3.7, 0, LGamma(3.7)), 0.0);
}

TEST(LogAscendingFactorialTest, MatchesExplicitLoop) {
  // Bases spanning the prior-only (0.01) to heavy-count (5000) regimes,
  // counts straddling kLogAscFactorialSmallCount so both branches are hit.
  const double bases[] = {0.01, 0.5, 3.7, 120.0, 5000.0};
  for (double base : bases) {
    for (int cnt = 1; cnt <= 24; ++cnt) {
      double expected = 0.0;
      for (int q = 0; q < cnt; ++q) expected += std::log(base + q);
      EXPECT_NEAR(LogAscendingFactorial(base, cnt), expected, 1e-9)
          << "base=" << base << " cnt=" << cnt;
    }
  }
}

TEST(LogAscendingFactorialTest, CachedBaseOverloadMatches) {
  const double bases[] = {0.3, 41.5, 900.0};
  for (double base : bases) {
    double lgamma_base = LGamma(base);
    for (int cnt = 0; cnt <= 20; ++cnt) {
      EXPECT_DOUBLE_EQ(LogAscendingFactorial(base, cnt, lgamma_base),
                       LogAscendingFactorial(base, cnt))
          << "base=" << base << " cnt=" << cnt;
    }
  }
}

// ------------------------------------------------------- Topic kernel ----

/// Per-token-log reference for Eq. (3): the pre-optimization kernel, with
/// live std::log community/time terms and explicit ascending-factorial
/// loops over the Dirichlet-multinomial word/length terms.
std::vector<double> ReferenceTopicLogWeights(const ColdGibbsSampler& sampler,
                                             const text::PostStore& posts,
                                             text::PostId d, int community) {
  const ColdState& state = sampler.state();
  const ColdConfig& config = sampler.config();
  const int K = config.num_topics;
  const int T = posts.num_time_slices();
  const int V = state.V();
  const double alpha = config.ResolvedAlpha();
  const double beta = config.beta;
  const double epsilon = config.epsilon;
  const int t = posts.time(d);
  const int len = posts.length(d);
  auto word_counts = posts.WordCounts(d);

  std::vector<double> log_weights(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    double lw = std::log(state.n_ck(community, k) + alpha) +
                std::log(state.n_ckt(community, k, t) + epsilon) -
                std::log(state.n_ck(community, k) + T * epsilon);
    for (const auto& [w, cnt] : word_counts) {
      double base = state.n_kv(k, w) + beta;
      for (int q = 0; q < cnt; ++q) lw += std::log(base + q);
    }
    double denom = state.n_k(k) + V * beta;
    for (int q = 0; q < len; ++q) lw -= std::log(denom + q);
    log_weights[static_cast<size_t>(k)] = lw;
  }
  return log_weights;
}

void ExpectKernelMatchesReference(ColdGibbsSampler* sampler,
                                  const text::PostStore& posts) {
  const int C = sampler->config().num_communities;
  const int K = sampler->config().num_topics;
  std::vector<double> optimized(static_cast<size_t>(K));
  double worst = 0.0;
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    for (int c = 0; c < C; ++c) {
      sampler->TopicLogWeights(d, c, optimized);
      std::vector<double> reference =
          ReferenceTopicLogWeights(*sampler, posts, d, c);
      for (int k = 0; k < K; ++k) {
        double diff = std::abs(optimized[static_cast<size_t>(k)] -
                               reference[static_cast<size_t>(k)]);
        worst = std::max(worst, diff);
        ASSERT_NEAR(optimized[static_cast<size_t>(k)],
                    reference[static_cast<size_t>(k)], 1e-9)
            << "post " << d << " community " << c << " topic " << k;
      }
    }
  }
  // The whole sweep must stay within the guard tolerance, not just each
  // individual entry.
  EXPECT_LT(worst, 1e-9);
}

TEST(TopicKernelTest, MatchesPerTokenReferenceOnSyntheticData) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  // Check against the random-init counters and again after sweeps have
  // moved them (exercising the incremental cache refresh).
  ExpectKernelMatchesReference(&sampler, ds.posts);
  for (int it = 0; it < 3; ++it) sampler.RunIteration();
  ExpectKernelMatchesReference(&sampler, ds.posts);
}

TEST(TopicKernelTest, HandlesEmptyAndRepeatedWordPosts) {
  // Hand-built corpus hitting the edge cases the synthetic data avoids:
  // an empty post (len = 0, no word term at all), a post of one word
  // repeated past kLogAscFactorialSmallCount (lgamma path for the word
  // term), and a long mixed post (lgamma path for the length denominator).
  text::PostStore posts;
  std::vector<text::WordId> empty;
  std::vector<text::WordId> repeated(12, 3);
  std::vector<text::WordId> mixed;
  for (int q = 0; q < 20; ++q) mixed.push_back(q % 5);
  posts.Add(0, 0, empty);
  posts.Add(0, 1, repeated);
  posts.Add(1, 0, mixed);
  posts.Add(1, 1, {});
  posts.Finalize(/*min_users=*/2, /*min_time_slices=*/2);

  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 3;
  config.iterations = 4;
  config.burn_in = 1;
  config.seed = 7;
  config.use_network = false;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ExpectKernelMatchesReference(&sampler, posts);
  for (int it = 0; it < 2; ++it) sampler.RunIteration();
  ExpectKernelMatchesReference(&sampler, posts);
}

// ---------------------------------------------------- Sweep equivalence --

TEST(SweepEquivalenceTest, SerialFixedSeedTrajectoriesIdentical) {
  const auto& ds = TestData();
  ColdGibbsSampler a(TestModelConfig(), ds.posts, &ds.interactions);
  ColdGibbsSampler b(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int it = 0; it < 4; ++it) {
    a.RunIteration();
    b.RunIteration();
    ASSERT_EQ(a.state().post_topic, b.state().post_topic) << "sweep " << it;
    ASSERT_EQ(a.state().post_community, b.state().post_community)
        << "sweep " << it;
    ASSERT_EQ(a.state().link_src_community, b.state().link_src_community)
        << "sweep " << it;
  }
}

TEST(SweepEquivalenceTest, ParallelFixedSeedTrajectoriesIdentical) {
  const auto& ds = TestData();
  // Single node, single worker: the engine's deterministic configuration.
  engine::EngineOptions options;
  options.num_nodes = 1;
  options.threads_per_node = 1;
  ParallelColdTrainer a(TestModelConfig(), ds.posts, &ds.interactions,
                        options);
  ParallelColdTrainer b(TestModelConfig(), ds.posts, &ds.interactions,
                        options);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int s = 0; s < 3; ++s) {
    a.RunSuperstep();
    b.RunSuperstep();
    ColdState sa = a.StateSnapshot();
    ColdState sb = b.StateSnapshot();
    ASSERT_EQ(sa.post_topic, sb.post_topic) << "superstep " << s;
    ASSERT_EQ(sa.post_community, sb.post_community) << "superstep " << s;
    ASSERT_EQ(sa.link_src_community, sb.link_src_community)
        << "superstep " << s;
  }
}

// ----------------------------------------------------------- Vocab size --

/// A "training split" whose max word id (4) undershoots the dataset-wide
/// vocabulary (10 words): exactly the shape that used to under-size
/// n_kv/phi and make the predictor reject held-out posts.
text::PostStore LowVocabTrainPosts() {
  text::PostStore posts;
  std::vector<text::WordId> w0 = {0, 1, 2};
  std::vector<text::WordId> w1 = {2, 3, 4, 4};
  std::vector<text::WordId> w2 = {1, 0, 3};
  posts.Add(0, 0, w0);
  posts.Add(1, 1, w1);
  posts.Add(2, 0, w2);
  posts.Finalize(/*min_users=*/3, /*min_time_slices=*/2);
  return posts;
}

TEST(VocabSizeTest, SerialSamplerUsesConfiguredVocab) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 6;
  config.burn_in = 2;
  config.use_network = false;
  config.vocab_size = 10;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_EQ(sampler.state().V(), 10);
  ASSERT_TRUE(sampler.Train().ok());

  // The predictor built from these estimates must accept a held-out post
  // using word ids the training split never saw.
  ColdEstimates estimates = sampler.AveragedEstimates();
  EXPECT_EQ(estimates.V, 10);
  ColdPredictor predictor(estimates);
  std::vector<text::WordId> held_out = {7, 9};
  EXPECT_TRUE(predictor.ValidateQuery(0, held_out).ok());
  EXPECT_FALSE(predictor.TopicPosterior(held_out, 0).empty());
}

TEST(VocabSizeTest, SerialSamplerRejectsUndersizedVocab) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.use_network = false;
  config.vocab_size = 3;  // max word id is 4 -> needs at least 5
  ColdGibbsSampler sampler(config, posts, nullptr);
  cold::Status status = sampler.Init();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), cold::StatusCode::kInvalidArgument);
}

TEST(VocabSizeTest, ParallelTrainerUsesConfiguredVocab) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 4;
  config.burn_in = 1;
  config.use_network = false;
  config.vocab_size = 10;
  ParallelColdTrainer trainer(config, posts, nullptr);
  ASSERT_TRUE(trainer.Init().ok());
  EXPECT_EQ(trainer.StateSnapshot().V(), 10);

  config.vocab_size = 3;
  ParallelColdTrainer undersized(config, posts, nullptr);
  cold::Status status = undersized.Init();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), cold::StatusCode::kInvalidArgument);
}

TEST(VocabSizeTest, DefaultStillDerivesFromPosts) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.use_network = false;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_EQ(sampler.state().V(), 5);  // max word id 4 + 1
}

// ------------------------------------------------ Sparse topic kernel ----

ColdConfig SparseModelConfig() {
  ColdConfig config = TestModelConfig();
  config.topic_sampling = TopicSampling::kSparse;
  return config;
}

/// The O(length) single-topic evaluator must agree with the dense row (the
/// kernel already pinned to the per-token reference above) to the same
/// 1e-9 guard, over every (post, community, topic).
void ExpectSingleTopicEvaluatorMatchesRow(ColdGibbsSampler* sampler,
                                          const text::PostStore& posts) {
  const int C = sampler->config().num_communities;
  const int K = sampler->config().num_topics;
  std::vector<double> row(static_cast<size_t>(K));
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    for (int c = 0; c < C; ++c) {
      sampler->TopicLogWeights(d, c, row);
      for (int k = 0; k < K; ++k) {
        ASSERT_NEAR(sampler->TopicLogWeightOne(d, c, k),
                    row[static_cast<size_t>(k)], 1e-9)
            << "post " << d << " community " << c << " topic " << k;
      }
    }
  }
}

TEST(SparseKernelTest, SingleTopicEvaluatorMatchesDenseRow) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(SparseModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_TRUE(sampler.sparse_topic_sampling());
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, ds.posts);
  for (int it = 0; it < 3; ++it) sampler.RunIteration();
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, ds.posts);
  EXPECT_TRUE(sampler.state()
                  .CheckInvariants(ds.posts, &ds.interactions, true)
                  .ok());
}

TEST(SparseKernelTest, SingleTopicEvaluatorMatchesOnDensePath) {
  // TopicLogWeightOne must also be exact when the sparse tables are not
  // built (dense-configured sampler: live-lgamma fallback for the length
  // term).
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.topic_sampling = TopicSampling::kDense;
  ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_FALSE(sampler.sparse_topic_sampling());
  for (int it = 0; it < 2; ++it) sampler.RunIteration();
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, ds.posts);
}

TEST(SparseKernelTest, HandlesEmptyAndRepeatedWordPosts) {
  // Same edge-case corpus as the dense kernel test: empty posts (length
  // 0 — the MH accept ratio reduces to the prior mass), a word repeated
  // past kLogAscFactorialSmallCount, and a long mixed post.
  text::PostStore posts;
  std::vector<text::WordId> empty;
  std::vector<text::WordId> repeated(12, 3);
  std::vector<text::WordId> mixed;
  for (int q = 0; q < 20; ++q) mixed.push_back(q % 5);
  posts.Add(0, 0, empty);
  posts.Add(0, 1, repeated);
  posts.Add(1, 0, mixed);
  posts.Add(1, 1, {});
  posts.Finalize(/*min_users=*/2, /*min_time_slices=*/2);

  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 3;
  config.iterations = 4;
  config.burn_in = 1;
  config.seed = 7;
  config.use_network = false;
  config.topic_sampling = TopicSampling::kSparse;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.sparse_topic_sampling());
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, posts);
  for (int it = 0; it < 3; ++it) sampler.RunIteration();
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, posts);
  EXPECT_TRUE(sampler.state().CheckInvariants(posts, nullptr, false).ok());
}

TEST(SparseKernelTest, SingleActiveTopicDocument) {
  // One post, so exactly one topic carries counts anywhere: the alias rows
  // are near-degenerate (all other topics at prior-only mass) and the MH
  // chain must still mix over them without leaving the support.
  text::PostStore posts;
  std::vector<text::WordId> words = {0, 1, 2, 1};
  posts.Add(0, 0, words);
  posts.Finalize(/*min_users=*/1, /*min_time_slices=*/1);

  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 4;
  config.iterations = 4;
  config.burn_in = 1;
  config.seed = 11;
  config.use_network = false;
  config.topic_sampling = TopicSampling::kSparse;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, posts);
  for (int it = 0; it < 3; ++it) sampler.RunIteration();
  ExpectSingleTopicEvaluatorMatchesRow(&sampler, posts);
  EXPECT_TRUE(sampler.state().CheckInvariants(posts, nullptr, false).ok());
}

TEST(SparseKernelTest, SerialSparseFixedSeedTrajectoriesIdentical) {
  const auto& ds = TestData();
  ColdGibbsSampler a(SparseModelConfig(), ds.posts, &ds.interactions);
  ColdGibbsSampler b(SparseModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int it = 0; it < 4; ++it) {
    a.RunIteration();
    b.RunIteration();
    ASSERT_EQ(a.state().post_topic, b.state().post_topic) << "sweep " << it;
    ASSERT_EQ(a.state().post_community, b.state().post_community)
        << "sweep " << it;
    ASSERT_EQ(a.state().link_src_community, b.state().link_src_community)
        << "sweep " << it;
  }
}

TEST(SparseKernelTest, CheckpointResumeBitIdenticalOnSparsePath) {
  // Resume lands at a sweep boundary, where the alias bank is invalidated
  // wholesale — so the restored sampler's trajectory must not depend on the
  // alias staleness the original carried, bit for bit.
  const auto& ds = TestData();
  ColdConfig config = SparseModelConfig();
  ColdGibbsSampler first(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(first.Init().ok());
  for (int it = 0; it < 4; ++it) first.RunIteration();
  std::string snapshot;
  ASSERT_TRUE(first.SerializeState(&snapshot).ok());
  for (int it = 0; it < 3; ++it) first.RunIteration();

  ColdGibbsSampler resumed(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.RestoreState(snapshot).ok());
  for (int it = 0; it < 3; ++it) resumed.RunIteration();

  EXPECT_EQ(first.state().post_topic, resumed.state().post_topic);
  EXPECT_EQ(first.state().post_community, resumed.state().post_community);
  EXPECT_EQ(first.state().link_src_community,
            resumed.state().link_src_community);
  EXPECT_EQ(first.state().link_dst_community,
            resumed.state().link_dst_community);
}

TEST(SparseKernelTest, ParallelSparseWorkerCountBitIdentical) {
  // The parallel sparse path rebuilds every alias row from the frozen
  // counters at each superstep, so state must be byte-identical across
  // repeated runs AND across worker counts.
  const auto& ds = TestData();
  auto run = [&](int threads) {
    ColdConfig config = SparseModelConfig();
    config.iterations = 4;
    config.burn_in = 0;
    engine::EngineOptions options;
    options.threads_per_node = threads;
    options.oversubscribe = true;
    ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
    EXPECT_TRUE(trainer.Init().ok());
    EXPECT_TRUE(trainer.Train().ok());
    return trainer.StateSnapshot();
  };
  ColdState a = run(4);
  ColdState b = run(4);
  EXPECT_EQ(a.post_topic, b.post_topic);
  EXPECT_EQ(a.post_community, b.post_community);
  ColdState c = run(1);
  EXPECT_EQ(a.post_topic, c.post_topic);
  EXPECT_EQ(a.post_community, c.post_community);
  EXPECT_EQ(a.link_src_community, c.link_src_community);
  EXPECT_EQ(a.link_dst_community, c.link_dst_community);
  EXPECT_TRUE(a.CheckInvariants(ds.posts, &ds.interactions, true).ok());
}

TEST(SparseKernelTest, MhStationaryMatchesExactPosteriorEvenWhenStale) {
  // The MH accept step must make the draw exact for ANY full-support
  // proposal: a long chain's empirical distribution has to match the
  // softmax of the exact log-weights both for a fresh prior-mass proposal
  // and for a maximally stale (uniform) one.
  const auto& ds = TestData();
  ColdGibbsSampler sampler(SparseModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  for (int it = 0; it < 3; ++it) sampler.RunIteration();

  const ColdState& state = sampler.state();
  const ColdConfig& config = sampler.config();
  const int K = config.num_topics;
  const int T = ds.posts.num_time_slices();
  const text::PostId d = 5;
  const int c = state.post_community[static_cast<size_t>(d)];
  const int t = ds.posts.time(d);

  // Exact target: softmax of the dense row.
  std::vector<double> lw(static_cast<size_t>(K));
  sampler.TopicLogWeights(d, c, lw);
  double max_lw = lw[0];
  for (double v : lw) max_lw = std::max(max_lw, v);
  std::vector<double> exact(static_cast<size_t>(K));
  double total = 0.0;
  for (int k = 0; k < K; ++k) {
    exact[static_cast<size_t>(k)] =
        std::exp(lw[static_cast<size_t>(k)] - max_lw);
    total += exact[static_cast<size_t>(k)];
  }
  for (double& v : exact) v /= total;

  std::vector<double> fresh(static_cast<size_t>(K));
  const double alpha = config.ResolvedAlpha();
  for (int k = 0; k < K; ++k) {
    double nck = state.n_ck(c, k);
    fresh[static_cast<size_t>(k)] =
        (nck + alpha) * (state.n_ckt(c, k, t) + config.epsilon) /
        (nck + T * config.epsilon);
  }
  std::vector<double> stale(static_cast<size_t>(K), 1.0);

  for (const auto& weights : {fresh, stale}) {
    AliasTable proposal;
    proposal.Build(weights);
    RandomSampler rng(99, 3);
    std::vector<int> counts(static_cast<size_t>(K), 0);
    const int kDraws = 60000;
    int k = state.post_topic[static_cast<size_t>(d)];
    for (int i = 0; i < kDraws; ++i) {
      k = MhTopicDraw(proposal, k, /*mh_steps=*/2, rng,
                      [&](int kk) { return sampler.TopicLogWeightOne(d, c, kk); });
      counts[static_cast<size_t>(k)]++;
    }
    for (int kk = 0; kk < K; ++kk) {
      EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(kk)]) /
                      kDraws,
                  exact[static_cast<size_t>(kk)], 0.02)
          << "topic " << kk << (weights == stale ? " (stale)" : " (fresh)");
    }
  }
}

// ----------------------------------------------------------- AliasTable --

TEST(AliasTableTest, ProbabilitiesAndSamplingMatchWeights) {
  const std::vector<double> weights = {0.5, 3.0, 1.5, 0.0, 2.0};
  const double total = 7.0;
  AliasTable table;
  table.Build(weights);
  ASSERT_EQ(table.size(), weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(table.Probability(static_cast<int>(i)), weights[i] / total,
                1e-12);
    if (weights[i] > 0.0) {
      EXPECT_NEAR(table.LogProbability(static_cast<int>(i)),
                  std::log(weights[i] / total), 1e-12);
    } else {
      EXPECT_TRUE(std::isinf(table.LogProbability(static_cast<int>(i))));
    }
  }
  RandomSampler rng(7, 7);
  std::vector<int> counts(weights.size(), 0);
  const int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) counts[static_cast<size_t>(table.Sample(rng))]++;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, weights[i] / total,
                0.01)
        << "index " << i;
  }
  // The zero-weight bucket must be exactly unreachable, not just rare.
  EXPECT_EQ(counts[3], 0);
}

TEST(AliasTableTest, DegenerateAndSingletonWeights) {
  AliasTable table;
  table.Build(std::vector<double>{0.0, 0.0, 0.0, 0.0});
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(table.Probability(i), 0.25);
  RandomSampler rng(3, 1);
  for (int i = 0; i < 100; ++i) {
    int s = table.Sample(rng);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
  table.Build(std::vector<double>{2.5});
  EXPECT_DOUBLE_EQ(table.Probability(0), 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0);
}

TEST(AliasTableTest, RebuildsAreDeterministic) {
  const std::vector<double> weights = {1.0, 4.0, 0.5, 2.5};
  AliasTable a, b;
  a.Build(weights);
  b.Build(std::vector<double>{9.0, 1.0});  // dirty b's internal storage
  b.Build(weights);
  RandomSampler ra(17, 5), rb(17, 5);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Sample(ra), b.Sample(rb));
}

// ------------------------------------------------------- TopicAliasBank --

TEST(TopicAliasBankTest, BudgetBoundariesAndInvalidate) {
  TopicAliasBank bank;
  bank.Reset(/*num_communities=*/2, /*num_time_slices=*/3, /*num_topics=*/4,
             /*rebuild_budget=*/3);
  // Everything starts dirty; a rebuild clears exactly that row.
  EXPECT_TRUE(bank.RowDirty(0, 0));
  EXPECT_TRUE(bank.RowDirty(1, 2));
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  for (int t = 0; t < 3; ++t) {
    bank.RebuildRow(0, t, weights);
    bank.RebuildRow(1, t, weights);
  }
  EXPECT_FALSE(bank.RowDirty(0, 0));
  // Updates below the budget leave rows clean; the budget-th update trips
  // every row of that community and only that community.
  bank.NoteCommunityUpdate(0);
  bank.NoteCommunityUpdate(0);
  EXPECT_FALSE(bank.RowDirty(0, 0));
  EXPECT_FALSE(bank.RowDirty(0, 2));
  bank.NoteCommunityUpdate(0);
  EXPECT_TRUE(bank.RowDirty(0, 0));
  EXPECT_TRUE(bank.RowDirty(0, 2));
  EXPECT_FALSE(bank.RowDirty(1, 0));
  // The trip resets the counter: the next budget-1 updates don't re-trip.
  for (int t = 0; t < 3; ++t) bank.RebuildRow(0, t, weights);
  bank.NoteCommunityUpdate(0);
  bank.NoteCommunityUpdate(0);
  EXPECT_FALSE(bank.RowDirty(0, 1));
  bank.NoteCommunityUpdate(0);
  EXPECT_TRUE(bank.RowDirty(0, 1));
  // InvalidateAll marks every row of every community.
  for (int t = 0; t < 3; ++t) bank.RebuildRow(0, t, weights);
  bank.InvalidateAll();
  for (int c = 0; c < 2; ++c) {
    for (int t = 0; t < 3; ++t) EXPECT_TRUE(bank.RowDirty(c, t));
  }
}

// -------------------------------------------------------- LGammaTable ----

TEST(LGammaTableTest, MatchesLogAscendingFactorial) {
  LGammaTable table;
  table.Build(/*offset=*/7.3, /*max_n=*/4096);
  ASSERT_TRUE(table.built());
  const int64_t bases[] = {0, 1, 5, 100, 4000};
  for (int64_t n : bases) {
    for (int cnt = 0; cnt <= 24; ++cnt) {
      double expected =
          LogAscendingFactorial(static_cast<double>(n) + 7.3, cnt);
      if (cnt < kLogAscFactorialSmallCount) {
        // Small counts use the identical log-loop — bit-identical, not
        // merely close.
        EXPECT_DOUBLE_EQ(table.LogAscFactorial(n, cnt), expected)
            << "n=" << n << " cnt=" << cnt;
      } else {
        EXPECT_NEAR(table.LogAscFactorial(n, cnt), expected, 1e-9)
            << "n=" << n << " cnt=" << cnt;
      }
    }
  }
  // Past the table end At() degrades to the live call.
  EXPECT_DOUBLE_EQ(table.At(5000), LGamma(5000.0 + 7.3));
}

// ------------------------------------------------- Derived-cache drift ---

TEST(DerivedCacheDriftTest, ZeroAfterSweepsAndDetectsTampering) {
  const auto& ds = TestData();
  for (bool sparse : {false, true}) {
    ColdConfig config = sparse ? SparseModelConfig() : TestModelConfig();
    ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
    ASSERT_TRUE(sampler.Init().ok());
    for (int it = 0; it < 5; ++it) sampler.RunIteration();
    // Incremental refresh recomputes the exact expressions, so drift is
    // exactly zero — not merely small.
    EXPECT_EQ(sampler.MaxDerivedTableDrift(), 0.0) << "sparse=" << sparse;
    // The detector must actually see a counter that moved under the caches.
    sampler.mutable_state().n_ck(0, 0) += 1;
    EXPECT_GT(sampler.MaxDerivedTableDrift(), 0.0) << "sparse=" << sparse;
    sampler.mutable_state().n_ck(0, 0) -= 1;
    EXPECT_EQ(sampler.MaxDerivedTableDrift(), 0.0) << "sparse=" << sparse;
  }
}

}  // namespace
}  // namespace cold::core
