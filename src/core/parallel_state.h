// Counter state for the parallel sampler. Mirrors ColdState's layout with
// std::atomic cells plus, for the default delta-table execution mode, one
// plain int32 delta buffer per worker.
//
// Two update disciplines share this state:
//   - delta mode (default): scatter reads the canonical atomics, which are
//     FROZEN for the whole phase, and accumulates +/-1 updates into its
//     worker's private delta buffer; the engine merges all buffers into the
//     canonical tables at the superstep boundary (MergeDeltaRange, striped
//     across the pool). Counter sums are integer and per-cell, so the merged
//     result is independent of worker count and chunk scheduling — the basis
//     of the trainer's multi-worker determinism guarantee (DESIGN.md §10).
//   - legacy shared-counter mode: concurrent relaxed fetch_add directly on
//     the atomics (the approximate-parallel Gibbs of §4.3 with live counts),
//     kept selectable for A/B benchmarking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "core/cold_state.h"

namespace cold::core {

#if defined(__cpp_lib_hardware_interference_size) && defined(__GNUC__) && \
    !defined(__clang__)
// GCC warns (-Winterference-size) that the value may differ between
// translation units compiled with different -mtune flags; this project
// builds every TU with one toolchain invocation, so the warning does not
// apply here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
inline constexpr std::size_t kCacheLineBytes =
    std::hardware_destructive_interference_size;
#pragma GCC diagnostic pop
#elif defined(__cpp_lib_hardware_interference_size)
inline constexpr std::size_t kCacheLineBytes =
    std::hardware_destructive_interference_size;
#else
// Portable fallback: 64 bytes covers x86-64 and mainstream ARM cores.
inline constexpr std::size_t kCacheLineBytes = 64;
#endif

/// \brief One atomic counter padded out to a full cache line, so the small
/// dense arrays (n_c, n_k) cannot false-share under concurrent updates in
/// legacy mode (and under the striped merge in delta mode).
struct alignas(kCacheLineBytes) PaddedCount {
  std::atomic<int32_t> value{0};
};

/// \brief Shared mutable counters + assignments for the GAS sampler.
///
/// Assignment vectors are plain (each element is written only by the single
/// scatter task owning its edge); counters are atomics; delta buffers are
/// plain per-worker int32 arrays, each cache-line-aligned so no two workers'
/// buffers share a line.
class ParallelColdState {
 public:
  ParallelColdState(int num_users, int num_communities, int num_topics,
                    int num_time_slices, int vocab_size, int num_posts,
                    int64_t num_links);

  int U() const { return num_users_; }
  int C() const { return num_communities_; }
  int K() const { return num_topics_; }
  int T() const { return num_time_slices_; }
  int V() const { return vocab_size_; }

  std::vector<int32_t> post_community;
  std::vector<int32_t> post_topic;
  std::vector<int32_t> link_src_community;
  std::vector<int32_t> link_dst_community;

  std::atomic<int32_t>& n_ic(int i, int c) {
    return n_ic_[static_cast<size_t>(i) * num_communities_ + c];
  }
  std::atomic<int32_t>& n_i(int i) { return n_i_[static_cast<size_t>(i)]; }
  std::atomic<int32_t>& n_ck(int c, int k) {
    return n_ck_[static_cast<size_t>(c) * num_topics_ + k];
  }
  std::atomic<int32_t>& n_c(int c) {
    return n_c_[static_cast<size_t>(c)].value;
  }
  std::atomic<int32_t>& n_ckt(int c, int k, int t) {
    return n_ckt_[(static_cast<size_t>(c) * num_topics_ + k) *
                      num_time_slices_ +
                  t];
  }
  std::atomic<int32_t>& n_kv(int k, int v) {
    return n_kv_[static_cast<size_t>(k) * vocab_size_ + v];
  }
  std::atomic<int32_t>& n_k(int k) {
    return n_k_[static_cast<size_t>(k)].value;
  }
  std::atomic<int32_t>& n_cc(int c, int c2) {
    return n_cc_[static_cast<size_t>(c) * num_communities_ + c2];
  }

  // Relaxed readers (sampling tolerates slight staleness in legacy mode; in
  // delta mode the values are frozen during scatter, so these are exact).
  int32_t r_n_ic(int i, int c) const {
    return n_ic_[static_cast<size_t>(i) * num_communities_ + c].load(
        std::memory_order_relaxed);
  }
  int32_t r_n_ck(int c, int k) const {
    return n_ck_[static_cast<size_t>(c) * num_topics_ + k].load(
        std::memory_order_relaxed);
  }
  int32_t r_n_c(int c) const {
    return n_c_[static_cast<size_t>(c)].value.load(std::memory_order_relaxed);
  }
  int32_t r_n_ckt(int c, int k, int t) const {
    return n_ckt_[(static_cast<size_t>(c) * num_topics_ + k) *
                      num_time_slices_ +
                  t]
        .load(std::memory_order_relaxed);
  }
  int32_t r_n_kv(int k, int v) const {
    return n_kv_[static_cast<size_t>(k) * vocab_size_ + v].load(
        std::memory_order_relaxed);
  }
  int32_t r_n_k(int k) const {
    return n_k_[static_cast<size_t>(k)].value.load(std::memory_order_relaxed);
  }
  int32_t r_n_cc(int c, int c2) const {
    return n_cc_[static_cast<size_t>(c) * num_communities_ + c2].load(
        std::memory_order_relaxed);
  }

  // --- per-worker delta tables --------------------------------------------
  //
  // Flat layout covering every counter table that scatter mutates (n_i never
  // changes mid-superstep: community moves preserve each user's indicator
  // total). Index helpers map (table, coordinates) to a flat offset shared
  // by all workers' buffers.

  /// Number of int32 cells in one worker's delta buffer.
  size_t delta_size() const { return delta_size_; }

  /// \brief Allocates (and zeroes) delta buffers so at least `num_workers`
  /// exist. Already-allocated buffers are preserved — they are zero between
  /// supersteps by the merge contract. Not thread-safe; call between phases.
  void EnsureDeltaBuffers(size_t num_workers);

  /// Worker `w`'s delta buffer (EnsureDeltaBuffers must cover w).
  int32_t* delta(size_t w) { return deltas_[w].get(); }
  size_t num_delta_buffers() const { return deltas_.size(); }

  size_t dx_n_ic(int i, int c) const {
    return off_ic_ + static_cast<size_t>(i) * num_communities_ + c;
  }
  size_t dx_n_ck(int c, int k) const {
    return off_ck_ + static_cast<size_t>(c) * num_topics_ + k;
  }
  size_t dx_n_c(int c) const { return off_c_ + static_cast<size_t>(c); }
  size_t dx_n_ckt(int c, int k, int t) const {
    return off_ckt_ +
           (static_cast<size_t>(c) * num_topics_ + k) * num_time_slices_ + t;
  }
  size_t dx_n_kv(int k, int v) const {
    return off_kv_ + static_cast<size_t>(k) * vocab_size_ + v;
  }
  size_t dx_n_k(int k) const { return off_k_ + static_cast<size_t>(k); }
  size_t dx_n_cc(int c, int c2) const {
    return off_cc_ + static_cast<size_t>(c) * num_communities_ + c2;
  }

  /// \brief Folds every worker's deltas for flat cells [begin, end) into the
  /// canonical tables and zeroes those delta cells. Each cell is summed over
  /// workers in fixed order, so the result does not depend on how the range
  /// is striped across merge tasks or on chunk scheduling during scatter.
  /// Distinct ranges may merge concurrently; ranges must not overlap.
  void MergeDeltaRange(size_t begin, size_t end);

  /// \brief Drains every worker's delta buffer into a sparse ascending
  /// (flat index, delta) list — the distributed exchange payload — WITHOUT
  /// touching the canonical tables (the caller installs the cluster-wide
  /// merge via ApplyDeltaEntries). Cells are summed over workers in fixed
  /// order and zeroed, preserving the between-superstep all-zero contract.
  /// Not thread-safe; call between phases.
  void DrainDeltas(std::vector<std::pair<uint32_t, int32_t>>* out);

  /// \brief Adds sparse count deltas (e.g. the merged cluster-wide update)
  /// into the canonical tables. Indices past delta_size() are rejected.
  cold::Status ApplyDeltaEntries(
      const std::vector<std::pair<uint32_t, int32_t>>& entries);

  /// \brief Snapshots everything into a plain ColdState (for estimate
  /// extraction, invariant checks, and checkpoint serialization).
  ColdState ToColdState() const;

  /// \brief Installs assignments and counters from a plain ColdState (the
  /// checkpoint restore path). Dimensions must match; returns
  /// InvalidArgument otherwise. Not thread-safe — call only while no
  /// superstep is executing.
  cold::Status RestoreFrom(const ColdState& s);

 private:
  struct AlignedDelete {
    void operator()(int32_t* p) const {
      ::operator delete[](p, std::align_val_t{kCacheLineBytes});
    }
  };
  using DeltaBuffer = std::unique_ptr<int32_t[], AlignedDelete>;

  /// The canonical atomic holding flat delta cell `idx`.
  std::atomic<int32_t>& CanonicalAt(size_t idx);

  int num_users_;
  int num_communities_;
  int num_topics_;
  int num_time_slices_;
  int vocab_size_;

  std::unique_ptr<std::atomic<int32_t>[]> n_ic_;
  std::unique_ptr<std::atomic<int32_t>[]> n_i_;
  std::unique_ptr<std::atomic<int32_t>[]> n_ck_;
  std::unique_ptr<PaddedCount[]> n_c_;
  std::unique_ptr<std::atomic<int32_t>[]> n_ckt_;
  std::unique_ptr<std::atomic<int32_t>[]> n_kv_;
  std::unique_ptr<PaddedCount[]> n_k_;
  std::unique_ptr<std::atomic<int32_t>[]> n_cc_;

  // Segment offsets into the flat delta index space, in storage order.
  size_t off_ic_ = 0;
  size_t off_ck_ = 0;
  size_t off_c_ = 0;
  size_t off_ckt_ = 0;
  size_t off_kv_ = 0;
  size_t off_k_ = 0;
  size_t off_cc_ = 0;
  size_t delta_size_ = 0;

  std::vector<DeltaBuffer> deltas_;
};

}  // namespace cold::core
