// §6.6 extension: user-level influence maximization with COLD-estimated
// activation probabilities. Compares seed-selection strategies on the same
// COLD diffusion graph (greedy marginal-gain vs out-degree vs PageRank vs
// random) — the "COLD is complementary to influence-maximization works
// [29, 13, 8]" claim made concrete.
#include "apps/user_influence.h"
#include "common.h"
#include "core/predictor.h"
#include "graph/pagerank.h"
#include "util/math_util.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("§6.6: user-level influence maximization strategies");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  core::ColdEstimates estimates = bench::TrainCold(
      bench::BenchColdConfig(), dataset.posts, &dataset.interactions);
  core::ColdPredictor predictor(estimates, 5);

  // Campaign message: core words of the topic with the most interest mass.
  int topic = 0;
  double best_mass = -1.0;
  for (int k = 0; k < estimates.K; ++k) {
    double mass = 0.0;
    for (int c = 0; c < estimates.C; ++c) mass += estimates.Theta(c, k);
    if (mass > best_mass) {
      best_mass = mass;
      topic = k;
    }
  }
  std::vector<text::WordId> message;
  for (int w : estimates.TopWords(topic, 6)) {
    message.push_back(static_cast<text::WordId>(w));
  }

  apps::UserDiffusionGraph graph = apps::BuildUserDiffusionGraph(
      predictor, dataset.followers, message, /*gain=*/80.0);

  const int budget = 5;
  const int eval_trials = 2000;
  RandomSampler eval_sampler(2026);
  auto evaluate = [&](const std::vector<int>& seeds) {
    return apps::ExpectedUserSpread(graph, seeds, eval_trials, &eval_sampler);
  };

  std::printf("%-12s %14s   seeds\n", "strategy", "E[spread]");
  {
    auto seeds = apps::GreedyUserSeeds(graph, budget, /*trials=*/300,
                                       /*candidate_pool=*/40, 11);
    std::printf("%-12s %14.2f  ", "greedy", evaluate(seeds));
    for (int s : seeds) std::printf(" %d", s);
    std::printf("\n");
  }
  {
    auto seeds = apps::DegreeSeeds(graph, budget);
    std::printf("%-12s %14.2f  ", "degree", evaluate(seeds));
    for (int s : seeds) std::printf(" %d", s);
    std::printf("\n");
  }
  {
    auto pr = graph::PageRank(dataset.followers);
    auto seeds = TopKIndices(pr, budget);
    std::printf("%-12s %14.2f  ", "pagerank", evaluate(seeds));
    for (int s : seeds) std::printf(" %d", s);
    std::printf("\n");
  }
  {
    RandomSampler pick(3);
    auto seeds = pick.SampleWithoutReplacement(graph.num_users(), budget);
    std::printf("%-12s %14.2f  ", "random", evaluate(seeds));
    for (int s : seeds) std::printf(" %d", s);
    std::printf("\n");
  }
  std::printf(
      "\n(expected: greedy on the COLD graph >= structural heuristics >>\n"
      " random — model-based influence strengths add value over topology)\n");
  return 0;
}
