#include "core/cold_estimates.h"

#include <span>

#include "util/math_util.h"

namespace cold::core {

std::vector<int> ColdEstimates::TopWords(int k, int n) const {
  std::span<const double> row(phi.data() + static_cast<size_t>(k) * V,
                              static_cast<size_t>(V));
  return cold::TopKIndices(row, n);
}

std::vector<int> ColdEstimates::TopCommunitiesForTopic(int k, int n) const {
  std::vector<double> interest(static_cast<size_t>(C));
  for (int c = 0; c < C; ++c) interest[static_cast<size_t>(c)] = Theta(c, k);
  return cold::TopKIndices(interest, n);
}

std::vector<int> ColdEstimates::TopCommunitiesForUser(int i, int n) const {
  std::span<const double> row(pi.data() + static_cast<size_t>(i) * C,
                              static_cast<size_t>(C));
  return cold::TopKIndices(row, n);
}

cold::Status ColdEstimates::Accumulate(const ColdEstimates& other) {
  if (other.U != U || other.C != C || other.K != K || other.T != T ||
      other.V != V) {
    return cold::Status::InvalidArgument(
        "cannot accumulate estimates of different dimensions");
  }
  auto add = [](std::vector<double>& a, const std::vector<double>& b) {
    for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  };
  add(pi, other.pi);
  add(theta, other.theta);
  add(eta, other.eta);
  add(phi, other.phi);
  add(psi, other.psi);
  return cold::Status::OK();
}

void ColdEstimates::Scale(double inv_n) {
  for (double& v : pi) v *= inv_n;
  for (double& v : theta) v *= inv_n;
  for (double& v : eta) v *= inv_n;
  for (double& v : phi) v *= inv_n;
  for (double& v : psi) v *= inv_n;
}

}  // namespace cold::core
