# Empty compiler generated dependencies file for fig17_sensitivity_topics.
# This may be replaced when dependencies are built.
