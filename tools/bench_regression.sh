#!/usr/bin/env bash
# bench_regression — end-to-end throughput gate (DESIGN.md §11), wired up
# as the `bench_regression` ctest: runs the smoke-scale sampler, parallel,
# distributed, and serving benches, then diffs their fresh JSON against the
# committed baselines in bench/baselines/ with bench_compare.
#
# Usage: bench_regression.sh <sampler_bench> <parallel_bench> \
#                            <dist_bench> <serve_bench> <bench_compare> \
#                            <baseline_dir>
#
# COLD_BENCH_GATE_TOLERANCE (default 0.5) is deliberately loose: smoke
# scale is seconds of work on whatever machine CI lands on, so the gate is
# tuned to catch wreck-the-hot-path regressions (the ~2x delta-vs-legacy
# gap), not percent-level noise. On top of that the gate is best-of-N
# (COLD_BENCH_GATE_ATTEMPTS, default 3): a genuine regression fails every
# attempt, while a scheduler hiccup on a loaded box passes a retry. Update
# baselines by re-running the benches with COLD_BENCH_THREADS=2 and
# committing the new files (workflow in DESIGN.md §11).
set -euo pipefail

if [[ $# -ne 6 ]]; then
  echo "usage: $0 <sampler_bench> <parallel_bench> <dist_bench> <serve_bench> <bench_compare> <baseline_dir>" >&2
  exit 2
fi

SAMPLER_BENCH="$1"
PARALLEL_BENCH="$2"
DIST_BENCH="$3"
SERVE_BENCH="$4"
BENCH_COMPARE="$5"
BASELINE_DIR="$6"
TOLERANCE="${COLD_BENCH_GATE_TOLERANCE:-0.5}"
ATTEMPTS="${COLD_BENCH_GATE_ATTEMPTS:-3}"

WORK_DIR="$(mktemp -d /tmp/cold_bench_gate.XXXXXX)"
trap 'rm -rf "${WORK_DIR}"' EXIT

for f in "${SAMPLER_BENCH}" "${PARALLEL_BENCH}" "${DIST_BENCH}" \
         "${SERVE_BENCH}" "${BENCH_COMPARE}"; do
  [[ -x "$f" ]] || { echo "FAIL: missing executable $f" >&2; exit 2; }
done
for f in "${BASELINE_DIR}/sampler.json" "${BASELINE_DIR}/parallel.json" \
         "${BASELINE_DIR}/dist.json" "${BASELINE_DIR}/serve.json"; do
  [[ -r "$f" ]] || { echo "FAIL: missing baseline $f" >&2; exit 2; }
done

# Pin the thread series to the baselines' shape: baselines are recorded
# with COLD_BENCH_THREADS=2 so the comparison never depends on the host's
# core count.
export COLD_BENCH_THREADS=2

for attempt in $(seq 1 "${ATTEMPTS}"); do
  echo "== attempt ${attempt}/${ATTEMPTS}: smoke-scale sampler bench =="
  "${SAMPLER_BENCH}" --smoke --out "${WORK_DIR}/sampler.json"
  echo "== attempt ${attempt}/${ATTEMPTS}: smoke-scale parallel bench =="
  "${PARALLEL_BENCH}" --smoke --out "${WORK_DIR}/parallel.json"
  echo "== attempt ${attempt}/${ATTEMPTS}: smoke-scale dist bench =="
  "${DIST_BENCH}" --smoke --out "${WORK_DIR}/dist.json"
  echo "== attempt ${attempt}/${ATTEMPTS}: smoke-scale serve bench =="
  "${SERVE_BENCH}" --smoke --out "${WORK_DIR}/serve.json"

  STATUS=0
  echo "== gate: sampler vs baseline (tolerance ${TOLERANCE}) =="
  "${BENCH_COMPARE}" "${BASELINE_DIR}/sampler.json" \
    "${WORK_DIR}/sampler.json" --tolerance "${TOLERANCE}" || STATUS=1
  echo "== gate: parallel vs baseline (tolerance ${TOLERANCE}) =="
  "${BENCH_COMPARE}" "${BASELINE_DIR}/parallel.json" \
    "${WORK_DIR}/parallel.json" --tolerance "${TOLERANCE}" || STATUS=1
  echo "== gate: dist vs baseline (tolerance ${TOLERANCE}) =="
  "${BENCH_COMPARE}" "${BASELINE_DIR}/dist.json" \
    "${WORK_DIR}/dist.json" --tolerance "${TOLERANCE}" || STATUS=1
  echo "== gate: serve vs baseline (tolerance ${TOLERANCE}) =="
  "${BENCH_COMPARE}" "${BASELINE_DIR}/serve.json" \
    "${WORK_DIR}/serve.json" --tolerance "${TOLERANCE}" || STATUS=1

  if [[ "${STATUS}" -eq 0 ]]; then
    echo "PASS: bench regression gate clean (attempt ${attempt})"
    exit 0
  fi
  echo "attempt ${attempt}/${ATTEMPTS} over tolerance, retrying" >&2
done

echo "FAIL: throughput regressed past the gate tolerance on all ${ATTEMPTS} attempts" >&2
exit 1
