#include "util/net_io.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace cold {

cold::Status WriteFull(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, p + sent, size - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return cold::Status::IOError(std::string("send: ") +
                                   std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

cold::Status ReadFull(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::read(fd, p + got, size - got);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return cold::Status::IOError(std::string("recv: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return cold::Status::IOError("connection closed");
      return cold::Status::IOError(
          "connection closed mid-transfer (" + std::to_string(got) + " of " +
          std::to_string(size) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

}  // namespace cold
