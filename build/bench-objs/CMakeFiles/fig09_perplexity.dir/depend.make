# Empty dependencies file for fig09_perplexity.
# This may be replaced when dependencies are built.
