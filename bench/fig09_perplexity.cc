// Figure 9: held-out perplexity vs number of topics K for COLD,
// COLD-NoLink, EUTB and PMTLM (plus a per-word LDA ablation for the §3.5
// single-topic-per-post design choice). Paper shape: COLD lowest, EUTB
// close, PMTLM clearly worse (its single latent factor entangles
// communities with topics).
#include "baselines/eutb.h"
#include "baselines/lda.h"
#include "baselines/pmtlm.h"
#include "common.h"
#include "core/predictor.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 9: perplexity vs #topics (lower is better)");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  const std::vector<int> topic_counts = {4, 8, 12, 16, 24};
  const int folds = bench::NumFolds();

  std::printf("%-14s", "K");
  for (int k : topic_counts) std::printf(" %8d", k);
  std::printf("\n");

  std::vector<double> cold_row, nolink_row, eutb_row, pmtlm_row, lda_row;
  for (int num_topics : topic_counts) {
    double cold_perp = 0.0, nolink_perp = 0.0, eutb_perp = 0.0,
           pmtlm_perp = 0.0, lda_perp = 0.0;
    for (int fold = 0; fold < folds; ++fold) {
      data::PostSplit split = data::SplitPosts(dataset.posts, 0.2, 71, fold);

      core::ColdConfig cc = bench::BenchColdConfig(8, num_topics);
      // Dataset-wide vocab: held-out posts carry word ids the training
      // split never saw, and the predictor rejects ids >= V.
      cc.vocab_size = static_cast<int>(dataset.vocabulary.size());
      core::ColdEstimates est =
          bench::TrainCold(cc, split.train, &dataset.interactions);
      cold_perp += core::ColdPredictor(est).Perplexity(split.test);

      cc.use_network = false;
      core::ColdEstimates est_nl = bench::TrainCold(cc, split.train, nullptr);
      nolink_perp += core::ColdPredictor(est_nl).Perplexity(split.test);

      baselines::EutbConfig ec;
      ec.num_topics = num_topics;
      ec.alpha = 0.5;
      ec.iterations = 80;
      baselines::EutbModel eutb(ec, split.train);
      if (!eutb.Train().ok()) return 1;
      eutb_perp += eutb.Perplexity(split.test);

      baselines::PmtlmConfig pc;
      pc.num_factors = num_topics;
      pc.alpha = 0.5;
      pc.iterations = 80;
      baselines::PmtlmModel pmtlm(pc, split.train, dataset.interactions);
      if (!pmtlm.Train().ok()) return 1;
      pmtlm_perp += pmtlm.Perplexity(split.test);

      baselines::LdaConfig lc;
      lc.num_topics = num_topics;
      lc.alpha = 0.5;
      lc.iterations = 80;
      lc.document_unit = baselines::LdaDocumentUnit::kUserDocument;
      baselines::LdaModel lda(lc, split.train);
      if (!lda.Train().ok()) return 1;
      lda_perp += lda.Perplexity(split.test);
    }
    cold_row.push_back(cold_perp / folds);
    nolink_row.push_back(nolink_perp / folds);
    eutb_row.push_back(eutb_perp / folds);
    pmtlm_row.push_back(pmtlm_perp / folds);
    lda_row.push_back(lda_perp / folds);
  }

  bench::PrintSeries("COLD", cold_row, "%8.1f");
  bench::PrintSeries("COLD-NoLink", nolink_row, "%8.1f");
  bench::PrintSeries("EUTB", eutb_row, "%8.1f");
  bench::PrintSeries("PMTLM", pmtlm_row, "%8.1f");
  bench::PrintSeries("LDA(per-word)", lda_row, "%8.1f");
  std::printf(
      "\n(paper shape: COLD <= EUTB << PMTLM; perplexity levels off with "
      "larger K)\n");
  return 0;
}
