#include "baselines/mmsb.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/math_util.h"

namespace cold::baselines {

namespace {
uint64_t PairKey(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}
}  // namespace

MmsbModel::MmsbModel(MmsbConfig config, const graph::Digraph& links,
                     int num_users)
    : config_(config),
      links_(links),
      num_users_(std::max(num_users, links.num_nodes())) {}

cold::Status MmsbModel::Train() {
  if (config_.num_communities < 1 || config_.iterations < 1) {
    return cold::Status::InvalidArgument("bad MMSB config");
  }
  if (links_.num_edges() == 0) {
    return cold::Status::InvalidArgument("no links");
  }
  const int C = config_.num_communities;
  const double rho = config_.ResolvedRho();
  const double lambda1 = config_.lambda1;
  const double lambda0 = config_.lambda0;

  cold::RandomSampler sampler(config_.seed, /*stream=*/29);

  // Subsample absent pairs; each stands for `weight` of the n_neg zeros.
  std::unordered_set<uint64_t> positive_keys;
  for (graph::EdgeId e = 0; e < links_.num_edges(); ++e) {
    positive_keys.insert(PairKey(links_.edge(e).src, links_.edge(e).dst));
  }
  std::vector<std::pair<int, int>> negatives;
  int64_t want = static_cast<int64_t>(config_.negatives_per_positive *
                                      static_cast<double>(links_.num_edges()));
  std::unordered_set<uint64_t> chosen;
  int64_t attempts = 0;
  while (static_cast<int64_t>(negatives.size()) < want &&
         attempts < want * 50 + 1000) {
    ++attempts;
    int a = static_cast<int>(
        sampler.UniformInt(static_cast<uint32_t>(num_users_)));
    int b = static_cast<int>(
        sampler.UniformInt(static_cast<uint32_t>(num_users_)));
    if (a == b) continue;
    uint64_t key = PairKey(a, b);
    if (positive_keys.count(key) > 0 || !chosen.insert(key).second) continue;
    negatives.emplace_back(a, b);
  }
  double n_neg_total = static_cast<double>(num_users_) * (num_users_ - 1) -
                       static_cast<double>(links_.num_edges());
  double weight =
      negatives.empty() ? 1.0
                        : n_neg_total / static_cast<double>(negatives.size());

  // Counters: positive and (weighted) negative block counts, memberships.
  std::vector<int32_t> n_ic(static_cast<size_t>(num_users_) * C, 0);
  std::vector<int32_t> n_cc_pos(static_cast<size_t>(C) * C, 0);
  std::vector<int32_t> n_cc_neg(static_cast<size_t>(C) * C, 0);
  std::vector<int32_t> s(static_cast<size_t>(links_.num_edges()));
  std::vector<int32_t> s2(static_cast<size_t>(links_.num_edges()));
  std::vector<int32_t> ns(negatives.size());
  std::vector<int32_t> ns2(negatives.size());

  auto init_pair = [&](int src, int dst, int32_t* out_a, int32_t* out_b,
                       std::vector<int32_t>* block) {
    int a = static_cast<int>(sampler.UniformInt(static_cast<uint32_t>(C)));
    int b = static_cast<int>(sampler.UniformInt(static_cast<uint32_t>(C)));
    *out_a = a;
    *out_b = b;
    n_ic[static_cast<size_t>(src) * C + a]++;
    n_ic[static_cast<size_t>(dst) * C + b]++;
    (*block)[static_cast<size_t>(a) * C + b]++;
  };
  for (graph::EdgeId e = 0; e < links_.num_edges(); ++e) {
    init_pair(links_.edge(e).src, links_.edge(e).dst,
              &s[static_cast<size_t>(e)], &s2[static_cast<size_t>(e)],
              &n_cc_pos);
  }
  for (size_t e = 0; e < negatives.size(); ++e) {
    init_pair(negatives[e].first, negatives[e].second, &ns[e], &ns2[e],
              &n_cc_neg);
  }

  // eta_cc' ~ Beta(lambda1 + n+_cc', lambda0 + weight * n-_cc').
  auto eta_mean = [&](int c, int c2) {
    double pos = n_cc_pos[static_cast<size_t>(c) * C + c2];
    double neg = weight * n_cc_neg[static_cast<size_t>(c) * C + c2];
    return (pos + lambda1) / (pos + neg + lambda0 + lambda1);
  };

  std::vector<double> weights(static_cast<size_t>(C));
  auto resample_pair = [&](int src, int dst, bool positive, int32_t* pa,
                           int32_t* pb, std::vector<int32_t>* block) {
    int a = *pa;
    int b = *pb;
    n_ic[static_cast<size_t>(src) * C + a]--;
    n_ic[static_cast<size_t>(dst) * C + b]--;
    (*block)[static_cast<size_t>(a) * C + b]--;

    // a | b.
    for (int c = 0; c < C; ++c) {
      double p = eta_mean(c, b);
      weights[static_cast<size_t>(c)] =
          (n_ic[static_cast<size_t>(src) * C + c] + rho) *
          (positive ? p : 1.0 - p);
    }
    a = sampler.Categorical(weights);
    // b | a.
    for (int c = 0; c < C; ++c) {
      double p = eta_mean(a, c);
      weights[static_cast<size_t>(c)] =
          (n_ic[static_cast<size_t>(dst) * C + c] + rho) *
          (positive ? p : 1.0 - p);
    }
    b = sampler.Categorical(weights);

    *pa = a;
    *pb = b;
    n_ic[static_cast<size_t>(src) * C + a]++;
    n_ic[static_cast<size_t>(dst) * C + b]++;
    (*block)[static_cast<size_t>(a) * C + b]++;
  };

  for (int it = 0; it < config_.iterations; ++it) {
    for (graph::EdgeId e = 0; e < links_.num_edges(); ++e) {
      resample_pair(links_.edge(e).src, links_.edge(e).dst, true,
                    &s[static_cast<size_t>(e)], &s2[static_cast<size_t>(e)],
                    &n_cc_pos);
    }
    for (size_t e = 0; e < negatives.size(); ++e) {
      resample_pair(negatives[e].first, negatives[e].second, false, &ns[e],
                    &ns2[e], &n_cc_neg);
    }
  }

  estimates_.U = num_users_;
  estimates_.C = C;
  estimates_.pi.resize(static_cast<size_t>(num_users_) * C);
  for (int i = 0; i < num_users_; ++i) {
    int32_t total = 0;
    for (int c = 0; c < C; ++c) total += n_ic[static_cast<size_t>(i) * C + c];
    double denom = total + C * rho;
    for (int c = 0; c < C; ++c) {
      estimates_.pi[static_cast<size_t>(i) * C + c] =
          (n_ic[static_cast<size_t>(i) * C + c] + rho) / denom;
    }
  }
  estimates_.eta.resize(static_cast<size_t>(C) * C);
  for (int c = 0; c < C; ++c) {
    for (int c2 = 0; c2 < C; ++c2) {
      estimates_.eta[static_cast<size_t>(c) * C + c2] = eta_mean(c, c2);
    }
  }
  return cold::Status::OK();
}

double MmsbModel::LinkProbability(int i, int i2) const {
  const int C = estimates_.C;
  double p = 0.0;
  for (int c = 0; c < C; ++c) {
    double pi_ic = estimates_.Pi(i, c);
    if (pi_ic <= 0.0) continue;
    for (int c2 = 0; c2 < C; ++c2) {
      p += pi_ic * estimates_.Pi(i2, c2) * estimates_.Eta(c, c2);
    }
  }
  return p;
}

std::vector<int> MmsbModel::TopCommunities(int i, int n) const {
  std::vector<double> row(static_cast<size_t>(estimates_.C));
  for (int c = 0; c < estimates_.C; ++c) {
    row[static_cast<size_t>(c)] = estimates_.Pi(i, c);
  }
  return cold::TopKIndices(row, n);
}

}  // namespace cold::baselines
