// Stress test for the parallel trainer's delta-table scatter: many
// oversubscribed workers hammering a tiny dataset for hundreds of
// supersteps. Small data maximizes cross-worker adjacency (every worker
// touches every counter region), so this is the test that gives TSan the
// best shot at the merge/freeze protocol — run it under the tsan preset
// (see README "Testing"). It also re-checks determinism after a long run,
// where any scheduling-dependent divergence would have compounded.
#include <gtest/gtest.h>

#include "core/cold.h"
#include "data/synthetic.h"

namespace cold::core {
namespace {

const data::SocialDataset& StressData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticConfig config;
    config.num_users = 40;
    config.num_communities = 3;
    config.num_topics = 4;
    config.num_time_slices = 6;
    config.core_words_per_topic = 8;
    config.background_words = 30;
    config.posts_per_user = 4.0;
    config.words_per_post = 6.0;
    config.follows_per_user = 6;
    config.seed = 23;
    data::SyntheticSocialGenerator gen(config);
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

ColdConfig StressModelConfig() {
  ColdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.iterations = 200;
  config.burn_in = 150;
  config.seed = 31;
  config.rho = 0.5;
  return config;
}

engine::EngineOptions StressOptions() {
  engine::EngineOptions options;
  options.threads_per_node = 8;
  options.oversubscribe = true;
  return options;
}

TEST(ParallelStressTest, ManyWorkersManySuperstepsStayConsistent) {
  const auto& ds = StressData();
  ParallelColdTrainer trainer(StressModelConfig(), ds.posts,
                              &ds.interactions, StressOptions());
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  EXPECT_EQ(trainer.supersteps_run(), 200);
  ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ParallelStressTest, LongRunStaysDeterministic) {
  // Divergence from a scheduling race would compound over 200 supersteps;
  // two oversubscribed 8-worker runs must still agree exactly.
  const auto& ds = StressData();
  auto run = [&] {
    ParallelColdTrainer trainer(StressModelConfig(), ds.posts,
                                &ds.interactions, StressOptions());
    EXPECT_TRUE(trainer.Init().ok());
    EXPECT_TRUE(trainer.Train().ok());
    return trainer.StateSnapshot();
  };
  ColdState a = run();
  ColdState b = run();
  EXPECT_EQ(a.post_community, b.post_community);
  EXPECT_EQ(a.post_topic, b.post_topic);
  EXPECT_EQ(a.link_src_community, b.link_src_community);
  EXPECT_EQ(a.link_dst_community, b.link_dst_community);
}

TEST(ParallelStressTest, LegacySharedCountersSurviveContention) {
  // The legacy shared-atomic mode is approximate but must stay structurally
  // sound (no lost or phantom counts) under the same worker pressure.
  const auto& ds = StressData();
  ColdConfig config = StressModelConfig();
  config.iterations = 60;
  config.burn_in = 40;
  engine::EngineOptions options = StressOptions();
  options.legacy_shared_counters = true;
  ParallelColdTrainer trainer(config, ds.posts, &ds.interactions, options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace cold::core
