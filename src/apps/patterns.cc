#include "apps/patterns.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace cold::apps {

std::vector<FluctuationPoint> FluctuationScatter(
    const core::ColdEstimates& estimates) {
  std::vector<FluctuationPoint> points;
  points.reserve(static_cast<size_t>(estimates.K) * estimates.C);
  for (int k = 0; k < estimates.K; ++k) {
    for (int c = 0; c < estimates.C; ++c) {
      std::vector<double> series = estimates.PsiSeries(k, c);
      points.push_back(FluctuationPoint{
          k, c, estimates.Theta(c, k), cold::Variance(series)});
    }
  }
  return points;
}

std::vector<double> MeanFluctuationByInterestBin(
    const std::vector<FluctuationPoint>& points,
    const std::vector<double>& bin_edges) {
  std::vector<double> sums(bin_edges.size(), 0.0);
  std::vector<int> counts(bin_edges.size(), 0);
  for (const FluctuationPoint& p : points) {
    for (size_t b = 0; b < bin_edges.size(); ++b) {
      double hi = (b + 1 < bin_edges.size()) ? bin_edges[b + 1]
                                             : std::numeric_limits<double>::max();
      if (p.interest >= bin_edges[b] && p.interest < hi) {
        sums[b] += p.fluctuation;
        counts[b]++;
        break;
      }
    }
  }
  std::vector<double> means(bin_edges.size(), 0.0);
  for (size_t b = 0; b < bin_edges.size(); ++b) {
    means[b] = counts[b] > 0 ? sums[b] / counts[b] : 0.0;
  }
  return means;
}

std::vector<double> InterestCdf(const std::vector<FluctuationPoint>& points,
                                const std::vector<double>& thresholds) {
  std::vector<double> cdf(thresholds.size(), 0.0);
  if (points.empty()) return cdf;
  for (size_t i = 0; i < thresholds.size(); ++i) {
    int count = 0;
    for (const FluctuationPoint& p : points) {
      if (p.interest <= thresholds[i]) ++count;
    }
    cdf[i] = static_cast<double>(count) / static_cast<double>(points.size());
  }
  return cdf;
}

InterestCategories CategorizeCommunities(const core::ColdEstimates& estimates,
                                         int topic, int num_high,
                                         double min_interest) {
  std::vector<double> interest(static_cast<size_t>(estimates.C));
  for (int c = 0; c < estimates.C; ++c) {
    interest[static_cast<size_t>(c)] = estimates.Theta(c, topic);
  }
  std::vector<int> order = cold::TopKIndices(interest, estimates.C);

  InterestCategories cats;
  num_high = std::min(num_high, estimates.C);
  double high_sum = 0.0, medium_sum = 0.0;
  for (int rank = 0; rank < estimates.C; ++rank) {
    int c = order[static_cast<size_t>(rank)];
    double v = interest[static_cast<size_t>(c)];
    if (rank < num_high) {
      cats.high.push_back(c);
      high_sum += v;
    } else if (v >= min_interest) {
      cats.medium.push_back(c);
      medium_sum += v;
    }
  }
  cats.high_mean_interest =
      cats.high.empty() ? 0.0 : high_sum / static_cast<double>(cats.high.size());
  cats.medium_mean_interest =
      cats.medium.empty() ? 0.0
                          : medium_sum / static_cast<double>(cats.medium.size());
  return cats;
}

std::vector<double> PeakAlignedMedianCurve(
    const core::ColdEstimates& estimates, int topic,
    const std::vector<int>& communities) {
  const int T = estimates.T;
  std::vector<std::vector<double>> aligned;
  aligned.reserve(communities.size());
  for (int c : communities) {
    std::vector<double> series = estimates.PsiSeries(topic, c);
    double peak = *std::max_element(series.begin(), series.end());
    if (peak <= 0.0) continue;
    for (double& v : series) v /= peak;
    aligned.push_back(std::move(series));
  }
  std::vector<double> median_curve(static_cast<size_t>(T), 0.0);
  if (aligned.empty()) return median_curve;
  std::vector<double> column(aligned.size());
  for (int t = 0; t < T; ++t) {
    for (size_t i = 0; i < aligned.size(); ++i) {
      column[i] = aligned[i][static_cast<size_t>(t)];
    }
    median_curve[static_cast<size_t>(t)] = cold::Median(column);
  }
  return median_curve;
}

namespace {
int PeakIndex(const std::vector<double>& curve) {
  return static_cast<int>(
      std::max_element(curve.begin(), curve.end()) - curve.begin());
}

double CenterOfMass(const std::vector<double>& curve) {
  double mass = 0.0, moment = 0.0;
  for (size_t t = 0; t < curve.size(); ++t) {
    mass += curve[t];
    moment += static_cast<double>(t) * curve[t];
  }
  return mass > 0.0 ? moment / mass : 0.0;
}

int HalfLifeAfterPeak(const std::vector<double>& curve) {
  int peak = PeakIndex(curve);
  double half = curve[static_cast<size_t>(peak)] * 0.5;
  int t = peak;
  while (t + 1 < static_cast<int>(curve.size()) &&
         curve[static_cast<size_t>(t) + 1] >= half) {
    ++t;
  }
  return t - peak;
}
}  // namespace

TimeLagResult MeasureTimeLag(const core::ColdEstimates& estimates, int topic,
                             int num_high, double min_interest) {
  InterestCategories cats =
      CategorizeCommunities(estimates, topic, num_high, min_interest);
  TimeLagResult result;
  result.high_curve = PeakAlignedMedianCurve(estimates, topic, cats.high);
  result.medium_curve = PeakAlignedMedianCurve(estimates, topic, cats.medium);
  result.high_peak_time = PeakIndex(result.high_curve);
  result.medium_peak_time = PeakIndex(result.medium_curve);
  result.lag = result.medium_peak_time - result.high_peak_time;
  result.mass_lag =
      CenterOfMass(result.medium_curve) - CenterOfMass(result.high_curve);
  result.high_half_life = HalfLifeAfterPeak(result.high_curve);
  result.medium_half_life = HalfLifeAfterPeak(result.medium_curve);
  return result;
}

}  // namespace cold::apps
