#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <utility>

#include "core/gibbs_sampler.h"
#include "core/parallel_sampler.h"
#include "util/fileio.h"
#include "util/logging.h"

namespace cold::core {
namespace {

constexpr char kMagic[8] = {'C', 'O', 'L', 'D', 'C', 'K', 'P', '1'};
// magic + version + flavor + sweep + pad + fingerprint + payload size +
// payload CRC + header CRC.
constexpr size_t kHeaderSize = 8 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4;
constexpr size_t kHeaderCrcOffset = kHeaderSize - 4;

// --- payload byte IO ------------------------------------------------------
//
// Fixed-width fields appended/consumed in declaration order, host-endian
// (checkpoints are machine-local scratch, not an interchange format). Every
// reader call is bounds-checked so a truncated or bit-flipped payload that
// slips past the CRC still fails with a clear Status instead of reading
// out of bounds.

class PayloadWriter {
 public:
  explicit PayloadWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { Raw(&v, sizeof v); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void VecI32(const std::vector<int32_t>& v) {
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(int32_t));
  }
  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(double));
  }

 private:
  void Raw(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }
  std::string* out_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  cold::Status U8(uint8_t* v) { return Raw(v, sizeof *v); }
  cold::Status U32(uint32_t* v) { return Raw(v, sizeof *v); }
  cold::Status I32(int32_t* v) { return Raw(v, sizeof *v); }
  cold::Status U64(uint64_t* v) { return Raw(v, sizeof *v); }
  cold::Status F64(double* v) { return Raw(v, sizeof *v); }

  /// Reads a vector whose length must equal `expected` (known from the
  /// live sampler's dimensions).
  cold::Status VecI32(std::vector<int32_t>* v, size_t expected) {
    COLD_RETURN_NOT_OK(CheckLength(expected));
    v->resize(expected);
    return Raw(v->data(), expected * sizeof(int32_t));
  }
  cold::Status VecF64(std::vector<double>* v, size_t expected) {
    COLD_RETURN_NOT_OK(CheckLength(expected));
    v->resize(expected);
    return Raw(v->data(), expected * sizeof(double));
  }

  cold::Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return cold::Status::IOError(
          "checkpoint payload corrupt: trailing bytes after state");
    }
    return cold::Status::OK();
  }

 private:
  cold::Status CheckLength(size_t expected) {
    uint64_t n = 0;
    COLD_RETURN_NOT_OK(U64(&n));
    if (n != expected) {
      return cold::Status::IOError(
          "checkpoint payload corrupt: vector length mismatch");
    }
    return cold::Status::OK();
  }
  cold::Status Raw(void* p, size_t n) {
    if (data_.size() - pos_ < n) {
      return cold::Status::IOError("checkpoint payload truncated");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return cold::Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- shared payload sections ----------------------------------------------

/// Dimensions + schedule echo. Restore refuses any mismatch: resuming under
/// a different seed or sweep schedule would silently break the
/// bit-identical-resume guarantee, so it must be an error, not a warning.
void WriteRunHeader(PayloadWriter& w, const ColdConfig& config,
                    const ColdState& s, bool use_network, double lambda0) {
  w.U32(static_cast<uint32_t>(s.U()));
  w.U32(static_cast<uint32_t>(s.C()));
  w.U32(static_cast<uint32_t>(s.K()));
  w.U32(static_cast<uint32_t>(s.T()));
  w.U32(static_cast<uint32_t>(s.V()));
  w.U64(s.post_community.size());
  w.U64(s.link_src_community.size());
  w.U64(config.seed);
  w.I32(config.iterations);
  w.I32(config.burn_in);
  w.I32(config.sample_lag);
  w.U8(use_network ? 1 : 0);
  w.F64(lambda0);
}

cold::Status CheckRunHeader(PayloadReader& r, const ColdConfig& config,
                            const ColdState& s, bool use_network,
                            double* lambda0_out) {
  uint32_t u, c, k, t, v;
  uint64_t posts, links, seed;
  int32_t iterations, burn_in, sample_lag;
  uint8_t net;
  COLD_RETURN_NOT_OK(r.U32(&u));
  COLD_RETURN_NOT_OK(r.U32(&c));
  COLD_RETURN_NOT_OK(r.U32(&k));
  COLD_RETURN_NOT_OK(r.U32(&t));
  COLD_RETURN_NOT_OK(r.U32(&v));
  COLD_RETURN_NOT_OK(r.U64(&posts));
  COLD_RETURN_NOT_OK(r.U64(&links));
  COLD_RETURN_NOT_OK(r.U64(&seed));
  COLD_RETURN_NOT_OK(r.I32(&iterations));
  COLD_RETURN_NOT_OK(r.I32(&burn_in));
  COLD_RETURN_NOT_OK(r.I32(&sample_lag));
  COLD_RETURN_NOT_OK(r.U8(&net));
  COLD_RETURN_NOT_OK(r.F64(lambda0_out));
  if (u != static_cast<uint32_t>(s.U()) || c != static_cast<uint32_t>(s.C()) ||
      k != static_cast<uint32_t>(s.K()) || t != static_cast<uint32_t>(s.T()) ||
      v != static_cast<uint32_t>(s.V()) || posts != s.post_community.size() ||
      links != s.link_src_community.size() ||
      (net != 0) != use_network) {
    return cold::Status::InvalidArgument(
        "checkpoint was written for a different dataset or model shape");
  }
  if (seed != config.seed || iterations != config.iterations ||
      burn_in != config.burn_in || sample_lag != config.sample_lag) {
    return cold::Status::InvalidArgument(
        "checkpoint schedule does not match the current run: bit-identical "
        "resume requires the same seed, iterations, burn-in and sample lag");
  }
  return cold::Status::OK();
}

/// Assignments + the eight count tables, in ColdState declaration order.
void WriteStateSection(PayloadWriter& w, const ColdState& s) {
  w.VecI32(s.post_community);
  w.VecI32(s.post_topic);
  w.VecI32(s.link_src_community);
  w.VecI32(s.link_dst_community);
  w.VecI32(s.n_ic_flat());
  w.VecI32(s.n_i_flat());
  w.VecI32(s.n_ck_flat());
  w.VecI32(s.n_c_flat());
  w.VecI32(s.n_ckt_flat());
  w.VecI32(s.n_kv_flat());
  w.VecI32(s.n_k_flat());
  w.VecI32(s.n_cc_flat());
}

cold::Status ReadStateSection(PayloadReader& r, ColdState* s) {
  COLD_RETURN_NOT_OK(r.VecI32(&s->post_community, s->post_community.size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->post_topic, s->post_topic.size()));
  COLD_RETURN_NOT_OK(
      r.VecI32(&s->link_src_community, s->link_src_community.size()));
  COLD_RETURN_NOT_OK(
      r.VecI32(&s->link_dst_community, s->link_dst_community.size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_ic_flat(), s->n_ic_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_i_flat(), s->n_i_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_ck_flat(), s->n_ck_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_c_flat(), s->n_c_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_ckt_flat(), s->n_ckt_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_kv_flat(), s->n_kv_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_k_flat(), s->n_k_flat().size()));
  COLD_RETURN_NOT_OK(r.VecI32(&s->mut_n_cc_flat(), s->n_cc_flat().size()));
  return cold::Status::OK();
}

void WriteRngState(PayloadWriter& w, const cold::RngState& s) {
  w.U64(s.state);
  w.U64(s.inc);
  w.U8(s.have_spare_normal ? 1 : 0);
  w.F64(s.spare_normal);
}

cold::Status ReadRngState(PayloadReader& r, cold::RngState* s) {
  uint8_t spare = 0;
  COLD_RETURN_NOT_OK(r.U64(&s->state));
  COLD_RETURN_NOT_OK(r.U64(&s->inc));
  COLD_RETURN_NOT_OK(r.U8(&spare));
  COLD_RETURN_NOT_OK(r.F64(&s->spare_normal));
  s->have_spare_normal = spare != 0;
  return cold::Status::OK();
}

void PackU32(std::string* s, size_t offset, uint32_t v) {
  std::memcpy(s->data() + offset, &v, sizeof v);
}

uint32_t UnpackU32(const std::string& s, size_t offset) {
  uint32_t v;
  std::memcpy(&v, s.data() + offset, sizeof v);
  return v;
}

uint64_t UnpackU64(const std::string& s, size_t offset) {
  uint64_t v;
  std::memcpy(&v, s.data() + offset, sizeof v);
  return v;
}

}  // namespace

// --- CheckpointManager ----------------------------------------------------

std::string CheckpointManager::FileName(int sweep) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%08d.cold", sweep);
  return buf;
}

cold::Status CheckpointManager::Init() const {
  if (options_.dir.empty()) {
    return cold::Status::InvalidArgument("checkpoint directory not set");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return cold::Status::IOError("cannot create checkpoint directory " +
                                 options_.dir + ": " + ec.message());
  }
  return cold::Status::OK();
}

std::vector<std::pair<int, std::string>> CheckpointManager::ListFiles() const {
  std::vector<std::pair<int, std::string>> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.dir, ec);
  if (ec) return files;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    // ckpt-<digits>.cold
    constexpr std::string_view prefix = "ckpt-";
    constexpr std::string_view suffix = ".cold";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    files.emplace_back(std::atoi(digits.c_str()), entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

cold::Status CheckpointManager::Write(const CheckpointMeta& meta,
                                      std::string_view payload) const {
  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof kMagic);
  {
    PayloadWriter w(&file);
    w.U32(meta.format_version);
    w.U32(static_cast<uint32_t>(meta.flavor));
    w.I32(meta.sweep);
    w.U32(0);  // pad, keeps 64-bit fields aligned
    w.U64(meta.data_fingerprint);
    w.U64(payload.size());
    w.U32(Crc32(payload));
    w.U32(0);  // header CRC placeholder
  }
  PackU32(&file, kHeaderCrcOffset,
          Crc32(std::string_view(file.data(), kHeaderCrcOffset)));
  file.append(payload);

  const std::string path =
      (std::filesystem::path(options_.dir) / FileName(meta.sweep)).string();
  COLD_RETURN_NOT_OK(AtomicWriteFile(path, file));

  // Rotation: prune everything older than the newest keep_last entries. A
  // failed unlink is only logged — losing a stale checkpoint to a full or
  // read-only disk should not abort training.
  const size_t keep = static_cast<size_t>(std::max(options_.keep_last, 1));
  auto files = ListFiles();
  while (files.size() > keep) {
    std::error_code ec;
    std::filesystem::remove(files.front().second, ec);
    if (ec) {
      COLD_LOG(kWarning) << "cannot prune checkpoint " << files.front().second
                         << ": " << ec.message();
    }
    files.erase(files.begin());
  }
  return cold::Status::OK();
}

cold::Result<LoadedCheckpoint> CheckpointManager::ReadFile(
    const std::string& path) {
  COLD_ASSIGN_OR_RETURN(std::string raw, ReadFileToString(path));
  if (raw.size() < kHeaderSize) {
    return cold::Status::IOError(path + ": truncated checkpoint header");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof kMagic) != 0) {
    return cold::Status::IOError(path + ": not a COLD checkpoint file");
  }
  const uint32_t stored_header_crc = UnpackU32(raw, kHeaderCrcOffset);
  if (Crc32(std::string_view(raw.data(), kHeaderCrcOffset)) !=
      stored_header_crc) {
    return cold::Status::IOError(path +
                                 ": checkpoint header corrupt (CRC mismatch)");
  }
  LoadedCheckpoint out;
  out.meta.format_version = UnpackU32(raw, 8);
  out.meta.flavor = static_cast<CheckpointFlavor>(UnpackU32(raw, 12));
  out.meta.sweep = static_cast<int32_t>(UnpackU32(raw, 16));
  out.meta.data_fingerprint = UnpackU64(raw, 24);
  if (out.meta.format_version != kCheckpointFormatVersion) {
    return cold::Status::IOError(
        path + ": unsupported checkpoint format version " +
        std::to_string(out.meta.format_version) + " (expected " +
        std::to_string(kCheckpointFormatVersion) + ")");
  }
  if (out.meta.flavor != CheckpointFlavor::kSerial &&
      out.meta.flavor != CheckpointFlavor::kParallel) {
    return cold::Status::IOError(path + ": invalid checkpoint flavor");
  }
  const uint64_t payload_size = UnpackU64(raw, 32);
  if (payload_size != raw.size() - kHeaderSize) {
    return cold::Status::IOError(path + ": checkpoint payload truncated");
  }
  out.payload = raw.substr(kHeaderSize);
  if (Crc32(out.payload) != UnpackU32(raw, 40)) {
    return cold::Status::IOError(path +
                                 ": checkpoint payload corrupt (CRC mismatch)");
  }
  out.path = path;
  return out;
}

cold::Result<LoadedCheckpoint> CheckpointManager::LoadLatest() const {
  auto files = ListFiles();
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    auto loaded = ReadFile(it->second);
    if (loaded.ok()) return loaded;
    COLD_LOG(kWarning) << "skipping unusable checkpoint: "
                       << loaded.status().message();
  }
  return cold::Status::NotFound("no usable checkpoint in " + options_.dir);
}

// --- dataset fingerprint --------------------------------------------------

uint64_t DataFingerprint(const text::PostStore& posts,
                         const graph::Digraph* links) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(static_cast<uint64_t>(posts.num_users()));
  mix(static_cast<uint64_t>(posts.num_posts()));
  mix(static_cast<uint64_t>(posts.num_time_slices()));
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    mix(static_cast<uint64_t>(posts.author(d)));
    mix(static_cast<uint64_t>(posts.time(d)));
    for (text::WordId w : posts.words(d)) mix(static_cast<uint64_t>(w));
  }
  if (links != nullptr) {
    mix(static_cast<uint64_t>(links->num_nodes()));
    mix(static_cast<uint64_t>(links->num_edges()));
    for (graph::EdgeId e = 0; e < links->num_edges(); ++e) {
      mix(static_cast<uint64_t>(links->edge(e).src));
      mix(static_cast<uint64_t>(links->edge(e).dst));
    }
  }
  return h;
}

// --- serial sampler state -------------------------------------------------
//
// Payload: run header, completed-sweep count, state section, RNG, then the
// post-burn-in sample accumulator (without it a resumed run would average
// over fewer samples than the uninterrupted run and diverge).

cold::Status ColdGibbsSampler::SerializeState(std::string* out) const {
  if (!initialized_) {
    return cold::Status::FailedPrecondition(
        "call Init() before SerializeState()");
  }
  out->clear();
  PayloadWriter w(out);
  WriteRunHeader(w, config_, *state_, use_network_, lambda0_);
  w.I32(iterations_run_);
  WriteStateSection(w, *state_);
  WriteRngState(w, sampler_.SaveState());
  w.I32(num_accumulated_);
  w.U8(accumulated_ != nullptr ? 1 : 0);
  if (accumulated_ != nullptr) {
    w.VecF64(accumulated_->pi);
    w.VecF64(accumulated_->theta);
    w.VecF64(accumulated_->eta);
    w.VecF64(accumulated_->phi);
    w.VecF64(accumulated_->psi);
  }
  return cold::Status::OK();
}

cold::Status ColdGibbsSampler::RestoreState(const std::string& payload) {
  if (!initialized_) {
    return cold::Status::FailedPrecondition(
        "call Init() before RestoreState()");
  }
  PayloadReader r(payload);
  // Everything is read into locals / a state copy and committed only after
  // all checks pass, so a payload that fails validation leaves the sampler
  // untouched.
  double lambda0 = lambda0_;
  COLD_RETURN_NOT_OK(
      CheckRunHeader(r, config_, *state_, use_network_, &lambda0));
  int32_t iterations_run = 0;
  COLD_RETURN_NOT_OK(r.I32(&iterations_run));
  if (iterations_run < 0 || iterations_run > config_.iterations) {
    return cold::Status::IOError("checkpoint sweep index out of range");
  }
  ColdState restored = *state_;
  COLD_RETURN_NOT_OK(ReadStateSection(r, &restored));
  cold::RngState rng;
  COLD_RETURN_NOT_OK(ReadRngState(r, &rng));
  int32_t num_accumulated = 0;
  uint8_t has_accumulated = 0;
  COLD_RETURN_NOT_OK(r.I32(&num_accumulated));
  COLD_RETURN_NOT_OK(r.U8(&has_accumulated));
  std::unique_ptr<ColdEstimates> accumulated;
  if (has_accumulated != 0) {
    accumulated = std::make_unique<ColdEstimates>();
    accumulated->U = state_->U();
    accumulated->C = state_->C();
    accumulated->K = state_->K();
    accumulated->T = state_->T();
    accumulated->V = state_->V();
    const size_t U = static_cast<size_t>(state_->U());
    const size_t C = static_cast<size_t>(state_->C());
    const size_t K = static_cast<size_t>(state_->K());
    const size_t T = static_cast<size_t>(state_->T());
    const size_t V = static_cast<size_t>(state_->V());
    COLD_RETURN_NOT_OK(r.VecF64(&accumulated->pi, U * C));
    COLD_RETURN_NOT_OK(r.VecF64(&accumulated->theta, C * K));
    COLD_RETURN_NOT_OK(r.VecF64(&accumulated->eta, C * C));
    COLD_RETURN_NOT_OK(r.VecF64(&accumulated->phi, K * V));
    COLD_RETURN_NOT_OK(r.VecF64(&accumulated->psi, K * C * T));
  } else if (num_accumulated != 0) {
    return cold::Status::IOError(
        "checkpoint accumulated-sample count inconsistent");
  }
  if (num_accumulated < 0) {
    return cold::Status::IOError(
        "checkpoint accumulated-sample count negative");
  }
  COLD_RETURN_NOT_OK(r.ExpectEnd());

  // Beyond the CRC: the count tables must agree with a recount from the
  // restored assignments against the live dataset.
  cold::Status invariants =
      restored.CheckInvariants(posts_, links_, use_network_);
  if (!invariants.ok()) {
    return cold::Status::IOError("checkpoint state inconsistent: " +
                                 invariants.message());
  }
  *state_ = std::move(restored);
  sampler_.RestoreState(rng);
  lambda0_ = lambda0;
  // The derived-value caches are functions of the counters just swapped in.
  RebuildDerivedTables();
  // Alias tables are derived state too — never serialized. Invalidating
  // the whole bank here, combined with the sweep-start invalidation in
  // RunIteration(), makes resume bit-identical on the sparse path: rows
  // rebuild lazily from the restored counters exactly as they would in an
  // uninterrupted run.
  if (sparse_active_) alias_bank_.InvalidateAll();
  accumulated_ = std::move(accumulated);
  num_accumulated_ = num_accumulated;
  iterations_run_ = iterations_run;
  return cold::Status::OK();
}

// --- parallel trainer state -----------------------------------------------
//
// Same run header and state section (via a plain ColdState snapshot), plus
// the per-worker RNG streams of the GAS engine. Restore refuses a
// worker-count mismatch: each worker owns a deterministic PCG32 stream, so
// resuming with a different pool size cannot continue the same sequence.

cold::Status ParallelColdTrainer::SerializeState(std::string* out) const {
  if (!initialized_) {
    return cold::Status::FailedPrecondition(
        "call Init() before SerializeState()");
  }
  out->clear();
  PayloadWriter w(out);
  const ColdState snapshot = state_->ToColdState();
  WriteRunHeader(w, config_, snapshot, use_network_, lambda0_);
  w.I32(supersteps_run_);
  WriteStateSection(w, snapshot);
  const std::vector<cold::RngState> workers = EngineSamplerStates();
  w.U32(static_cast<uint32_t>(workers.size()));
  for (const cold::RngState& s : workers) WriteRngState(w, s);
  return cold::Status::OK();
}

cold::Status ParallelColdTrainer::RestoreState(const std::string& payload) {
  if (!initialized_) {
    return cold::Status::FailedPrecondition(
        "call Init() before RestoreState()");
  }
  PayloadReader r(payload);
  // Template snapshot supplies the expected dimensions; the restored
  // assignments and counters are installed into it, validated, and only
  // then swapped into the shared atomic state.
  ColdState snapshot = state_->ToColdState();
  double lambda0 = lambda0_;
  COLD_RETURN_NOT_OK(
      CheckRunHeader(r, config_, snapshot, use_network_, &lambda0));
  int32_t supersteps_run = 0;
  COLD_RETURN_NOT_OK(r.I32(&supersteps_run));
  if (supersteps_run < 0 || supersteps_run > config_.iterations) {
    return cold::Status::IOError("checkpoint sweep index out of range");
  }
  COLD_RETURN_NOT_OK(ReadStateSection(r, &snapshot));
  uint32_t num_workers = 0;
  COLD_RETURN_NOT_OK(r.U32(&num_workers));
  if (num_workers == 0 || num_workers > (1u << 20)) {
    return cold::Status::IOError("checkpoint worker count implausible");
  }
  std::vector<cold::RngState> workers(num_workers);
  for (cold::RngState& s : workers) COLD_RETURN_NOT_OK(ReadRngState(r, &s));
  COLD_RETURN_NOT_OK(r.ExpectEnd());

  cold::Status invariants =
      snapshot.CheckInvariants(posts_, links_, use_network_);
  if (!invariants.ok()) {
    return cold::Status::IOError("checkpoint state inconsistent: " +
                                 invariants.message());
  }
  COLD_RETURN_NOT_OK(EngineRestoreSamplerStates(workers));
  COLD_RETURN_NOT_OK(state_->RestoreFrom(snapshot));
  lambda0_ = lambda0;
  supersteps_run_ = supersteps_run;
  // Scatter draws are keyed by (superstep, chunk); realign the engine's
  // superstep counter so the resumed run replays the same RNG streams as an
  // uninterrupted one.
  EngineSetSuperstepIndex(supersteps_run_);
  return cold::Status::OK();
}

}  // namespace cold::core
