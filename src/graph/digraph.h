// Directed interaction network (Definition 1): CSR storage with both
// out- and in-adjacency, built once and immutable afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace cold::graph {

/// Dense node identifier.
using NodeId = int32_t;
/// Dense edge identifier in [0, num_edges()), ordered by source node.
using EdgeId = int64_t;

/// \brief A directed edge (src -> dst). In the COLD setting an edge
/// (i, i') means "there is communication from i to i'", e.g. i' retweeted i.
struct Edge {
  NodeId src = -1;
  NodeId dst = -1;
};

/// \brief Immutable directed graph in CSR form.
///
/// Built via Builder; exposes out-neighbors, in-neighbors, and a flat edge
/// list whose order defines EdgeId (used by the samplers to attach latent
/// state per edge).
class Digraph {
 public:
  /// \brief Incremental builder; duplicate edges are kept unless
  /// `dedupe` is set at Build time.
  class Builder {
   public:
    /// Adds a directed edge; self-loops are rejected with kInvalidArgument.
    cold::Status AddEdge(NodeId src, NodeId dst);

    /// \brief Builds the graph over `num_nodes` nodes (>= max node id + 1;
    /// pass 0 to infer). If `dedupe`, parallel duplicate edges collapse to
    /// one.
    Digraph Build(int num_nodes = 0, bool dedupe = false) &&;

   private:
    std::vector<Edge> edges_;
    int max_node_ = -1;
  };

  int num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// The edge with identifier `e`.
  const Edge& edge(EdgeId e) const { return edges_[static_cast<size_t>(e)]; }

  /// Edge ids leaving `n` (targets of n's communication).
  std::span<const EdgeId> out_edges(NodeId n) const {
    return Slice(out_offsets_, out_edge_ids_, n);
  }

  /// Edge ids entering `n`.
  std::span<const EdgeId> in_edges(NodeId n) const {
    return Slice(in_offsets_, in_edge_ids_, n);
  }

  int out_degree(NodeId n) const {
    return static_cast<int>(out_edges(n).size());
  }
  int in_degree(NodeId n) const { return static_cast<int>(in_edges(n).size()); }

  /// Out-neighbor node ids of `n` (one per out-edge, duplicates possible).
  std::vector<NodeId> OutNeighbors(NodeId n) const;

  /// In-neighbor node ids of `n`.
  std::vector<NodeId> InNeighbors(NodeId n) const;

  /// True iff an edge src->dst exists (linear in out_degree(src)).
  bool HasEdge(NodeId src, NodeId dst) const;

  /// \brief Number of absent directed pairs, U*(U-1) - |E|; the `n_neg` of
  /// §3.3 used to set the Beta prior lambda_0.
  int64_t NumNegativePairs() const;

 private:
  static std::span<const EdgeId> Slice(const std::vector<int64_t>& offsets,
                                       const std::vector<EdgeId>& ids,
                                       NodeId n) {
    size_t b = static_cast<size_t>(offsets[static_cast<size_t>(n)]);
    size_t e = static_cast<size_t>(offsets[static_cast<size_t>(n) + 1]);
    return {ids.data() + b, e - b};
  }

  int num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<int64_t> out_offsets_;
  std::vector<EdgeId> out_edge_ids_;
  std::vector<int64_t> in_offsets_;
  std::vector<EdgeId> in_edge_ids_;
};

}  // namespace cold::graph
