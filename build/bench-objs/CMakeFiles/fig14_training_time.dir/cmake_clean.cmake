file(REMOVE_RECURSE
  "../bench/fig14_training_time"
  "../bench/fig14_training_time.pdb"
  "CMakeFiles/fig14_training_time.dir/fig14_training_time.cc.o"
  "CMakeFiles/fig14_training_time.dir/fig14_training_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
