#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "serve/json.h"
#include "util/net_io.h"

namespace cold::serve {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Reads more bytes into `buffer`; OK(false) on clean EOF. A signal
/// landing mid-recv (EINTR) is retried here rather than surfaced, so
/// callers never mistake an interrupted syscall for progress or EOF.
cold::Result<bool> FillFromSocket(int fd, std::string* buffer) {
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n > 0) {
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }
  if (n == 0) return false;
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    // Distinct code so servers can tell an idle-timeout reap apart from a
    // broken socket (cold/serve/idle_closes).
    return cold::Status::DeadlineExceeded("socket read timeout");
  }
  return cold::Status::IOError(std::string("recv: ") + std::strerror(errno));
}

cold::Status ParseRequestHead(const std::string& head, HttpRequest* out) {
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    return cold::Status::InvalidArgument("missing request line");
  }
  const std::string request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return cold::Status::InvalidArgument("malformed request line");
  }
  out->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = request_line.substr(sp2 + 1);
  if (out->method.empty() || target.empty() || target[0] != '/') {
    return cold::Status::InvalidArgument("malformed request target");
  }
  if (out->version != "HTTP/1.1" && out->version != "HTTP/1.0") {
    return cold::Status::InvalidArgument("unsupported HTTP version");
  }
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    out->path = target;
  } else {
    out->path = target.substr(0, qmark);
    out->query = target.substr(qmark + 1);
  }

  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return cold::Status::InvalidArgument("malformed header line");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    out->headers[name] = Trim(line.substr(colon + 1));
  }
  return cold::Status::OK();
}

/// Full-transfer sends go through the shared EINTR/partial-write-robust
/// loop (util/net_io.h, also used by src/dist's frame transport).
cold::Status WriteAll(int fd, const char* data, size_t size) {
  return cold::WriteFull(fd, data, size);
}

}  // namespace

const std::string* HttpRequest::Header(
    const std::string& lowercase_name) const {
  auto it = headers.find(lowercase_name);
  return it == headers.end() ? nullptr : &it->second;
}

int HttpRequest::QueryInt(const std::string& name, int fallback) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    std::string pair = query.substr(pos, amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == name) {
      const std::string value = pair.substr(eq + 1);
      errno = 0;
      char* end = nullptr;
      long v = std::strtol(value.c_str(), &end, 10);
      if (errno == 0 && end != value.c_str() && *end == '\0' &&
          v >= INT32_MIN && v <= INT32_MAX) {
        return static_cast<int>(v);
      }
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

bool HttpRequest::keep_alive() const {
  const std::string* conn = Header("connection");
  if (conn != nullptr) {
    std::string v = ToLower(*conn);
    if (v == "close") return false;
    if (v == "keep-alive") return true;
  }
  return version == "HTTP/1.1";
}

HttpResponse HttpResponse::Text(int code, std::string body,
                                std::string content_type) {
  HttpResponse r;
  r.status_code = code;
  r.body = std::move(body);
  r.content_type = std::move(content_type);
  return r;
}

HttpResponse HttpResponse::Error(int code, const std::string& message) {
  Json payload = Json::MakeObject();
  payload.Set("error", message);
  payload.Set("status", code);
  HttpResponse r;
  r.status_code = code;
  r.body = payload.Dump();
  return r;
}

HttpResponse HttpResponse::FromStatus(const cold::Status& status) {
  int code = 500;
  switch (status.code()) {
    case cold::StatusCode::kInvalidArgument: code = 400; break;
    case cold::StatusCode::kOutOfRange: code = 422; break;
    case cold::StatusCode::kNotFound: code = 404; break;
    case cold::StatusCode::kFailedPrecondition: code = 409; break;
    default: code = 500; break;
  }
  return Error(code, status.ToString());
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

cold::Result<HttpParseState> ParseHttpRequest(std::string* buffer,
                                              HttpRequest* out,
                                              const HttpLimits& limits) {
  // Accumulation is the caller's job; this only decides whether the bytes
  // so far hold a complete (and well-formed, and within-limits) request.
  size_t head_end = buffer->find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer->size() > limits.max_header_bytes) {
      return cold::Status::InvalidArgument("header block too large");
    }
    return HttpParseState::kNeedMore;
  }

  HttpRequest request;
  COLD_RETURN_NOT_OK(
      ParseRequestHead(buffer->substr(0, head_end + 2), &request));

  if (request.Header("transfer-encoding") != nullptr) {
    return cold::Status::InvalidArgument(
        "transfer-encoding is not supported");
  }
  size_t body_size = 0;
  if (const std::string* cl = request.Header("content-length")) {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (errno != 0 || end == cl->c_str() || *end != '\0') {
      return cold::Status::InvalidArgument("malformed content-length");
    }
    if (v > limits.max_body_bytes) {
      return cold::Status::InvalidArgument("body too large");
    }
    body_size = static_cast<size_t>(v);
  }

  const size_t body_begin = head_end + 4;
  if (buffer->size() - body_begin < body_size) {
    return HttpParseState::kNeedMore;
  }
  request.body = buffer->substr(body_begin, body_size);
  // Pipelined bytes of the next request stay in the buffer.
  buffer->erase(0, body_begin + body_size);
  *out = std::move(request);
  return HttpParseState::kComplete;
}

cold::Result<HttpRequest> ReadHttpRequest(int fd, std::string* leftover,
                                          const HttpLimits& limits) {
  std::string buffer = std::move(*leftover);
  leftover->clear();
  while (true) {
    HttpRequest request;
    COLD_ASSIGN_OR_RETURN(HttpParseState state,
                          ParseHttpRequest(&buffer, &request, limits));
    if (state == HttpParseState::kComplete) {
      *leftover = std::move(buffer);
      return request;
    }
    COLD_ASSIGN_OR_RETURN(bool more, FillFromSocket(fd, &buffer));
    if (!more) {
      if (buffer.empty()) {
        return cold::Status::NotFound("connection closed");
      }
      return cold::Status::InvalidArgument("connection closed mid-request");
    }
  }
}

void AppendHttpResponse(std::string* buffer, const HttpResponse& response,
                        bool close_connection) {
  std::string& out = *buffer;
  out.reserve(out.size() + response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status_code);
  out += ' ';
  out += HttpStatusText(response.status_code);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += close_connection ? "close" : "keep-alive";
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
}

cold::Status WriteHttpResponse(int fd, const HttpResponse& response,
                               bool close_connection) {
  std::string out;
  AppendHttpResponse(&out, response, close_connection);
  return WriteAll(fd, out.data(), out.size());
}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

cold::Status HttpClient::Connect(int port, int timeout_ms) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return cold::Status::IOError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    cold::Status st = cold::Status::IOError(std::string("connect: ") +
                                            std::strerror(errno));
    Close();
    return st;
  }
  return cold::Status::OK();
}

cold::Result<HttpClient::Response> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body) {
  if (fd_ < 0) return cold::Status::FailedPrecondition("not connected");
  std::string out;
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Type: application/json\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  COLD_RETURN_NOT_OK(WriteAll(fd_, out.data(), out.size()));

  // Reuse the request parser shape: status line looks like a request line
  // with the roles of method/target swapped, so parse by hand.
  std::string buffer = std::move(leftover_);
  leftover_.clear();
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    COLD_ASSIGN_OR_RETURN(bool more, FillFromSocket(fd_, &buffer));
    if (!more) return cold::Status::IOError("server closed connection");
    if (buffer.size() > 1 << 20) {
      return cold::Status::IOError("oversized response head");
    }
  }
  Response response;
  {
    size_t line_end = buffer.find("\r\n");
    std::string status_line = buffer.substr(0, line_end);
    size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos) {
      return cold::Status::IOError("malformed status line");
    }
    response.status_code = std::atoi(status_line.c_str() + sp1 + 1);
    size_t pos = line_end + 2;
    while (pos < head_end + 2) {
      size_t eol = buffer.find("\r\n", pos);
      std::string line = buffer.substr(pos, eol - pos);
      pos = eol + 2;
      if (line.empty()) break;
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      response.headers[ToLower(Trim(line.substr(0, colon)))] =
          Trim(line.substr(colon + 1));
    }
  }
  size_t body_size = 0;
  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    body_size = static_cast<size_t>(std::strtoull(it->second.c_str(),
                                                  nullptr, 10));
  }
  size_t body_begin = head_end + 4;
  while (buffer.size() - body_begin < body_size) {
    COLD_ASSIGN_OR_RETURN(bool more, FillFromSocket(fd_, &buffer));
    if (!more) return cold::Status::IOError("server closed mid-body");
  }
  response.body = buffer.substr(body_begin, body_size);
  leftover_ = buffer.substr(body_begin + body_size);
  return response;
}

}  // namespace cold::serve
