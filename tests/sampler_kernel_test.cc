// Guard tests for the lgamma-collapsed topic kernel and the vocab-size
// derivation (sampler-performance PR): the optimized kernel must agree
// with the per-token reference loop to 1e-9, fixed-seed sweeps must stay
// deterministic for both trainers, and the samplers must honor
// ColdConfig::vocab_size over the training-split max word id.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cold.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "util/math_util.h"

namespace cold::core {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 120;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 10;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 9.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 8;
  config.seed = 23;
  return config;
}

const data::SocialDataset& TestData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticSocialGenerator gen(TestDataConfig());
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

ColdConfig TestModelConfig() {
  ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.iterations = 20;
  config.burn_in = 10;
  config.seed = 29;
  config.rho = 0.5;
  return config;
}

// ------------------------------------------------- LogAscendingFactorial --

TEST(LogAscendingFactorialTest, ZeroAndNegativeCountsAreZero) {
  EXPECT_EQ(LogAscendingFactorial(3.7, 0), 0.0);
  EXPECT_EQ(LogAscendingFactorial(3.7, -2), 0.0);
  EXPECT_EQ(LogAscendingFactorial(3.7, 0, LGamma(3.7)), 0.0);
}

TEST(LogAscendingFactorialTest, MatchesExplicitLoop) {
  // Bases spanning the prior-only (0.01) to heavy-count (5000) regimes,
  // counts straddling kLogAscFactorialSmallCount so both branches are hit.
  const double bases[] = {0.01, 0.5, 3.7, 120.0, 5000.0};
  for (double base : bases) {
    for (int cnt = 1; cnt <= 24; ++cnt) {
      double expected = 0.0;
      for (int q = 0; q < cnt; ++q) expected += std::log(base + q);
      EXPECT_NEAR(LogAscendingFactorial(base, cnt), expected, 1e-9)
          << "base=" << base << " cnt=" << cnt;
    }
  }
}

TEST(LogAscendingFactorialTest, CachedBaseOverloadMatches) {
  const double bases[] = {0.3, 41.5, 900.0};
  for (double base : bases) {
    double lgamma_base = LGamma(base);
    for (int cnt = 0; cnt <= 20; ++cnt) {
      EXPECT_DOUBLE_EQ(LogAscendingFactorial(base, cnt, lgamma_base),
                       LogAscendingFactorial(base, cnt))
          << "base=" << base << " cnt=" << cnt;
    }
  }
}

// ------------------------------------------------------- Topic kernel ----

/// Per-token-log reference for Eq. (3): the pre-optimization kernel, with
/// live std::log community/time terms and explicit ascending-factorial
/// loops over the Dirichlet-multinomial word/length terms.
std::vector<double> ReferenceTopicLogWeights(const ColdGibbsSampler& sampler,
                                             const text::PostStore& posts,
                                             text::PostId d, int community) {
  const ColdState& state = sampler.state();
  const ColdConfig& config = sampler.config();
  const int K = config.num_topics;
  const int T = posts.num_time_slices();
  const int V = state.V();
  const double alpha = config.ResolvedAlpha();
  const double beta = config.beta;
  const double epsilon = config.epsilon;
  const int t = posts.time(d);
  const int len = posts.length(d);
  auto word_counts = posts.WordCounts(d);

  std::vector<double> log_weights(static_cast<size_t>(K));
  for (int k = 0; k < K; ++k) {
    double lw = std::log(state.n_ck(community, k) + alpha) +
                std::log(state.n_ckt(community, k, t) + epsilon) -
                std::log(state.n_ck(community, k) + T * epsilon);
    for (const auto& [w, cnt] : word_counts) {
      double base = state.n_kv(k, w) + beta;
      for (int q = 0; q < cnt; ++q) lw += std::log(base + q);
    }
    double denom = state.n_k(k) + V * beta;
    for (int q = 0; q < len; ++q) lw -= std::log(denom + q);
    log_weights[static_cast<size_t>(k)] = lw;
  }
  return log_weights;
}

void ExpectKernelMatchesReference(ColdGibbsSampler* sampler,
                                  const text::PostStore& posts) {
  const int C = sampler->config().num_communities;
  const int K = sampler->config().num_topics;
  std::vector<double> optimized(static_cast<size_t>(K));
  double worst = 0.0;
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    for (int c = 0; c < C; ++c) {
      sampler->TopicLogWeights(d, c, optimized);
      std::vector<double> reference =
          ReferenceTopicLogWeights(*sampler, posts, d, c);
      for (int k = 0; k < K; ++k) {
        double diff = std::abs(optimized[static_cast<size_t>(k)] -
                               reference[static_cast<size_t>(k)]);
        worst = std::max(worst, diff);
        ASSERT_NEAR(optimized[static_cast<size_t>(k)],
                    reference[static_cast<size_t>(k)], 1e-9)
            << "post " << d << " community " << c << " topic " << k;
      }
    }
  }
  // The whole sweep must stay within the guard tolerance, not just each
  // individual entry.
  EXPECT_LT(worst, 1e-9);
}

TEST(TopicKernelTest, MatchesPerTokenReferenceOnSyntheticData) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  // Check against the random-init counters and again after sweeps have
  // moved them (exercising the incremental cache refresh).
  ExpectKernelMatchesReference(&sampler, ds.posts);
  for (int it = 0; it < 3; ++it) sampler.RunIteration();
  ExpectKernelMatchesReference(&sampler, ds.posts);
}

TEST(TopicKernelTest, HandlesEmptyAndRepeatedWordPosts) {
  // Hand-built corpus hitting the edge cases the synthetic data avoids:
  // an empty post (len = 0, no word term at all), a post of one word
  // repeated past kLogAscFactorialSmallCount (lgamma path for the word
  // term), and a long mixed post (lgamma path for the length denominator).
  text::PostStore posts;
  std::vector<text::WordId> empty;
  std::vector<text::WordId> repeated(12, 3);
  std::vector<text::WordId> mixed;
  for (int q = 0; q < 20; ++q) mixed.push_back(q % 5);
  posts.Add(0, 0, empty);
  posts.Add(0, 1, repeated);
  posts.Add(1, 0, mixed);
  posts.Add(1, 1, {});
  posts.Finalize(/*min_users=*/2, /*min_time_slices=*/2);

  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 3;
  config.iterations = 4;
  config.burn_in = 1;
  config.seed = 7;
  config.use_network = false;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  ExpectKernelMatchesReference(&sampler, posts);
  for (int it = 0; it < 2; ++it) sampler.RunIteration();
  ExpectKernelMatchesReference(&sampler, posts);
}

// ---------------------------------------------------- Sweep equivalence --

TEST(SweepEquivalenceTest, SerialFixedSeedTrajectoriesIdentical) {
  const auto& ds = TestData();
  ColdGibbsSampler a(TestModelConfig(), ds.posts, &ds.interactions);
  ColdGibbsSampler b(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int it = 0; it < 4; ++it) {
    a.RunIteration();
    b.RunIteration();
    ASSERT_EQ(a.state().post_topic, b.state().post_topic) << "sweep " << it;
    ASSERT_EQ(a.state().post_community, b.state().post_community)
        << "sweep " << it;
    ASSERT_EQ(a.state().link_src_community, b.state().link_src_community)
        << "sweep " << it;
  }
}

TEST(SweepEquivalenceTest, ParallelFixedSeedTrajectoriesIdentical) {
  const auto& ds = TestData();
  // Single node, single worker: the engine's deterministic configuration.
  engine::EngineOptions options;
  options.num_nodes = 1;
  options.threads_per_node = 1;
  ParallelColdTrainer a(TestModelConfig(), ds.posts, &ds.interactions,
                        options);
  ParallelColdTrainer b(TestModelConfig(), ds.posts, &ds.interactions,
                        options);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int s = 0; s < 3; ++s) {
    a.RunSuperstep();
    b.RunSuperstep();
    ColdState sa = a.StateSnapshot();
    ColdState sb = b.StateSnapshot();
    ASSERT_EQ(sa.post_topic, sb.post_topic) << "superstep " << s;
    ASSERT_EQ(sa.post_community, sb.post_community) << "superstep " << s;
    ASSERT_EQ(sa.link_src_community, sb.link_src_community)
        << "superstep " << s;
  }
}

// ----------------------------------------------------------- Vocab size --

/// A "training split" whose max word id (4) undershoots the dataset-wide
/// vocabulary (10 words): exactly the shape that used to under-size
/// n_kv/phi and make the predictor reject held-out posts.
text::PostStore LowVocabTrainPosts() {
  text::PostStore posts;
  std::vector<text::WordId> w0 = {0, 1, 2};
  std::vector<text::WordId> w1 = {2, 3, 4, 4};
  std::vector<text::WordId> w2 = {1, 0, 3};
  posts.Add(0, 0, w0);
  posts.Add(1, 1, w1);
  posts.Add(2, 0, w2);
  posts.Finalize(/*min_users=*/3, /*min_time_slices=*/2);
  return posts;
}

TEST(VocabSizeTest, SerialSamplerUsesConfiguredVocab) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 6;
  config.burn_in = 2;
  config.use_network = false;
  config.vocab_size = 10;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_EQ(sampler.state().V(), 10);
  ASSERT_TRUE(sampler.Train().ok());

  // The predictor built from these estimates must accept a held-out post
  // using word ids the training split never saw.
  ColdEstimates estimates = sampler.AveragedEstimates();
  EXPECT_EQ(estimates.V, 10);
  ColdPredictor predictor(estimates);
  std::vector<text::WordId> held_out = {7, 9};
  EXPECT_TRUE(predictor.ValidateQuery(0, held_out).ok());
  EXPECT_FALSE(predictor.TopicPosterior(held_out, 0).empty());
}

TEST(VocabSizeTest, SerialSamplerRejectsUndersizedVocab) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.use_network = false;
  config.vocab_size = 3;  // max word id is 4 -> needs at least 5
  ColdGibbsSampler sampler(config, posts, nullptr);
  cold::Status status = sampler.Init();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), cold::StatusCode::kInvalidArgument);
}

TEST(VocabSizeTest, ParallelTrainerUsesConfiguredVocab) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.iterations = 4;
  config.burn_in = 1;
  config.use_network = false;
  config.vocab_size = 10;
  ParallelColdTrainer trainer(config, posts, nullptr);
  ASSERT_TRUE(trainer.Init().ok());
  EXPECT_EQ(trainer.StateSnapshot().V(), 10);

  config.vocab_size = 3;
  ParallelColdTrainer undersized(config, posts, nullptr);
  cold::Status status = undersized.Init();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), cold::StatusCode::kInvalidArgument);
}

TEST(VocabSizeTest, DefaultStillDerivesFromPosts) {
  text::PostStore posts = LowVocabTrainPosts();
  ColdConfig config;
  config.num_communities = 2;
  config.num_topics = 2;
  config.use_network = false;
  ColdGibbsSampler sampler(config, posts, nullptr);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_EQ(sampler.state().V(), 5);  // max word id 4 + 1
}

}  // namespace
}  // namespace cold::core
