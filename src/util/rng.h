// Deterministic pseudo-random number generation and the sampling
// distributions used throughout the COLD inference code.
//
// We implement PCG32 (O'Neill 2014) rather than relying on std::mt19937 so
// that streams are cheap to split per-edge/per-thread (the GAS engine gives
// every scatter task its own statistically independent stream) and results
// are reproducible across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cold {

/// \brief Serializable snapshot of a RandomSampler: the raw PCG32 state
/// plus the Box-Muller spare, so a restored sampler continues the exact
/// draw sequence (the checkpoint layer's bit-identical-resume guarantee).
struct RngState {
  uint64_t state = 0;
  uint64_t inc = 1;
  bool have_spare_normal = false;
  double spare_normal = 0.0;
};

/// \brief PCG32 generator: 64-bit state, 32-bit output, seedable stream id.
///
/// Distinct `stream` values yield statistically independent sequences for the
/// same seed, which the parallel sampler uses to give each worker its own
/// stream deterministically.
class Pcg32 {
 public:
  /// Constructs a generator for (seed, stream).
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Reseeds in place.
  void Seed(uint64_t seed, uint64_t stream = 1);

  /// Next raw 32-bit draw.
  uint32_t NextU32();

  /// Next 64-bit draw (two 32-bit draws).
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  uint32_t NextBounded(uint32_t bound);

  /// Raw state for checkpoint serialization.
  uint64_t raw_state() const { return state_; }
  uint64_t raw_inc() const { return inc_; }
  /// Restores a generator previously captured via raw_state()/raw_inc().
  void Restore(uint64_t state, uint64_t inc) {
    state_ = state;
    inc_ = inc;
  }

  // UniformRandomBitGenerator interface, so Pcg32 works with <algorithm>.
  using result_type = uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return NextU32(); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// \brief Sampling distributions on top of a Pcg32 stream.
///
/// All methods are deterministic functions of the generator state; none
/// allocate except where a vector is returned.
class RandomSampler {
 public:
  explicit RandomSampler(uint64_t seed = 42, uint64_t stream = 1)
      : rng_(seed, stream) {}
  explicit RandomSampler(Pcg32 rng) : rng_(rng) {}

  Pcg32& rng() { return rng_; }

  /// Captures the full sampler state for checkpointing.
  RngState SaveState() const {
    return RngState{rng_.raw_state(), rng_.raw_inc(), have_spare_normal_,
                    spare_normal_};
  }

  /// Restores a state captured by SaveState(); subsequent draws continue
  /// the original sequence bit-identically.
  void RestoreState(const RngState& s) {
    rng_.Restore(s.state, s.inc);
    have_spare_normal_ = s.have_spare_normal;
    spare_normal_ = s.spare_normal;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return rng_.NextDouble(); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n).
  uint32_t UniformInt(uint32_t n) { return rng_.NextBounded(n); }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller.
  double Normal();

  /// Gamma(shape, scale=1) via Marsaglia-Tsang; valid for shape > 0.
  double Gamma(double shape);

  /// Beta(a, b) via two Gamma draws.
  double Beta(double a, double b);

  /// \brief Draws from a categorical distribution given unnormalized
  /// non-negative weights. Returns an index in [0, weights.size()).
  ///
  /// The total may be passed if already known, else it is computed.
  /// Degenerate weight vectors (all-zero or non-finite total) fall back
  /// to a uniform draw over all indices.
  int Categorical(std::span<const double> weights, double total = -1.0);

  /// \brief Draws from a categorical distribution given log-weights
  /// (arbitrary scale); numerically stable via max-shift. An all--inf
  /// (or otherwise non-finite-maximum) vector falls back to a uniform
  /// draw over all indices.
  int LogCategorical(std::span<const double> log_weights);

  /// \brief Samples a Dirichlet(alpha) vector; `alpha` may be asymmetric.
  std::vector<double> Dirichlet(std::span<const double> alpha);

  /// \brief Samples a symmetric Dirichlet(alpha) of dimension n.
  std::vector<double> SymmetricDirichlet(double alpha, int n);

  /// \brief Draws `n` samples from a multinomial with probabilities `p`,
  /// returning the count vector.
  std::vector<int> Multinomial(int n, std::span<const double> p);

  /// \brief Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint32_t>(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// \brief Samples `k` distinct indices from [0, n) (k <= n), in random
  /// order, via partial Fisher-Yates.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Zipf-like draw over [0, n): P(i) proportional to 1/(i+1)^s.
  /// Uses an inverse-CDF table owned by the caller; see MakeZipfTable.
  static std::vector<double> MakeZipfTable(int n, double s);

 private:
  Pcg32 rng_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace cold
