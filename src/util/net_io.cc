#include "util/net_io.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

namespace cold {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped at 0.
int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

cold::Status WriteFull(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, p + sent, size - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A blocking socket only reports EAGAIN when SO_SNDTIMEO expired:
        // the peer stopped draining its receive window.
        return cold::Status::DeadlineExceeded(
            "send timed out (" + std::to_string(sent) + " of " +
            std::to_string(size) + " bytes)");
      }
      return cold::Status::IOError(std::string("send: ") +
                                   std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

cold::Status ReadFull(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::read(fd, p + got, size - got);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expiry on a blocking socket.
        return cold::Status::DeadlineExceeded(
            "recv timed out (" + std::to_string(got) + " of " +
            std::to_string(size) + " bytes)");
      }
      return cold::Status::IOError(std::string("recv: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return cold::Status::IOError("connection closed");
      return cold::Status::IOError(
          "connection closed mid-transfer (" + std::to_string(got) + " of " +
          std::to_string(size) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

cold::Status WriteFullDeadline(int fd, const void* data, size_t size,
                               int timeout_ms) {
  if (timeout_ms < 0) return WriteFull(fd, data, size);
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (sent < size) {
    pollfd pfd{fd, POLLOUT, 0};
    const int wait = RemainingMs(deadline);
    int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return cold::Status::IOError(std::string("poll: ") +
                                   std::strerror(errno));
    }
    if (ready == 0) {
      return cold::Status::DeadlineExceeded(
          "write deadline of " + std::to_string(timeout_ms) + "ms expired (" +
          std::to_string(sent) + " of " + std::to_string(size) + " bytes)");
    }
    // Writability (or an error condition poll reports as ready) — move
    // bytes without blocking so one large transfer cannot overrun the
    // budget inside the syscall.
    ssize_t n =
        ::send(fd, p + sent, size - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, p + sent, size - sent);
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // re-poll; the deadline still bounds the loop
      }
      return cold::Status::IOError(std::string("send: ") +
                                   std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

cold::Status ReadFullDeadline(int fd, void* data, size_t size,
                              int timeout_ms) {
  if (timeout_ms < 0) return ReadFull(fd, data, size);
  char* p = static_cast<char*>(data);
  size_t got = 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (got < size) {
    pollfd pfd{fd, POLLIN, 0};
    const int wait = RemainingMs(deadline);
    int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return cold::Status::IOError(std::string("poll: ") +
                                   std::strerror(errno));
    }
    if (ready == 0) {
      return cold::Status::DeadlineExceeded(
          "read deadline of " + std::to_string(timeout_ms) + "ms expired (" +
          std::to_string(got) + " of " + std::to_string(size) + " bytes)");
    }
    ssize_t n = ::recv(fd, p + got, size - got, MSG_DONTWAIT);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::read(fd, p + got, size - got);
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return cold::Status::IOError(std::string("recv: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return cold::Status::IOError("connection closed");
      return cold::Status::IOError(
          "connection closed mid-transfer (" + std::to_string(got) + " of " +
          std::to_string(size) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return cold::Status::OK();
}

}  // namespace cold
