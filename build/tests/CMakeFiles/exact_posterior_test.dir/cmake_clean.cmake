file(REMOVE_RECURSE
  "CMakeFiles/exact_posterior_test.dir/exact_posterior_test.cc.o"
  "CMakeFiles/exact_posterior_test.dir/exact_posterior_test.cc.o.d"
  "exact_posterior_test"
  "exact_posterior_test.pdb"
  "exact_posterior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_posterior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
