#!/usr/bin/env bash
# Distributed crash/recovery acceptance check (DESIGN.md §12):
#
#   cold_generate -> single-process reference (--parallel 1 --threads 1)
#                 -> clean --nodes 2 run, model must be byte-identical
#                 -> --nodes 2 again with one node SIGKILL'd mid-run via
#                    COLD_FAULT_NODE/COLD_FAULT_POINT (job must abort)
#                 -> --resume restart picks up the common checkpoint sweep
#                 -> resumed model must be byte-identical to the reference
#
# Exercises the real multi-process path: cold_train self-forks N local
# nodes talking length-prefixed frames over loopback TCP.
#
# Usage: tools/distloop_train.sh [build-dir] [iterations] [kill-sweep]
#        kill-sweep defaults to a random sweep in the middle of the run.
set -euo pipefail

BUILD_DIR="${1:-build}"
ITERATIONS="${2:-24}"
KILL_SWEEP="${3:-$(( (RANDOM % (ITERATIONS / 2)) + ITERATIONS / 4 ))}"
C=4
K=6
NODES=2
WORK_DIR="$(mktemp -d /tmp/cold_distloop.XXXXXX)"
CKPT_DIR="${WORK_DIR}/ckpt"

cleanup() { rm -rf "${WORK_DIR}"; }
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

for bin in cold_generate cold_train; do
  [[ -x "${BUILD_DIR}/tools/${bin}" ]] \
    || die "missing ${BUILD_DIR}/tools/${bin} (build the project first)"
done
(( KILL_SWEEP >= 1 && KILL_SWEEP < ITERATIONS )) \
  || die "kill sweep ${KILL_SWEEP} outside training schedule"

echo "== generate dataset (kill node 1 at sweep ${KILL_SWEEP}/${ITERATIONS}) =="
"${BUILD_DIR}/tools/cold_generate" "${WORK_DIR}/data" 120 "${C}" "${K}" 8 \
  || die "cold_generate"

echo "== single-process reference run =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_ref.bin" "${C}" "${K}" "${ITERATIONS}" \
  --parallel 1 --threads 1 \
  || die "reference train"

echo "== clean ${NODES}-node run must be bit-identical =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_dist.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes "${NODES}" --threads 1 \
  || die "clean ${NODES}-node train"
cmp "${WORK_DIR}/model_ref.bin" "${WORK_DIR}/model_dist.bin" \
  || die "${NODES}-node model differs from the single-process reference"
echo "  ${NODES}-node model is byte-identical to the reference"

echo "== SIGKILL node 1 mid-training; the job must abort =="
set +e
COLD_FAULT_NODE=1 COLD_FAULT_POINT="after_sweep:${KILL_SWEEP}" \
  "${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_crashed.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes "${NODES}" --threads 1 \
  --checkpoint-dir "${CKPT_DIR}" --checkpoint-every 2 --checkpoint-keep 3 \
  >"${WORK_DIR}/crash.log" 2>&1
CRASH_CODE=$?
set -e
[[ "${CRASH_CODE}" -ne 0 ]] \
  || die "job with a killed node must exit nonzero"
[[ ! -e "${WORK_DIR}/model_crashed.bin" ]] \
  || die "aborted run must not have written a model"
for rank in $(seq 0 $((NODES - 1))); do
  ls "${CKPT_DIR}/node-${rank}"/ckpt-*.cold >/dev/null 2>&1 \
    || die "no checkpoint survived on node ${rank}"
done
echo "  job aborted (exit ${CRASH_CODE}); per-node checkpoints survived"

echo "== resume and compare =="
"${BUILD_DIR}/tools/cold_train" "${WORK_DIR}/data" \
  "${WORK_DIR}/model_resumed.bin" "${C}" "${K}" "${ITERATIONS}" \
  --nodes "${NODES}" --threads 1 \
  --checkpoint-dir "${CKPT_DIR}" --checkpoint-every 2 --checkpoint-keep 3 \
  --resume >"${WORK_DIR}/resume.log" 2>&1 || die "resume train"
grep -q "resumed from" "${WORK_DIR}/resume.log" \
  || die "resume did not report a negotiated checkpoint sweep"
cmp "${WORK_DIR}/model_ref.bin" "${WORK_DIR}/model_resumed.bin" \
  || die "resumed model differs from the single-process reference"
echo "  resumed model is byte-identical to the reference"

echo "PASS: distloop train check complete"
