#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace cold::eval {

double RocAuc(std::span<const double> positive_scores,
              std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Rank-sum (Mann-Whitney U): sort all scores, sum positive ranks with
  // average ranks for ties.
  struct Item {
    double score;
    bool positive;
  };
  std::vector<Item> items;
  items.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) items.push_back({s, true});
  for (double s : negative_scores) items.push_back({s, false});
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.score < b.score; });

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].score == items[i].score) ++j;
    // Average rank (1-based) for the tie group [i, j).
    double avg_rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t q = i; q < j; ++q) {
      if (items[q].positive) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  double n_pos = static_cast<double>(positive_scores.size());
  double n_neg = static_cast<double>(negative_scores.size());
  double u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0;
  return u / (n_pos * n_neg);
}

double AveragedTupleAuc(std::span<const ScoredTuple> tuples) {
  double total = 0.0;
  int counted = 0;
  for (const ScoredTuple& t : tuples) {
    if (t.positive_scores.empty() || t.negative_scores.empty()) continue;
    total += RocAuc(t.positive_scores, t.negative_scores);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.5;
}

double AccuracyWithinTolerance(std::span<const int> predicted,
                               std::span<const int> actual, int tolerance) {
  assert(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  int hits = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (std::abs(predicted[i] - actual[i]) <= tolerance) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

std::vector<double> ToleranceCurve(std::span<const int> predicted,
                                   std::span<const int> actual,
                                   int max_tolerance) {
  std::vector<double> curve;
  curve.reserve(static_cast<size_t>(max_tolerance) + 1);
  for (int tol = 0; tol <= max_tolerance; ++tol) {
    curve.push_back(AccuracyWithinTolerance(predicted, actual, tol));
  }
  return curve;
}

}  // namespace cold::eval
