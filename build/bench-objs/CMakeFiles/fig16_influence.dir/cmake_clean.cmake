file(REMOVE_RECURSE
  "../bench/fig16_influence"
  "../bench/fig16_influence.pdb"
  "CMakeFiles/fig16_influence.dir/fig16_influence.cc.o"
  "CMakeFiles/fig16_influence.dir/fig16_influence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
