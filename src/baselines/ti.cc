#include "baselines/ti.h"

#include <algorithm>
#include <unordered_set>

namespace cold::baselines {

TiModel::TiModel(TiConfig config, const text::PostStore& posts,
                 std::span<const data::RetweetTuple> train_tuples)
    : config_(config), posts_(posts), train_tuples_(train_tuples) {}

cold::Status TiModel::Train() {
  // Topic layer: per-post LDA topics.
  LdaConfig lda_config = config_.lda;
  lda_config.assignment = LdaAssignment::kPerPost;
  lda_config.document_unit = LdaDocumentUnit::kUserDocument;
  lda_ = std::make_unique<LdaModel>(lda_config, posts_);
  COLD_RETURN_NOT_OK(lda_->Train());
  const int K = config_.lda.num_topics;

  // Attribute exposures and retweets to the exposed post's topic.
  exposures_.clear();
  retweets_.clear();
  std::vector<int64_t> topic_exposures(static_cast<size_t>(K), 0);
  std::vector<int64_t> topic_retweets(static_cast<size_t>(K), 0);
  influencees_.assign(static_cast<size_t>(posts_.num_users()), {});
  std::vector<std::unordered_set<text::UserId>> influencee_sets(
      static_cast<size_t>(posts_.num_users()));

  int64_t total_exposures = 0, total_retweets = 0;
  for (const data::RetweetTuple& tuple : train_tuples_) {
    int k = lda_->post_topics()[static_cast<size_t>(tuple.post)];
    for (text::UserId f : tuple.retweeters) {
      exposures_[PairTopicKey(tuple.author, f, k)]++;
      retweets_[PairTopicKey(tuple.author, f, k)]++;
      pair_exposures_[PairKey(tuple.author, f)]++;
      pair_retweets_[PairKey(tuple.author, f)]++;
      topic_exposures[static_cast<size_t>(k)]++;
      topic_retweets[static_cast<size_t>(k)]++;
      ++total_exposures;
      ++total_retweets;
      if (influencee_sets[static_cast<size_t>(tuple.author)].insert(f).second) {
        influencees_[static_cast<size_t>(tuple.author)].push_back(f);
      }
    }
    for (text::UserId f : tuple.ignorers) {
      exposures_[PairTopicKey(tuple.author, f, k)]++;
      pair_exposures_[PairKey(tuple.author, f)]++;
      topic_exposures[static_cast<size_t>(k)]++;
      ++total_exposures;
    }
  }

  global_rate_ = (static_cast<double>(total_retweets) + 0.5) /
                 (static_cast<double>(total_exposures) + 10.0);
  base_rate_.assign(static_cast<size_t>(K), 0.0);
  for (int k = 0; k < K; ++k) {
    base_rate_[static_cast<size_t>(k)] =
        (static_cast<double>(topic_retweets[static_cast<size_t>(k)]) + 0.5) /
        (static_cast<double>(topic_exposures[static_cast<size_t>(k)]) + 10.0);
  }
  return cold::Status::OK();
}

double TiModel::PairInfluence(text::UserId i, text::UserId i2) const {
  uint64_t key = PairKey(i, i2);
  auto exp_it = pair_exposures_.find(key);
  double exposures =
      exp_it != pair_exposures_.end() ? static_cast<double>(exp_it->second)
                                      : 0.0;
  auto rt_it = pair_retweets_.find(key);
  double rts =
      rt_it != pair_retweets_.end() ? static_cast<double>(rt_it->second) : 0.0;
  double mu = config_.smoothing;
  return (rts + mu * global_rate_) / (exposures + mu);
}

double TiModel::DirectInfluence(text::UserId i, text::UserId i2, int k) const {
  uint64_t key = PairTopicKey(i, i2, k);
  auto exp_it = exposures_.find(key);
  double exposures =
      exp_it != exposures_.end() ? static_cast<double>(exp_it->second) : 0.0;
  auto rt_it = retweets_.find(key);
  double rts =
      rt_it != retweets_.end() ? static_cast<double>(rt_it->second) : 0.0;
  double mu = config_.smoothing;
  double topic_level =
      (rts + mu * base_rate_[static_cast<size_t>(k)]) / (exposures + mu);
  // Back off toward the pair's general influence where per-topic counts are
  // sparse.
  return config_.topic_weight * topic_level +
         (1.0 - config_.topic_weight) * PairInfluence(i, i2);
}

double TiModel::Score(text::UserId i, text::UserId i2,
                      std::span<const text::WordId> words) const {
  std::vector<double> topic_post = lda_->TopicPosteriorForAuthor(words, i);
  const double gamma = config_.indirect_weight;
  const int K = static_cast<int>(topic_post.size());
  double score = 0.0;
  for (int k = 0; k < K; ++k) {
    double pk = topic_post[static_cast<size_t>(k)];
    if (pk < 1e-6) continue;
    double direct = DirectInfluence(i, i2, k);
    double indirect = 0.0;
    // One-hop influence through i's influencees (this neighborhood walk is
    // TI's online cost driver).
    for (text::UserId m : influencees_[static_cast<size_t>(i)]) {
      if (m == i2) continue;
      indirect += DirectInfluence(i, m, k) * DirectInfluence(m, i2, k);
    }
    // TI weights influence by the receiving user's own topical interest
    // (learned by the topic model over her history), as a secondary factor.
    double w = config_.candidate_interest_weight;
    double candidate_interest =
        (1.0 - w) + w * lda_->estimates().Theta(i2, k) * K;
    score += pk * candidate_interest *
             ((1.0 - gamma) * direct + gamma * indirect);
  }
  return score;
}

}  // namespace cold::baselines
