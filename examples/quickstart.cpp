// Quickstart: the full COLD workflow in ~60 lines.
//
//   1. get a social dataset (here: the synthetic Weibo-like generator);
//   2. train the COLD collapsed Gibbs sampler jointly on text, time and
//      the interaction network;
//   3. inspect the extracted communities and topics;
//   4. predict diffusion: will user B retweet user A's next post?
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/cold.h"
#include "data/synthetic.h"
#include "util/logging.h"

int main() {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  // 1. A small synthetic social network: 400 users, 6 communities,
  //    10 topics, ~5K time-stamped posts plus retweet-derived links.
  data::SyntheticConfig data_config;
  data_config.num_users = 400;
  data_config.num_communities = 6;
  data_config.num_topics = 10;
  data_config.num_time_slices = 24;
  auto dataset_result = data::SyntheticSocialGenerator(data_config).Generate();
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "%s\n", dataset_result.status().ToString().c_str());
    return 1;
  }
  data::SocialDataset dataset = std::move(dataset_result).ValueOrDie();

  // 2. Train COLD.
  core::ColdConfig config;
  config.num_communities = 6;
  config.num_topics = 10;
  config.rho = 0.5;      // membership smoothing for ~12 posts/user
  config.alpha = 0.5;
  config.kappa = 10.0;   // negative-link prior weight
  config.iterations = 120;
  config.burn_in = 90;
  core::ColdGibbsSampler sampler(config, dataset.posts, &dataset.interactions);
  if (auto st = sampler.Init(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = sampler.Train(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  core::ColdEstimates estimates = sampler.AveragedEstimates();

  // 3. What did the model find?
  std::printf("--- extracted topics (top words) ---\n");
  for (int k = 0; k < 3; ++k) {
    std::printf("topic %d:", k);
    for (int w : estimates.TopWords(k, 6)) {
      std::printf(" %s", dataset.vocabulary.word(w).c_str());
    }
    std::printf("\n");
  }
  std::printf("--- community 0 interests (theta) ---\n");
  for (int k = 0; k < estimates.K; ++k) {
    if (estimates.Theta(0, k) > 0.05) {
      std::printf("  topic %d: %.3f\n", k, estimates.Theta(0, k));
    }
  }

  // 4. Diffusion prediction (Eqs 5-7): score candidate retweeters of a
  //    fresh post by user 0 built from topic-0 words.
  core::ColdPredictor predictor(estimates, /*top_communities=*/5);
  std::vector<text::WordId> message = {0, 1, 2, 3};
  std::printf("--- P(user u retweets user 0's post) ---\n");
  for (text::UserId u = 1; u <= 5; ++u) {
    std::printf("  user %d: %.5f\n", u,
                predictor.DiffusionProbability(0, u, message));
  }
  std::printf("predicted posting slice for this message: %d of %d\n",
              predictor.PredictTimestamp(message, 0),
              dataset.num_time_slices());
  return 0;
}
