#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cold.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/math_util.h"

namespace cold::core {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 150;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 12;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 10.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 8;
  config.seed = 11;
  return config;
}

const data::SocialDataset& TestData() {
  static const data::SocialDataset* dataset = [] {
    data::SyntheticSocialGenerator gen(TestDataConfig());
    return new data::SocialDataset(std::move(gen.Generate()).ValueOrDie());
  }();
  return *dataset;
}

ColdConfig TestModelConfig() {
  ColdConfig config;
  config.num_communities = 4;
  config.num_topics = 6;
  config.iterations = 60;
  config.burn_in = 40;
  config.sample_lag = 5;
  config.seed = 17;
  // The paper's rho = 50/C targets Weibo-scale user activity; at this test
  // scale (~10 posts/user) it would swamp the membership signal.
  config.rho = 0.5;
  return config;
}

// ------------------------------------------------------------ ColdConfig --

TEST(ColdConfigTest, DefaultsResolve) {
  ColdConfig config;
  config.num_communities = 25;
  config.num_topics = 50;
  EXPECT_DOUBLE_EQ(config.ResolvedRho(), 2.0);
  EXPECT_DOUBLE_EQ(config.ResolvedAlpha(), 1.0);
  config.rho = 0.3;
  EXPECT_DOUBLE_EQ(config.ResolvedRho(), 0.3);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ColdConfigTest, RejectsBadValues) {
  ColdConfig config;
  config.num_communities = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ColdConfig();
  config.burn_in = config.iterations;
  EXPECT_FALSE(config.Validate().ok());
  config = ColdConfig();
  config.beta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = ColdConfig();
  config.top_communities = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ColdConfigTest, Lambda0FromNegativeLinks) {
  ColdConfig config;
  config.num_communities = 10;
  // 1000 users, 5000 links: n_neg ~ 1e6, ratio ~ 1e4, ln ~ 9.2.
  double lambda0 = ComputeLambda0(config, 1000, 5000);
  EXPECT_NEAR(lambda0, std::log((1000.0 * 999 - 5000) / 100.0), 1e-9);
  // Dense tiny graph: floored at lambda1.
  EXPECT_DOUBLE_EQ(ComputeLambda0(config, 3, 6), config.lambda1);
}

// ------------------------------------------------------------- ColdState --

TEST(ColdStateTest, StartsZeroed) {
  ColdState state(5, 3, 4, 6, 10, 7, 2);
  EXPECT_EQ(state.n_ic(4, 2), 0);
  EXPECT_EQ(state.n_ck(2, 3), 0);
  EXPECT_EQ(state.n_ckt(2, 3, 5), 0);
  EXPECT_EQ(state.n_kv(3, 9), 0);
  EXPECT_EQ(state.n_cc(2, 2), 0);
  EXPECT_EQ(state.post_community.size(), 7u);
  EXPECT_EQ(state.link_src_community.size(), 2u);
}

// ----------------------------------------------------------- Gibbs basics --

TEST(GibbsSamplerTest, InitValidates) {
  const auto& ds = TestData();
  ColdConfig bad = TestModelConfig();
  bad.num_topics = 0;
  ColdGibbsSampler sampler(bad, ds.posts, &ds.interactions);
  EXPECT_FALSE(sampler.Init().ok());

  text::PostStore unfinalized;
  ColdGibbsSampler sampler2(TestModelConfig(), unfinalized, nullptr);
  EXPECT_FALSE(sampler2.Init().ok());
}

TEST(GibbsSamplerTest, TrainRequiresInit) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(TestModelConfig(), ds.posts, &ds.interactions);
  EXPECT_EQ(sampler.Train().code(), cold::StatusCode::kFailedPrecondition);
}

TEST(GibbsSamplerTest, CountersConsistentAfterInit) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  EXPECT_TRUE(sampler.state()
                  .CheckInvariants(ds.posts, &ds.interactions, true)
                  .ok());
}

TEST(GibbsSamplerTest, CountersConsistentAfterSweeps) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  for (int it = 0; it < 3; ++it) sampler.RunIteration();
  auto status =
      sampler.state().CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(GibbsSamplerTest, CountersConsistentWithJointLinkSampling) {
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.link_sampling = LinkSampling::kJoint;
  ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  sampler.RunIteration();
  EXPECT_TRUE(sampler.state()
                  .CheckInvariants(ds.posts, &ds.interactions, true)
                  .ok());
}

TEST(GibbsSamplerTest, CountersConsistentWithAlternatingLinkSampling) {
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.link_sampling = LinkSampling::kAlternating;
  ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  sampler.RunIteration();
  EXPECT_TRUE(sampler.state()
                  .CheckInvariants(ds.posts, &ds.interactions, true)
                  .ok());
}

TEST(GibbsSamplerTest, NoLinkModeIgnoresNetwork) {
  const auto& ds = TestData();
  ColdConfig config = TestModelConfig();
  config.use_network = false;
  ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  sampler.RunIteration();
  auto status = sampler.state().CheckInvariants(ds.posts, nullptr, false);
  EXPECT_TRUE(status.ok()) << status.ToString();
  // No link assignments were made.
  EXPECT_TRUE(sampler.state().link_src_community.empty());
}

TEST(GibbsSamplerTest, LikelihoodImprovesOverTraining) {
  const auto& ds = TestData();
  ColdGibbsSampler sampler(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  double ll_initial = sampler.TrainingLogLikelihood();
  for (int it = 0; it < 25; ++it) sampler.RunIteration();
  double ll_trained = sampler.TrainingLogLikelihood();
  EXPECT_GT(ll_trained, ll_initial);
}

TEST(GibbsSamplerTest, DeterministicForFixedSeed) {
  const auto& ds = TestData();
  ColdGibbsSampler a(TestModelConfig(), ds.posts, &ds.interactions);
  ColdGibbsSampler b(TestModelConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int it = 0; it < 5; ++it) {
    a.RunIteration();
    b.RunIteration();
  }
  EXPECT_EQ(a.state().post_topic, b.state().post_topic);
  EXPECT_EQ(a.state().post_community, b.state().post_community);
  EXPECT_EQ(a.state().link_src_community, b.state().link_src_community);
}

// --------------------------------------------------------------- Estimates --

class TrainedCold : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& ds = TestData();
    sampler_ = new ColdGibbsSampler(TestModelConfig(), ds.posts,
                                    &ds.interactions);
    ASSERT_TRUE(sampler_->Init().ok());
    ASSERT_TRUE(sampler_->Train().ok());
    estimates_ = new ColdEstimates(sampler_->AveragedEstimates());
  }
  static void TearDownTestSuite() {
    delete estimates_;
    delete sampler_;
    estimates_ = nullptr;
    sampler_ = nullptr;
  }

  static ColdGibbsSampler* sampler_;
  static ColdEstimates* estimates_;
};

ColdGibbsSampler* TrainedCold::sampler_ = nullptr;
ColdEstimates* TrainedCold::estimates_ = nullptr;

TEST_F(TrainedCold, EstimatesAreNormalizedDistributions) {
  const ColdEstimates& est = *estimates_;
  for (int i = 0; i < est.U; i += 13) {
    double total = 0.0;
    for (int c = 0; c < est.C; ++c) total += est.Pi(i, c);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int c = 0; c < est.C; ++c) {
    double total = 0.0;
    for (int k = 0; k < est.K; ++k) total += est.Theta(c, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int k = 0; k < est.K; ++k) {
    double total = 0.0;
    for (int v = 0; v < est.V; ++v) total += est.Phi(k, v);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (int c = 0; c < est.C; ++c) {
      double pt = 0.0;
      for (int t = 0; t < est.T; ++t) pt += est.Psi(k, c, t);
      EXPECT_NEAR(pt, 1.0, 1e-9);
    }
  }
  // eta entries are probabilities.
  for (int c = 0; c < est.C; ++c) {
    for (int c2 = 0; c2 < est.C; ++c2) {
      EXPECT_GT(est.Eta(c, c2), 0.0);
      EXPECT_LT(est.Eta(c, c2), 1.0);
    }
  }
}

TEST_F(TrainedCold, ZetaMatchesDefinition) {
  const ColdEstimates& est = *estimates_;
  for (int k = 0; k < est.K; ++k) {
    for (int c = 0; c < est.C; ++c) {
      for (int c2 = 0; c2 < est.C; ++c2) {
        EXPECT_DOUBLE_EQ(est.Zeta(k, c, c2),
                         est.Theta(c, k) * est.Theta(c2, k) * est.Eta(c, c2));
      }
    }
  }
}

TEST_F(TrainedCold, RecoversPlantedTopics) {
  // Every planted topic should align with some learned topic: cosine
  // similarity of word distributions above 0.5 (random pairs score ~0.05).
  const auto& truth = TestData().truth;
  const ColdEstimates& est = *estimates_;
  int matched = 0;
  for (size_t kt = 0; kt < truth.phi.size(); ++kt) {
    double best = 0.0;
    for (int k = 0; k < est.K; ++k) {
      std::vector<double> learned(static_cast<size_t>(est.V));
      for (int v = 0; v < est.V; ++v) learned[static_cast<size_t>(v)] = est.Phi(k, v);
      best = std::max(best, cold::CosineSimilarity(truth.phi[kt], learned));
    }
    if (best > 0.5) ++matched;
  }
  EXPECT_GE(matched, static_cast<int>(truth.phi.size()) - 1)
      << "planted topics not recovered";
}

TEST_F(TrainedCold, RecoversCommunitiesBetterThanChance) {
  // Learned memberships should separate users grouped by their planted
  // dominant community: same-planted-community user pairs must look more
  // similar (cosine of pi rows) than different-community pairs.
  const auto& ds = TestData();
  const ColdEstimates& est = *estimates_;
  auto dominant = [&](int i) {
    const auto& row = ds.truth.pi[static_cast<size_t>(i)];
    return static_cast<int>(std::max_element(row.begin(), row.end()) -
                            row.begin());
  };
  auto pi_row = [&](int i) {
    std::vector<double> row(static_cast<size_t>(est.C));
    for (int c = 0; c < est.C; ++c) row[static_cast<size_t>(c)] = est.Pi(i, c);
    return row;
  };
  double same_total = 0.0, diff_total = 0.0;
  int same_n = 0, diff_n = 0;
  for (int i = 0; i < est.U; i += 3) {
    for (int j = i + 1; j < est.U; j += 7) {
      auto a = pi_row(i);
      auto b = pi_row(j);
      double sim = cold::CosineSimilarity(a, b);
      if (dominant(i) == dominant(j)) {
        same_total += sim;
        ++same_n;
      } else {
        diff_total += sim;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_GT(same_total / same_n, diff_total / diff_n + 0.1);
}

TEST_F(TrainedCold, TopHelpersReturnOrderedResults) {
  const ColdEstimates& est = *estimates_;
  auto words = est.TopWords(0, 5);
  ASSERT_EQ(words.size(), 5u);
  for (size_t i = 1; i < words.size(); ++i) {
    EXPECT_GE(est.Phi(0, words[i - 1]), est.Phi(0, words[i]));
  }
  auto comms = est.TopCommunitiesForUser(0, est.C);
  ASSERT_EQ(comms.size(), static_cast<size_t>(est.C));
  for (size_t i = 1; i < comms.size(); ++i) {
    EXPECT_GE(est.Pi(0, comms[i - 1]), est.Pi(0, comms[i]));
  }
}

TEST(ColdEstimatesTest, AccumulateAndScale) {
  ColdEstimates a, b;
  a.U = b.U = 1;
  a.C = b.C = 2;
  a.K = b.K = 1;
  a.T = b.T = 1;
  a.V = b.V = 1;
  a.pi = {0.2, 0.8};
  b.pi = {0.4, 0.6};
  a.theta = {1.0, 1.0};
  b.theta = {1.0, 1.0};
  a.eta = {0.1, 0.1, 0.1, 0.1};
  b.eta = a.eta;
  a.phi = {1.0};
  b.phi = {1.0};
  a.psi = {1.0, 1.0};
  b.psi = {1.0, 1.0};
  ASSERT_TRUE(a.Accumulate(b).ok());
  a.Scale(0.5);
  EXPECT_NEAR(a.pi[0], 0.3, 1e-12);
  EXPECT_NEAR(a.pi[1], 0.7, 1e-12);

  ColdEstimates mismatched = b;
  mismatched.C = 3;
  EXPECT_FALSE(a.Accumulate(mismatched).ok());
}

}  // namespace
}  // namespace cold::core
