// Point estimates of the collapsed distributions (Appendix A) and the
// community-level diffusion quantities derived from them (§5.1).
#pragma once

#include <vector>

#include "util/status.h"

namespace cold::core {

/// \brief Estimated model parameters: pi, theta, eta, phi, psi.
///
/// Flat row-major storage; accessors mirror the paper's subscripts. Produced
/// from a single Gibbs sample or averaged across post-burn-in samples.
struct ColdEstimates {
  int U = 0, C = 0, K = 0, T = 0, V = 0;

  /// pi[i*C + c]: user i's membership in community c.
  std::vector<double> pi;
  /// theta[c*K + k]: community c's interest in topic k.
  std::vector<double> theta;
  /// eta[c*C + c']: general influence of community c on c'.
  std::vector<double> eta;
  /// phi[k*V + v]: topic k's word distribution.
  std::vector<double> phi;
  /// psi[(k*C + c)*T + t]: popularity of topic k in community c at time t.
  std::vector<double> psi;

  double Pi(int i, int c) const { return pi[static_cast<size_t>(i) * C + c]; }
  double Theta(int c, int k) const {
    return theta[static_cast<size_t>(c) * K + k];
  }
  double Eta(int c, int c2) const {
    return eta[static_cast<size_t>(c) * C + c2];
  }
  double Phi(int k, int v) const {
    return phi[static_cast<size_t>(k) * V + v];
  }
  double Psi(int k, int c, int t) const {
    return psi[(static_cast<size_t>(k) * C + c) * T + t];
  }

  /// \brief Topic-sensitive inter-community influence, Eq. (4):
  /// zeta_kcc' = theta_ck * theta_c'k * eta_cc'.
  double Zeta(int k, int c, int c2) const {
    return Theta(c, k) * Theta(c2, k) * Eta(c, c2);
  }

  /// psi_kc as a contiguous span (length T).
  std::vector<double> PsiSeries(int k, int c) const {
    auto begin = psi.begin() +
                 static_cast<long>((static_cast<size_t>(k) * C + c) * T);
    return std::vector<double>(begin, begin + T);
  }

  /// \brief Indices of the `n` highest-probability words of topic k
  /// (Fig. 8 word clouds).
  std::vector<int> TopWords(int k, int n) const;

  /// \brief Indices of the `n` communities most interested in topic k.
  std::vector<int> TopCommunitiesForTopic(int k, int n) const;

  /// \brief TopComm(i): the user's `n` strongest communities by pi (§5.2).
  std::vector<int> TopCommunitiesForUser(int i, int n) const;

  /// \brief Element-wise accumulate (for sample averaging); dimensions must
  /// match.
  cold::Status Accumulate(const ColdEstimates& other);

  /// \brief Divides every parameter by `n` (finishing an average).
  void Scale(double inv_n);
};

/// \brief Non-owning view over the five parameter arrays.
///
/// The serving layer predicts straight out of an mmap'd snapshot arena, so
/// the prediction code cannot assume the parameters live in std::vectors.
/// This is the common currency: dims plus raw pointers, with the same
/// accessor names as ColdEstimates. Implicitly constructible from
/// ColdEstimates so existing owned-model call sites keep working; whoever
/// hands out a view is responsible for keeping the backing storage alive.
struct EstimatesView {
  int U = 0, C = 0, K = 0, T = 0, V = 0;
  const double* pi = nullptr;
  const double* theta = nullptr;
  const double* eta = nullptr;
  const double* phi = nullptr;
  const double* psi = nullptr;

  EstimatesView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate implicit bridge.
  EstimatesView(const ColdEstimates& e)
      : U(e.U), C(e.C), K(e.K), T(e.T), V(e.V),
        pi(e.pi.data()), theta(e.theta.data()), eta(e.eta.data()),
        phi(e.phi.data()), psi(e.psi.data()) {}

  double Pi(int i, int c) const { return pi[static_cast<size_t>(i) * C + c]; }
  double Theta(int c, int k) const {
    return theta[static_cast<size_t>(c) * K + k];
  }
  double Eta(int c, int c2) const {
    return eta[static_cast<size_t>(c) * C + c2];
  }
  double Phi(int k, int v) const {
    return phi[static_cast<size_t>(k) * V + v];
  }
  double Psi(int k, int c, int t) const {
    return psi[(static_cast<size_t>(k) * C + c) * T + t];
  }
  double Zeta(int k, int c, int c2) const {
    return Theta(c, k) * Theta(c2, k) * Eta(c, c2);
  }
};

}  // namespace cold::core
