#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace cold::obs {

namespace {

// The handler records raw frames only; everything else waits for Stop().
struct RawSample {
  int nframes = 0;
  int tid = 0;
};

struct ProfilerState {
  ProfilerOptions options;
  // frames[i * options.max_frames + j] = frame j of sample i.
  std::vector<void*> frames;
  std::vector<RawSample> samples;
  std::atomic<int64_t> cursor{0};   // slots handed out (may exceed capacity)
  std::atomic<int64_t> dropped{0};
  timer_t timer{};
  bool timer_armed = false;
  struct sigaction previous_action {};
};

// Lifetime: allocated by Start(), read by the signal handler while
// g_active, deleted by Stop() after g_active is cleared and in-flight
// handlers have drained (SIGPROF is process-CPU-clock driven; once the
// timer is deleted and the old disposition restored, no new handler can
// start, and we give stragglers a grace period below).
std::atomic<bool> g_active{false};
ProfilerState* g_state = nullptr;
std::mutex g_session_mutex;  // serializes Start/Stop pairs

// The handler and the trampoline above it appear at the top of every
// backtrace; they are noise, so we capture into a scratch area and skip
// them. Two frames covers SampleHandler + the kernel's signal trampoline
// (__restore_rt) on linux/gcc.
constexpr int kSkipFrames = 2;
constexpr int kScratchFrames = 64;

void SampleHandler(int, siginfo_t*, void*) {
  if (!g_active.load(std::memory_order_acquire)) return;
  ProfilerState* state = g_state;
  if (state == nullptr) return;
  int saved_errno = errno;
  int64_t slot = state->cursor.fetch_add(1, std::memory_order_relaxed);
  if (slot >= static_cast<int64_t>(state->options.max_samples)) {
    state->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  void* scratch[kScratchFrames];
  int captured = backtrace(scratch, kScratchFrames);
  int skip = captured > kSkipFrames ? kSkipFrames : 0;
  int keep = captured - skip;
  if (keep > state->options.max_frames) keep = state->options.max_frames;
  void** dest = state->frames.data() +
                static_cast<size_t>(slot) * state->options.max_frames;
  for (int i = 0; i < keep; ++i) dest[i] = scratch[skip + i];
  RawSample& sample = state->samples[static_cast<size_t>(slot)];
  sample.nframes = keep;
  sample.tid = static_cast<int>(syscall(SYS_gettid));
  errno = saved_errno;
}

std::string Demangle(const char* mangled) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out(demangled);
    std::free(demangled);
    return out;
  }
  std::free(demangled);
  return mangled;
}

// Resolves a return address to a symbol name, or "" when unresolvable.
// dladdr gives the *containing* symbol; the pc is a return address (one
// past the call), so subtract 1 to stay inside the caller's function when
// the call is its last instruction.
std::string Symbolize(void* pc) {
  Dl_info info;
  void* adjusted = static_cast<char*>(pc) - 1;
  if (dladdr(adjusted, &info) == 0 || info.dli_sname == nullptr) {
    return std::string();
  }
  return Demangle(info.dli_sname);
}

ProfileReport BuildReport(ProfilerState* state) {
  ProfileReport report;
  int64_t handed_out = state->cursor.load(std::memory_order_relaxed);
  int64_t captured = std::min(
      handed_out, static_cast<int64_t>(state->options.max_samples));
  report.dropped = state->dropped.load(std::memory_order_relaxed);

  std::unordered_map<void*, std::string> symbol_cache;
  auto resolve = [&](void* pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, Symbolize(pc)).first;
    }
    return it->second;
  };

  std::map<std::string, ProfileSymbolStat> stats;
  std::vector<const std::string*> names;  // reused per sample, root->leaf
  for (int64_t i = 0; i < captured; ++i) {
    const RawSample& sample = state->samples[static_cast<size_t>(i)];
    if (sample.nframes <= 0) continue;  // handler interrupted mid-write
    report.samples += 1;
    report.samples_by_thread[sample.tid] += 1;

    void** frames =
        state->frames.data() + static_cast<size_t>(i) * state->options.max_frames;
    names.clear();
    // Captured leaf-first; fold root-first. Frames dladdr cannot name
    // (hidden-visibility libm kernels, outlined cold paths) are dropped,
    // so their time lands on the nearest named ancestor — the convention
    // used when symbolization is partial. A fully unresolvable stack
    // folds to "[unknown]".
    for (int f = sample.nframes - 1; f >= 0; --f) {
      const std::string& name = resolve(frames[f]);
      if (!name.empty()) names.push_back(&name);
    }

    if (names.empty()) {
      report.folded["[unknown]"] += 1;
      ProfileSymbolStat& stat = stats["[unknown]"];
      stat.name = "[unknown]";
      stat.total += 1;
      stat.self += 1;
      continue;
    }
    std::string key;
    std::string last_symbol;  // dedup per-sample for `total`
    std::map<std::string, bool> seen_on_stack;
    for (const std::string* name : names) {
      if (!key.empty()) key += ';';
      key += *name;
      if (!seen_on_stack[*name]) {
        seen_on_stack[*name] = true;
        ProfileSymbolStat& stat = stats[*name];
        stat.name = *name;
        stat.total += 1;
      }
      last_symbol = *name;
    }
    report.folded[key] += 1;
    stats[last_symbol].self += 1;
  }

  report.symbols.reserve(stats.size());
  for (auto& [name, stat] : stats) report.symbols.push_back(stat);
  std::sort(report.symbols.begin(), report.symbols.end(),
            [](const ProfileSymbolStat& a, const ProfileSymbolStat& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  return report;
}

}  // namespace

double ProfileReport::AttributedFraction() const {
  if (samples == 0) return 0.0;
  int64_t unattributed = 0;
  for (const auto& [stack, count] : folded) {
    // The leaf is the segment after the last ';'.
    size_t pos = stack.rfind(';');
    std::string leaf = pos == std::string::npos ? stack : stack.substr(pos + 1);
    if (leaf == "[unknown]") unattributed += count;
  }
  return static_cast<double>(samples - unattributed) /
         static_cast<double>(samples);
}

void ProfileReport::WriteFolded(std::ostream& os) const {
  for (const auto& [stack, count] : folded) {
    os << stack << ' ' << count << '\n';
  }
}

void ProfileReport::PrintTop(std::ostream& os, int n) const {
  os << "profile: " << samples << " samples";
  if (dropped > 0) os << " (" << dropped << " dropped)";
  os << ", " << samples_by_thread.size() << " thread(s), "
     << std::fixed << std::setprecision(1) << AttributedFraction() * 100.0
     << "% attributed\n";
  if (samples == 0) return;
  os << std::setw(8) << "self" << std::setw(8) << "self%" << std::setw(8)
     << "total" << std::setw(8) << "total%" << "  symbol\n";
  int rows = 0;
  for (const ProfileSymbolStat& stat : symbols) {
    if (rows++ >= n) break;
    os << std::setw(8) << stat.self << std::setw(7) << std::setprecision(1)
       << 100.0 * static_cast<double>(stat.self) /
              static_cast<double>(samples)
       << '%' << std::setw(8) << stat.total << std::setw(7)
       << std::setprecision(1)
       << 100.0 * static_cast<double>(stat.total) /
              static_cast<double>(samples)
       << '%' << "  " << stat.name << '\n';
  }
  os.unsetf(std::ios_base::floatfield);
}

cold::Status Profiler::Start(const ProfilerOptions& options) {
  if (options.sample_hz <= 0 || options.max_samples == 0 ||
      options.max_frames <= 0 || options.max_frames > kScratchFrames) {
    return cold::Status::InvalidArgument("bad profiler options");
  }
  std::lock_guard<std::mutex> lock(g_session_mutex);
  if (g_active.load(std::memory_order_acquire)) {
    return cold::Status::FailedPrecondition("profiler already running");
  }

  // backtrace's first call may dlopen/malloc (libgcc unwinder init): do it
  // now, outside the signal handler.
  void* warm[4];
  backtrace(warm, 4);

  auto state = std::make_unique<ProfilerState>();
  state->options = options;
  state->frames.assign(options.max_samples * options.max_frames, nullptr);
  state->samples.assign(options.max_samples, RawSample{});

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &SampleHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &state->previous_action) != 0) {
    return cold::Status::Internal("sigaction(SIGPROF) failed");
  }

  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &event, &state->timer) != 0) {
    sigaction(SIGPROF, &state->previous_action, nullptr);
    return cold::Status::Internal("timer_create failed: " +
                                  std::string(std::strerror(errno)));
  }
  state->timer_armed = true;

  long interval_ns = 1000000000L / options.sample_hz;
  if (interval_ns < 1) interval_ns = 1;
  struct itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;

  g_state = state.release();
  g_active.store(true, std::memory_order_release);

  if (timer_settime(g_state->timer, 0, &spec, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    timer_delete(g_state->timer);
    sigaction(SIGPROF, &g_state->previous_action, nullptr);
    delete g_state;
    g_state = nullptr;
    return cold::Status::Internal("timer_settime failed");
  }
  return cold::Status::OK();
}

ProfileReport Profiler::Stop() {
  std::lock_guard<std::mutex> lock(g_session_mutex);
  if (!g_active.load(std::memory_order_acquire) || g_state == nullptr) {
    return ProfileReport{};
  }
  ProfilerState* state = g_state;
  // Disarm first so no new signals fire, then tell in-flight handlers to
  // bail, then restore the old disposition.
  struct itimerspec disarm;
  std::memset(&disarm, 0, sizeof(disarm));
  timer_settime(state->timer, 0, &disarm, nullptr);
  g_active.store(false, std::memory_order_release);
  timer_delete(state->timer);
  state->timer_armed = false;
  sigaction(SIGPROF, &state->previous_action, nullptr);
  // Grace period for a handler that loaded g_state just before g_active
  // flipped: it only touches the buffers, which stay alive until delete.
  struct timespec nap = {0, 2000000};  // 2ms
  nanosleep(&nap, nullptr);

  ProfileReport report = BuildReport(state);
  g_state = nullptr;
  delete state;
  return report;
}

bool Profiler::running() { return g_active.load(std::memory_order_acquire); }

ProfileScope::ProfileScope(ProfileScopeOptions options)
    : options_(std::move(options)) {
  cold::Status status = Profiler::Start(options_.profiler);
  if (!status.ok()) {
    COLD_LOG(kWarning) << "profiler not started: " << status.ToString();
    return;
  }
  active_ = true;
}

ProfileScope::~ProfileScope() {
  if (!active_) return;
  ProfileReport report = Profiler::Stop();
  if (!options_.out_path.empty()) {
    std::ofstream out(options_.out_path);
    if (!out) {
      COLD_LOG(kError) << "cannot write profile to " << options_.out_path;
    } else {
      report.WriteFolded(out);
      COLD_LOG(kInfo) << "profile: " << report.samples << " samples ("
                      << report.folded.size() << " stacks) -> "
                      << options_.out_path;
    }
  }
  if (options_.print_top > 0) {
    report.PrintTop(std::cout, options_.print_top);
  }
}

namespace {

ProfileScope* g_env_scope = nullptr;

void StopEnvProfiler() {
  delete g_env_scope;
  g_env_scope = nullptr;
}

}  // namespace

void StartProfilerFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("COLD_PROFILE");
    if (path == nullptr || *path == '\0') return;
    ProfileScopeOptions options;
    options.out_path = path;
    if (const char* hz = std::getenv("COLD_PROFILE_HZ")) {
      int parsed = std::atoi(hz);
      if (parsed > 0) options.profiler.sample_hz = parsed;
    }
    g_env_scope = new ProfileScope(std::move(options));
    std::atexit(&StopEnvProfiler);
  });
}

}  // namespace cold::obs
