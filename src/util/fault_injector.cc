#include "util/fault_injector.h"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "util/logging.h"

namespace cold {

namespace {

/// Strict non-negative integer parse of the whole token.
bool ParseCount(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || *end != '\0' || n < 0) return false;
  *out = static_cast<int64_t>(n);
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

cold::Status FaultInjector::Configure(const std::string& spec) {
  Disarm();
  if (spec.empty()) return cold::Status::OK();
  std::vector<Entry> entries;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;

    Entry entry;
    entry.signal = SIGKILL;
    // Optional "@<rank>" scope suffix.
    if (size_t at = item.rfind('@'); at != std::string::npos) {
      int64_t rank = -1;
      if (!ParseCount(item.substr(at + 1), &rank)) {
        return cold::Status::InvalidArgument(
            "fault spec rank scope must be '@<non-negative rank>', got '" +
            item + "'");
      }
      entry.rank = static_cast<int>(rank);
      item.resize(at);
    }
    // Optional ":kill" / ":stop" action suffix.
    if (item.size() > 5 && item.compare(item.size() - 5, 5, ":kill") == 0) {
      item.resize(item.size() - 5);
    } else if (item.size() > 5 &&
               item.compare(item.size() - 5, 5, ":stop") == 0) {
      entry.signal = SIGSTOP;
      item.resize(item.size() - 5);
    }
    size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      Disarm();
      return cold::Status::InvalidArgument(
          "fault spec must be '<point>:<n>[:kill|stop][@rank]', got '" +
          item + "'");
    }
    if (!ParseCount(item.substr(colon + 1), &entry.n)) {
      Disarm();
      return cold::Status::InvalidArgument(
          "fault spec count must be a non-negative integer, got '" + item +
          "'");
    }
    entry.point = item.substr(0, colon);
    entries.push_back(std::move(entry));
  }
  entries_ = std::move(entries);
  return cold::Status::OK();
}

void FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("COLD_FAULT_POINT");
  if (spec == nullptr) return;
  if (auto st = Configure(spec); !st.ok()) {
    COLD_LOG(kWarning) << "ignoring COLD_FAULT_POINT: " << st.ToString();
  } else if (armed()) {
    COLD_LOG(kWarning) << "fault injection armed: " << spec;
  }
}

void FaultInjector::Disarm() { entries_.clear(); }

void FaultInjector::SetNodeRank(int rank) {
  const char* fault_node = std::getenv("COLD_FAULT_NODE");
  std::vector<Entry> kept;
  for (Entry& entry : entries_) {
    const bool matches =
        entry.rank >= 0
            ? entry.rank == rank
            : (fault_node == nullptr || std::to_string(rank) == fault_node);
    if (matches) kept.push_back(std::move(entry));
  }
  entries_ = std::move(kept);
}

void FaultInjector::MaybeCrash(const char* point, int64_t n) {
  if (entries_.empty()) return;
  for (const Entry& entry : entries_) {
    if (entry.n != n || entry.point != point) continue;
    if (entry.signal == SIGSTOP) {
      // Freeze exactly here — a livelocked/hung peer. The process resumes
      // only on SIGCONT (or dies to a supervisor's SIGKILL), so execution
      // may continue past this point after a resume.
      ::raise(SIGSTOP);
      return;
    }
    // The whole purpose is to die exactly like `kill -9`: no destructors,
    // no buffered-IO flushes, no atexit handlers.
    ::raise(SIGKILL);
    // SIGKILL cannot be caught, but be paranoid about exotic platforms.
    ::_exit(137);
  }
}

}  // namespace cold
