file(REMOVE_RECURSE
  "CMakeFiles/cold_predict.dir/cold_predict.cc.o"
  "CMakeFiles/cold_predict.dir/cold_predict.cc.o.d"
  "cold_predict"
  "cold_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
