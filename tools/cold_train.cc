// cold_train — trains COLD on a dataset directory (the data/serialize.h
// layout) and writes the fitted estimates to a binary model file.
//
// Usage: cold_train <dataset-dir> <model-out> [C=8] [K=12] [iterations=150]
//                   [--parallel [nodes]]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cold.h"
#include "core/model_io.h"
#include "data/serialize.h"
#include "util/logging.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace cold;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <dataset-dir> <model-out> [C=8] [K=12] "
                 "[iterations=150] [--parallel [nodes=4]]\n",
                 argv[0]);
    return 2;
  }
  bool parallel = false;
  int nodes = 4;
  int positional[3] = {8, 12, 150};
  int pos = 0;
  for (int a = 3; a < argc; ++a) {
    if (std::strcmp(argv[a], "--parallel") == 0) {
      parallel = true;
      if (a + 1 < argc && std::atoi(argv[a + 1]) > 0) {
        nodes = std::atoi(argv[++a]);
      }
    } else if (pos < 3) {
      positional[pos++] = std::atoi(argv[a]);
    }
  }

  auto dataset_result = data::LoadDataset(argv[1]);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  data::SocialDataset dataset = std::move(dataset_result).ValueOrDie();
  std::printf("loaded %d users, %d posts, %lld links\n", dataset.num_users(),
              dataset.posts.num_posts(),
              static_cast<long long>(dataset.interactions.num_edges()));

  core::ColdConfig config;
  config.num_communities = positional[0];
  config.num_topics = positional[1];
  config.iterations = positional[2];
  config.burn_in = config.iterations * 3 / 4;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.kappa = 10.0;
  if (auto st = config.Validate(); !st.ok()) {
    std::fprintf(stderr, "config: %s\n", st.ToString().c_str());
    return 1;
  }

  Stopwatch watch;
  core::ColdEstimates estimates;
  if (parallel) {
    engine::EngineOptions options;
    options.num_nodes = nodes;
    core::ParallelColdTrainer trainer(config, dataset.posts,
                                      &dataset.interactions, options);
    if (auto st = trainer.Init(); !st.ok()) {
      std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
      return 1;
    }
    if (auto st = trainer.Train(); !st.ok()) {
      std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
      return 1;
    }
    estimates = trainer.Estimates();
    std::printf("parallel training (%d simulated nodes): measured %.2fs, "
                "projected cluster wall %.2fs\n",
                nodes, watch.ElapsedSeconds(),
                trainer.SimulatedWallSeconds());
  } else {
    core::ColdGibbsSampler sampler(config, dataset.posts,
                                   &dataset.interactions);
    if (auto st = sampler.Init(); !st.ok()) {
      std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
      return 1;
    }
    if (auto st = sampler.Train(); !st.ok()) {
      std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
      return 1;
    }
    estimates = sampler.AveragedEstimates();
    std::printf("serial training: %.2fs\n", watch.ElapsedSeconds());
  }

  if (auto st = core::SaveEstimates(estimates, argv[2]); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s (U=%d C=%d K=%d T=%d V=%d)\n", argv[2],
              estimates.U, estimates.C, estimates.K, estimates.T,
              estimates.V);
  return 0;
}
