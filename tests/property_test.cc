// Parameterized property tests: invariants that must hold across whole
// configuration grids, not just single examples.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cold.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cold {
namespace {

data::SocialDataset MakeTinyDataset(uint64_t seed) {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_time_slices = 8;
  config.core_words_per_topic = 8;
  config.background_words = 30;
  config.posts_per_user = 6.0;
  config.words_per_post = 6.0;
  config.follows_per_user = 5;
  config.seed = seed;
  return std::move(data::SyntheticSocialGenerator(config).Generate())
      .ValueOrDie();
}

const data::SocialDataset& TinyDataset() {
  static const data::SocialDataset* ds =
      new data::SocialDataset(MakeTinyDataset(5));
  return *ds;
}

// ------------------------------------------------- Gibbs invariant sweep --

struct GibbsCase {
  int C;
  int K;
  bool use_network;
  core::LinkSampling link_sampling;
};

class GibbsSweep : public ::testing::TestWithParam<GibbsCase> {};

TEST_P(GibbsSweep, CountersStayConsistentAndEstimatesNormalize) {
  const GibbsCase& p = GetParam();
  const auto& ds = TinyDataset();
  core::ColdConfig config;
  config.num_communities = p.C;
  config.num_topics = p.K;
  config.use_network = p.use_network;
  config.link_sampling = p.link_sampling;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.iterations = 4;
  config.burn_in = 2;
  config.sample_lag = 1;
  config.seed = 23;

  core::ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  ASSERT_TRUE(sampler.Train().ok());
  auto status = sampler.state().CheckInvariants(
      ds.posts, p.use_network ? &ds.interactions : nullptr, p.use_network);
  EXPECT_TRUE(status.ok()) << status.ToString();

  core::ColdEstimates est = sampler.AveragedEstimates();
  for (int i = 0; i < est.U; i += 7) {
    double total = 0.0;
    for (int c = 0; c < est.C; ++c) total += est.Pi(i, c);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int c = 0; c < est.C; ++c) {
    double total = 0.0;
    for (int k = 0; k < est.K; ++k) total += est.Theta(c, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (int k = 0; k < est.K; ++k) {
    double total = 0.0;
    for (int v = 0; v < est.V; ++v) total += est.Phi(k, v);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (int c = 0; c < est.C; ++c) {
      double pt = 0.0;
      for (int t = 0; t < est.T; ++t) pt += est.Psi(k, c, t);
      EXPECT_NEAR(pt, 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GibbsSweep,
    ::testing::Values(
        GibbsCase{1, 1, true, core::LinkSampling::kAuto},
        GibbsCase{1, 4, true, core::LinkSampling::kJoint},
        GibbsCase{3, 1, true, core::LinkSampling::kAlternating},
        GibbsCase{3, 4, true, core::LinkSampling::kJoint},
        GibbsCase{3, 4, true, core::LinkSampling::kAlternating},
        GibbsCase{3, 4, false, core::LinkSampling::kAuto},
        GibbsCase{6, 8, true, core::LinkSampling::kAuto},
        GibbsCase{6, 8, false, core::LinkSampling::kAuto}));

// ---------------------------------------------- Parallel trainer sweep ----

class ParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSweep, InvariantsHoldForAnyNodeCount) {
  int nodes = GetParam();
  const auto& ds = TinyDataset();
  core::ColdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.iterations = 3;
  config.burn_in = 0;
  engine::EngineOptions options;
  options.num_nodes = nodes;
  core::ParallelColdTrainer trainer(config, ds.posts, &ds.interactions,
                                    options);
  ASSERT_TRUE(trainer.Init().ok());
  ASSERT_TRUE(trainer.Train().ok());
  core::ColdState snapshot = trainer.StateSnapshot();
  auto status = snapshot.CheckInvariants(ds.posts, &ds.interactions, true);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(trainer.engine_stats().node_work_units.size(),
            static_cast<size_t>(nodes));
  EXPECT_GT(trainer.SimulatedWallSeconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Nodes, ParallelSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// --------------------------------------------------------- Split sweeps ---

class SplitFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionSweep, PostSplitPartitionsExactly) {
  double fraction = GetParam();
  const auto& ds = TinyDataset();
  int folds = static_cast<int>(std::lround(1.0 / fraction));
  size_t total_test = 0;
  for (int fold = 0; fold < folds; ++fold) {
    data::PostSplit split = data::SplitPosts(ds.posts, fraction, 9, fold);
    EXPECT_EQ(split.train.num_posts() + split.test.num_posts(),
              ds.posts.num_posts());
    total_test += static_cast<size_t>(split.test.num_posts());
  }
  EXPECT_EQ(total_test, static_cast<size_t>(ds.posts.num_posts()));
}

TEST_P(SplitFractionSweep, LinkSplitNeverLeaksPositives) {
  double fraction = GetParam();
  const auto& ds = TinyDataset();
  data::LinkSplit split =
      data::SplitLinks(ds.interactions, fraction, 1.0, 11, 0);
  EXPECT_EQ(split.train.num_edges() +
                static_cast<int64_t>(split.test_positive.size()),
            ds.interactions.num_edges());
  for (const auto& [a, b] : split.test_positive) {
    EXPECT_FALSE(split.train.HasEdge(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionSweep,
                         ::testing::Values(0.1, 0.2, 0.25, 0.5));

// ------------------------------------------------------------ RNG sweeps --

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, MeanAndVarianceMatchTheory) {
  double shape = GetParam();
  RandomSampler sampler(77);
  const int n = 30000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = sampler.Gamma(shape);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, shape, std::max(0.03, shape * 0.05));
  EXPECT_NEAR(var, shape, std::max(0.08, shape * 0.12));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaSweep,
                         ::testing::Values(0.1, 0.3, 1.0, 2.5, 8.0, 30.0));

class DirichletSweep : public ::testing::TestWithParam<int> {};

TEST_P(DirichletSweep, ComponentMeansAreUniform) {
  int dim = GetParam();
  RandomSampler sampler(13);
  std::vector<double> mean(static_cast<size_t>(dim), 0.0);
  const int reps = 4000;
  for (int r = 0; r < reps; ++r) {
    auto x = sampler.SymmetricDirichlet(0.4, dim);
    for (int i = 0; i < dim; ++i) mean[static_cast<size_t>(i)] += x[static_cast<size_t>(i)];
  }
  for (double& m : mean) m /= reps;
  for (double m : mean) EXPECT_NEAR(m, 1.0 / dim, 0.35 / dim);
}

INSTANTIATE_TEST_SUITE_P(Dims, DirichletSweep, ::testing::Values(2, 3, 8, 20));

// ------------------------------------------------------------ AUC sweeps --

class AucSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AucSweep, ComplementAndMonotoneInvariance) {
  RandomSampler sampler(GetParam());
  std::vector<double> pos, neg;
  for (int i = 0; i < 200; ++i) {
    pos.push_back(sampler.Normal() + 0.4);
    neg.push_back(sampler.Normal());
  }
  double auc = eval::RocAuc(pos, neg);
  // Complement: swapping classes reflects around 1/2.
  EXPECT_NEAR(eval::RocAuc(neg, pos), 1.0 - auc, 1e-12);
  // Invariance under strictly monotone transforms.
  auto squash = [](std::vector<double> v) {
    for (double& x : v) x = std::tanh(0.3 * x) * 5.0 + 1e-3 * x;
    return v;
  };
  EXPECT_NEAR(eval::RocAuc(squash(pos), squash(neg)), auc, 1e-12);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------ Categorical property sweeps ---

class CategoricalSweep : public ::testing::TestWithParam<int> {};

TEST_P(CategoricalSweep, NeverDrawsZeroWeightOption) {
  int dim = GetParam();
  RandomSampler sampler(static_cast<uint64_t>(dim) * 31);
  std::vector<double> weights(static_cast<size_t>(dim), 0.0);
  // Only odd indices get mass.
  for (int i = 1; i < dim; i += 2) weights[static_cast<size_t>(i)] = 1.0;
  if (dim == 1) weights[0] = 1.0;
  for (int r = 0; r < 2000; ++r) {
    int pick = sampler.Categorical(weights);
    EXPECT_GT(weights[static_cast<size_t>(pick)], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CategoricalSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

// ------------------------------------------------------- TopK vs sorting --

class TopKSweep : public ::testing::TestWithParam<int> {};

TEST_P(TopKSweep, MatchesFullSort) {
  int k = GetParam();
  RandomSampler sampler(static_cast<uint64_t>(k) + 100);
  std::vector<double> values(50);
  for (double& v : values) v = sampler.Uniform();
  auto top = TopKIndices(values, k);
  // Reference: stable sort by (value desc, index asc).
  std::vector<int> reference(values.size());
  std::iota(reference.begin(), reference.end(), 0);
  std::stable_sort(reference.begin(), reference.end(), [&](int a, int b) {
    return values[static_cast<size_t>(a)] > values[static_cast<size_t>(b)];
  });
  reference.resize(top.size());
  EXPECT_EQ(top, reference);
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKSweep, ::testing::Values(1, 3, 10, 50, 80));

// ----------------------------------------- Zeta decomposition invariants --

TEST(ZetaProperty, SymmetryAndScaling) {
  // zeta's community symmetry comes only from eta: for fixed k, swapping
  // (c, c') multiplies by eta_c'c / eta_cc'.
  core::ColdEstimates est;
  est.U = 1;
  est.C = 3;
  est.K = 2;
  est.T = 2;
  est.V = 2;
  RandomSampler sampler(3);
  est.pi = sampler.SymmetricDirichlet(1.0, 3);
  est.theta.resize(6);
  for (double& v : est.theta) v = sampler.Uniform(0.05, 1.0);
  est.eta.resize(9);
  for (double& v : est.eta) v = sampler.Uniform(0.01, 0.9);
  est.phi.assign(4, 0.5);
  est.psi.assign(12, 0.5);
  for (int k = 0; k < 2; ++k) {
    for (int c = 0; c < 3; ++c) {
      for (int c2 = 0; c2 < 3; ++c2) {
        double forward = est.Zeta(k, c, c2);
        double backward = est.Zeta(k, c2, c);
        EXPECT_NEAR(forward * est.Eta(c2, c), backward * est.Eta(c, c2),
                    1e-12);
        EXPECT_GE(forward, 0.0);
      }
    }
  }
}

// ------------------------------------------------ Timestamp curve sweep ---

class ToleranceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ToleranceSweep, CurvesAreMonotoneAndBounded) {
  RandomSampler sampler(GetParam());
  std::vector<int> predicted, actual;
  for (int i = 0; i < 300; ++i) {
    predicted.push_back(static_cast<int>(sampler.UniformInt(24)));
    actual.push_back(static_cast<int>(sampler.UniformInt(24)));
  }
  auto curve = eval::ToleranceCurve(predicted, actual, 23);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
    EXPECT_GE(curve[i], 0.0);
    EXPECT_LE(curve[i], 1.0);
  }
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToleranceSweep,
                         ::testing::Values(11u, 22u, 33u));

// --------------------------------------- Generator scaling property sweep --

class GeneratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSweep, OutputsScaleWithUsers) {
  int users = GetParam();
  data::SyntheticConfig config;
  config.num_users = users;
  config.num_communities = 3;
  config.num_topics = 4;
  config.num_time_slices = 8;
  config.core_words_per_topic = 6;
  config.background_words = 20;
  config.posts_per_user = 5.0;
  config.words_per_post = 5.0;
  config.follows_per_user = 4;
  config.seed = 3;
  auto ds = std::move(data::SyntheticSocialGenerator(config).Generate())
                .ValueOrDie();
  EXPECT_EQ(ds.num_users(), users);
  EXPECT_GE(ds.posts.num_posts(), users);
  EXPECT_LE(ds.posts.num_posts(), users * 25);
  // Ground-truth assignments cover every post.
  EXPECT_EQ(ds.truth.post_topic.size(),
            static_cast<size_t>(ds.posts.num_posts()));
  for (int k : ds.truth.post_topic) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSweep,
                         ::testing::Values(20, 60, 150, 400));

}  // namespace
}  // namespace cold
