#include "util/thread_pool.h"

#include <algorithm>

namespace cold {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t num_workers = std::min(workers_.size(), n);
  size_t block = (n + num_workers - 1) / num_workers;
  for (size_t w = 0; w < num_workers; ++w) {
    size_t begin = w * block;
    size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    Submit([&fn, begin, end, w] { fn(begin, end, w); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace cold
