// Figure 13: training-time scalability of the parallel GAS sampler.
//   (a) wall time vs data size at a fixed 4-node cluster — linear shape;
//   (b) wall time vs cluster size on the full set — near-linear speedup;
//   (c) the same node sweep run for real: N distributed trainer nodes
//       (the `cold_train --nodes N` code path, in-process over loopback)
//       with *measured* wall seconds and wire bytes next to the model's
//       projection for the same node count.
// Parts (a) and (b) are SIMULATED: the engine attributes measured compute
// to nodes by work share and adds the §10 ClusterModel's communication
// cost — a projection, labeled as such in every table. Part (c) is the
// real distributed implementation (DESIGN.md §12) and is the ground truth
// the projection is validated against.
#include <memory>
#include <vector>

#include "common.h"
#include "core/parallel_sampler.h"
#include "dist/dist_trainer.h"
#include "util/stopwatch.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader(
      "Fig 13a: training time vs data size (4 simulated nodes)");

  const int iterations = 20;
  engine::ClusterModel cluster;  // 1 GB/s NIC
  cluster.sync_latency_sec = 5e-4;  // sub-ms MPI-style barrier

  auto train = [&](const data::SocialDataset& ds, int nodes,
                   double* sim_seconds) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iterations);
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = nodes;
    core::ParallelColdTrainer trainer(config, ds.posts, &ds.interactions,
                                      options);
    auto st = trainer.Init();
    if (st.ok()) st = trainer.Train();
    if (!st.ok()) {
      std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    *sim_seconds = trainer.SimulatedWallSeconds(cluster);
    return trainer.engine_stats().total_seconds();
  };

  std::printf("%-12s %-10s %-16s %-22s\n", "users", "posts",
              "compute (s)", "simulated wall (s, model)");
  data::SocialDataset base_ds = [] {
    data::SyntheticConfig dc = bench::BenchDataConfig();
    return bench::GenerateBenchData(dc);
  }();
  for (double frac : {0.25, 0.5, 1.0}) {
    data::SyntheticConfig dc = bench::BenchDataConfig();
    dc.num_users = static_cast<int>(dc.num_users * frac);
    data::SocialDataset ds = bench::GenerateBenchData(dc);
    double sim = 0.0;
    double measured = train(ds, 4, &sim);
    std::printf("%-12d %-10d %-16.3f %-22.3f\n", ds.num_users(),
                ds.posts.num_posts(), measured, sim);
  }
  std::printf("(paper shape: time grows linearly with data size; wall\n"
              " seconds above are MODEL PROJECTIONS, not measurements)\n\n");

  bench::PrintHeader(
      "Fig 13b: simulated training time vs #nodes (full dataset)");
  // Fig 13b uses the "whole dataset" (4x the Fig-13a maximum), mirroring the
  // paper's use of the larger crawl for the node sweep.
  data::SyntheticConfig full = bench::BenchDataConfig();
  full.num_users *= 4;
  data::SocialDataset ds = bench::GenerateBenchData(full);
  std::printf("%-8s %-22s %-20s %-12s\n", "nodes", "simulated (s, model)",
              "comm (MB/superstep)", "speedup");
  double base = -1.0;
  for (int nodes : {1, 2, 4, 8}) {
    double sim = 0.0;
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iterations);
    config.burn_in = 0;
    engine::EngineOptions options;
    options.num_nodes = nodes;
    core::ParallelColdTrainer trainer(config, ds.posts, &ds.interactions,
                                      options);
    if (!trainer.Init().ok() || !trainer.Train().ok()) return 1;
    sim = trainer.SimulatedWallSeconds(cluster);
    if (base < 0.0) base = sim;
    double comm_mb = static_cast<double>(trainer.engine_stats().comm_bytes) /
                     trainer.engine_stats().supersteps / 1e6;
    std::printf("%-8d %-22.3f %-20.2f %-12.2f\n", nodes, sim, comm_mb,
                base / sim);
  }
  std::printf("(paper shape: near-linear speedup, flattening as sync and\n"
              " communication costs grow; MODEL PROJECTIONS as above)\n\n");

  bench::PrintHeader(
      "Fig 13c: MEASURED multi-node training time (real dist trainer)");
  // The real thing: N distributed nodes over loopback transports running
  // the sharded delta-merge protocol, next to the model's projection for
  // the same node count. Base Fig-13a dataset so the sweep stays quick.
  std::printf("%-8s %-16s %-22s %-16s %-12s\n", "nodes", "measured (s)",
              "simulated (s, model)", "wire bytes", "barrier (s)");
  for (int num_nodes : {1, 2, 4}) {
    core::ColdConfig config = bench::BenchColdConfig(8, 12, iterations);
    config.burn_in = 0;
    std::vector<std::unique_ptr<dist::DistTrainer>> owned;
    std::vector<dist::DistTrainer*> nodes;
    for (int rank = 0; rank < num_nodes; ++rank) {
      dist::DistConfig dist_config;
      dist_config.num_nodes = num_nodes;
      dist_config.node_rank = rank;
      dist_config.cold = config;
      dist_config.engine.threads_per_node = 1;
      owned.push_back(std::make_unique<dist::DistTrainer>(
          dist_config, base_ds.posts, &base_ds.interactions));
      nodes.push_back(owned.back().get());
    }
    Stopwatch watch;
    auto st = dist::DistTrainer::RunLocalCluster(nodes);
    double measured = watch.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "distributed run failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    double sim = 0.0;
    train(base_ds, num_nodes, &sim);
    const dist::DistStats& stats = nodes[0]->stats();
    std::printf("%-8d %-16.3f %-22.3f %-16lld %-12.4f\n", num_nodes,
                measured, sim,
                static_cast<long long>(stats.bytes_sent +
                                       stats.bytes_received),
                stats.barrier_wait_seconds);
  }
  std::printf("(measured seconds are real wall time of N in-process nodes\n"
              " sharing this host's cores — a protocol-overhead readout,\n"
              " not a cluster-speedup claim on a single-socket machine)\n");
  bench::DumpTelemetryIfRequested();
  return 0;
}
