// Mixed Membership Stochastic Blockmodel (Airoldi et al. 2008), the
// network-only baseline of §6.1. Airoldi's model assigns membership pairs
// to EVERY ordered user pair, present or absent; to stay sub-quadratic we
// keep all positive links and a weighted subsample of absent pairs, the
// standard stochastic treatment of the zeros. (COLD's positive-only Beta
// prior trick is not used here: without a text component to anchor the
// memberships it degenerates — see DESIGN.md §5.)
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::baselines {

struct MmsbConfig {
  int num_communities = 20;
  double rho = -1.0;  // <= 0 means 50/C
  /// Beta prior on each block probability eta_cc'.
  double lambda1 = 0.1;
  double lambda0 = 1.0;
  /// Absent pairs sampled per positive link; their counts are reweighted to
  /// represent all n_neg absent pairs.
  double negatives_per_positive = 5.0;
  int iterations = 100;
  uint64_t seed = 42;

  double ResolvedRho() const {
    return rho > 0 ? rho : 50.0 / num_communities;
  }
};

/// \brief Fitted MMSB parameters.
struct MmsbEstimates {
  int U = 0, C = 0;
  /// pi[i*C + c].
  std::vector<double> pi;
  /// eta[c*C + c'].
  std::vector<double> eta;

  double Pi(int i, int c) const { return pi[static_cast<size_t>(i) * C + c]; }
  double Eta(int c, int c2) const {
    return eta[static_cast<size_t>(c) * C + c2];
  }
};

class MmsbModel {
 public:
  MmsbModel(MmsbConfig config, const graph::Digraph& links, int num_users);

  cold::Status Train();

  const MmsbEstimates& estimates() const { return estimates_; }

  /// P_{i->i'} = sum_{s,s'} pi_is pi_i's' eta_ss' (§6.2).
  double LinkProbability(int i, int i2) const;

  /// The user's top-n communities by membership.
  std::vector<int> TopCommunities(int i, int n) const;

 private:
  MmsbConfig config_;
  const graph::Digraph& links_;
  int num_users_;
  MmsbEstimates estimates_;
};

}  // namespace cold::baselines
