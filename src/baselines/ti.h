// Topic-level Influence (TI; Liu et al., CIKM 2010) — the generative
// individual-level diffusion baseline of §6.1, baseline 7. Topics come from
// LDA; per-topic user-to-user influence is estimated from attributed
// retweet history; indirect (one-hop) influence through intermediaries is
// blended in. Retweet prediction marginalizes the message's topic
// posterior over the influence estimates.
//
// Prediction iterates the publisher's influencees for the indirect term, so
// its online cost grows with the user's neighborhood — the behavior Fig 15
// contrasts with COLD's compact community representation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "baselines/lda.h"
#include "data/social_dataset.h"
#include "text/post_store.h"
#include "util/status.h"

namespace cold::baselines {

struct TiConfig {
  LdaConfig lda;
  /// Additive smoothing mass for influence estimates.
  double smoothing = 1.0;
  /// Weight of the indirect (one-hop) influence term.
  double indirect_weight = 0.2;
  /// Blend between topic-level and general (topic-marginal) pair influence;
  /// TI combines both, and the backoff matters when per-topic pair counts
  /// are sparse.
  double topic_weight = 0.5;
  /// Weight of the receiver's own topical interest factor
  /// ((1-w) + w * K * theta_i'k): TI leans on influence estimates, with the
  /// receiver's interest as a secondary signal.
  double candidate_interest_weight = 0.3;
};

class TiModel {
 public:
  TiModel(TiConfig config, const text::PostStore& posts,
          std::span<const data::RetweetTuple> train_tuples);

  /// \brief Fits LDA, attributes training retweet outcomes to topics, and
  /// builds the per-(pair, topic) influence tables.
  cold::Status Train();

  /// \brief P(i' retweets message `words` published by i): Eq-style
  /// sum_k P(k|d) * [(1-gamma) inf_k(i->i') + gamma sum_m inf_k(i->m)
  /// inf_k(m->i')].
  double Score(text::UserId i, text::UserId i2,
               std::span<const text::WordId> words) const;

  /// Direct topic-level influence estimate inf_k(i -> i2), blended with the
  /// pair's topic-marginal influence as backoff.
  double DirectInfluence(text::UserId i, text::UserId i2, int k) const;

  /// General (topic-marginal) influence of i on i2.
  double PairInfluence(text::UserId i, text::UserId i2) const;

  const LdaModel& lda() const { return *lda_; }

 private:
  static uint64_t PairTopicKey(text::UserId a, text::UserId b, int k) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 40) ^
           (static_cast<uint64_t>(static_cast<uint32_t>(b)) << 16) ^
           static_cast<uint64_t>(static_cast<uint32_t>(k));
  }

  TiConfig config_;
  const text::PostStore& posts_;
  std::span<const data::RetweetTuple> train_tuples_;

  std::unique_ptr<LdaModel> lda_;
  static uint64_t PairKey(text::UserId a, text::UserId b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  /// (publisher, candidate, topic) -> exposure / retweet counts.
  std::unordered_map<uint64_t, int32_t> exposures_;
  std::unordered_map<uint64_t, int32_t> retweets_;
  /// (publisher, candidate) -> topic-marginal counts (backoff level).
  std::unordered_map<uint64_t, int32_t> pair_exposures_;
  std::unordered_map<uint64_t, int32_t> pair_retweets_;
  /// Per-topic base retweet rate (the smoothing target).
  std::vector<double> base_rate_;
  double global_rate_ = 0.05;
  /// influencees[i]: users who retweeted i in training (for the one-hop
  /// indirect term).
  std::vector<std::vector<text::UserId>> influencees_;
};

}  // namespace cold::baselines
