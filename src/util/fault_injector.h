// Crash-injection harness for fault-tolerance testing: an env/flag-armed
// trigger that signals the process at a named code point, so tests and the
// crash/chaos loop scripts can exercise the checkpoint/resume and
// supervised-restart paths against hostile failure modes.
//
// Spec grammar (comma-separated entries):
//
//   <point>:<n>[:<action>][@<rank>]
//
// where <action> is "kill" (raise SIGKILL — no destructors, no flushes,
// no atexit; the default) or "stop" (raise SIGSTOP — the process hangs
// exactly where it stood, modeling a livelocked/frozen peer until a
// supervisor SIGKILLs it), and "@<rank>" scopes the entry to one
// distributed node rank (see SetNodeRank). "after_sweep:7" kills the
// process the moment the instrumented point "after_sweep" is reached with
// n == 7; "after_sweep:4:stop@2" freezes rank 2 after sweep 4. An empty
// spec disarms. The canonical entry point is the COLD_FAULT_POINT
// environment variable, read once by ConfigureFromEnv().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cold {

class FaultInjector {
 public:
  /// Instances start disarmed; tests exercise spec parsing on locals so a
  /// mistake can never arm the process-wide injector.
  FaultInjector() = default;

  /// The process-wide injector every instrumented point consults.
  static FaultInjector& Global();

  /// \brief Arms (spec grammar above, comma-separated) or disarms
  /// (spec = "") the injector. Returns InvalidArgument on a malformed
  /// spec, leaving the injector disarmed.
  cold::Status Configure(const std::string& spec);

  /// \brief Reads COLD_FAULT_POINT; a malformed value logs a warning and
  /// disarms rather than failing the run.
  void ConfigureFromEnv();

  void Disarm();

  bool armed() const { return !entries_.empty(); }

  /// \brief Narrows the armed entries to the given distributed node rank:
  /// entries scoped "@R" stay armed iff R == rank, and unscoped entries
  /// stay armed iff COLD_FAULT_NODE is unset or equals rank (the legacy
  /// one-rank narrowing). Call once per process after the rank is known.
  void SetNodeRank(int rank);

  /// \brief Signals the process (SIGKILL or SIGSTOP per the matched
  /// entry's action) iff an armed entry matches (point, n). No-op hot path
  /// when disarmed: a single branch.
  void MaybeCrash(const char* point, int64_t n);

 private:
  struct Entry {
    std::string point;
    int64_t n = -1;
    /// SIGKILL or SIGSTOP.
    int signal = 0;
    /// Distributed rank scope; -1 = unscoped.
    int rank = -1;
  };

  std::vector<Entry> entries_;
};

}  // namespace cold
