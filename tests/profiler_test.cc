// Tests for the SIGPROF sampling profiler (src/obs/profiler.h): session
// lifecycle, empty profiles, report invariants, and a signal-safety smoke
// under threaded load with the metrics/trace subsystems running.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <ctime>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace cold::obs {
namespace {

// TSan intercepts signal delivery and flags SIGPROF handlers that run
// "async-signal-unsafe" interceptors (backtrace's lazy unwinder state looks
// racy to it), so the sampling tests only run outside TSan. The pure
// report/bookkeeping tests still run everywhere.
#if defined(__SANITIZE_THREAD__)
constexpr bool kSamplingSupported = false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kSamplingSupported = false;
#else
constexpr bool kSamplingSupported = true;
#endif
#else
constexpr bool kSamplingSupported = true;
#endif

// CPU-bound work the sampler can land on; returns a value so the loop
// cannot be optimized away. `seconds` is process CPU time (std::clock),
// the same clock driving the profiler's timer, so the expected sample
// count does not depend on how loaded the host is.
double BurnCpu(double seconds) {
  const std::clock_t budget =
      static_cast<std::clock_t>(seconds * CLOCKS_PER_SEC);
  const std::clock_t start = std::clock();
  volatile double sink = 0.0;
  while (true) {
    for (int i = 1; i < 2000; ++i) {
      sink = sink + std::sqrt(static_cast<double>(i)) * 1e-9;
    }
    if (std::clock() - start >= budget) break;
  }
  return sink;
}

TEST(ProfilerTest, StopWithoutStartIsEmpty) {
  ASSERT_FALSE(Profiler::running());
  ProfileReport report = Profiler::Stop();
  EXPECT_EQ(report.samples, 0);
  EXPECT_EQ(report.dropped, 0);
  EXPECT_TRUE(report.folded.empty());
  EXPECT_DOUBLE_EQ(report.AttributedFraction(), 0.0);
}

TEST(ProfilerTest, DoubleStartFailsAndFirstSessionSurvives) {
  if (!kSamplingSupported) GTEST_SKIP() << "sampling disabled under TSan";
  ASSERT_TRUE(Profiler::Start().ok());
  EXPECT_TRUE(Profiler::running());
  Status second = Profiler::Start();
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(Profiler::running());  // the losing Start must not kill it
  Profiler::Stop();
  EXPECT_FALSE(Profiler::running());
}

TEST(ProfilerTest, EmptyProfileReportIsWellFormed) {
  if (!kSamplingSupported) GTEST_SKIP() << "sampling disabled under TSan";
  // Start/Stop with (almost) no CPU burned in between: zero or near-zero
  // samples, and every emitter handles the empty report.
  ASSERT_TRUE(Profiler::Start().ok());
  ProfileReport report = Profiler::Stop();
  EXPECT_GE(report.samples, 0);
  std::ostringstream folded, top;
  report.WriteFolded(folded);
  report.PrintTop(top, 10);  // must not crash on an empty table
  if (report.samples == 0) {
    EXPECT_TRUE(folded.str().empty());
    EXPECT_DOUBLE_EQ(report.AttributedFraction(), 0.0);
  }
}

TEST(ProfilerTest, CapturesSamplesFromCpuWork) {
  if (!kSamplingSupported) GTEST_SKIP() << "sampling disabled under TSan";
  ProfilerOptions options;
  options.sample_hz = 997;
  ASSERT_TRUE(Profiler::Start(options).ok());
  BurnCpu(0.3);
  ProfileReport report = Profiler::Stop();

  // 0.3s of CPU at ~1kHz: expect a healthy sample count (loose lower
  // bound; CI machines stall).
  EXPECT_GT(report.samples, 20) << "dropped=" << report.dropped;

  // Report invariants: folded counts and per-thread counts both total the
  // sample count, and the symbol table is sorted by self descending.
  int64_t folded_total = 0;
  for (const auto& [stack, count] : report.folded) {
    EXPECT_FALSE(stack.empty());
    EXPECT_GT(count, 0);
    folded_total += count;
  }
  EXPECT_EQ(folded_total, report.samples);
  int64_t thread_total = 0;
  for (const auto& [tid, count] : report.samples_by_thread) {
    EXPECT_GT(tid, 0);
    thread_total += count;
  }
  EXPECT_EQ(thread_total, report.samples);
  for (size_t i = 1; i < report.symbols.size(); ++i) {
    EXPECT_GE(report.symbols[i - 1].self, report.symbols[i].self);
  }

  // The burn loop dominates the profile, so most samples must resolve to
  // named symbols (softer than the 80% end-to-end bar on cold_train
  // --profile to leave room for sanitizer/runtime frames).
  EXPECT_GE(report.AttributedFraction(), 0.5)
      << "samples=" << report.samples;
}

TEST(ProfilerTest, SignalSafetySmokeUnderThreadedLoad) {
  if (!kSamplingSupported) GTEST_SKIP() << "sampling disabled under TSan";
  // Sample while a thread pool burns CPU, the metrics registry takes
  // lock-free updates and trace spans push into the mutex-guarded ring —
  // the handler must coexist with all of it (no deadlock, no crash).
  Registry::Enable();
  TraceRing::Enable(256);
  Counter* counter =
      Registry::Global().GetCounter("cold/profiler_test/smoke_ops");
  counter->Reset();

  ProfilerOptions options;
  options.sample_hz = 1999;  // aggressive rate to stress delivery
  ASSERT_TRUE(Profiler::Start(options).ok());
  {
    ThreadPool pool(4);
    pool.ParallelFor(size_t{4000}, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        COLD_TRACE_SPAN("profiler_test/smoke");
        volatile double sink = 0.0;
        for (int j = 1; j < 500; ++j) {
          sink = sink + std::sqrt(static_cast<double>(j));
        }
        counter->Increment();
      }
    });
  }
  ProfileReport report = Profiler::Stop();
  TraceRing::Disable();

  // All work completed despite constant signal delivery.
  EXPECT_EQ(counter->Value(), 4000);
  EXPECT_GE(report.samples, 0);
  EXPECT_GE(report.dropped, 0);

  // A fresh session still works after the stress (state fully torn down).
  ASSERT_TRUE(Profiler::Start().ok());
  Profiler::Stop();
}

TEST(ProfilerTest, DropsSamplesBeyondBufferInsteadOfBlocking) {
  if (!kSamplingSupported) GTEST_SKIP() << "sampling disabled under TSan";
  // Signal deliveries coalesce while the process is preempted, so one
  // session on a loaded host can see few deliveries; retry sessions until
  // an overflow is observed (each burns ~200 timer expirations' worth of
  // CPU, so all rounds staying under the 8-slot buffer means drop
  // accounting is broken, not that the host is busy).
  bool overflowed = false;
  for (int round = 0; round < 10 && !overflowed; ++round) {
    ProfilerOptions options;
    options.sample_hz = 1999;
    options.max_samples = 8;  // tiny buffer: overflow is the common case
    ASSERT_TRUE(Profiler::Start(options).ok());
    BurnCpu(0.1);
    ProfileReport report = Profiler::Stop();
    EXPECT_LE(report.samples, 8);
    overflowed = report.dropped > 0;
  }
  EXPECT_TRUE(overflowed);
}

}  // namespace
}  // namespace cold::obs
