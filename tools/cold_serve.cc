// cold_serve — the COLD prediction server (the online half of §5.2's
// offline/online split): loads a model snapshot (COLDARN1 mmap arena or
// legacy COLDEST1, sniffed by magic), builds ColdPredictor replicas, and
// serves the JSON inference API over HTTP/1.1 from an epoll event loop.
//
// Usage: cold_serve <model> [--port N] [--reactors N] [--replicas N]
//                   [--idle-timeout-seconds N] [--blocking] [--workers N]
//                   [--cache N] [--cache-shards N] [--no-batching]
//                   [--batch-max N] [--batch-wait-us N]
//                   [--top-communities N] [--max-inflight N]
//
// --reactors picks the event-loop thread count (0 = one per hardware
// thread, capped at 16); --blocking falls back to the legacy
// thread-per-connection core sized by --workers. --replicas shards
// queries across N predictor replicas by the author's home community;
// arena snapshots share one mmap across all replicas.
//
// --max-inflight enables load shedding: connections beyond N concurrently
// serviced ones are answered 503 + Retry-After instead of queueing (0 =
// accept everything; counted by the serve_shed_total metric).
//
// --slow-request-ms N logs any request slower than N ms with its method,
// path, latency and diffusion batch size (0 disables the log).
//
// Endpoints: POST /v1/diffusion, /v1/topic_posterior, /v1/link,
// /v1/timestamp; GET /v1/influential_communities, /healthz, /metrics
// (Prometheus), /debug/vars (JSON telemetry snapshot with estimated
// latency quantiles); POST /admin/reload. SIGHUP also hot-reloads the snapshot
// from <model>; SIGINT/SIGTERM drain in-flight requests and exit.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/http_server.h"
#include "serve/model_service.h"
#include "util/logging.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_reload = 0;

void OnSignal(int sig) {
  if (sig == SIGHUP) {
    g_reload = 1;
  } else {
    g_shutdown = 1;
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <model> [--port N=8080] [--reactors N=0] "
               "[--replicas N=1] [--idle-timeout-seconds N=5] [--blocking] "
               "[--workers N=8] [--cache N=4096] [--cache-shards N=8] "
               "[--no-batching] [--batch-max N=64] [--batch-wait-us N=200] "
               "[--top-communities N=5] [--max-inflight N=0] "
               "[--slow-request-ms N=0]\n",
               argv0);
  return 2;
}

bool ParseInt(const char* s, int min_value, int max_value, int* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < min_value ||
      v > max_value) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cold;
  if (argc < 2) return Usage(argv[0]);

  std::string model_path = argv[1];
  int port = 8080;
  int workers = 8;
  int reactors = 0;
  int replicas = 1;
  int idle_timeout = 5;
  int cache_shards = 8;
  bool blocking = false;
  int cache = 4096;
  int batch_max = 64;
  int batch_wait_us = 200;
  int top_communities = 5;
  int max_inflight = 0;
  int slow_request_ms = 0;
  bool batching = true;

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&](int min_value, int max_value, int* out) {
      return i + 1 < argc && ParseInt(argv[++i], min_value, max_value, out);
    };
    if (std::strcmp(arg, "--port") == 0) {
      if (!next(0, 65535, &port)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!next(1, 1024, &workers)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--reactors") == 0) {
      if (!next(0, 1024, &reactors)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--replicas") == 0) {
      if (!next(1, 1024, &replicas)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--idle-timeout-seconds") == 0) {
      if (!next(0, 86400, &idle_timeout)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--cache-shards") == 0) {
      if (!next(1, 4096, &cache_shards)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--blocking") == 0) {
      blocking = true;
    } else if (std::strcmp(arg, "--cache") == 0) {
      if (!next(0, 1 << 24, &cache)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--no-batching") == 0) {
      batching = false;
    } else if (std::strcmp(arg, "--batch-max") == 0) {
      if (!next(1, 65536, &batch_max)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--batch-wait-us") == 0) {
      if (!next(0, 1000000, &batch_wait_us)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--top-communities") == 0) {
      if (!next(1, 1 << 20, &top_communities)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--max-inflight") == 0) {
      if (!next(0, 1 << 20, &max_inflight)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--slow-request-ms") == 0) {
      if (!next(0, 1 << 30, &slow_request_ms)) return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }

  serve::ModelServiceOptions service_options;
  service_options.model_path = model_path;
  service_options.top_communities = top_communities;
  service_options.num_replicas = replicas;
  service_options.posterior_cache_capacity = static_cast<size_t>(cache);
  service_options.cache_shards = static_cast<size_t>(cache_shards);
  service_options.batching_enabled = batching;
  service_options.max_batch = static_cast<size_t>(batch_max);
  service_options.batch_wait_us = batch_wait_us;
  service_options.slow_request_ms = slow_request_ms;

  serve::ModelService service(service_options);
  if (auto st = service.LoadFromFile(model_path); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  serve::HttpServerOptions server_options;
  server_options.port = port;
  server_options.mode = blocking ? serve::ServerMode::kBlocking
                                 : serve::ServerMode::kEpoll;
  server_options.num_workers = static_cast<size_t>(workers);
  server_options.num_reactors = reactors;
  server_options.idle_timeout_seconds = idle_timeout;
  server_options.max_inflight_requests = static_cast<size_t>(max_inflight);
  serve::HttpServer server(
      server_options,
      [&service](const serve::HttpRequest& request) {
        return service.Handle(request);
      });
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  // The startup line tests/scripts parse to find the bound port.
  std::printf("cold_serve listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGHUP, OnSignal);

  while (!g_shutdown) {
    if (g_reload) {
      g_reload = 0;
      if (auto st = service.Reload(); !st.ok()) {
        COLD_LOG(kError) << "SIGHUP reload failed (still serving previous "
                            "snapshot): "
                         << st.ToString();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  COLD_LOG(kInfo) << "shutting down";
  server.Stop();
  return 0;
}
