// Latent Dirichlet Allocation (Blei et al. 2003) with collapsed Gibbs
// sampling (Griffiths & Steyvers 2004). Two granularities:
//   kPerWord — classic per-word topic assignments with per-document mixes;
//   kPerPost — one topic per post (the microblog adaptation COLD also makes,
//              §3.5), used by the single-vs-mixed ablation and by TI.
// Documents can be individual posts or whole user histories (kUserDocument),
// the "view each user's post collection as a huge document" convention of
// prior text-link models discussed in §3.5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "text/post_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cold::baselines {

/// \brief What constitutes a "document".
enum class LdaDocumentUnit {
  /// Each post is its own document.
  kPost,
  /// All posts of one user form one document.
  kUserDocument,
};

/// \brief Topic assignment granularity.
enum class LdaAssignment { kPerWord, kPerPost };

struct LdaConfig {
  int num_topics = 20;
  double alpha = -1.0;  // <= 0 means 50/K
  double beta = 0.01;
  int iterations = 100;
  uint64_t seed = 42;
  LdaDocumentUnit document_unit = LdaDocumentUnit::kPost;
  LdaAssignment assignment = LdaAssignment::kPerWord;

  double ResolvedAlpha() const { return alpha > 0 ? alpha : 50.0 / num_topics; }
};

/// \brief Fitted LDA parameters.
struct LdaEstimates {
  int num_documents = 0;
  int K = 0;
  int V = 0;
  /// theta[d*K + k]: per-document topic mixture.
  std::vector<double> theta;
  /// phi[k*V + v]: topic word distributions.
  std::vector<double> phi;

  double Theta(int d, int k) const {
    return theta[static_cast<size_t>(d) * K + k];
  }
  double Phi(int k, int v) const {
    return phi[static_cast<size_t>(k) * V + v];
  }
};

/// \brief Collapsed-Gibbs LDA trainer.
class LdaModel {
 public:
  LdaModel(LdaConfig config, const text::PostStore& posts);

  cold::Status Train();

  const LdaEstimates& estimates() const { return estimates_; }

  /// Document id of post d under the configured document unit.
  int DocumentOf(text::PostId d) const;

  /// \brief Topic posterior of an unseen bag of words under a uniform-prior
  /// mixture (sums to 1).
  std::vector<double> TopicPosterior(std::span<const text::WordId> words) const;

  /// \brief Topic posterior of an unseen post given its author's mixture.
  std::vector<double> TopicPosteriorForAuthor(
      std::span<const text::WordId> words, text::UserId author) const;

  /// \brief log p(w_d | author) under theta_author x phi (per-word mixture).
  double LogPostProbability(std::span<const text::WordId> words,
                            text::UserId author) const;

  /// \brief Corpus perplexity using LogPostProbability.
  double Perplexity(const text::PostStore& test_posts) const;

  /// Per-post hard topic labels (argmax of assignment counts; for kPerPost
  /// this is the sampled topic).
  const std::vector<int32_t>& post_topics() const { return post_topic_; }

 private:
  void TrainPerWord(cold::RandomSampler* sampler);
  void TrainPerPost(cold::RandomSampler* sampler);
  void ExtractEstimates(const std::vector<int32_t>& n_dk,
                        const std::vector<int32_t>& n_d,
                        const std::vector<int32_t>& n_kv,
                        const std::vector<int32_t>& n_k);

  LdaConfig config_;
  const text::PostStore& posts_;
  int num_documents_ = 0;
  int vocab_ = 0;
  LdaEstimates estimates_;
  std::vector<int32_t> post_topic_;
};

}  // namespace cold::baselines
