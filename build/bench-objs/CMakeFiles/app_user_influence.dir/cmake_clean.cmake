file(REMOVE_RECURSE
  "../bench/app_user_influence"
  "../bench/app_user_influence.pdb"
  "CMakeFiles/app_user_influence.dir/app_user_influence.cc.o"
  "CMakeFiles/app_user_influence.dir/app_user_influence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_user_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
