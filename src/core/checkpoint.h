// Durable training checkpoints for the Gibbs samplers.
//
// A checkpoint captures the *complete* sampler state — assignments, count
// tables, hyperparameter echo, sweep index, and serialized RNG engine
// state — so a resumed run continues the exact draw sequence and produces
// bit-identical final estimates (GraphLab's snapshot-based fault tolerance,
// re-created for the shared-memory reproduction; see DESIGN.md §Fault
// tolerance).
//
// On-disk format (host-endian, not portable across byte orders):
//
//   [0..8)   magic "COLDCKP1"
//   [8..48)  header: format version, flavor (serial/parallel), sweep,
//            dataset fingerprint, payload size, payload CRC-32, and a
//            CRC-32 over the header bytes themselves
//   [48..)   payload (flavor-specific; see checkpoint.cc)
//
// Durability: every file is written via the atomic tmp+fsync+rename path
// (util/fileio.h) and rotated keep-last-N, so a crash mid-write can never
// destroy the previous checkpoint, and a corrupt newest file is detected
// by CRC and skipped in favour of the previous rotation entry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "text/post_store.h"
#include "util/status.h"

namespace cold::core {

inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// \brief Which trainer wrote the checkpoint; payloads are not
/// interchangeable (the parallel flavor carries per-worker RNG streams).
enum class CheckpointFlavor : uint32_t { kSerial = 0, kParallel = 1 };

/// \brief Parsed header of a checkpoint file.
struct CheckpointMeta {
  uint32_t format_version = kCheckpointFormatVersion;
  CheckpointFlavor flavor = CheckpointFlavor::kSerial;
  /// 1-based count of completed sweeps captured by the payload.
  int32_t sweep = 0;
  /// DataFingerprint() of the training data, so a resume against the wrong
  /// dataset is rejected up front instead of corrupting silently.
  uint64_t data_fingerprint = 0;
};

/// \brief A checkpoint read back from disk with all integrity checks
/// passed; `payload` feeds the sampler's RestoreState().
struct LoadedCheckpoint {
  CheckpointMeta meta;
  std::string payload;
  std::string path;
};

struct CheckpointOptions {
  /// Directory holding the rotation; empty disables checkpointing.
  std::string dir;
  /// Write a checkpoint every `every` sweeps (0 disables periodic writes).
  int every = 0;
  /// Rotation depth: how many most-recent checkpoints are kept.
  int keep_last = 3;
};

/// \brief Owns one checkpoint directory: durable writes, keep-last-N
/// rotation, and corruption-tolerant discovery of the newest usable
/// checkpoint.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options)
      : options_(std::move(options)) {}

  const CheckpointOptions& options() const { return options_; }

  /// True when periodic checkpoint writes are configured.
  bool enabled() const { return !options_.dir.empty() && options_.every > 0; }

  /// True when `sweep` falls on the configured cadence.
  bool ShouldCheckpoint(int sweep) const {
    return enabled() && sweep % options_.every == 0;
  }

  /// \brief Creates the checkpoint directory (parents included).
  cold::Status Init() const;

  /// \brief Durably writes the checkpoint for `meta.sweep` (atomic
  /// tmp+fsync+rename), then prunes rotation entries beyond keep_last.
  cold::Status Write(const CheckpointMeta& meta,
                     std::string_view payload) const;

  /// \brief Returns the newest checkpoint that passes every integrity
  /// check. Corrupt or unreadable newer files are logged and skipped
  /// (refuse-and-fall-back); NotFound when no usable checkpoint exists.
  cold::Result<LoadedCheckpoint> LoadLatest() const;

  /// \brief Checkpoint files currently in the directory, ascending by
  /// sweep.
  std::vector<std::pair<int, std::string>> ListFiles() const;

  /// \brief Reads and fully verifies one checkpoint file: magic, header
  /// CRC, format version, payload size, payload CRC.
  static cold::Result<LoadedCheckpoint> ReadFile(const std::string& path);

  /// File name for a sweep: "ckpt-<zero-padded sweep>.cold".
  static std::string FileName(int sweep);

 private:
  CheckpointOptions options_;
};

/// \brief FNV-1a fingerprint over the training data (posts: author, time,
/// words; links: edge list). Stored in every checkpoint header and checked
/// on resume.
uint64_t DataFingerprint(const text::PostStore& posts,
                         const graph::Digraph* links);

}  // namespace cold::core
