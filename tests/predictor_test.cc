#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cold.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "util/math_util.h"

namespace cold::core {
namespace {

data::SyntheticConfig TestDataConfig() {
  data::SyntheticConfig config;
  config.num_users = 200;
  config.num_communities = 4;
  config.num_topics = 6;
  config.num_time_slices = 12;
  config.core_words_per_topic = 12;
  config.background_words = 60;
  config.posts_per_user = 12.0;
  config.words_per_post = 8.0;
  config.follows_per_user = 10;
  config.seed = 13;
  return config;
}

struct Fixture {
  data::SocialDataset dataset;
  data::PostSplit post_split;
  ColdEstimates estimates;
  std::unique_ptr<ColdPredictor> predictor;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    data::SyntheticSocialGenerator gen(TestDataConfig());
    f->dataset = std::move(gen.Generate()).ValueOrDie();
    f->post_split = data::SplitPosts(f->dataset.posts, 0.2, 21, 0);

    ColdConfig config;
    config.num_communities = 4;
    config.num_topics = 6;
    config.iterations = 60;
    config.burn_in = 40;
    config.sample_lag = 5;
    config.seed = 19;
    config.rho = 0.5;  // data-scale-appropriate membership smoothing
    ColdGibbsSampler sampler(config, f->post_split.train,
                             &f->dataset.interactions);
    EXPECT_TRUE(sampler.Init().ok());
    EXPECT_TRUE(sampler.Train().ok());
    f->estimates = sampler.AveragedEstimates();
    f->predictor = std::make_unique<ColdPredictor>(f->estimates, 3);
    return f;
  }();
  return *fixture;
}

TEST(PredictorTest, TopicPosteriorNormalized) {
  const Fixture& f = GetFixture();
  const auto& posts = f.post_split.test;
  for (text::PostId d = 0; d < std::min(posts.num_posts(), 20); ++d) {
    auto posterior =
        f.predictor->TopicPosterior(posts.words(d), posts.author(d));
    double total = std::accumulate(posterior.begin(), posterior.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double p : posterior) EXPECT_GE(p, 0.0);
  }
}

TEST(PredictorTest, TopicPosteriorPeaksOnPlantedTopicWords) {
  const Fixture& f = GetFixture();
  // Build a message purely out of topic 0's core words (word ids 0..11).
  std::vector<text::WordId> words = {0, 1, 2, 3, 4, 5};
  auto posterior = f.predictor->TopicPosterior(words, 0);
  int argmax = static_cast<int>(
      std::max_element(posterior.begin(), posterior.end()) -
      posterior.begin());
  // The winning learned topic must assign these words far more mass than a
  // uniform model would.
  double mass = 0.0;
  for (text::WordId w : words) mass += f.estimates.Phi(argmax, w);
  EXPECT_GT(mass, 10.0 / f.estimates.V);
  EXPECT_GT(posterior[static_cast<size_t>(argmax)], 0.5);
}

TEST(PredictorTest, TopCommTruncationKeepsStrongestCommunities) {
  const Fixture& f = GetFixture();
  for (int i = 0; i < 10; ++i) {
    const auto& top = f.predictor->TopComm(i);
    ASSERT_EQ(top.size(), 3u);
    // Every non-member community has membership <= the weakest member.
    double weakest = f.estimates.Pi(i, top.back());
    for (int c = 0; c < f.estimates.C; ++c) {
      if (std::find(top.begin(), top.end(), c) == top.end()) {
        EXPECT_LE(f.estimates.Pi(i, c), weakest + 1e-12);
      }
    }
  }
}

TEST(PredictorTest, TopicInfluenceMatchesBruteForceOverTopComm) {
  const Fixture& f = GetFixture();
  // Eq. (6) must equal the explicit double sum over TopComm with zeta.
  for (int i = 0; i < 5; ++i) {
    for (int j = 5; j < 10; ++j) {
      for (int k = 0; k < f.estimates.K; ++k) {
        double brute = 0.0;
        for (int c : f.predictor->TopComm(i)) {
          for (int c2 : f.predictor->TopComm(j)) {
            brute += f.estimates.Pi(i, c) * f.estimates.Pi(j, c2) *
                     f.estimates.Zeta(k, c, c2);
          }
        }
        EXPECT_NEAR(f.predictor->TopicInfluence(i, j, k), brute, 1e-12);
      }
    }
  }
}

TEST(PredictorTest, DiffusionProbabilityIsConvexCombination) {
  const Fixture& f = GetFixture();
  // P(i,i',d) = sum_k P(k|d,i) P(i,i'|k) <= max_k P(i,i'|k).
  std::vector<text::WordId> words = {0, 1, 2};
  for (int i = 0; i < 5; ++i) {
    for (int j = 10; j < 15; ++j) {
      double p = f.predictor->DiffusionProbability(i, j, words);
      double max_inf = 0.0;
      for (int k = 0; k < f.estimates.K; ++k) {
        max_inf = std::max(max_inf, f.predictor->TopicInfluence(i, j, k));
      }
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, max_inf + 1e-12);
    }
  }
}

TEST(PredictorTest, LinkProbabilityBounds) {
  const Fixture& f = GetFixture();
  for (int i = 0; i < 20; ++i) {
    for (int j = 20; j < 25; ++j) {
      double p = f.predictor->LinkProbability(i, j);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(PredictorTest, LinkPredictionBeatsRandom) {
  const Fixture& f = GetFixture();
  data::LinkSplit split =
      data::SplitLinks(f.dataset.interactions, 0.2, 2.0, 23, 0);
  // Note: the model trained on the full network here; this checks the score
  // separates real from absent links (fit quality), the honest held-out
  // protocol lives in the fig10 bench.
  std::vector<double> pos, neg;
  for (const auto& [a, b] : split.test_positive) {
    pos.push_back(f.predictor->LinkProbability(a, b));
  }
  for (const auto& [a, b] : split.test_negative) {
    neg.push_back(f.predictor->LinkProbability(a, b));
  }
  EXPECT_GT(eval::RocAuc(pos, neg), 0.65);
}

TEST(PredictorTest, TimestampScoresNormalizedAndInRange) {
  const Fixture& f = GetFixture();
  const auto& posts = f.post_split.test;
  for (text::PostId d = 0; d < std::min(posts.num_posts(), 20); ++d) {
    auto scores =
        f.predictor->TimestampScores(posts.words(d), posts.author(d));
    ASSERT_EQ(scores.size(), static_cast<size_t>(f.estimates.T));
    EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0,
                1e-9);
    int t = f.predictor->PredictTimestamp(posts.words(d), posts.author(d));
    EXPECT_GE(t, 0);
    EXPECT_LT(t, f.estimates.T);
  }
}

TEST(PredictorTest, TimestampPredictionBeatsUniformGuess) {
  const Fixture& f = GetFixture();
  const auto& posts = f.post_split.test;
  std::vector<int> predicted, actual;
  for (text::PostId d = 0; d < posts.num_posts(); ++d) {
    if (posts.length(d) == 0) continue;
    predicted.push_back(
        f.predictor->PredictTimestamp(posts.words(d), posts.author(d)));
    actual.push_back(posts.time(d));
  }
  // Uniform guessing hits within tolerance 2 with prob 5/12 ~ 0.42.
  double acc = eval::AccuracyWithinTolerance(predicted, actual, 2);
  EXPECT_GT(acc, 0.45);
}

TEST(PredictorTest, PerplexityBeatsUniformModel) {
  const Fixture& f = GetFixture();
  double perplexity = f.predictor->Perplexity(f.post_split.test);
  EXPECT_GT(perplexity, 1.0);
  // A uniform word model has perplexity = V.
  EXPECT_LT(perplexity, static_cast<double>(f.estimates.V) * 0.8);
}

TEST(PredictorTest, DiffusionPredictionSeparatesRetweeters) {
  const Fixture& f = GetFixture();
  data::RetweetSplit split = data::SplitRetweets(f.dataset, 0.2, 29, 0);
  std::vector<eval::ScoredTuple> scored;
  int used = 0;
  for (const data::RetweetTuple& tuple : split.test) {
    if (used++ >= 150) break;
    eval::ScoredTuple st;
    auto words = f.dataset.posts.words(tuple.post);
    for (text::UserId u : tuple.retweeters) {
      st.positive_scores.push_back(
          f.predictor->DiffusionProbability(tuple.author, u, words));
    }
    for (text::UserId u : tuple.ignorers) {
      st.negative_scores.push_back(
          f.predictor->DiffusionProbability(tuple.author, u, words));
    }
    scored.push_back(std::move(st));
  }
  EXPECT_GT(eval::AveragedTupleAuc(scored), 0.54);
}

TEST(PredictorTest, TopCommSizeClampsToC) {
  const Fixture& f = GetFixture();
  ColdPredictor wide(f.estimates, 100);
  EXPECT_EQ(wide.TopComm(0).size(), static_cast<size_t>(f.estimates.C));
}

}  // namespace
}  // namespace cold::core

namespace cold::core {
namespace {

TEST(FoldInTest, RecoversTrainingUsersMembership) {
  const Fixture& f = GetFixture();
  // Rebuild fold-in inputs from a well-observed training user's posts and
  // compare the inferred membership to the trained one.
  const auto& posts = f.dataset.posts;
  text::UserId subject = 0;
  for (text::UserId i = 0; i < posts.num_users(); ++i) {
    if (posts.posts_of(i).size() >= 12) {
      subject = i;
      break;
    }
  }
  std::vector<ColdPredictor::FoldInPost> fold_posts;
  for (text::PostId d : posts.posts_of(subject)) {
    ColdPredictor::FoldInPost p;
    p.words.assign(posts.words(d).begin(), posts.words(d).end());
    p.time = posts.time(d);
    fold_posts.push_back(std::move(p));
  }
  auto pi = f.predictor->FoldInMembership(fold_posts);
  ASSERT_EQ(pi.size(), static_cast<size_t>(f.estimates.C));
  double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);

  std::vector<double> trained(static_cast<size_t>(f.estimates.C));
  for (int c = 0; c < f.estimates.C; ++c) {
    trained[static_cast<size_t>(c)] = f.estimates.Pi(subject, c);
  }
  EXPECT_GT(cold::CosineSimilarity(pi, trained), 0.7)
      << "fold-in membership should match the trained membership";
}

TEST(PredictorHardeningTest, ValidateQueryFlagsBadIds) {
  const Fixture& f = GetFixture();
  std::vector<text::WordId> ok_words = {0, 1};
  EXPECT_TRUE(f.predictor->ValidateQuery(0, ok_words).ok());
  EXPECT_EQ(f.predictor->ValidateQuery(-1, ok_words).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.predictor->ValidateQuery(f.estimates.U, ok_words).code(),
            StatusCode::kOutOfRange);
  std::vector<text::WordId> bad_words = {0, static_cast<text::WordId>(
                                                f.estimates.V)};
  EXPECT_EQ(f.predictor->ValidateQuery(0, bad_words).code(),
            StatusCode::kOutOfRange);
}

TEST(PredictorHardeningTest, OutOfRangeInputsReturnSentinelsNotUB) {
  const Fixture& f = GetFixture();
  const ColdPredictor& p = *f.predictor;
  std::vector<text::WordId> words = {0, 1};
  std::vector<text::WordId> bad_words = {-5};
  const text::UserId bad_user = f.estimates.U + 100;

  EXPECT_TRUE(p.TopicPosterior(words, bad_user).empty());
  EXPECT_TRUE(p.TopicPosterior(bad_words, 0).empty());
  EXPECT_TRUE(std::isnan(p.DiffusionProbability(bad_user, 0, words)));
  EXPECT_TRUE(std::isnan(p.DiffusionProbability(0, bad_user, words)));
  EXPECT_TRUE(std::isnan(p.DiffusionProbability(0, 1, bad_words)));
  EXPECT_TRUE(std::isnan(p.LinkProbability(bad_user, 0)));
  EXPECT_TRUE(std::isnan(p.LinkProbability(0, -1)));
  EXPECT_TRUE(std::isnan(p.TopicInfluence(bad_user, 0, 0)));
  EXPECT_TRUE(std::isnan(p.TopicInfluence(0, 0, f.estimates.K)));
  EXPECT_TRUE(p.TimestampScores(words, bad_user).empty());
  EXPECT_EQ(p.PredictTimestamp(words, bad_user), -1);
  EXPECT_TRUE(std::isnan(p.LogPostProbability(bad_words, 0)));
  EXPECT_TRUE(p.TopComm(bad_user).empty());
  EXPECT_TRUE(p.TopComm(-1).empty());

  // Wrong-length posterior / membership vectors are rejected too.
  std::vector<double> short_posterior(2, 0.5);
  EXPECT_TRUE(std::isnan(p.DiffusionFromPosterior(0, 1, short_posterior)));
  std::vector<double> short_pi(1, 1.0);
  EXPECT_TRUE(std::isnan(p.DiffusionProbabilityToNewUser(0, short_pi, words)));
}

TEST(PredictorHardeningTest, DiffusionFromPosteriorMatchesDirect) {
  const Fixture& f = GetFixture();
  const ColdPredictor& p = *f.predictor;
  std::vector<text::WordId> words = {0, 1, 2};
  for (int candidate = 1; candidate < 5; ++candidate) {
    std::vector<double> posterior = p.TopicPosterior(words, 0);
    EXPECT_NEAR(p.DiffusionFromPosterior(0, candidate, posterior),
                p.DiffusionProbability(0, candidate, words), 1e-12);
  }
}

TEST(FoldInTest, EmptyInputGivesUniform) {
  const Fixture& f = GetFixture();
  auto pi = f.predictor->FoldInMembership({});
  for (double v : pi) EXPECT_NEAR(v, 1.0 / f.estimates.C, 1e-12);
}

TEST(FoldInTest, NewUserScoringMatchesExplicitPiForm) {
  const Fixture& f = GetFixture();
  // When the candidate's pi equals a training user's pi, the new-user
  // scoring path must agree with the standard Eq.-7 path.
  std::vector<text::WordId> words = {0, 1, 2};
  for (int candidate = 3; candidate < 6; ++candidate) {
    std::vector<double> pi(static_cast<size_t>(f.estimates.C));
    for (int c = 0; c < f.estimates.C; ++c) {
      pi[static_cast<size_t>(c)] = f.estimates.Pi(candidate, c);
    }
    double via_new = f.predictor->DiffusionProbabilityToNewUser(0, pi, words);
    double via_old = f.predictor->DiffusionProbability(0, candidate, words);
    EXPECT_NEAR(via_new, via_old, 1e-12);
  }
}

}  // namespace
}  // namespace cold::core
