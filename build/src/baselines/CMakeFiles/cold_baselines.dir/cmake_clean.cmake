file(REMOVE_RECURSE
  "CMakeFiles/cold_baselines.dir/eutb.cc.o"
  "CMakeFiles/cold_baselines.dir/eutb.cc.o.d"
  "CMakeFiles/cold_baselines.dir/lda.cc.o"
  "CMakeFiles/cold_baselines.dir/lda.cc.o.d"
  "CMakeFiles/cold_baselines.dir/mmsb.cc.o"
  "CMakeFiles/cold_baselines.dir/mmsb.cc.o.d"
  "CMakeFiles/cold_baselines.dir/pipeline.cc.o"
  "CMakeFiles/cold_baselines.dir/pipeline.cc.o.d"
  "CMakeFiles/cold_baselines.dir/pmtlm.cc.o"
  "CMakeFiles/cold_baselines.dir/pmtlm.cc.o.d"
  "CMakeFiles/cold_baselines.dir/ti.cc.o"
  "CMakeFiles/cold_baselines.dir/ti.cc.o.d"
  "CMakeFiles/cold_baselines.dir/tot.cc.o"
  "CMakeFiles/cold_baselines.dir/tot.cc.o.d"
  "CMakeFiles/cold_baselines.dir/wtm.cc.o"
  "CMakeFiles/cold_baselines.dir/wtm.cc.o.d"
  "libcold_baselines.a"
  "libcold_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
