#include "core/parallel_sampler.h"

#include <algorithm>
#include <cmath>

#include "core/gibbs_sampler.h"
#include "obs/metrics.h"
#include "util/fault_injector.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace cold::core {

namespace {
constexpr size_t kMaxWorkers = 256;

/// Per-superstep throughput telemetry for the parallel trainer, mirroring
/// the serial sampler's cold/gibbs/* gauges.
struct ParallelMetrics {
  obs::Counter* supersteps;
  obs::Gauge* superstep_seconds;
  obs::Gauge* tokens_per_second;
};

ParallelMetrics& Metrics() {
  auto& registry = obs::Registry::Global();
  static ParallelMetrics metrics{
      registry.GetCounter("cold/parallel/supersteps"),
      registry.GetGauge("cold/parallel/superstep_seconds"),
      registry.GetGauge("cold/parallel/tokens_per_second")};
  return metrics;
}

}  // namespace

/// Vertex program implementing Alg 2. See file header of
/// parallel_sampler.h for the counter-placement discussion.
class ColdVertexProgram {
 public:
  using Graph = engine::PropertyGraph<ColdVertex, ColdEdge>;
  using GatherType = std::vector<int32_t>;
  static constexpr engine::GatherEdges kGatherEdges = engine::GatherEdges::kAll;

  ColdVertexProgram(const ColdConfig& config, const text::PostStore& posts,
                    const graph::Digraph* links, ParallelColdState* state,
                    const Graph* graph, bool use_network, double lambda0)
      : config_(config),
        posts_(posts),
        links_(links),
        state_(state),
        graph_(graph),
        use_network_(use_network),
        lambda0_(lambda0),
        // Derived prior constants hoisted once — the scatter kernels run per
        // token per superstep and should not re-resolve them.
        rho_(config.ResolvedRho()),
        alpha_(config.ResolvedAlpha()),
        kalpha_(config.num_topics * config.ResolvedAlpha()),
        teps_(posts.num_time_slices() * config.epsilon),
        vbeta_(state->V() * config.beta),
        scratch_(kMaxWorkers) {}

  GatherType GatherInit() const { return {}; }

  // Gather: lines 1-10 of Alg 2 — community counts for user vertices,
  // community-topic counts for time vertices.
  void Gather(const Graph& g, engine::VertexId v, engine::EdgeId e,
              GatherType* acc) const {
    const ColdVertex& vd = g.vertex_data(v);
    const ColdEdge& ed = g.edge_data(e);
    const int C = config_.num_communities;
    if (vd.is_user) {
      if (acc->empty()) acc->assign(static_cast<size_t>(C), 0);
      if (ed.type == ColdEdge::Type::kUserTime) {
        // Only the user-side endpoint gathers posts.
        if (g.src(e) == v) {
          for (text::PostId d : ed.posts) {
            (*acc)[static_cast<size_t>(
                state_->post_community[static_cast<size_t>(d)])]++;
          }
        }
      } else {
        // A user-user edge contributes s to its src and s' to its dst.
        if (g.src(e) == v) {
          (*acc)[static_cast<size_t>(
              state_->link_src_community[static_cast<size_t>(ed.link)])]++;
        } else {
          (*acc)[static_cast<size_t>(
              state_->link_dst_community[static_cast<size_t>(ed.link)])]++;
        }
      }
    } else {
      // Time vertex: count (c, k) pairs of incident posts.
      const int K = config_.num_topics;
      if (acc->empty()) acc->assign(static_cast<size_t>(C) * K, 0);
      if (ed.type == ColdEdge::Type::kUserTime) {
        for (text::PostId d : ed.posts) {
          int c = state_->post_community[static_cast<size_t>(d)];
          int k = state_->post_topic[static_cast<size_t>(d)];
          (*acc)[static_cast<size_t>(c) * K + k]++;
        }
      }
    }
  }

  // Apply: lines 12-17 of Alg 2 — write the rebuilt vertex-owned counters.
  void Apply(Graph* g, engine::VertexId v, const GatherType& acc) {
    const ColdVertex& vd = g->vertex_data(v);
    const int C = config_.num_communities;
    if (vd.is_user) {
      for (int c = 0; c < C; ++c) {
        int32_t value = acc.empty() ? 0 : acc[static_cast<size_t>(c)];
        state_->n_ic(vd.index, c).store(value, std::memory_order_relaxed);
      }
    } else {
      const int K = config_.num_topics;
      for (int c = 0; c < C; ++c) {
        for (int k = 0; k < K; ++k) {
          int32_t value =
              acc.empty() ? 0 : acc[static_cast<size_t>(c) * K + k];
          state_->n_ckt(c, k, vd.index)
              .store(value, std::memory_order_relaxed);
        }
      }
    }
  }

  // Scatter: lines 19-26 of Alg 2 — draw new assignments.
  void Scatter(Graph* g, engine::EdgeId e, engine::WorkerContext* ctx) {
    ColdEdge& ed = g->edge_data(e);
    Scratch& scratch = GetScratch(ctx->worker_index);
    if (ed.type == ColdEdge::Type::kUserTime) {
      for (text::PostId d : ed.posts) {
        SamplePostCommunity(d, &scratch, ctx->sampler);
        SamplePostTopic(d, &scratch, ctx->sampler);
      }
    } else if (use_network_) {
      SampleLink(ed.link, &scratch, ctx->sampler);
    }
  }

  void PostSuperstep(Graph*, int) {}

  /// Bytes of the global aggregator state broadcast each superstep:
  /// n_ck, n_c, n_kv, n_k, n_cc.
  int64_t GlobalStateBytes() const {
    const int64_t C = config_.num_communities;
    const int64_t K = config_.num_topics;
    const int64_t V = state_->V();
    return 4 * (C * K + C + K * V + K + C * C);
  }

  /// Work units: tokens plus per-post sampling cost for post edges; the
  /// link-table cost for link edges.
  int64_t EdgeWorkUnits(engine::EdgeId e) const {
    const ColdEdge& ed = graph_->edge_data(e);
    const int64_t C = config_.num_communities;
    const int64_t K = config_.num_topics;
    if (ed.type == ColdEdge::Type::kUserTime) {
      int64_t units = 0;
      for (text::PostId d : ed.posts) {
        units += posts_.length(d) + C + K;
      }
      return units;
    }
    return 2 * C;
  }

 private:
  struct Scratch {
    std::vector<double> weights_c;
    std::vector<double> log_weights_k;
    std::vector<std::pair<text::WordId, int>> word_counts;
  };

  Scratch& GetScratch(size_t worker) {
    Scratch& s = scratch_[worker];
    if (s.weights_c.empty()) {
      s.weights_c.resize(static_cast<size_t>(config_.num_communities));
      s.log_weights_k.resize(static_cast<size_t>(config_.num_topics));
    }
    return s;
  }

  // Eq. (1) with own-contribution exclusion against shared counters.
  void SamplePostCommunity(text::PostId d, Scratch* scratch,
                           cold::RandomSampler* sampler) {
    const int C = config_.num_communities;
    const double epsilon = config_.epsilon;
    const int c0 = state_->post_community[static_cast<size_t>(d)];
    const int k = state_->post_topic[static_cast<size_t>(d)];
    const int t = posts_.time(d);
    const text::UserId i = posts_.author(d);

    for (int c = 0; c < C; ++c) {
      int own = (c == c0) ? 1 : 0;
      double n_ick = state_->r_n_ic(i, c) - own;
      double n_ck = state_->r_n_ck(c, k) - own;
      double n_c = state_->r_n_c(c) - own;
      double n_ckt = state_->r_n_ckt(c, k, t) - own;
      // Stale counts can transiently dip below zero; clamp.
      n_ick = std::max(n_ick, 0.0);
      n_ck = std::max(n_ck, 0.0);
      n_c = std::max(n_c, 0.0);
      n_ckt = std::max(n_ckt, 0.0);
      scratch->weights_c[static_cast<size_t>(c)] =
          (n_ick + rho_) * ((n_ck + alpha_) / (n_c + kalpha_)) *
          ((n_ckt + epsilon) / (n_ck + teps_));
    }
    int c1 = sampler->Categorical(scratch->weights_c);
    if (c1 != c0) {
      state_->post_community[static_cast<size_t>(d)] =
          static_cast<int32_t>(c1);
      state_->n_ic(i, c0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ic(i, c1).fetch_add(1, std::memory_order_relaxed);
      state_->n_ck(c0, k).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ck(c1, k).fetch_add(1, std::memory_order_relaxed);
      state_->n_c(c0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_c(c1).fetch_add(1, std::memory_order_relaxed);
      state_->n_ckt(c0, k, t).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ckt(c1, k, t).fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Eq. (3) with own-contribution exclusion.
  void SamplePostTopic(text::PostId d, Scratch* scratch,
                       cold::RandomSampler* sampler) {
    const int K = config_.num_topics;
    const double beta = config_.beta;
    const double epsilon = config_.epsilon;
    const int c = state_->post_community[static_cast<size_t>(d)];
    const int k0 = state_->post_topic[static_cast<size_t>(d)];
    const int t = posts_.time(d);
    const int len = posts_.length(d);

    posts_.WordCounts(d, &scratch->word_counts);

    // Same lgamma-collapsed form as the serial TopicLogWeights; here the
    // counters are shared atomics so the log terms are computed live, but
    // the ascending-factorial loops still collapse to lgamma pairs.
    for (int k = 0; k < K; ++k) {
      int own = (k == k0) ? 1 : 0;
      double n_ck = std::max<double>(state_->r_n_ck(c, k) - own, 0.0);
      double n_ckt = std::max<double>(state_->r_n_ckt(c, k, t) - own, 0.0);
      double lw = std::log(n_ck + alpha_) +
                  std::log((n_ckt + epsilon) / (n_ck + teps_));
      for (const auto& [w, cnt] : scratch->word_counts) {
        double base =
            std::max<double>(state_->r_n_kv(k, w) - own * cnt, 0.0) + beta;
        lw += cold::LogAscendingFactorial(base, cnt);
      }
      double denom =
          std::max<double>(state_->r_n_k(k) - own * len, 0.0) + vbeta_;
      lw -= cold::LogAscendingFactorial(denom, len);
      scratch->log_weights_k[static_cast<size_t>(k)] = lw;
    }
    int k1 = sampler->LogCategorical(scratch->log_weights_k);
    if (k1 != k0) {
      state_->post_topic[static_cast<size_t>(d)] = static_cast<int32_t>(k1);
      state_->n_ck(c, k0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ck(c, k1).fetch_add(1, std::memory_order_relaxed);
      state_->n_ckt(c, k0, t).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ckt(c, k1, t).fetch_add(1, std::memory_order_relaxed);
      for (text::WordId w : posts_.words(d)) {
        state_->n_kv(k0, w).fetch_sub(1, std::memory_order_relaxed);
        state_->n_kv(k1, w).fetch_add(1, std::memory_order_relaxed);
      }
      state_->n_k(k0).fetch_sub(len, std::memory_order_relaxed);
      state_->n_k(k1).fetch_add(len, std::memory_order_relaxed);
    }
  }

  // Eq. (2), alternating conditionals (cheap and race-tolerant).
  void SampleLink(graph::EdgeId link, Scratch* scratch,
                  cold::RandomSampler* sampler) {
    const int C = config_.num_communities;
    const double lambda1 = config_.lambda1;
    const graph::Edge& edge = links_->edge(link);
    const int s0 = state_->link_src_community[static_cast<size_t>(link)];
    const int s20 = state_->link_dst_community[static_cast<size_t>(link)];

    // s | s'.
    for (int cc = 0; cc < C; ++cc) {
      int own = (cc == s0) ? 1 : 0;
      double n_ic =
          std::max<double>(state_->r_n_ic(edge.src, cc) - own, 0.0);
      double n =
          std::max<double>(state_->r_n_cc(cc, s20) - own, 0.0);
      scratch->weights_c[static_cast<size_t>(cc)] =
          (n_ic + rho_) * (n + lambda1) / (n + lambda0_ + lambda1);
    }
    int s1 = sampler->Categorical(scratch->weights_c);

    // s' | s (own contribution now sits at (s1, s20) only if s1 == s0).
    for (int cc = 0; cc < C; ++cc) {
      int own = (cc == s20) ? 1 : 0;
      double n_ic =
          std::max<double>(state_->r_n_ic(edge.dst, cc) - own, 0.0);
      int own_pair = (s1 == s0 && cc == s20) ? 1 : 0;
      double n = std::max<double>(state_->r_n_cc(s1, cc) - own_pair, 0.0);
      scratch->weights_c[static_cast<size_t>(cc)] =
          (n_ic + rho_) * (n + lambda1) / (n + lambda0_ + lambda1);
    }
    int s21 = sampler->Categorical(scratch->weights_c);

    if (s1 != s0) {
      state_->link_src_community[static_cast<size_t>(link)] =
          static_cast<int32_t>(s1);
      state_->n_ic(edge.src, s0).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ic(edge.src, s1).fetch_add(1, std::memory_order_relaxed);
    }
    if (s21 != s20) {
      state_->link_dst_community[static_cast<size_t>(link)] =
          static_cast<int32_t>(s21);
      state_->n_ic(edge.dst, s20).fetch_sub(1, std::memory_order_relaxed);
      state_->n_ic(edge.dst, s21).fetch_add(1, std::memory_order_relaxed);
    }
    if (s1 != s0 || s21 != s20) {
      state_->n_cc(s0, s20).fetch_sub(1, std::memory_order_relaxed);
      state_->n_cc(s1, s21).fetch_add(1, std::memory_order_relaxed);
    }
  }

  const ColdConfig& config_;
  const text::PostStore& posts_;
  const graph::Digraph* links_;
  ParallelColdState* state_;
  const Graph* graph_;
  bool use_network_;
  double lambda0_;
  double rho_;     // resolved membership prior
  double alpha_;   // resolved topic prior
  double kalpha_;  // K * alpha
  double teps_;    // T * epsilon
  double vbeta_;   // V * beta
  std::vector<Scratch> scratch_;
};

ParallelColdTrainer::ParallelColdTrainer(ColdConfig config,
                                         const text::PostStore& posts,
                                         const graph::Digraph* links,
                                         engine::EngineOptions engine_options)
    : config_(config),
      posts_(posts),
      links_(links),
      use_network_(config.use_network && links != nullptr &&
                   links->num_edges() > 0),
      engine_options_(engine_options) {}

ParallelColdTrainer::~ParallelColdTrainer() = default;

cold::Status ParallelColdTrainer::Init() {
  COLD_RETURN_NOT_OK(config_.Validate());
  if (!posts_.finalized()) {
    return cold::Status::FailedPrecondition("post store not finalized");
  }
  const int C = config_.num_communities;
  const int K = config_.num_topics;
  const int U = posts_.num_users();
  const int T = posts_.num_time_slices();
  int64_t num_links = use_network_ ? links_->num_edges() : 0;
  lambda0_ = use_network_ ? ComputeLambda0(config_, U, num_links)
                          : config_.lambda1;

  // Same vocab-size rule as the serial sampler: prefer the dataset-wide
  // vocabulary from config_.vocab_size over the training-split max word id,
  // which under-sizes n_kv/phi when held-out posts carry higher ids.
  int max_word = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    for (text::WordId w : posts_.words(d)) max_word = std::max(max_word, w + 1);
  }
  int vocab = max_word;
  if (config_.vocab_size > 0) {
    if (max_word > config_.vocab_size) {
      return cold::Status::InvalidArgument(
          "vocab_size " + std::to_string(config_.vocab_size) +
          " is smaller than max word id + 1 (" + std::to_string(max_word) +
          ")");
    }
    vocab = config_.vocab_size;
  }
  state_ = std::make_unique<ParallelColdState>(U, C, K, T, vocab,
                                               posts_.num_posts(), num_links);

  // Build the bipartite user-time graph plus user-user edges (Fig 4).
  graph_ = std::make_unique<Graph>();
  for (int i = 0; i < U; ++i) {
    graph_->AddVertex(ColdVertex{true, i});
  }
  for (int t = 0; t < T; ++t) {
    graph_->AddVertex(ColdVertex{false, t});
  }
  // Group each user's posts by time slice.
  for (int i = 0; i < U; ++i) {
    // Time slices are few; a local map via sort keeps this allocation-light.
    auto user_posts = posts_.posts_of(i);
    std::vector<text::PostId> sorted(user_posts.begin(), user_posts.end());
    std::sort(sorted.begin(), sorted.end(),
              [this](text::PostId a, text::PostId b) {
                return posts_.time(a) < posts_.time(b);
              });
    size_t p = 0;
    while (p < sorted.size()) {
      text::TimeSlice t = posts_.time(sorted[p]);
      ColdEdge edge;
      edge.type = ColdEdge::Type::kUserTime;
      while (p < sorted.size() && posts_.time(sorted[p]) == t) {
        edge.posts.push_back(sorted[p]);
        ++p;
      }
      graph_->AddEdge(static_cast<engine::VertexId>(i),
                      static_cast<engine::VertexId>(U + t), std::move(edge));
    }
  }
  if (use_network_) {
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      ColdEdge edge;
      edge.type = ColdEdge::Type::kUserUser;
      edge.link = e;
      graph_->AddEdge(static_cast<engine::VertexId>(links_->edge(e).src),
                      static_cast<engine::VertexId>(links_->edge(e).dst),
                      std::move(edge));
    }
  }
  graph_->Finalize();

  // Random initial assignments + counter build (serial; cheap).
  cold::RandomSampler init_sampler(config_.seed, /*stream=*/5);
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    int c = static_cast<int>(init_sampler.UniformInt(static_cast<uint32_t>(C)));
    int k = static_cast<int>(init_sampler.UniformInt(static_cast<uint32_t>(K)));
    state_->post_community[static_cast<size_t>(d)] = c;
    state_->post_topic[static_cast<size_t>(d)] = k;
    text::UserId i = posts_.author(d);
    state_->n_ic(i, c).fetch_add(1, std::memory_order_relaxed);
    state_->n_i(i).fetch_add(1, std::memory_order_relaxed);
    state_->n_ck(c, k).fetch_add(1, std::memory_order_relaxed);
    state_->n_c(c).fetch_add(1, std::memory_order_relaxed);
    state_->n_ckt(c, k, posts_.time(d)).fetch_add(1, std::memory_order_relaxed);
    for (text::WordId w : posts_.words(d)) {
      state_->n_kv(k, w).fetch_add(1, std::memory_order_relaxed);
    }
    state_->n_k(k).fetch_add(posts_.length(d), std::memory_order_relaxed);
  }
  if (use_network_) {
    for (graph::EdgeId e = 0; e < links_->num_edges(); ++e) {
      int s = static_cast<int>(
          init_sampler.UniformInt(static_cast<uint32_t>(C)));
      int s2 = static_cast<int>(
          init_sampler.UniformInt(static_cast<uint32_t>(C)));
      state_->link_src_community[static_cast<size_t>(e)] = s;
      state_->link_dst_community[static_cast<size_t>(e)] = s2;
      const graph::Edge& edge = links_->edge(e);
      state_->n_ic(edge.src, s).fetch_add(1, std::memory_order_relaxed);
      state_->n_i(edge.src).fetch_add(1, std::memory_order_relaxed);
      state_->n_ic(edge.dst, s2).fetch_add(1, std::memory_order_relaxed);
      state_->n_i(edge.dst).fetch_add(1, std::memory_order_relaxed);
      state_->n_cc(s, s2).fetch_add(1, std::memory_order_relaxed);
    }
  }

  program_ = std::make_unique<ColdVertexProgram>(
      config_, posts_, links_, state_.get(), graph_.get(), use_network_,
      lambda0_);
  engine_ = std::make_unique<
      engine::GasEngine<ColdVertex, ColdEdge, ColdVertexProgram>>(
      graph_.get(), program_.get(), engine_options_);
  supersteps_run_ = 0;
  initialized_ = true;
  return cold::Status::OK();
}

cold::Status ParallelColdTrainer::Train() {
  if (!initialized_) {
    return cold::Status::FailedPrecondition("call Init() before Train()");
  }
  int64_t total_tokens = 0;
  for (text::PostId d = 0; d < posts_.num_posts(); ++d) {
    total_tokens += posts_.length(d);
  }
  // One engine iteration at a time (respecting the execution mode) so the
  // per-superstep observer sees every boundary. Resume-aware: a trainer
  // restored from a checkpoint runs only the remaining supersteps.
  while (supersteps_run_ < config_.iterations) {
    double superstep_seconds = 0.0;
    {
      cold::ScopedTimer timer(superstep_seconds);
      engine_->Run(1);
    }
    supersteps_run_++;
    ParallelMetrics& metrics = Metrics();
    metrics.supersteps->Increment();
    metrics.superstep_seconds->Set(superstep_seconds);
    if (superstep_seconds > 0.0) {
      metrics.tokens_per_second->Set(static_cast<double>(total_tokens) /
                                     superstep_seconds);
    }
    if (superstep_callback_) superstep_callback_(supersteps_run_);
    // After the callback — the superstep-barrier checkpoint must be durable
    // before the injected crash fires.
    cold::FaultInjector::Global().MaybeCrash("after_sweep", supersteps_run_);
  }
  return cold::Status::OK();
}

void ParallelColdTrainer::RunSuperstep() {
  engine_->RunSuperstep();
  supersteps_run_++;
}

std::vector<cold::RngState> ParallelColdTrainer::EngineSamplerStates() const {
  return engine_->SamplerStates();
}

cold::Status ParallelColdTrainer::EngineRestoreSamplerStates(
    const std::vector<cold::RngState>& states) {
  return engine_->RestoreSamplerStates(states);
}

ColdEstimates ParallelColdTrainer::Estimates() const {
  ColdState snapshot = state_->ToColdState();
  return ExtractEstimates(snapshot, config_, lambda0_);
}

ColdState ParallelColdTrainer::StateSnapshot() const {
  return state_->ToColdState();
}

const engine::EngineStats& ParallelColdTrainer::engine_stats() const {
  static const engine::EngineStats kEmpty;
  return engine_ != nullptr ? engine_->stats() : kEmpty;
}

double ParallelColdTrainer::SimulatedWallSeconds(
    const engine::ClusterModel& model) const {
  return engine_ != nullptr ? engine_->SimulatedWallSeconds(model) : 0.0;
}

}  // namespace cold::core
