#include "core/alias_table.h"

#include <cmath>

namespace cold::core {

void AliasTable::Build(std::span<const double> weights) {
  const size_t n = weights.size();
  accept_.assign(n, 1.0);
  alias_.resize(n);
  prob_.resize(n);
  log_prob_.resize(n);
  for (size_t i = 0; i < n; ++i) alias_[i] = static_cast<int32_t>(i);
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) total += w;
  if (!(total > 0.0) || !std::isfinite(total)) {
    const double p = 1.0 / static_cast<double>(n);
    const double lp = -std::log(static_cast<double>(n));
    for (size_t i = 0; i < n; ++i) {
      prob_[i] = p;
      log_prob_[i] = lp;
    }
    return;
  }

  scaled_.resize(n);
  small_.clear();
  large_.clear();
  const double dn = static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    prob_[i] = weights[i] / total;
    log_prob_[i] = std::log(prob_[i]);
    scaled_[i] = prob_[i] * dn;
    if (scaled_[i] < 1.0) {
      small_.push_back(static_cast<int32_t>(i));
    } else {
      large_.push_back(static_cast<int32_t>(i));
    }
  }

  // Vose pairing. Stacks were filled in ascending index order and are
  // drained LIFO, so the pairing — and therefore every Sample() outcome
  // for a given RNG state — is a deterministic function of the weights.
  while (!small_.empty() && !large_.empty()) {
    const int32_t s = small_.back();
    small_.pop_back();
    const int32_t l = large_.back();
    accept_[static_cast<size_t>(s)] = scaled_[static_cast<size_t>(s)];
    alias_[static_cast<size_t>(s)] = l;
    scaled_[static_cast<size_t>(l)] -= 1.0 - scaled_[static_cast<size_t>(s)];
    if (scaled_[static_cast<size_t>(l)] < 1.0) {
      large_.pop_back();
      small_.push_back(l);
    }
  }
  // Leftovers (FP residue near 1.0) keep the accept_ = 1.0 / self-alias
  // defaults set above.
}

}  // namespace cold::core
