// Scenario: a marketing team launching a campaign on a specific topic wants
// to pick which COMMUNITIES to seed (fan pages, sponsorships) and which
// users inside them to approach — the §6.6 application: Independent Cascade
// on the extracted community-level diffusion graph, plus greedy seed-set
// selection under a budget.
#include <cstdio>

#include "apps/independent_cascade.h"
#include "apps/influence.h"
#include "core/cold.h"
#include "data/synthetic.h"
#include "util/logging.h"
#include "util/math_util.h"

int main() {
  using namespace cold;
  Logger::SetLevel(LogLevel::kWarning);

  data::SyntheticConfig data_config;
  data_config.num_users = 600;
  data_config.num_communities = 8;
  data_config.num_topics = 12;
  auto dataset = std::move(
      data::SyntheticSocialGenerator(data_config).Generate()).ValueOrDie();

  core::ColdConfig config;
  config.num_communities = 8;
  config.num_topics = 12;
  config.rho = 0.5;
  config.alpha = 0.5;
  config.kappa = 10.0;
  config.iterations = 150;
  config.burn_in = 110;
  core::ColdGibbsSampler sampler(config, dataset.posts, &dataset.interactions);
  if (!sampler.Init().ok() || !sampler.Train().ok()) return 1;
  core::ColdEstimates estimates = sampler.AveragedEstimates();

  // The campaign topic: whichever extracted topic carries the most
  // community interest (stand-in for "Sports" in the paper's Fig 16).
  int topic = 0;
  double best = -1.0;
  for (int k = 0; k < estimates.K; ++k) {
    double mass = 0.0;
    for (int c = 0; c < estimates.C; ++c) mass += estimates.Theta(c, k);
    if (mass > best) {
      best = mass;
      topic = k;
    }
  }
  std::printf("campaign topic %d, top words:", topic);
  for (int w : estimates.TopWords(topic, 6)) {
    std::printf(" %s", dataset.vocabulary.word(w).c_str());
  }
  std::printf("\n\n");

  // 1. Which single community is the best launch point?
  auto ranked = apps::RankCommunitiesByInfluence(estimates, topic,
                                                 /*trials=*/4000, 2024);
  std::printf("community influence ranking (expected IC spread):\n");
  for (const auto& ci : ranked) {
    std::printf("  community %-3d spread %.3f  (topic interest %.4f)\n",
                ci.community, ci.influence_degree, ci.topic_interest);
  }

  // 2. With budget for two seed communities, greedy selection maximizes
  //    marginal spread (Kempe et al. 2003).
  apps::DiffusionGraph graph =
      apps::BuildTopicDiffusionGraph(estimates, topic, /*max_edge_prob=*/0.5);
  auto seeds = apps::GreedySeedSelection(graph, /*budget=*/2,
                                         /*trials=*/2000, 2024);
  RandomSampler spread_sampler(99);
  double spread = apps::ExpectedSpread(graph, seeds, 4000, &spread_sampler);
  std::printf("\ngreedy 2-community seed set: {");
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", seeds[i]);
  }
  std::printf("} expected spread %.3f of %d communities\n", spread,
              estimates.C);

  // 3. Whom to approach: the most influential users, ranked by
  //    membership-weighted community influence.
  auto user_influence = apps::UserInfluenceDegrees(estimates, ranked);
  std::printf("\ntop users to approach:\n");
  for (int u : TopKIndices(user_influence, 5)) {
    const auto& top_comm = estimates.TopCommunitiesForUser(u, 1);
    std::printf("  user %-5d influence %.4f (mainly community %d)\n", u,
                user_influence[static_cast<size_t>(u)], top_comm[0]);
  }
  return 0;
}
