file(REMOVE_RECURSE
  "../bench/fig12_diffusion_auc"
  "../bench/fig12_diffusion_auc.pdb"
  "CMakeFiles/fig12_diffusion_auc.dir/fig12_diffusion_auc.cc.o"
  "CMakeFiles/fig12_diffusion_auc.dir/fig12_diffusion_auc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_diffusion_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
