// Lightweight trace spans feeding the metrics registry.
//
//   void ColdGibbsSampler::RunIteration() {
//     COLD_TRACE_SPAN("gibbs/sweep");
//     ...
//   }
//
// A span measures the enclosing scope's wall time and records it into the
// duration histogram `cold/trace/<name>` (seconds). Spans nest: a
// thread-local depth is tracked so ring-buffer events can be re-assembled
// into a call tree. When the optional in-memory ring buffer is enabled
// (TraceRing::Enable), each completed span also appends a TraceEvent.
//
// Spans follow the registry's global switch: with Registry::Disable() a
// span is a relaxed load + branch and never reads the clock.
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>
#include <vector>

namespace cold::obs {

/// \brief One completed span, as captured by the ring buffer.
struct TraceEvent {
  std::string name;
  /// Start offset in seconds on the process-wide monotonic clock.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Nesting depth on the recording thread (outermost span = 1).
  int depth = 0;
  /// Small sequential id of the recording thread (first thread to record
  /// a span = 1). Stable for the thread's lifetime; friendlier in trace
  /// viewers than kernel tids.
  int tid = 0;
};

/// \brief Optional process-wide ring buffer of completed spans (newest
/// overwrite oldest). Disabled (zero-cost beyond one relaxed load) until
/// Enable() is called.
class TraceRing {
 public:
  /// Enables capture with space for `capacity` events; clears prior events.
  static void Enable(size_t capacity = 4096);
  static void Disable();
  static bool enabled();

  /// Buffered events, oldest first.
  static std::vector<TraceEvent> Events();
  static void Clear();

  /// Appends one event (called by ~TraceSpan; public for tests).
  static void Push(TraceEvent event);
};

/// \brief RAII span. Prefer the COLD_TRACE_SPAN macro. `name` must outlive
/// the span (string literals do).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool active_ = false;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

#define COLD_OBS_CONCAT_INNER(a, b) a##b
#define COLD_OBS_CONCAT(a, b) COLD_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define COLD_TRACE_SPAN(name) \
  ::cold::obs::TraceSpan COLD_OBS_CONCAT(cold_trace_span_, __LINE__)(name)

/// \brief Serializes events as a Chrome Trace Event ("Trace Event Format")
/// JSON array of complete ("X") events — loadable in ui.perfetto.dev and
/// chrome://tracing. Timestamps/durations are microseconds; one viewer
/// track per recording thread.
void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);

/// \brief Convenience: WriteChromeTrace of the current ring contents to
/// `path`. Returns false (and logs) when the file cannot be written.
bool ExportChromeTrace(const std::string& path);

}  // namespace cold::obs
