// Ground-truth recovery study (only possible on the synthetic substitute —
// the paper had no planted truth): how well do the extracted factors match
// the planted ones as the model capacity (C, K) varies? Complements the
// predictive sensitivity studies of Figs 17-19 with direct latent-space
// measurements.
#include "common.h"
#include "eval/alignment.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader(
      "recovery: planted-vs-extracted latent quality across capacity");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  // Planted sizes: C = 8, K = 12.

  std::printf("%-10s %12s %12s %12s\n", "(C, K)", "phi cosine",
              "theta cosine", "post NMI");
  for (int C : {4, 8, 16}) {
    for (int K : {6, 12, 20}) {
      core::ColdConfig config = bench::BenchColdConfig(C, K, 100);
      core::ColdGibbsSampler sampler(config, dataset.posts,
                                     &dataset.interactions);
      if (!sampler.Init().ok() || !sampler.Train().ok()) return 1;
      core::ColdEstimates est = sampler.AveragedEstimates();

      std::vector<std::vector<double>> learned_phi;
      for (int k = 0; k < est.K; ++k) {
        std::vector<double> row(static_cast<size_t>(est.V));
        for (int v = 0; v < est.V; ++v) {
          row[static_cast<size_t>(v)] = est.Phi(k, v);
        }
        learned_phi.push_back(std::move(row));
      }
      double phi_cos = eval::GreedyMatchedCosine(dataset.truth.phi,
                                                 learned_phi);

      // theta rows are only comparable after matching topics; remap the
      // learned theta columns through the phi matching.
      std::vector<int> topic_match =
          eval::GreedyMatching(dataset.truth.phi, learned_phi);
      std::vector<std::vector<double>> learned_theta;
      for (int c = 0; c < est.C; ++c) {
        std::vector<double> row(dataset.truth.theta[0].size(), 0.0);
        for (size_t kt = 0; kt < row.size(); ++kt) {
          int kl = kt < topic_match.size() ? topic_match[kt] : -1;
          if (kl >= 0) row[kt] = est.Theta(c, kl);
        }
        learned_theta.push_back(std::move(row));
      }
      double theta_cos =
          eval::GreedyMatchedCosine(dataset.truth.theta, learned_theta);

      std::vector<int> planted(dataset.truth.post_community.begin(),
                               dataset.truth.post_community.end());
      std::vector<int> estimated(sampler.state().post_community.begin(),
                                 sampler.state().post_community.end());
      double nmi = eval::NormalizedMutualInformation(planted, estimated);

      std::printf("(%2d, %2d)   %12.3f %12.3f %12.3f\n", C, K, phi_cos,
                  theta_cos, nmi);
    }
  }
  std::printf(
      "\n(expected: phi cosine improves with K and saturates past the\n"
      " planted 12; community NMI is modest at every C — with mixed\n"
      " memberships and shared interests the per-post community label is\n"
      " genuinely ambiguous, which is the robustness argument for\n"
      " community-LEVEL aggregates over individual attribution)\n");
  return 0;
}
