// Figure 8: word clouds of extracted topics — printed as top-word lists.
// Because the synthetic vocabulary names each planted topic's core words
// after a theme, a correct extraction shows theme-pure word lists.
#include "common.h"

int main() {
  using namespace cold;
  bench::QuietLogs();
  bench::PrintHeader("Fig 8: word clouds of extracted topics");

  data::SocialDataset dataset =
      bench::GenerateBenchData(bench::BenchDataConfig());
  core::ColdEstimates estimates = bench::TrainCold(
      bench::BenchColdConfig(), dataset.posts, &dataset.interactions);

  for (int k = 0; k < std::min(4, estimates.K); ++k) {
    std::printf("topic %d:", k);
    for (int w : estimates.TopWords(k, 12)) {
      std::printf(" %s(%.3f)", dataset.vocabulary.word(w).c_str(),
                  estimates.Phi(k, w));
    }
    std::printf("\n");
  }
  return 0;
}
