file(REMOVE_RECURSE
  "CMakeFiles/cold_apps.dir/diffusion_graph.cc.o"
  "CMakeFiles/cold_apps.dir/diffusion_graph.cc.o.d"
  "CMakeFiles/cold_apps.dir/independent_cascade.cc.o"
  "CMakeFiles/cold_apps.dir/independent_cascade.cc.o.d"
  "CMakeFiles/cold_apps.dir/influence.cc.o"
  "CMakeFiles/cold_apps.dir/influence.cc.o.d"
  "CMakeFiles/cold_apps.dir/patterns.cc.o"
  "CMakeFiles/cold_apps.dir/patterns.cc.o.d"
  "CMakeFiles/cold_apps.dir/user_influence.cc.o"
  "CMakeFiles/cold_apps.dir/user_influence.cc.o.d"
  "libcold_apps.a"
  "libcold_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
