# Empty compiler generated dependencies file for cold_engine.
# This may be replaced when dependencies are built.
