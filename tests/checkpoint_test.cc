// Checkpoint/resume tests: payload round-trips, rotation, deterministic
// resume for both trainers, fault-injector spec parsing, and the full
// crash-recovery integration test (fork + SIGKILL mid-training, resume,
// bit-identical final estimates).
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/checkpoint.h"
#include "core/cold.h"
#include "data/synthetic.h"
#include "util/fault_injector.h"
#include "util/fileio.h"

namespace cold {
namespace {

namespace fs = std::filesystem;
using core::CheckpointFlavor;
using core::CheckpointManager;
using core::CheckpointMeta;
using core::CheckpointOptions;

const data::SocialDataset& TestData() {
  static const data::SocialDataset* ds = [] {
    data::SyntheticConfig config;
    config.num_users = 40;
    config.num_communities = 3;
    config.num_topics = 4;
    config.num_time_slices = 6;
    config.core_words_per_topic = 5;
    config.background_words = 12;
    config.posts_per_user = 4.0;
    config.words_per_post = 5.0;
    config.follows_per_user = 4;
    auto generated = data::SyntheticSocialGenerator(config).Generate();
    return new data::SocialDataset(std::move(generated).ValueOrDie());
  }();
  return *ds;
}

core::ColdConfig TestConfig() {
  core::ColdConfig config;
  config.num_communities = 3;
  config.num_topics = 4;
  config.iterations = 20;
  config.burn_in = 10;
  config.sample_lag = 2;
  config.seed = 7;
  return config;
}

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cold_ckpt_test_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// ------------------------------------------------------ manager basics --

TEST_F(CheckpointDirTest, WriteThenLoadLatestRoundTrips) {
  CheckpointManager mgr({dir_, /*every=*/1, /*keep_last=*/3});
  ASSERT_TRUE(mgr.Init().ok());
  CheckpointMeta meta;
  meta.flavor = CheckpointFlavor::kSerial;
  meta.sweep = 12;
  meta.data_fingerprint = 0xdeadbeefcafef00dULL;
  const std::string payload = "not a real payload, but faithfully stored";
  ASSERT_TRUE(mgr.Write(meta, payload).ok());

  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.sweep, 12);
  EXPECT_EQ(loaded->meta.flavor, CheckpointFlavor::kSerial);
  EXPECT_EQ(loaded->meta.data_fingerprint, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(loaded->payload, payload);
  EXPECT_EQ(loaded->meta.format_version, core::kCheckpointFormatVersion);
}

TEST_F(CheckpointDirTest, RotationKeepsNewestN) {
  CheckpointManager mgr({dir_, 1, /*keep_last=*/3});
  ASSERT_TRUE(mgr.Init().ok());
  for (int sweep = 1; sweep <= 5; ++sweep) {
    CheckpointMeta meta;
    meta.sweep = sweep;
    ASSERT_TRUE(mgr.Write(meta, "payload").ok());
  }
  auto files = mgr.ListFiles();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].first, 3);
  EXPECT_EQ(files[1].first, 4);
  EXPECT_EQ(files[2].first, 5);
}

TEST_F(CheckpointDirTest, LoadLatestOnEmptyDirIsNotFound) {
  CheckpointManager mgr({dir_, 1, 3});
  ASSERT_TRUE(mgr.Init().ok());
  auto loaded = mgr.LoadLatest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointDirTest, AtomicWriteLeavesNoTempFiles) {
  CheckpointManager mgr({dir_, 1, 3});
  ASSERT_TRUE(mgr.Init().ok());
  CheckpointMeta meta;
  meta.sweep = 1;
  ASSERT_TRUE(mgr.Write(meta, "payload").ok());
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".cold") << entry.path();
  }
}

// ------------------------------------------------- serial bit-identity --

TEST_F(CheckpointDirTest, SerialResumeIsBitIdentical) {
  const auto& ds = TestData();
  const core::ColdConfig config = TestConfig();

  // Uninterrupted reference run.
  core::ColdGibbsSampler reference(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());
  const core::ColdEstimates expected = reference.AveragedEstimates();

  // Same run, but snapshot the complete state mid-schedule (after the
  // burn-in boundary so the sample accumulator is non-trivial).
  core::ColdGibbsSampler first(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(first.Init().ok());
  std::string snapshot;
  first.SetSweepCallback([&](int sweep) {
    if (sweep == 13) {
      ASSERT_TRUE(first.SerializeState(&snapshot).ok());
    }
  });
  ASSERT_TRUE(first.Train().ok());
  ASSERT_FALSE(snapshot.empty());

  // Fresh sampler restored from the snapshot finishes the schedule and
  // reproduces the reference estimates exactly.
  core::ColdGibbsSampler resumed(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.RestoreState(snapshot).ok());
  EXPECT_EQ(resumed.iterations_run(), 13);
  ASSERT_TRUE(resumed.Train().ok());
  const core::ColdEstimates actual = resumed.AveragedEstimates();

  EXPECT_EQ(actual.pi, expected.pi);
  EXPECT_EQ(actual.theta, expected.theta);
  EXPECT_EQ(actual.eta, expected.eta);
  EXPECT_EQ(actual.phi, expected.phi);
  EXPECT_EQ(actual.psi, expected.psi);
}

TEST_F(CheckpointDirTest, SerialSerializeRestoreSerializeIsStable) {
  const auto& ds = TestData();
  core::ColdGibbsSampler sampler(TestConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  for (int i = 0; i < 5; ++i) sampler.RunIteration();
  std::string snapshot;
  ASSERT_TRUE(sampler.SerializeState(&snapshot).ok());

  core::ColdGibbsSampler restored(TestConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(restored.Init().ok());
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  std::string again;
  ASSERT_TRUE(restored.SerializeState(&again).ok());
  EXPECT_EQ(snapshot, again);
}

TEST_F(CheckpointDirTest, SerialRestoreRejectsDifferentSchedule) {
  const auto& ds = TestData();
  core::ColdGibbsSampler sampler(TestConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  std::string snapshot;
  ASSERT_TRUE(sampler.SerializeState(&snapshot).ok());

  core::ColdConfig other = TestConfig();
  other.seed = 8;
  core::ColdGibbsSampler mismatched(other, ds.posts, &ds.interactions);
  ASSERT_TRUE(mismatched.Init().ok());
  auto st = mismatched.RestoreState(snapshot);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointDirTest, SerialRestoreRejectsDifferentShape) {
  const auto& ds = TestData();
  core::ColdGibbsSampler sampler(TestConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(sampler.Init().ok());
  std::string snapshot;
  ASSERT_TRUE(sampler.SerializeState(&snapshot).ok());

  core::ColdConfig other = TestConfig();
  other.num_communities = 5;
  core::ColdGibbsSampler mismatched(other, ds.posts, &ds.interactions);
  ASSERT_TRUE(mismatched.Init().ok());
  auto st = mismatched.RestoreState(snapshot);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------- parallel bit-identity --

TEST_F(CheckpointDirTest, ParallelSingleWorkerResumeIsBitIdentical) {
  // With one worker the GAS engine is fully deterministic, so resume must
  // be exact. (Multi-worker runs interleave relaxed-atomic counter updates
  // non-deterministically; see DESIGN.md.)
  const auto& ds = TestData();
  const core::ColdConfig config = TestConfig();
  engine::EngineOptions options;
  options.num_nodes = 1;
  options.threads_per_node = 1;

  core::ParallelColdTrainer reference(config, ds.posts, &ds.interactions,
                                      options);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());
  const core::ColdEstimates expected = reference.Estimates();

  core::ParallelColdTrainer first(config, ds.posts, &ds.interactions,
                                  options);
  ASSERT_TRUE(first.Init().ok());
  std::string snapshot;
  first.SetSuperstepCallback([&](int sweep) {
    if (sweep == 11) {
      ASSERT_TRUE(first.SerializeState(&snapshot).ok());
    }
  });
  ASSERT_TRUE(first.Train().ok());
  ASSERT_FALSE(snapshot.empty());

  core::ParallelColdTrainer resumed(config, ds.posts, &ds.interactions,
                                    options);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.RestoreState(snapshot).ok());
  EXPECT_EQ(resumed.supersteps_run(), 11);
  ASSERT_TRUE(resumed.Train().ok());
  const core::ColdEstimates actual = resumed.Estimates();

  EXPECT_EQ(actual.pi, expected.pi);
  EXPECT_EQ(actual.theta, expected.theta);
  EXPECT_EQ(actual.eta, expected.eta);
  EXPECT_EQ(actual.phi, expected.phi);
  EXPECT_EQ(actual.psi, expected.psi);
}

TEST_F(CheckpointDirTest, ParallelMultiWorkerResumeIsBitIdentical) {
  // Delta-table scatter keys every draw by (superstep, chunk) and merges
  // counters in fixed per-cell order, so resume is exact even with several
  // workers (oversubscribed so the path is real on any host).
  const auto& ds = TestData();
  const core::ColdConfig config = TestConfig();
  engine::EngineOptions options;
  options.num_nodes = 1;
  options.threads_per_node = 4;
  options.oversubscribe = true;

  core::ParallelColdTrainer reference(config, ds.posts, &ds.interactions,
                                      options);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());
  std::string expected;
  ASSERT_TRUE(reference.SerializeState(&expected).ok());

  core::ParallelColdTrainer first(config, ds.posts, &ds.interactions,
                                  options);
  ASSERT_TRUE(first.Init().ok());
  std::string snapshot;
  first.SetSuperstepCallback([&](int sweep) {
    if (sweep == 11) {
      ASSERT_TRUE(first.SerializeState(&snapshot).ok());
    }
  });
  ASSERT_TRUE(first.Train().ok());
  ASSERT_FALSE(snapshot.empty());

  core::ParallelColdTrainer resumed(config, ds.posts, &ds.interactions,
                                    options);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.RestoreState(snapshot).ok());
  EXPECT_EQ(resumed.supersteps_run(), 11);
  ASSERT_TRUE(resumed.Train().ok());
  std::string actual;
  ASSERT_TRUE(resumed.SerializeState(&actual).ok());
  EXPECT_EQ(actual, expected);
}

TEST_F(CheckpointDirTest, ParallelRestoreKeepsCountersConsistent) {
  // Multi-worker restore cannot promise bit-identity, but the restored
  // counters must still agree with a recount from the assignments.
  const auto& ds = TestData();
  engine::EngineOptions options;
  options.num_nodes = 2;
  options.threads_per_node = 2;

  core::ParallelColdTrainer trainer(TestConfig(), ds.posts, &ds.interactions,
                                    options);
  ASSERT_TRUE(trainer.Init().ok());
  for (int s = 0; s < 4; ++s) trainer.RunSuperstep();
  std::string snapshot;
  ASSERT_TRUE(trainer.SerializeState(&snapshot).ok());

  core::ParallelColdTrainer restored(TestConfig(), ds.posts,
                                     &ds.interactions, options);
  ASSERT_TRUE(restored.Init().ok());
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  EXPECT_EQ(restored.supersteps_run(), 4);
  auto st = restored.StateSnapshot().CheckInvariants(ds.posts,
                                                     &ds.interactions, true);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(CheckpointDirTest, ParallelRestoreRejectsWorkerCountMismatch) {
  // The engine caps its pool at the host's core count, so a different
  // --parallel configuration cannot reliably produce a different worker
  // count here. Instead, forge a payload with one extra RNG stream: the
  // tail of a parallel payload is [worker count u32][count x 25-byte
  // RngState], so duplicating the last stream and bumping the count yields
  // a structurally valid checkpoint from a larger pool.
  const auto& ds = TestData();
  engine::EngineOptions options;
  options.num_nodes = 1;
  options.threads_per_node = 1;
  core::ParallelColdTrainer trainer(TestConfig(), ds.posts, &ds.interactions,
                                    options);
  ASSERT_TRUE(trainer.Init().ok());
  std::string snapshot;
  ASSERT_TRUE(trainer.SerializeState(&snapshot).ok());

  constexpr size_t kRngStateBytes = 8 + 8 + 1 + 8;
  size_t count_offset = 0;
  uint32_t workers = 0;
  for (uint32_t n = 1; n <= 4096; ++n) {
    const size_t offset = snapshot.size() - 4 - kRngStateBytes * n;
    uint32_t stored = 0;
    std::memcpy(&stored, snapshot.data() + offset, sizeof stored);
    if (stored == n) {
      count_offset = offset;
      workers = n;
      break;
    }
  }
  ASSERT_GT(workers, 0u) << "could not locate the worker-count field";

  std::string forged = snapshot;
  const uint32_t bumped = workers + 1;
  std::memcpy(forged.data() + count_offset, &bumped, sizeof bumped);
  forged += snapshot.substr(snapshot.size() - kRngStateBytes);

  core::ParallelColdTrainer same(TestConfig(), ds.posts, &ds.interactions,
                                 options);
  ASSERT_TRUE(same.Init().ok());
  auto st = same.RestoreState(forged);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("worker"), std::string::npos) << st.ToString();
  // The unmodified payload still restores into the same layout.
  EXPECT_TRUE(same.RestoreState(snapshot).ok());
}

TEST_F(CheckpointDirTest, SerialAndParallelPayloadsAreNotInterchangeable) {
  const auto& ds = TestData();
  core::ColdGibbsSampler serial(TestConfig(), ds.posts, &ds.interactions);
  ASSERT_TRUE(serial.Init().ok());
  std::string snapshot;
  ASSERT_TRUE(serial.SerializeState(&snapshot).ok());

  engine::EngineOptions options;
  options.num_nodes = 1;
  options.threads_per_node = 1;
  core::ParallelColdTrainer parallel(TestConfig(), ds.posts,
                                     &ds.interactions, options);
  ASSERT_TRUE(parallel.Init().ok());
  // The serial payload lacks the worker RNG section; the parallel reader
  // must fail cleanly rather than misinterpret bytes.
  EXPECT_FALSE(parallel.RestoreState(snapshot).ok());
}

// ------------------------------------------------------- fault injector --

TEST(FaultInjectorTest, ParsesWellFormedSpec) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("after_sweep:5").ok());
  EXPECT_TRUE(injector.armed());
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  FaultInjector injector;
  EXPECT_FALSE(injector.Configure("after_sweep").ok());
  EXPECT_FALSE(injector.Configure("after_sweep:").ok());
  EXPECT_FALSE(injector.Configure("after_sweep:abc").ok());
  EXPECT_FALSE(injector.Configure("after_sweep:-3").ok());
  EXPECT_FALSE(injector.Configure(":5").ok());
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, EmptySpecDisarms) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("after_sweep:5").ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.Configure("").ok());
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector injector;
  // Would SIGKILL the test binary if it fired.
  injector.MaybeCrash("after_sweep", 1);
  ASSERT_TRUE(injector.Configure("after_sweep:5").ok());
  injector.MaybeCrash("after_sweep", 4);
  injector.MaybeCrash("other_point", 5);
  injector.Disarm();
  injector.MaybeCrash("after_sweep", 5);
}

// ------------------------------------------- crash/recovery integration --

/// The acceptance test of the fault-tolerance design: a child process
/// trains with periodic checkpoints and is SIGKILLed mid-run by the fault
/// injector (no destructors, no flushes — exactly like kill -9). The
/// parent then resumes from the surviving checkpoint directory and must
/// reproduce the uninterrupted run's estimates bit-for-bit.
TEST_F(CheckpointDirTest, KilledTrainingResumesBitIdentical) {
  const auto& ds = TestData();
  const core::ColdConfig config = TestConfig();

  core::ColdGibbsSampler reference(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(reference.Init().ok());
  ASSERT_TRUE(reference.Train().ok());
  const core::ColdEstimates expected = reference.AveragedEstimates();

  const uint64_t fingerprint =
      core::DataFingerprint(ds.posts, &ds.interactions);
  const CheckpointOptions ckpt_options{dir_, /*every=*/2, /*keep_last=*/3};

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: checkpoint every 2 sweeps, die at sweep 13.
    CheckpointManager mgr(ckpt_options);
    if (!mgr.Init().ok()) ::_exit(3);
    core::ColdGibbsSampler sampler(config, ds.posts, &ds.interactions);
    if (!sampler.Init().ok()) ::_exit(4);
    sampler.SetSweepCallback([&](int sweep) {
      if (!mgr.ShouldCheckpoint(sweep)) return;
      std::string payload;
      if (!sampler.SerializeState(&payload).ok()) ::_exit(5);
      CheckpointMeta meta;
      meta.sweep = sweep;
      meta.data_fingerprint = fingerprint;
      if (!mgr.Write(meta, payload).ok()) ::_exit(6);
    });
    if (!FaultInjector::Global().Configure("after_sweep:13").ok()) ::_exit(7);
    (void)sampler.Train();
    ::_exit(8);  // unreachable: the injector must have killed us
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited with " << WEXITSTATUS(wstatus)
      << " instead of being killed";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Recover exactly as cold_train --resume does.
  CheckpointManager mgr(ckpt_options);
  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.sweep, 12);
  ASSERT_EQ(loaded->meta.data_fingerprint, fingerprint);

  core::ColdGibbsSampler resumed(config, ds.posts, &ds.interactions);
  ASSERT_TRUE(resumed.Init().ok());
  ASSERT_TRUE(resumed.RestoreState(loaded->payload).ok());
  ASSERT_TRUE(resumed.Train().ok());
  const core::ColdEstimates actual = resumed.AveragedEstimates();

  EXPECT_EQ(actual.pi, expected.pi);
  EXPECT_EQ(actual.theta, expected.theta);
  EXPECT_EQ(actual.eta, expected.eta);
  EXPECT_EQ(actual.phi, expected.phi);
  EXPECT_EQ(actual.psi, expected.psi);
}

}  // namespace
}  // namespace cold
