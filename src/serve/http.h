// HTTP/1.1 wire types for the serving layer: request parsing from a
// blocking socket, response serialization, and a tiny loopback client used
// by tests and examples. Dependency-free (POSIX sockets only).
//
// The parser is deliberately strict and bounded: header block and body
// sizes are capped, unsupported transfer encodings are rejected, and any
// malformed input yields a Status the server maps to a 4xx — never a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace cold::serve {

/// \brief Parsed request line + headers + body.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase as sent).
  std::string path;     // Path component, query string stripped.
  std::string query;    // Raw query string (no leading '?'), may be empty.
  std::string version;  // "HTTP/1.1".
  /// Header names lowercased; values trimmed of surrounding whitespace.
  std::map<std::string, std::string> headers;
  std::string body;

  /// \brief Case-insensitive header lookup (name must be lowercase).
  const std::string* Header(const std::string& lowercase_name) const;

  /// \brief Query parameter lookup ("n" in "?n=5&topic=2"); `fallback`
  /// when absent or not an integer.
  int QueryInt(const std::string& name, int fallback) const;

  /// True when the client asked to keep the connection open (HTTP/1.1
  /// default unless `Connection: close`).
  bool keep_alive() const;
};

/// \brief Status code + headers + body; serialized by the server.
struct HttpResponse {
  int status_code = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (Content-Length/Content-Type/Connection are managed by
  /// the server).
  std::map<std::string, std::string> headers;

  static HttpResponse Text(int code, std::string body,
                           std::string content_type = "text/plain");
  /// JSON body `{"error": <message>, "code": <status name>}`.
  static HttpResponse Error(int code, const std::string& message);
  /// Maps a non-OK Status to 400/404/422/500 by code.
  static HttpResponse FromStatus(const cold::Status& status);
};

/// Reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpStatusText(int code);

/// \brief Limits enforced while reading one request.
struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

/// \brief Outcome of one incremental parse attempt.
enum class HttpParseState { kNeedMore, kComplete };

/// \brief Incremental, socket-free request parse over an accumulated
/// buffer — the event loop's half of the parser; ReadHttpRequest wraps it
/// with blocking reads. On kComplete `*out` holds the request and its
/// bytes are erased from the front of `*buffer` (pipelined bytes remain);
/// on kNeedMore the buffer is untouched. Malformed or over-limit input
/// yields InvalidArgument with the same messages as ReadHttpRequest.
cold::Result<HttpParseState> ParseHttpRequest(std::string* buffer,
                                              HttpRequest* out,
                                              const HttpLimits& limits = {});

/// \brief Reads one full request from `fd` (blocking). `leftover` carries
/// bytes read past the end of a previous request on the same connection
/// (keep-alive pipelining); it is consumed first and refilled.
///
/// Returns NotFound("connection closed") on clean EOF before any bytes of
/// a request, DeadlineExceeded on a socket read timeout (SO_RCVTIMEO),
/// IOError on other socket errors, and InvalidArgument on malformed or
/// over-limit requests.
cold::Result<HttpRequest> ReadHttpRequest(int fd, std::string* leftover,
                                          const HttpLimits& limits = {});

/// \brief Serializes `response` onto the end of `*out` — the event loop's
/// write-buffer path; WriteHttpResponse wraps it with a blocking send.
/// `close_connection` controls the Connection header.
void AppendHttpResponse(std::string* out, const HttpResponse& response,
                        bool close_connection);

/// \brief Serializes and writes `response` to `fd`; `close_connection`
/// controls the Connection header.
cold::Status WriteHttpResponse(int fd, const HttpResponse& response,
                               bool close_connection);

/// \brief Minimal blocking HTTP/1.1 client for tests, examples and smoke
/// checks: one connection, sequential request/response, keep-alive.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to 127.0.0.1:`port`.
  cold::Status Connect(int port, int timeout_ms = 5000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  struct Response {
    int status_code = 0;
    std::map<std::string, std::string> headers;
    std::string body;
  };

  /// \brief Sends one request and reads the response. `body` is sent with
  /// Content-Length; empty string sends no body (use for GET).
  cold::Result<Response> Request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "");

  cold::Result<Response> Get(const std::string& target) {
    return Request("GET", target);
  }
  cold::Result<Response> Post(const std::string& target,
                              const std::string& body) {
    return Request("POST", target, body);
  }

 private:
  int fd_ = -1;
  std::string leftover_;
};

}  // namespace cold::serve
