#include "dist/net_fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace cold::dist {

namespace {

/// Strict non-negative integer parse of the whole token.
bool ParseCount(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || *end != '\0' || n < 0) return false;
  *out = static_cast<uint64_t>(n);
  return true;
}

}  // namespace

NetFaultInjector& NetFaultInjector::Global() {
  static NetFaultInjector injector;
  return injector;
}

cold::Status NetFaultInjector::Configure(const std::string& spec) {
  Disarm();
  if (spec.empty()) return cold::Status::OK();
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t colon = spec.find(':', pos);
    if (colon == std::string::npos) colon = spec.size();
    parts.push_back(spec.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) {
    return cold::Status::InvalidArgument(
        "net fault spec must be '<mode>:<rank>:<superstep>[:<seed>]', got '" +
        spec + "'");
  }
  NetFaultMode mode;
  if (parts[0] == "drop") {
    mode = NetFaultMode::kDrop;
  } else if (parts[0] == "corrupt") {
    mode = NetFaultMode::kCorrupt;
  } else if (parts[0] == "delay") {
    mode = NetFaultMode::kDelay;
  } else if (parts[0] == "stall") {
    mode = NetFaultMode::kStall;
  } else {
    return cold::Status::InvalidArgument(
        "net fault mode must be drop|corrupt|delay|stall, got '" + parts[0] +
        "'");
  }
  uint64_t rank = 0, superstep = 0, seed = 0;
  if (!ParseCount(parts[1], &rank)) {
    return cold::Status::InvalidArgument(
        "net fault rank must be a non-negative integer, got '" + parts[1] +
        "'");
  }
  if (!ParseCount(parts[2], &superstep)) {
    return cold::Status::InvalidArgument(
        "net fault superstep must be a non-negative integer, got '" +
        parts[2] + "'");
  }
  if (parts.size() == 4 && !ParseCount(parts[3], &seed)) {
    return cold::Status::InvalidArgument(
        "net fault seed must be a non-negative integer, got '" + parts[3] +
        "'");
  }
  mode_ = mode;
  rank_ = static_cast<int>(rank);
  superstep_ = superstep;
  seed_ = seed;
  fired_ = false;
  return cold::Status::OK();
}

void NetFaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("COLD_NET_FAULT");
  if (spec == nullptr) return;
  if (auto st = Configure(spec); !st.ok()) {
    COLD_LOG(kWarning) << "ignoring COLD_NET_FAULT: " << st.ToString();
  } else if (armed()) {
    COLD_LOG(kWarning) << "network fault injection armed: " << spec;
  }
}

void NetFaultInjector::Disarm() {
  mode_ = NetFaultMode::kNone;
  rank_ = -1;
  superstep_ = 0;
  seed_ = 0;
  fired_ = false;
  stalled_.store(false, std::memory_order_relaxed);
}

void NetFaultInjector::SetNodeRank(int rank) {
  if (armed() && rank_ != rank) Disarm();
}

void NetFaultInjector::MaybeStall() {
  while (stalled_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
}

NetFaultMode NetFaultInjector::OnDataFrame(uint64_t superstep,
                                           std::string* wire,
                                           size_t header_bytes) {
  if (!armed() || fired_ || superstep != superstep_) {
    return NetFaultMode::kNone;
  }
  fired_ = true;
  switch (mode_) {
    case NetFaultMode::kDrop:
      COLD_LOG(kWarning) << "net fault: dropping frame of superstep "
                         << superstep;
      return NetFaultMode::kDrop;
    case NetFaultMode::kCorrupt: {
      // Flip one payload byte so the receiver's CRC check rejects the
      // frame; fall back to a header byte for an (unexpected) empty
      // payload.
      size_t offset = wire->size() > header_bytes
                          ? header_bytes + seed_ % (wire->size() - header_bytes)
                          : seed_ % wire->size();
      (*wire)[offset] = static_cast<char>((*wire)[offset] ^ 0x20);
      COLD_LOG(kWarning) << "net fault: corrupting byte " << offset
                         << " of frame of superstep " << superstep;
      return NetFaultMode::kCorrupt;
    }
    case NetFaultMode::kDelay: {
      const auto delay = std::chrono::milliseconds(500 + seed_ % 1500);
      COLD_LOG(kWarning) << "net fault: delaying frame of superstep "
                         << superstep << " by " << delay.count() << "ms";
      std::this_thread::sleep_for(delay);
      return NetFaultMode::kDelay;
    }
    case NetFaultMode::kStall:
      COLD_LOG(kWarning) << "net fault: stalling all sends at superstep "
                         << superstep;
      stalled_.store(true, std::memory_order_relaxed);
      MaybeStall();  // never returns while stalled
      return NetFaultMode::kStall;
    case NetFaultMode::kNone:
      break;
  }
  return NetFaultMode::kNone;
}

}  // namespace cold::dist
